// Token stream for hirep-lint (tools/lint/README.md).
//
// A full C++ front end is deliberately out of scope: the determinism and
// lock-discipline rules key off identifier patterns, balanced brackets, and
// comments, all of which a flat token stream exposes.  The lexer therefore
// only has to get the *boundaries* right — comments, string/char literals
// (including raw strings), and preprocessor noise must never leak tokens —
// so that rules never fire on quoted or commented text.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hirep::lint {

enum class TokKind {
  Identifier,  // [A-Za-z_][A-Za-z0-9_]*
  Number,      // numeric literal (pp-number: keeps suffixes and '.' inside)
  Punct,       // operator / punctuation; multi-char ops are single tokens
  String,      // "..." or R"(...)" — text excludes quotes
  CharLit,     // '...'
};

struct Token {
  TokKind kind;
  std::string_view text;  // view into LexedFile::source
  int line;               // 1-based
};

struct Comment {
  int line;          // line the comment starts on
  std::string text;  // body without the leading // or /* */ delimiters
};

struct LexedFile {
  std::string source;           // owned backing buffer for token views
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Lexes `source` (takes ownership of the buffer).
LexedFile lex_source(std::string source);

/// Reads and lexes a file; throws std::runtime_error when unreadable.
LexedFile lex_file(const std::string& path);

}  // namespace hirep::lint
