// Rule engine for hirep-lint.
//
// Each rule enforces one determinism or lock-discipline invariant from
// DESIGN.md §12.  Rules are token-pattern heuristics, not a type checker:
// they are tuned to be precise on this codebase's idiom (see README.md for
// the known blind spots), and anything they cannot prove clean must either
// be fixed or carry an inline suppression with a reason:
//
//   // hirep-lint: allow(<rule>) -- <reason>        (this or previous line)
//   // hirep-lint: allow-file(<rule>) -- <reason>   (whole file)
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"

namespace hirep::lint {

struct Finding {
  std::string rule;
  std::string path;  // as given on the command line / discovered
  int line = 0;
  std::string message;
};

struct FileUnit {
  std::string path;  // filesystem path used for diagnostics
  std::string rel;   // path relative to --root, '/'-separated
  LexedFile lexed;
  // Path policy, derived from `rel` (see classify_paths in main.cpp):
  bool in_obs = false;    // src/obs is exempt from no-wall-clock
  bool sim_tree = true;   // unordered-iteration / arena-span-escape scope
};

/// All rule ids, in reporting order.
const std::vector<std::string>& all_rules();

/// True when `rule` is a known rule id.
bool known_rule(const std::string& rule);

/// Cross-file annotation facts needed by guarded-field-write.
struct AnnotationIndex {
  struct GuardedField {
    std::string cls;    // innermost class/struct that declares the field
    std::string field;  // field name
    std::string mutex;  // capability expression, e.g. "mu_"
  };
  std::vector<GuardedField> guarded;
  // "Cls::method" pairs declared HIREP_REQUIRES(...) — writes inside these
  // bodies are lock-checked by the caller, not the body.
  std::vector<std::string> requires_methods;

  bool is_guarded(const std::string& cls, const std::string& field) const;
  bool has_requires(const std::string& cls, const std::string& method) const;
};

/// Pass 1: harvest HIREP_GUARDED_BY / HIREP_REQUIRES facts from every file.
AnnotationIndex harvest_annotations(const std::vector<FileUnit>& files);

/// Pass 2: run every rule over one file.  Suppressions are already applied;
/// malformed suppression comments come back as `suppression-format`
/// findings (which cannot themselves be suppressed).
std::vector<Finding> run_rules(const FileUnit& f, const AnnotationIndex& idx);

}  // namespace hirep::lint
