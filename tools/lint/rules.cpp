#include "rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstring>
#include <map>
#include <set>
#include <string_view>

namespace hirep::lint {

namespace {

using Tokens = std::vector<Token>;

bool is_punct(const Token& t, std::string_view p) {
  return t.kind == TokKind::Punct && t.text == p;
}

bool is_ident(const Token& t, std::string_view name) {
  return t.kind == TokKind::Identifier && t.text == name;
}

/// Index of the token matching `open` at position i (tokens[i].text == open),
/// honouring nesting; returns tokens.size() when unbalanced.
std::size_t match_forward(const Tokens& toks, std::size_t i,
                          std::string_view open, std::string_view close) {
  int depth = 0;
  for (std::size_t k = i; k < toks.size(); ++k) {
    if (is_punct(toks[k], open)) ++depth;
    else if (is_punct(toks[k], close) && --depth == 0) return k;
  }
  return toks.size();
}

/// Matches a template-argument list starting at the '<' at index i.
/// `>>` closes two levels (the lexer emits it as one token).
std::size_t match_angles(const Tokens& toks, std::size_t i) {
  int depth = 0;
  for (std::size_t k = i; k < toks.size(); ++k) {
    const Token& t = toks[k];
    if (is_punct(t, "<")) ++depth;
    else if (is_punct(t, "<<")) depth += 2;
    else if (is_punct(t, ">") && --depth <= 0) return k;
    else if (is_punct(t, ">>") && (depth -= 2) <= 0) return k;
    else if (is_punct(t, ";")) break;  // runaway: not a template after all
  }
  return toks.size();
}

// ---------------------------------------------------------------------------
// Class-scope tracking shared by the annotation harvest and the
// guarded-field-write pass.  Tracks the innermost class/struct name at each
// token, enough to attribute fields and inline method bodies to a class.
// ---------------------------------------------------------------------------

struct ScopeTracker {
  struct Scope {
    std::string name;
    int depth;  // brace depth inside this class body
  };
  std::vector<Scope> stack;
  int depth = 0;

  std::string pending;  // class name awaiting its '{'
  bool pending_colon = false;

  void feed(const Tokens& toks, std::size_t i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::Identifier &&
        (t.text == "class" || t.text == "struct")) {
      const bool is_enum = i > 0 && is_ident(toks[i - 1], "enum");
      if (!is_enum && i + 1 < toks.size() &&
          toks[i + 1].kind == TokKind::Identifier) {
        pending = std::string(toks[i + 1].text);
        pending_colon = false;
      }
      return;
    }
    if (t.kind == TokKind::Punct) {
      if (t.text == ":") pending_colon = true;
      // A ';', '(', ')' — or a closing '>' before any base-class ':' (i.e.
      // `template <class T>`) — means the candidate was not a definition.
      if (t.text == ";" || t.text == "(" || t.text == ")" ||
          ((t.text == ">" || t.text == ">>") && !pending_colon)) {
        pending.clear();
      }
      if (t.text == "{") {
        ++depth;
        if (!pending.empty()) {
          stack.push_back({pending, depth});
          pending.clear();
        }
      } else if (t.text == "}") {
        --depth;
        while (!stack.empty() && stack.back().depth > depth) stack.pop_back();
      }
    }
  }

  const std::string* innermost() const {
    return stack.empty() ? nullptr : &stack.back().name;
  }
  /// True when the cursor sits directly in the innermost class body (not in
  /// a nested block) — where member declarations and inline methods live.
  bool at_class_body() const {
    return !stack.empty() && stack.back().depth == depth;
  }
};

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Suppressions {
  std::map<int, std::set<std::string>> by_line;  // effective target lines
  std::set<std::string> file_wide;
  std::vector<Finding> format_findings;  // malformed hirep-lint: comments
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

Suppressions parse_suppressions(const FileUnit& f) {
  Suppressions out;
  for (const Comment& c : f.lexed.comments) {
    const std::size_t at = c.text.find("hirep-lint:");
    if (at == std::string::npos) continue;
    const auto bad = [&](const std::string& why) {
      out.format_findings.push_back(
          {"suppression-format", f.path, c.line,
           why + " — expected `hirep-lint: allow(<rule>) -- <reason>` or "
                 "`allow-file(<rule>) -- <reason>`"});
    };
    std::string_view rest =
        trim(std::string_view(c.text).substr(at + std::strlen("hirep-lint:")));
    bool file_wide = false;
    if (rest.rfind("allow-file(", 0) == 0) {
      file_wide = true;
      rest.remove_prefix(std::strlen("allow-file("));
    } else if (rest.rfind("allow(", 0) == 0) {
      rest.remove_prefix(std::strlen("allow("));
    } else {
      bad("unrecognised hirep-lint directive");
      continue;
    }
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      bad("missing ')' after rule name");
      continue;
    }
    const std::string rule(trim(rest.substr(0, close)));
    if (!known_rule(rule)) {
      bad("unknown rule '" + rule + "'");
      continue;
    }
    std::string_view after = trim(rest.substr(close + 1));
    if (after.rfind("--", 0) != 0 || trim(after.substr(2)).empty()) {
      bad("missing `-- <reason>` justification");
      continue;
    }
    if (file_wide) {
      out.file_wide.insert(rule);
    } else {
      // A same-line comment covers its line; a standalone comment covers
      // the line below it.
      out.by_line[c.line].insert(rule);
      out.by_line[c.line + 1].insert(rule);
    }
  }
  return out;
}

bool suppressed(const Suppressions& s, const Finding& fd) {
  if (s.file_wide.count(fd.rule)) return true;
  auto it = s.by_line.find(fd.line);
  return it != s.by_line.end() && it->second.count(fd.rule) != 0;
}

// ---------------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------------

void rule_no_random_device(const FileUnit& f, std::vector<Finding>& out) {
  for (const Token& t : f.lexed.tokens) {
    if (is_ident(t, "random_device")) {
      out.push_back({"no-random-device", f.path, t.line,
                     "std::random_device is nondeterministic entropy; seed a "
                     "util::Rng stream instead (DESIGN.md §11.2)"});
    }
  }
}

void rule_no_libc_rand(const FileUnit& f, std::vector<Finding>& out) {
  const Tokens& toks = f.lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!(is_ident(toks[i], "rand") || is_ident(toks[i], "srand"))) continue;
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
    if (i > 0) {
      const Token& prev = toks[i - 1];
      if (is_punct(prev, ".") || is_punct(prev, "->")) continue;  // member
      if (is_punct(prev, "::") &&
          !(i >= 2 && is_ident(toks[i - 2], "std"))) {
        continue;  // some_other_ns::rand
      }
    }
    out.push_back({"no-libc-rand", f.path, toks[i].line,
                   "libc " + std::string(toks[i].text) +
                       "() uses hidden global state; draw from the "
                       "transaction's util::Rng stream instead"});
  }
}

void rule_no_wall_clock(const FileUnit& f, std::vector<Finding>& out) {
  if (f.in_obs) return;  // src/obs owns wall-clock timing by design
  for (const Token& t : f.lexed.tokens) {
    if (is_ident(t, "system_clock") || is_ident(t, "steady_clock")) {
      out.push_back({"no-wall-clock", f.path, t.line,
                     "std::chrono::" + std::string(t.text) +
                         " outside src/obs; simulation time comes from "
                         "EventSim, never the host clock"});
    }
  }
}

// Names of Rng draw methods; a `.draw()`/`->draw()` on anything inside an
// unordered-container loop is treated as an RNG draw.
constexpr std::string_view kRngMethods[] = {
    "uniform", "chance",  "normal",        "exponential",
    "below",   "shuffle", "sample_indices", "fork"};
constexpr std::string_view kSendMethods[] = {"send", "send_batch", "request",
                                             "request_batch", "push"};
constexpr std::string_view kMutatingMethods[] = {
    "clear",   "insert", "emplace", "emplace_back", "push", "push_back",
    "pop",     "pop_back", "pop_front", "erase",    "assign", "resize",
    "reserve", "swap"};

template <std::size_t N>
bool in_list(std::string_view name, const std::string_view (&list)[N]) {
  return std::find(std::begin(list), std::end(list), name) != std::end(list);
}

/// Variable/field names in this file declared with an unordered container
/// type, and names declared double/float (for the accumulation heuristic).
struct DeclNames {
  std::set<std::string, std::less<>> unordered;
  std::set<std::string, std::less<>> floating;
};

DeclNames collect_decl_names(const Tokens& toks) {
  DeclNames out;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_ident(toks[i], "unordered_map") ||
        is_ident(toks[i], "unordered_set")) {
      std::size_t k = i + 1;
      if (k < toks.size() && is_punct(toks[k], "<")) {
        k = match_angles(toks, k);
        if (k >= toks.size()) continue;
        ++k;
      }
      // `unordered_map<...> name` or `unordered_map<...>& name` / `* name`.
      while (k < toks.size() &&
             (is_punct(toks[k], "&") || is_punct(toks[k], "*") ||
              is_ident(toks[k], "const"))) {
        ++k;
      }
      if (k < toks.size() && toks[k].kind == TokKind::Identifier) {
        out.unordered.insert(std::string(toks[k].text));
      }
    }
    if ((is_ident(toks[i], "double") || is_ident(toks[i], "float")) &&
        i + 1 < toks.size() && toks[i + 1].kind == TokKind::Identifier &&
        !(i + 2 < toks.size() && is_punct(toks[i + 2], "("))) {
      out.floating.insert(std::string(toks[i + 1].text));
    }
  }
  return out;
}

void rule_unordered_iteration(const FileUnit& f, std::vector<Finding>& out) {
  if (!f.sim_tree) return;
  const Tokens& toks = f.lexed.tokens;
  const DeclNames decls = collect_decl_names(toks);
  if (decls.unordered.empty()) return;

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close >= toks.size()) continue;

    // Does this loop iterate an unordered container?  Range-for: any
    // identifier after the top-level ':' resolves to an unordered name.
    // Iterator loop: `.begin()`/`.cbegin()` on an unordered name in the
    // init clause.
    bool over_unordered = false;
    std::size_t colon = toks.size();
    int pdepth = 0;
    for (std::size_t k = i + 1; k < close; ++k) {
      if (is_punct(toks[k], "(")) ++pdepth;
      else if (is_punct(toks[k], ")")) --pdepth;
      else if (pdepth == 1 && is_punct(toks[k], ":")) { colon = k; break; }
    }
    if (colon < close) {
      for (std::size_t k = colon + 1; k < close && !over_unordered; ++k) {
        if (toks[k].kind == TokKind::Identifier &&
            decls.unordered.count(toks[k].text)) {
          over_unordered = true;
        }
      }
    } else {
      bool names_unordered = false, calls_begin = false;
      for (std::size_t k = i + 2; k < close; ++k) {
        if (toks[k].kind != TokKind::Identifier) continue;
        if (decls.unordered.count(toks[k].text)) names_unordered = true;
        if (toks[k].text == "begin" || toks[k].text == "cbegin")
          calls_begin = true;
      }
      over_unordered = names_unordered && calls_begin;
    }
    if (!over_unordered) continue;

    // Body bounds: braced block or single statement.
    std::size_t body_begin = close + 1;
    std::size_t body_end;
    if (body_begin < toks.size() && is_punct(toks[body_begin], "{")) {
      body_end = match_forward(toks, body_begin, "{", "}");
    } else {
      body_end = body_begin;
      while (body_end < toks.size() && !is_punct(toks[body_end], ";"))
        ++body_end;
    }

    // Scan the body for order-sensitive effects.
    std::string why;
    for (std::size_t k = body_begin; k < body_end && why.empty(); ++k) {
      const Token& t = toks[k];
      if (t.kind == TokKind::Identifier) {
        const bool member_call =
            k > 0 && (is_punct(toks[k - 1], ".") || is_punct(toks[k - 1], "->"));
        const bool called = k + 1 < toks.size() && is_punct(toks[k + 1], "(");
        if (called && in_list(t.text, kSendMethods)) {
          why = "sends ('" + std::string(t.text) + "')";
        } else if (t.text == "rng" || t.text == "rng_" ||
                   t.text == "hop_rng_" ||
                   (member_call && called && in_list(t.text, kRngMethods))) {
          why = "RNG draws ('" + std::string(t.text) + "')";
        }
      } else if (is_punct(t, "+=") || is_punct(t, "-=")) {
        const bool float_lhs = k > 0 &&
                               toks[k - 1].kind == TokKind::Identifier &&
                               decls.floating.count(toks[k - 1].text);
        bool float_rhs = false;
        for (std::size_t r = k + 1; r < body_end && !is_punct(toks[r], ";");
             ++r) {
          if (toks[r].kind == TokKind::Number &&
              toks[r].text.find('.') != std::string_view::npos) {
            float_rhs = true;
            break;
          }
        }
        if (float_lhs || float_rhs) why = "float accumulation";
      }
    }
    if (!why.empty()) {
      out.push_back(
          {"unordered-iteration", f.path, toks[i].line,
           "iteration over an unordered container whose body performs " +
               why +
               "; bucket order is implementation-defined — iterate a sorted "
               "copy or a deterministic index instead (DESIGN.md §12)"});
    }
  }
}

/// Statement bounds around token index i: [begin, end) where begin follows
/// the previous ';'/'{'/'}' and end is the next ';'.
std::pair<std::size_t, std::size_t> statement_bounds(const Tokens& toks,
                                                     std::size_t i) {
  std::size_t begin = i;
  while (begin > 0) {
    const Token& t = toks[begin - 1];
    if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) break;
    --begin;
  }
  std::size_t end = i;
  while (end < toks.size() && !is_punct(toks[end], ";")) ++end;
  return {begin, end};
}

/// True when the identifier chain in [begin, end) looks like it designates
/// long-lived storage: a member (trailing-underscore identifier or
/// `this->`), so a batch-scoped span written there outlives its arena.
bool member_ish(const Tokens& toks, std::size_t begin, std::size_t end) {
  for (std::size_t k = begin; k < end; ++k) {
    if (toks[k].kind != TokKind::Identifier) continue;
    if (toks[k].text == "this") return true;
    if (toks[k].text.size() > 1 && toks[k].text.back() == '_') return true;
  }
  return false;
}

void rule_arena_span_escape(const FileUnit& f, std::vector<Finding>& out) {
  if (!f.sim_tree) return;
  const Tokens& toks = f.lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Pattern 1: `<member-ish lvalue> = ... .payload ...;`
    if (is_punct(toks[i], "=")) {
      const auto [begin, end] = statement_bounds(toks, i);
      bool rhs_payload = false;
      for (std::size_t k = i + 1; k < end; ++k) {
        if (toks[k].kind == TokKind::Identifier && toks[k].text == "payload" &&
            k > 0 &&
            (is_punct(toks[k - 1], ".") || is_punct(toks[k - 1], "->"))) {
          rhs_payload = true;
          break;
        }
      }
      if (rhs_payload && member_ish(toks, begin, i)) {
        out.push_back(
            {"arena-span-escape", f.path, toks[i].line,
             "Envelope::payload (arena-backed span) assigned to a member; "
             "the bytes die at batch reset — copy into util::Bytes if the "
             "data must outlive the batch"});
      }
      continue;
    }
    // Pattern 2: `<member-ish container>.push_back(... payload ...)` et al.
    if (toks[i].kind == TokKind::Identifier &&
        in_list(toks[i].text, kMutatingMethods) && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(") && i > 0 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      // Receiver chain: walk back over ident / '.' / '->' / '::' tokens.
      std::size_t r = i - 1;
      while (r > 0) {
        const Token& t = toks[r - 1];
        if (t.kind == TokKind::Identifier || is_punct(t, ".") ||
            is_punct(t, "->") || is_punct(t, "::")) {
          --r;
        } else {
          break;
        }
      }
      if (!member_ish(toks, r, i)) continue;
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      for (std::size_t k = i + 2; k < close; ++k) {
        if (toks[k].kind == TokKind::Identifier &&
            toks[k].text == "payload") {
          out.push_back(
              {"arena-span-escape", f.path, toks[i].line,
               "arena-backed payload span stored into a member container; "
               "the bytes die at batch reset — copy into util::Bytes if the "
               "data must outlive the batch"});
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// guarded-field-write
// ---------------------------------------------------------------------------

bool body_takes_lock(const Tokens& toks, std::size_t begin, std::size_t end) {
  for (std::size_t k = begin; k < end; ++k) {
    if (toks[k].kind != TokKind::Identifier) continue;
    if (toks[k].text == "MutexLock" || toks[k].text == "lock_guard" ||
        toks[k].text == "unique_lock" || toks[k].text == "scoped_lock") {
      return true;
    }
  }
  return false;
}

/// Checks one method body of class `cls` for unlocked writes to guarded
/// fields.  Bare accesses only (`field` / `this->field`): accesses through
/// local references (`shard.lru`) are clang TSA's job, not this heuristic's.
void check_body(const FileUnit& f, const AnnotationIndex& idx,
                const std::string& cls, const Tokens& toks, std::size_t begin,
                std::size_t end, std::vector<Finding>& out) {
  const bool locked = body_takes_lock(toks, begin, end);
  if (locked) return;
  for (std::size_t k = begin; k < end; ++k) {
    const Token& t = toks[k];
    if (t.kind != TokKind::Identifier) continue;
    const std::string field(t.text);
    if (!idx.is_guarded(cls, field)) continue;
    if (k > begin) {
      const Token& prev = toks[k - 1];
      const bool this_arrow = is_punct(prev, "->") && k >= 2 &&
                              is_ident(toks[k - 2], "this");
      if ((is_punct(prev, ".") || is_punct(prev, "->") ||
           is_punct(prev, "::")) &&
          !this_arrow) {
        continue;  // member of something else
      }
    }
    bool write = false;
    if (k + 1 < end) {
      const Token& next = toks[k + 1];
      static constexpr std::string_view kAssigns[] = {
          "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="};
      if (next.kind == TokKind::Punct && in_list(next.text, kAssigns))
        write = true;
      if (is_punct(next, "++") || is_punct(next, "--")) write = true;
      if ((is_punct(next, ".") || is_punct(next, "->")) && k + 2 < end &&
          toks[k + 2].kind == TokKind::Identifier &&
          in_list(toks[k + 2].text, kMutatingMethods)) {
        write = true;
      }
    }
    if (k > begin &&
        (is_punct(toks[k - 1], "++") || is_punct(toks[k - 1], "--"))) {
      write = true;
    }
    if (write) {
      out.push_back({"guarded-field-write", f.path, t.line,
                     "write to '" + field + "' (HIREP_GUARDED_BY in " + cls +
                         ") with no lock scope in this body and no "
                         "HIREP_REQUIRES on the method"});
    }
  }
}

void rule_guarded_field_write(const FileUnit& f, const AnnotationIndex& idx,
                              std::vector<Finding>& out) {
  const Tokens& toks = f.lexed.tokens;
  ScopeTracker scopes;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    scopes.feed(toks, i);

    // Out-of-line definition:  [ns ::]* Cls :: method ( ... ) [quals] { ... }
    if (toks[i].kind == TokKind::Identifier && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(") && i >= 2 && is_punct(toks[i - 1], "::") &&
        toks[i - 2].kind == TokKind::Identifier) {
      const std::string cls(toks[i - 2].text);
      const std::string method(toks[i].text);
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      if (close >= toks.size()) continue;
      // Skip qualifiers / ctor-init-list up to the body brace (bail at ';').
      std::size_t b = close + 1;
      int pd = 0;
      while (b < toks.size()) {
        if (is_punct(toks[b], "(")) ++pd;
        else if (is_punct(toks[b], ")")) --pd;
        else if (pd == 0 && (is_punct(toks[b], "{") || is_punct(toks[b], ";")))
          break;
        ++b;
      }
      if (b >= toks.size() || !is_punct(toks[b], "{")) continue;
      const std::size_t body_end = match_forward(toks, b, "{", "}");
      const bool ctor_dtor =
          method == cls || (i >= 3 && is_punct(toks[i - 1], "~")) ||
          (i >= 2 && is_punct(toks[i - 1], "::") && i + 1 < toks.size() &&
           i >= 3 && is_punct(toks[i - 3], "~"));
      if (!ctor_dtor && !idx.has_requires(cls, method)) {
        check_body(f, idx, cls, toks, b + 1, body_end, out);
      }
      i = b;  // resume inside the body so scope tracking stays aligned
      continue;
    }

    // Inline method directly in a class body: method ( ... ) [quals] { ... }
    if (scopes.at_class_body() && toks[i].kind == TokKind::Identifier &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        !(i > 0 && (is_punct(toks[i - 1], "::") || is_punct(toks[i - 1], ".") ||
                    is_punct(toks[i - 1], "->")))) {
      const std::string cls = *scopes.innermost();
      const std::string method(toks[i].text);
      if (method.rfind("HIREP_", 0) == 0) continue;  // annotation macro
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      if (close >= toks.size()) continue;
      std::size_t b = close + 1;
      int pd = 0;
      while (b < toks.size()) {
        if (is_punct(toks[b], "(")) ++pd;
        else if (is_punct(toks[b], ")")) --pd;
        else if (pd == 0 && (is_punct(toks[b], "{") || is_punct(toks[b], ";") ||
                             is_punct(toks[b], ",") || is_punct(toks[b], ")")))
          break;
        ++b;
      }
      if (b >= toks.size() || !is_punct(toks[b], "{")) continue;
      const std::size_t body_end = match_forward(toks, b, "{", "}");
      const bool ctor_dtor =
          method == cls || (i > 0 && is_punct(toks[i - 1], "~"));
      if (!ctor_dtor && !idx.has_requires(cls, method)) {
        check_body(f, idx, cls, toks, b + 1, body_end, out);
      }
      // Do not skip the body: scope tracking must still see its braces.
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------------

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> rules = {
      "no-random-device",    "no-libc-rand",       "no-wall-clock",
      "unordered-iteration", "arena-span-escape",  "guarded-field-write",
      "suppression-format"};
  return rules;
}

bool known_rule(const std::string& rule) {
  const auto& rules = all_rules();
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

bool AnnotationIndex::is_guarded(const std::string& cls,
                                 const std::string& field) const {
  for (const GuardedField& g : guarded) {
    if (g.cls == cls && g.field == field) return true;
  }
  return false;
}

bool AnnotationIndex::has_requires(const std::string& cls,
                                   const std::string& method) const {
  const std::string key = cls + "::" + method;
  return std::find(requires_methods.begin(), requires_methods.end(), key) !=
         requires_methods.end();
}

AnnotationIndex harvest_annotations(const std::vector<FileUnit>& files) {
  AnnotationIndex idx;
  for (const FileUnit& f : files) {
    const Tokens& toks = f.lexed.tokens;
    ScopeTracker scopes;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      scopes.feed(toks, i);
      if (toks[i].kind != TokKind::Identifier) continue;
      if (toks[i].text == "HIREP_GUARDED_BY" && i > 0 &&
          toks[i - 1].kind == TokKind::Identifier) {
        std::string mutex;
        if (i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
          const std::size_t close = match_forward(toks, i + 1, "(", ")");
          for (std::size_t k = i + 2; k < close; ++k)
            mutex += std::string(toks[k].text);
        }
        const std::string* cls = scopes.innermost();
        idx.guarded.push_back({cls ? *cls : std::string(),
                               std::string(toks[i - 1].text), mutex});
      } else if (toks[i].text == "HIREP_REQUIRES") {
        // Walk back over qualifiers to the parameter list, then to the name.
        std::size_t k = i;
        while (k > 0 && (is_ident(toks[k - 1], "const") ||
                         is_ident(toks[k - 1], "noexcept") ||
                         is_ident(toks[k - 1], "override"))) {
          --k;
        }
        if (k == 0 || !is_punct(toks[k - 1], ")")) continue;
        int depth = 0;
        std::size_t open = k - 1;
        while (open > 0) {
          if (is_punct(toks[open], ")")) ++depth;
          else if (is_punct(toks[open], "(") && --depth == 0) break;
          --open;
        }
        if (open == 0 || toks[open - 1].kind != TokKind::Identifier) continue;
        const std::string* cls = scopes.innermost();
        idx.requires_methods.push_back((cls ? *cls : std::string()) +
                                       "::" + std::string(toks[open - 1].text));
      }
    }
  }
  return idx;
}

std::vector<Finding> run_rules(const FileUnit& f, const AnnotationIndex& idx) {
  std::vector<Finding> raw;
  rule_no_random_device(f, raw);
  rule_no_libc_rand(f, raw);
  rule_no_wall_clock(f, raw);
  rule_unordered_iteration(f, raw);
  rule_arena_span_escape(f, raw);
  rule_guarded_field_write(f, idx, raw);

  const Suppressions sup = parse_suppressions(f);
  std::vector<Finding> out;
  for (Finding& fd : raw) {
    if (!suppressed(sup, fd)) out.push_back(std::move(fd));
  }
  // Malformed suppression comments are findings themselves and cannot be
  // suppressed (a typo'd allow() must not silently allow nothing).
  for (const Finding& fd : sup.format_findings) out.push_back(fd);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

}  // namespace hirep::lint
