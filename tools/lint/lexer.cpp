#include "lexer.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hirep::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char operators that rules distinguish from their one-char prefixes
// (`=` vs `==`, `+` vs `+=`, `:` vs `::`, ...).  Longest match first.
constexpr std::string_view kOps3[] = {"<<=", ">>=", "->*", "...", "<=>"};
constexpr std::string_view kOps2[] = {"::", "->", "++", "--", "+=", "-=",
                                      "*=", "/=", "%=", "&=", "|=", "^=",
                                      "==", "!=", "<=", ">=", "&&", "||",
                                      "<<", ">>"};

}  // namespace

LexedFile lex_source(std::string source) {
  LexedFile out;
  out.source = std::move(source);
  const std::string& s = out.source;
  const std::size_t n = s.size();
  std::size_t i = 0;
  int line = 1;

  auto view = [&](std::size_t begin, std::size_t end) {
    return std::string_view(s).substr(begin, end - begin);
  };

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment — captured verbatim for suppression parsing.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      std::size_t begin = i + 2;
      while (i < n && s[i] != '\n') ++i;
      out.comments.push_back({line, std::string(view(begin, i))});
      continue;
    }
    // Block comment — skipped, but newlines still advance the line count.
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      const int start_line = line;
      std::size_t begin = i + 2;
      i += 2;
      while (i + 1 < n && !(s[i] == '*' && s[i + 1] == '/')) {
        if (s[i] == '\n') ++line;
        ++i;
      }
      std::size_t end = i < n ? i : n;
      out.comments.push_back({start_line, std::string(view(begin, end))});
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    // Preprocessor directive: consume through EOL (honouring continuations)
    // so `#include <mutex>` never produces < mutex > tokens.  The directive
    // body is deliberately invisible to rules — include hygiene is
    // clang-tidy's job, not this tool's.
    if (c == '#') {
      while (i < n && s[i] != '\n') {
        if (s[i] == '\\' && i + 1 < n && s[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && s[d] != '(') ++d;
      const std::string closer =
          ")" + std::string(view(i + 2, d)) + "\"";
      const int start_line = line;
      std::size_t body = d + 1;
      std::size_t end = s.find(closer, body);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (s[k] == '\n') ++line;
      }
      out.tokens.push_back({TokKind::String, view(body, end), start_line});
      i = end + closer.size() <= n ? end + closer.size() : n;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t begin = i + 1;
      ++i;
      while (i < n && s[i] != quote) {
        if (s[i] == '\\' && i + 1 < n) ++i;  // escape
        if (s[i] == '\n') ++line;            // unterminated; stay sane
        ++i;
      }
      out.tokens.push_back(
          {quote == '"' ? TokKind::String : TokKind::CharLit, view(begin, i),
           line});
      if (i < n) ++i;  // closing quote
      continue;
    }
    if (ident_start(c)) {
      std::size_t begin = i;
      while (i < n && ident_char(s[i])) ++i;
      out.tokens.push_back({TokKind::Identifier, view(begin, i), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
      // pp-number: digits, idents (hex/suffixes), digit separators, '.',
      // and exponent signs after e/E/p/P.
      std::size_t begin = i;
      ++i;
      while (i < n) {
        const char p = s[i];
        if (ident_char(p) || p == '.' || p == '\'') {
          ++i;
        } else if ((p == '+' || p == '-') &&
                   (s[i - 1] == 'e' || s[i - 1] == 'E' || s[i - 1] == 'p' ||
                    s[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      out.tokens.push_back({TokKind::Number, view(begin, i), line});
      continue;
    }
    // Punctuation: longest-match the multi-char operators.
    bool matched = false;
    for (std::string_view op : kOps3) {
      if (s.compare(i, op.size(), op) == 0) {
        out.tokens.push_back({TokKind::Punct, view(i, i + op.size()), line});
        i += op.size();
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (std::string_view op : kOps2) {
      if (s.compare(i, op.size(), op) == 0) {
        out.tokens.push_back({TokKind::Punct, view(i, i + op.size()), line});
        i += op.size();
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.tokens.push_back({TokKind::Punct, view(i, i + 1), line});
    ++i;
  }
  return out;
}

LexedFile lex_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("hirep-lint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return lex_source(buf.str());
}

}  // namespace hirep::lint
