// hirep-lint — project-specific determinism & lock-discipline checker.
//
// Usage:
//   hirep-lint [--root DIR] [--compdb FILE] [--tree PATH]... [--file F]...
//              [--expect RULE] [--list-rules]
//
//   --root DIR     repository root (default: cwd); rel paths resolve here
//   --compdb FILE  compile_commands.json; its "file" entries under --root
//                  seed the TU list (headers are still discovered by walk)
//   --tree PATH    directory to walk (repeatable; default: src)
//   --file F       lint exactly this file (repeatable; all rules active,
//                  path policy exemptions off — used by the fixture tests)
//   --expect RULE  invert: exit 0 iff >=1 finding of RULE was produced
//                  (fixture mode), 1 otherwise
//   --list-rules   print rule ids and exit
//
// Exit status: 0 clean (or --expect satisfied), 1 findings (or --expect
// unsatisfied), 2 usage/IO error.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"

namespace fs = std::filesystem;
using namespace hirep::lint;

namespace {

/// Minimal extractor for the "file" keys of compile_commands.json.  The
/// repo's util::json is a writer (no DOM parser), and the schema here is a
/// flat array of objects, so a targeted scan is all that's needed.
std::vector<std::string> compdb_files(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read compdb: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string s = buf.str();
  std::vector<std::string> files;
  std::size_t i = 0;
  while ((i = s.find("\"file\"", i)) != std::string::npos) {
    i += std::strlen("\"file\"");
    while (i < s.size() && (s[i] == ' ' || s[i] == ':' || s[i] == '\t')) ++i;
    if (i >= s.size() || s[i] != '"') continue;
    ++i;
    std::string f;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;  // \" and \\ unescape
      f += s[i++];
    }
    files.push_back(f);
  }
  return files;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::string rel_to(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  const fs::path r = fs::relative(p, root, ec);
  return (ec ? p : r).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compdb;
  std::vector<std::string> trees;
  std::vector<std::string> explicit_files;
  std::string expect;
  const auto need = [&](int i) {
    if (i + 1 >= argc) {
      std::cerr << "hirep-lint: " << argv[i] << " needs a value\n";
      std::exit(2);
    }
    return std::string(argv[i + 1]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--root") root = need(i), ++i;
    else if (a == "--compdb") compdb = need(i), ++i;
    else if (a == "--tree") trees.push_back(need(i)), ++i;
    else if (a == "--file") explicit_files.push_back(need(i)), ++i;
    else if (a == "--expect") expect = need(i), ++i;
    else if (a == "--list-rules") {
      for (const std::string& r : all_rules()) std::cout << r << '\n';
      return 0;
    } else {
      std::cerr << "hirep-lint: unknown argument " << a << '\n';
      return 2;
    }
  }
  if (!expect.empty() && !known_rule(expect)) {
    std::cerr << "hirep-lint: --expect " << expect << ": unknown rule\n";
    return 2;
  }

  try {
    const fs::path rootp = fs::absolute(root);
    std::set<std::string> paths;  // absolute, deduped, stable order

    if (explicit_files.empty()) {
      if (trees.empty()) trees = {"src"};
      for (const std::string& t : trees) {
        const fs::path dir = rootp / t;
        if (!fs::exists(dir)) {
          std::cerr << "hirep-lint: no such tree: " << dir.string() << '\n';
          return 2;
        }
        for (const auto& e : fs::recursive_directory_iterator(dir)) {
          if (e.is_regular_file() && lintable(e.path())) {
            paths.insert(fs::absolute(e.path()).string());
          }
        }
      }
      if (!compdb.empty()) {
        // TUs the build actually compiles; anything under --root joins the
        // walk set (out-of-tree system files are not ours to lint).
        for (const std::string& f : compdb_files(compdb)) {
          const fs::path p = fs::absolute(f);
          const std::string rel = rel_to(rootp, p);
          if (!rel.empty() && rel[0] != '.' && lintable(p) &&
              rel.rfind("src/", 0) == 0) {
            paths.insert(p.string());
          }
        }
      }
    } else {
      for (const std::string& f : explicit_files) {
        paths.insert(fs::absolute(f).string());
      }
    }

    std::vector<FileUnit> files;
    for (const std::string& p : paths) {
      FileUnit u;
      u.path = p;
      u.rel = rel_to(rootp, p);
      u.lexed = lex_file(p);
      if (explicit_files.empty()) {
        u.in_obs = u.rel.rfind("src/obs/", 0) == 0;
        // The deterministic simulation trees; util/crypto/obs/check run
        // beside the sim but do not send or draw on sim streams.
        u.sim_tree = u.rel.rfind("src/sim/", 0) == 0 ||
                     u.rel.rfind("src/net/", 0) == 0 ||
                     u.rel.rfind("src/hirep/", 0) == 0 ||
                     u.rel.rfind("src/baselines/", 0) == 0 ||
                     u.rel.rfind("src/trust/", 0) == 0 ||
                     u.rel.rfind("src/onion/", 0) == 0;
      } else {
        u.in_obs = false;   // fixture mode: every rule active
        u.sim_tree = true;
      }
      files.push_back(std::move(u));
    }

    const AnnotationIndex idx = harvest_annotations(files);
    std::vector<Finding> findings;
    for (const FileUnit& f : files) {
      for (Finding& fd : run_rules(f, idx)) findings.push_back(std::move(fd));
    }

    for (const Finding& fd : findings) {
      std::cout << fd.path << ':' << fd.line << ": [" << fd.rule << "] "
                << fd.message << '\n';
    }
    if (!expect.empty()) {
      const bool hit = std::any_of(
          findings.begin(), findings.end(),
          [&](const Finding& fd) { return fd.rule == expect; });
      if (!hit) {
        std::cerr << "hirep-lint: expected >=1 '" << expect
                  << "' finding, got none\n";
        return 1;
      }
      std::cout << "hirep-lint: --expect " << expect << " satisfied\n";
      return 0;
    }
    if (findings.empty()) {
      std::cout << "hirep-lint: " << files.size() << " files clean\n";
      return 0;
    }
    std::cerr << "hirep-lint: " << findings.size() << " finding(s) in "
              << files.size() << " files\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
}
