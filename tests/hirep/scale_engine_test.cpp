// Property tests for the batched transaction engine: parallel execution
// must be byte-identical to serial execution (DESIGN.md §9), batches must
// compose, and invalid inputs must be rejected up front.
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "hirep/system.hpp"
#include "util/rng.hpp"

namespace hirep {
namespace {

using core::Executor;
using core::HirepOptions;
using core::HirepSystem;
using Record = core::HirepSystem::TransactionRecord;
using Pair = std::pair<net::NodeIndex, net::NodeIndex>;

HirepOptions fast_options(std::uint64_t seed, std::size_t nodes) {
  HirepOptions opts;
  opts.nodes = nodes;
  opts.crypto = core::CryptoMode::kFast;
  opts.seed = seed;
  return opts;
}

std::vector<Pair> draw_pairs(std::uint64_t seed, std::size_t nodes,
                             std::size_t count) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<Pair> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    const auto r = static_cast<net::NodeIndex>(rng.below(nodes));
    const auto p = static_cast<net::NodeIndex>(rng.below(nodes));
    if (r != p) pairs.emplace_back(r, p);
  }
  return pairs;
}

// Byte-level equality: doubles are compared by bit pattern, so the test
// fails on any drift a tolerance-based comparison would mask.
void expect_records_identical(const std::vector<Record>& a,
                              const std::vector<Record>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a[i].requestor, b[i].requestor);
    EXPECT_EQ(a[i].provider, b[i].provider);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].estimate),
              std::bit_cast<std::uint64_t>(b[i].estimate));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].truth_value),
              std::bit_cast<std::uint64_t>(b[i].truth_value));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].outcome),
              std::bit_cast<std::uint64_t>(b[i].outcome));
    EXPECT_EQ(a[i].responses, b[i].responses);
    EXPECT_EQ(a[i].trust_messages, b[i].trust_messages);
  }
}

TEST(ScaleEngine, ParallelMatchesSerialFastCrypto) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    for (std::size_t threads : {2UL, 4UL}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                   std::to_string(threads));
      const auto opts = fast_options(seed, 200);
      const auto pairs = draw_pairs(seed, opts.nodes, 80);

      HirepSystem serial(opts);
      HirepSystem parallel(opts);
      const auto serial_records =
          serial.run_transactions(pairs, Executor::serial());
      const auto parallel_records = parallel.run_transactions(
          pairs, Executor::parallel(threads));

      expect_records_identical(serial_records, parallel_records);
      EXPECT_EQ(serial.trust_message_total(), parallel.trust_message_total());
    }
  }
}

TEST(ScaleEngine, ParallelMatchesSerialFullCrypto) {
  const HirepOptions opts = [] {
    HirepOptions o;
    o.nodes = 48;
    o.crypto = core::CryptoMode::kFull;
    o.seed = 3;
    return o;
  }();
  const auto pairs = draw_pairs(3, opts.nodes, 8);

  HirepSystem serial(opts);
  HirepSystem parallel(opts);
  const auto serial_records =
      serial.run_transactions(pairs, Executor::serial());
  const auto parallel_records =
      parallel.run_transactions(pairs, Executor::parallel(4));

  expect_records_identical(serial_records, parallel_records);
  EXPECT_EQ(serial.trust_message_total(), parallel.trust_message_total());
}

TEST(ScaleEngine, ChunkedBatchesMatchOneBatch) {
  const auto opts = fast_options(11, 200);
  const auto pairs = draw_pairs(11, opts.nodes, 60);

  HirepSystem whole(opts);
  HirepSystem chunked(opts);
  const auto whole_records = whole.run_transactions(pairs, Executor::parallel(4));

  std::vector<Record> chunk_records;
  for (std::size_t at = 0; at < pairs.size(); at += 25) {
    const std::size_t n = std::min<std::size_t>(25, pairs.size() - at);
    const auto part = chunked.run_transactions(
        std::span(pairs).subspan(at, n), Executor::parallel(4));
    chunk_records.insert(chunk_records.end(), part.begin(), part.end());
  }

  // The lifetime transaction counter carries the stream index across
  // batches, so checkpointed execution (fig5/fig6 style) is equivalent to
  // one big batch.
  expect_records_identical(whole_records, chunk_records);
  EXPECT_EQ(whole.trust_message_total(), chunked.trust_message_total());
}

TEST(ScaleEngine, SharedAgentsAcrossDistinctPairsStayConsistent) {
  // Tiny network: every peer trusts mostly the same agents, so waves
  // exercise the shared-agent locking path heavily.
  const auto opts = fast_options(5, 32);
  const auto pairs = draw_pairs(5, opts.nodes, 64);

  HirepSystem serial(opts);
  HirepSystem parallel(opts);
  expect_records_identical(
      serial.run_transactions(pairs, Executor::serial()),
      parallel.run_transactions(pairs, Executor::parallel(4)));
}

TEST(ScaleEngine, ParallelRequiresInstantDelivery) {
  auto opts = fast_options(1, 64);
  opts.delivery.policy = net::DeliveryPolicyKind::kFaulty;
  HirepSystem system(opts);
  const std::vector<Pair> pairs = {{0, 1}};
  EXPECT_THROW(system.run_transactions(pairs, Executor::parallel()),
               std::invalid_argument);
  // Serial batched execution over a faulty transport is still legal.
  EXPECT_NO_THROW(system.run_transactions(pairs, Executor::serial()));
}

TEST(ScaleEngine, RejectsInvalidPairs) {
  HirepSystem system(fast_options(1, 64));
  const std::vector<Pair> self = {{3, 3}};
  EXPECT_THROW(system.run_transactions(self, {}), std::invalid_argument);
  const std::vector<Pair> oob = {{0, 64}};
  EXPECT_THROW(system.run_transactions(oob, {}), std::invalid_argument);
}

TEST(ScaleEngine, SerialEngineAdvancesSystemLikeLegacyLoop) {
  // The engine must leave the system in a usable state: records are sane
  // and the legacy single-transaction API still works afterwards.
  HirepSystem system(fast_options(9, 100));
  const auto pairs = draw_pairs(9, 100, 20);
  const auto records = system.run_transactions(pairs, Executor::parallel(2));
  ASSERT_EQ(records.size(), pairs.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].requestor, pairs[i].first);
    EXPECT_EQ(records[i].provider, pairs[i].second);
    EXPECT_GE(records[i].estimate, 0.0);
    EXPECT_LE(records[i].estimate, 1.0);
  }
  const auto after = system.run_transaction();
  EXPECT_NE(after.requestor, after.provider);
}

}  // namespace
}  // namespace hirep
