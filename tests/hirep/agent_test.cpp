#include "hirep/agent.hpp"

#include <gtest/gtest.h>

namespace hirep::core {
namespace {

struct AgentFixture : ::testing::Test {
  AgentFixture() : rng(1) {
    trust::WorldParams wp;
    wp.nodes = 16;
    wp.malicious_ratio = 0.0;
    wp.agent_capable_ratio = 1.0;
    truth = std::make_unique<trust::GroundTruth>(rng, wp);
    for (int i = 0; i < 3; ++i) {
      identities.push_back(crypto::Identity::generate(rng, 128));
    }
  }

  ReputationAgent make_agent(net::NodeIndex self, std::size_t min_reports = 1) {
    return ReputationAgent(&identities[0], self, truth.get(),
                           trust::ewma_model_factory(0.3), min_reports);
  }

  util::Rng rng;
  std::unique_ptr<trust::GroundTruth> truth;
  std::vector<crypto::Identity> identities;
};

TEST_F(AgentFixture, RegisterKeyEnforcesNodeIdBinding) {
  auto agent = make_agent(0);
  // Correct binding accepted.
  EXPECT_TRUE(agent.register_key(identities[1].node_id(),
                                 identities[1].signature_public()));
  // Forged binding (id of 1, key of 2) rejected.
  EXPECT_FALSE(agent.register_key(identities[1].node_id(),
                                  identities[2].signature_public()));
  EXPECT_EQ(agent.key_list_size(), 1u);
}

TEST_F(AgentFixture, LookupKeyFindsRegistered) {
  auto agent = make_agent(0);
  agent.register_key(identities[1].node_id(), identities[1].signature_public());
  const auto found = agent.lookup_key(identities[1].node_id());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, identities[1].signature_public());
  EXPECT_FALSE(agent.lookup_key(identities[2].node_id()).has_value());
}

TEST_F(AgentFixture, GoodAgentEvaluatesConsistently) {
  auto agent = make_agent(0);
  const net::NodeIndex subject = 5;
  const bool good = truth->trustable(subject);
  for (int i = 0; i < 20; ++i) {
    const double v =
        agent.trust_value(identities[1].node_id(), subject, rng);
    if (good) {
      EXPECT_GE(v, 0.6);
    } else {
      EXPECT_LE(v, 0.4);
    }
  }
}

TEST_F(AgentFixture, GoodAgentSwitchesToModelAfterReports) {
  auto agent = make_agent(0, /*min_reports=*/2);
  const auto subject_id = identities[1].node_id();
  const net::NodeIndex subject_ip = 5;
  agent.accept_report(subject_id, 1.0);
  EXPECT_EQ(agent.report_count(subject_id), 1u);
  // One report below the threshold: still own evaluation.
  agent.accept_report(subject_id, 1.0);
  EXPECT_EQ(agent.report_count(subject_id), 2u);
  // Now the model answers: EWMA of two 1.0 outcomes is exactly 1.0.
  EXPECT_DOUBLE_EQ(agent.trust_value(subject_id, subject_ip, rng), 1.0);
}

TEST_F(AgentFixture, PoorAgentIgnoresReportsAndInverts) {
  truth->set_malicious(0, true);
  auto agent = make_agent(0);
  const auto subject_id = identities[1].node_id();
  const net::NodeIndex subject_ip = 5;
  agent.accept_report(subject_id, 1.0);
  EXPECT_EQ(agent.report_count(subject_id), 0u);  // evidence dropped
  const bool good = truth->trustable(subject_ip);
  const double v = agent.trust_value(subject_id, subject_ip, rng);
  if (good) {
    EXPECT_LE(v, 0.4);  // inverted evaluation
  } else {
    EXPECT_GE(v, 0.6);
  }
}

TEST_F(AgentFixture, ReportsAccumulatePerSubject) {
  auto agent = make_agent(0);
  agent.accept_report(identities[1].node_id(), 1.0);
  agent.accept_report(identities[1].node_id(), 0.0);
  agent.accept_report(identities[2].node_id(), 1.0);
  EXPECT_EQ(agent.report_count(identities[1].node_id()), 2u);
  EXPECT_EQ(agent.report_count(identities[2].node_id()), 1u);
  EXPECT_EQ(agent.report_count(crypto::NodeId{}), 0u);
}

TEST_F(AgentFixture, IdentityAccessors) {
  auto agent = make_agent(3);
  EXPECT_EQ(agent.ip(), 3u);
  EXPECT_EQ(agent.node_id(), identities[0].node_id());
}

}  // namespace
}  // namespace hirep::core
