#include "hirep/discovery.hpp"

#include <gtest/gtest.h>

#include <map>

#include "net/topology.hpp"

namespace hirep::core {
namespace {

crypto::NodeId id_of(std::uint8_t tag) {
  crypto::NodeId id;
  id.bytes[0] = tag;
  return id;
}

AgentEntry entry_of(std::uint8_t tag, double weight) {
  AgentEntry e;
  e.agent_id = id_of(tag);
  e.weight = weight;
  return e;
}

TEST(RankAndSelect, EmptyInput) {
  util::Rng rng(1);
  EXPECT_TRUE(rank_and_select({}, 5, rng).empty());
  EXPECT_TRUE(rank_and_select({{entry_of(1, 1.0)}}, 0, rng).empty());
}

TEST(RankAndSelect, TopWeightsWin) {
  util::Rng rng(2);
  std::vector<std::vector<AgentEntry>> lists{
      {entry_of(1, 0.9), entry_of(2, 0.5), entry_of(3, 0.1)}};
  const auto selected = rank_and_select(lists, 2, rng);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].agent_id, id_of(1));
  EXPECT_EQ(selected[1].agent_id, id_of(2));
}

TEST(RankAndSelect, SelectedWeightResetToOne) {
  util::Rng rng(3);
  std::vector<std::vector<AgentEntry>> lists{{entry_of(1, 0.42)}};
  const auto selected = rank_and_select(lists, 1, rng);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_DOUBLE_EQ(selected[0].weight, 1.0);  // §3.4.3 initial expertise
}

TEST(RankAndSelect, MaxRankDefeatsBadMouthing) {
  // Agent 1 is top-ranked by one honest list; ten hostile lists rank it
  // at the bottom.  Max-rank keeps the honest rank, so agent 1 must still
  // be selected (§4.2.1: "the bad recommendation given by attackers will
  // be ignored").
  util::Rng rng(4);
  std::vector<std::vector<AgentEntry>> lists;
  lists.push_back({entry_of(1, 1.0), entry_of(2, 0.8)});
  for (int i = 0; i < 10; ++i) {
    lists.push_back({entry_of(3, 1.0), entry_of(4, 0.9), entry_of(1, 0.0)});
  }
  const auto selected = rank_and_select(lists, 2, rng, RankingRule::kMaxRank);
  bool has_agent1 = false;
  for (const auto& e : selected) has_agent1 |= (e.agent_id == id_of(1));
  EXPECT_TRUE(has_agent1);
}

TEST(RankAndSelect, MeanRankVulnerableToBadMouthing) {
  // The same scenario under mean-rank: the hostile lists drag agent 1's
  // average down and it loses its slot — the ablation contrast.
  util::Rng rng(5);
  std::vector<std::vector<AgentEntry>> lists;
  lists.push_back({entry_of(1, 1.0), entry_of(2, 0.8)});
  for (int i = 0; i < 10; ++i) {
    lists.push_back({entry_of(3, 1.0), entry_of(4, 0.9), entry_of(1, 0.0)});
  }
  const auto selected = rank_and_select(lists, 2, rng, RankingRule::kMeanRank);
  bool has_agent1 = false;
  for (const auto& e : selected) has_agent1 |= (e.agent_id == id_of(1));
  EXPECT_FALSE(has_agent1);
}

TEST(RankAndSelect, BallotStuffingNoBetterThanOneVote) {
  // Multiple max-weight recommendations for the same agent have the same
  // effect as a single one under max-rank (§4.2.1).
  util::Rng rng(6);
  std::vector<std::vector<AgentEntry>> once{{entry_of(1, 1.0)}};
  std::vector<std::vector<AgentEntry>> stuffed(20, {entry_of(1, 1.0)});
  const auto a = rank_and_select(once, 3, rng);
  const auto b = rank_and_select(stuffed, 3, rng);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].agent_id, b[0].agent_id);
}

TEST(RankAndSelect, SumRankRewardsBallotStuffing) {
  // Contrast: sum-rank lets 5 hostile duplicate lists outrank an honest
  // top recommendation.
  util::Rng rng(7);
  std::vector<std::vector<AgentEntry>> lists;
  lists.push_back({entry_of(1, 1.0), entry_of(2, 0.1)});
  for (int i = 0; i < 5; ++i) lists.push_back({entry_of(2, 1.0)});
  const auto selected = rank_and_select(lists, 1, rng, RankingRule::kSumRank);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].agent_id, id_of(2));
}

TEST(RankAndSelect, AgentsBeyondTopNGetRankZero) {
  // A list longer than `want`: entries past position `want` contribute
  // rank 0 and are never selected over ranked ones.
  util::Rng rng(8);
  std::vector<std::vector<AgentEntry>> lists{
      {entry_of(1, 0.9), entry_of(2, 0.8), entry_of(3, 0.7), entry_of(4, 0.6)}};
  const auto selected = rank_and_select(lists, 2, rng);
  ASSERT_EQ(selected.size(), 2u);
  for (const auto& e : selected) {
    EXPECT_TRUE(e.agent_id == id_of(1) || e.agent_id == id_of(2));
  }
}

TEST(RankAndSelect, TieBreaksAreRandom) {
  // Four equally ranked agents, pick one: over many trials each should be
  // chosen sometimes.
  std::map<std::uint8_t, int> wins;
  for (int trial = 0; trial < 200; ++trial) {
    util::Rng rng(static_cast<std::uint64_t>(trial) + 100);
    std::vector<std::vector<AgentEntry>> lists{{entry_of(1, 0.5)},
                                               {entry_of(2, 0.5)},
                                               {entry_of(3, 0.5)},
                                               {entry_of(4, 0.5)}};
    const auto selected = rank_and_select(lists, 1, rng);
    ASSERT_EQ(selected.size(), 1u);
    ++wins[selected[0].agent_id.bytes[0]];
  }
  EXPECT_EQ(wins.size(), 4u);
  for (const auto& [tag, count] : wins) EXPECT_GT(count, 10) << int(tag);
}

TEST(CollectAgentLists, GathersFromConsumers) {
  net::Overlay overlay(net::ring_lattice(30, 2), net::LatencyParams{}, 1);
  net::Transport transport(&overlay, net::DeliveryConfig{}, 1);
  util::Rng rng(9);
  const auto collected = collect_agent_lists(
      transport, rng, 0, 6, 10, [](net::NodeIndex v) {
        std::vector<AgentEntry> list;
        if (v % 3 == 0) list.push_back(entry_of(static_cast<std::uint8_t>(v), 1.0));
        return list;
      });
  EXPECT_LE(collected.size(), 6u);
  EXPECT_GE(collected.size(), 1u);
  for (const auto& c : collected) {
    EXPECT_EQ(c.responder % 3, 0u);
    EXPECT_EQ(c.entries.size(), 1u);
  }
}

TEST(CollectAgentLists, EmptyWhenNobodyHasLists) {
  net::Overlay overlay(net::ring_lattice(10, 1), net::LatencyParams{}, 2);
  net::Transport transport(&overlay, net::DeliveryConfig{}, 2);
  util::Rng rng(10);
  const auto collected = collect_agent_lists(
      transport, rng, 0, 5, 5,
      [](net::NodeIndex) { return std::vector<AgentEntry>{}; });
  EXPECT_TRUE(collected.empty());
}

}  // namespace
}  // namespace hirep::core
