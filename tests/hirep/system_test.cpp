#include "hirep/system.hpp"

#include <gtest/gtest.h>

namespace hirep::core {
namespace {

HirepOptions small_options(CryptoMode mode = CryptoMode::kFull) {
  HirepOptions o;
  o.nodes = 64;
  o.rsa_bits = 64;
  o.trusted_agents = 5;
  o.onion_relays = 3;
  o.crypto = mode;
  o.seed = 11;
  o.world.malicious_ratio = 0.0;
  return o;
}

TEST(HirepSystem, BootstrapInvariants) {
  HirepSystem sys(small_options());
  EXPECT_EQ(sys.node_count(), 64u);
  EXPECT_GT(sys.agent_count(), 5u);
  EXPECT_TRUE(sys.overlay().graph().connected());
  // Every node has an identity with a consistent reverse mapping.
  for (net::NodeIndex v = 0; v < 64; ++v) {
    const auto ip = sys.ip_of(sys.identities()[v].node_id());
    ASSERT_TRUE(ip.has_value());
    EXPECT_EQ(*ip, v);
  }
}

TEST(HirepSystem, PeersSelectedAgentsAreRealAgents) {
  HirepSystem sys(small_options());
  for (net::NodeIndex v = 0; v < 64; ++v) {
    for (const auto& entry : sys.peer(v).agents().entries()) {
      const auto ip = sys.ip_of(entry.agent_id);
      ASSERT_TRUE(ip.has_value());
      EXPECT_NE(sys.agent_at(*ip), nullptr)
          << "peer " << v << " trusts non-agent node " << *ip;
      // A peer never selects itself.
      EXPECT_NE(*ip, v);
      // The entry's key matches its id (self-certification).
      EXPECT_EQ(crypto::NodeId::of_key(entry.agent_key), entry.agent_id);
    }
  }
}

TEST(HirepSystem, MostPeersFindAgents) {
  HirepSystem sys(small_options());
  std::size_t with_agents = 0;
  for (net::NodeIndex v = 0; v < 64; ++v) {
    with_agents += sys.peer(v).agents().size() > 0;
  }
  EXPECT_GT(with_agents, 55u);
}

TEST(HirepSystem, QueryReturnsRatingsFromAgents) {
  HirepSystem sys(small_options());
  const auto q = sys.query_trust(0, 5);
  EXPECT_EQ(q.ratings.size(), sys.peer(0).agents().size());
  for (const auto& r : q.ratings) {
    EXPECT_GE(r.value, 0.0);
    EXPECT_LE(r.value, 1.0);
    EXPECT_GT(r.weight, 0.0);
  }
}

TEST(HirepSystem, QueryEstimateTracksTruthWithHonestAgents) {
  HirepSystem sys(small_options());
  // With zero malicious nodes every rating is on the correct side.
  for (net::NodeIndex subject = 1; subject < 20; ++subject) {
    const auto q = sys.query_trust(0, subject);
    if (q.ratings.empty()) continue;
    if (sys.truth().trustable(subject)) {
      EXPECT_GT(q.estimate, 0.5);
    } else {
      EXPECT_LT(q.estimate, 0.5);
    }
  }
}

TEST(HirepSystem, TransactionSpendsExactlyThreeLegsPerResponder) {
  auto opts = small_options();
  HirepSystem sys(opts);
  const auto rec = sys.run_transaction(3, 9);
  const auto per_leg = opts.onion_relays + 1;
  EXPECT_EQ(rec.trust_messages, 3 * per_leg * rec.responses);
}

TEST(HirepSystem, TransactionRecordsTruthfulOutcome) {
  HirepSystem sys(small_options());
  for (int i = 0; i < 10; ++i) {
    const auto rec = sys.run_transaction();
    EXPECT_EQ(rec.outcome, sys.truth().true_trust(rec.provider));
    EXPECT_EQ(rec.truth_value, sys.truth().true_trust(rec.provider));
    EXPECT_NE(rec.requestor, rec.provider);
  }
}

TEST(HirepSystem, MaliciousAgentsGetEvicted) {
  auto opts = small_options(CryptoMode::kFast);
  opts.nodes = 128;
  opts.world.malicious_ratio = 0.3;
  HirepSystem sys(opts);

  // Count malicious agents on peer 0's list before and after training.
  auto malicious_on_list = [&](net::NodeIndex peer) {
    std::size_t count = 0;
    for (const auto& e : sys.peer(peer).agents().entries()) {
      const auto ip = sys.ip_of(e.agent_id);
      if (ip && sys.truth().poor_evaluator(*ip)) ++count;
    }
    return count;
  };
  const auto before = malicious_on_list(0);
  for (int i = 0; i < 30; ++i) {
    sys.run_transaction(0, static_cast<net::NodeIndex>(1 + i % 100));
  }
  const auto after = malicious_on_list(0);
  EXPECT_LE(after, before);
  EXPECT_LE(after, 1u);  // wrong-on-every-transaction agents cannot survive
}

TEST(HirepSystem, OfflineAgentMovesToBackupOnQuery) {
  HirepSystem sys(small_options(CryptoMode::kFast));
  auto& list = sys.peer(0).agents();
  ASSERT_GT(list.size(), 0u);
  const auto victim = list.entries()[0].agent_id;
  const auto victim_ip = *sys.ip_of(victim);
  sys.set_agent_online(victim_ip, false);
  const auto size_before = list.size();
  sys.query_trust(0, 7);
  EXPECT_EQ(list.size(), size_before - 1);
  EXPECT_GE(list.backup_size(), 1u);
  EXPECT_FALSE(list.contains(victim));
}

TEST(HirepSystem, RefillRestoresBackupAgentWhenOnlineAgain) {
  auto opts = small_options(CryptoMode::kFast);
  HirepSystem sys(opts);
  auto& list = sys.peer(0).agents();
  ASSERT_GT(list.size(), 0u);
  const auto victim = list.entries()[0].agent_id;
  const auto victim_ip = *sys.ip_of(victim);
  sys.set_agent_online(victim_ip, false);
  sys.query_trust(0, 7);  // moves to backup
  sys.set_agent_online(victim_ip, true);
  sys.refill(0);
  EXPECT_TRUE(list.contains(victim));
}

TEST(HirepSystem, SetAgentOnlineRejectsNonAgents) {
  HirepSystem sys(small_options(CryptoMode::kFast));
  net::NodeIndex non_agent = 0;
  while (sys.agent_at(non_agent) != nullptr) ++non_agent;
  EXPECT_THROW(sys.set_agent_online(non_agent, false), std::invalid_argument);
  EXPECT_FALSE(sys.agent_online(non_agent));
}

TEST(HirepSystem, ShareableListPrefersOwnList) {
  HirepSystem sys(small_options(CryptoMode::kFast));
  net::NodeIndex peer_with_list = 0;
  while (sys.peer(peer_with_list).agents().size() == 0) ++peer_with_list;
  const auto shared = sys.shareable_list(peer_with_list);
  EXPECT_EQ(shared.size(), sys.peer(peer_with_list).agents().size());
}

TEST(HirepSystem, TrustMessageTotalGrowsMonotonically) {
  HirepSystem sys(small_options(CryptoMode::kFast));
  const auto t0 = sys.trust_message_total();
  sys.run_transaction();
  const auto t1 = sys.trust_message_total();
  EXPECT_GT(t1, t0);
}

TEST(HirepSystem, MultiCandidateSelectionPicksTrustworthyProvider) {
  auto opts = small_options(CryptoMode::kFast);
  opts.nodes = 128;
  opts.provider_candidates = 4;
  HirepSystem sys(opts);
  // Train a little so estimates are meaningful, then check the chosen
  // providers are mostly trustable.
  std::size_t good = 0, total = 0;
  for (int i = 0; i < 40; ++i) {
    const auto rec = sys.run_transaction();
    good += sys.truth().trustable(rec.provider);
    ++total;
  }
  // Random choice would give ~50%; candidate selection should do better.
  EXPECT_GT(static_cast<double>(good) / static_cast<double>(total), 0.6);
}

TEST(HirepSystem, RejectsDegenerateWorlds) {
  HirepOptions o = small_options();
  o.nodes = 4;
  EXPECT_THROW(HirepSystem{o}, std::invalid_argument);
}

}  // namespace
}  // namespace hirep::core
