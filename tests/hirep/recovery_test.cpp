// §3.4.3 failover hardening: the suspicion ladder shared across
// requestors, quarantine entry and its probe-only exit, the backup-cache
// promotion path, and graceful degradation to first-hand trust under a
// live-rating quorum.
#include <gtest/gtest.h>

#include <vector>

#include "check/check.hpp"
#include "hirep/system.hpp"

namespace hirep::core {
namespace {

HirepOptions small_options() {
  HirepOptions o;
  o.nodes = 64;
  o.rsa_bits = 64;
  o.trusted_agents = 5;
  o.onion_relays = 3;
  o.crypto = CryptoMode::kFast;
  o.seed = 11;
  o.world.malicious_ratio = 0.0;
  return o;
}

/// Peers whose trusted list holds `agent_id` (excluding the agent itself).
std::vector<net::NodeIndex> requestors_of(HirepSystem& sys,
                                          const crypto::NodeId& agent_id) {
  std::vector<net::NodeIndex> out;
  for (net::NodeIndex v = 0; v < sys.node_count(); ++v) {
    if (sys.peer(v).node_id() == agent_id) continue;
    if (sys.peer(v).agents().contains(agent_id)) out.push_back(v);
  }
  return out;
}

/// An agent listed by at least `min_requestors` distinct peers, with its
/// overlay index and those peers.
struct SharedAgent {
  crypto::NodeId id;
  net::NodeIndex ip = net::kInvalidNode;
  std::vector<net::NodeIndex> requestors;
};
SharedAgent find_shared_agent(HirepSystem& sys, std::size_t min_requestors) {
  for (net::NodeIndex v = 0; v < sys.node_count(); ++v) {
    for (const auto& entry : sys.peer(v).agents().entries()) {
      auto reqs = requestors_of(sys, entry.agent_id);
      if (reqs.size() >= min_requestors) {
        return {entry.agent_id, *sys.ip_of(entry.agent_id), std::move(reqs)};
      }
    }
  }
  return {};
}

net::NodeIndex subject_other_than(const HirepSystem& sys, net::NodeIndex a,
                                  net::NodeIndex b) {
  for (net::NodeIndex v = 0; v < sys.node_count(); ++v) {
    if (v != a && v != b) return v;
  }
  return net::kInvalidNode;
}

TEST(Recovery, SharedSuspicionCrossesTheThresholdAndQuarantines) {
  HirepOptions o = small_options();
  o.recovery.suspicion_threshold = 2;
  HirepSystem sys(o);
  const auto shared = find_shared_agent(sys, 2);
  ASSERT_NE(shared.ip, net::kInvalidNode);

  sys.set_agent_online(shared.ip, false);
  const auto subject = subject_other_than(sys, shared.requestors[0], shared.ip);
  sys.query_trust(shared.requestors[0], subject);
  EXPECT_FALSE(sys.agent_quarantined(shared.ip));  // one strike, not two
  EXPECT_GE(sys.recovery_counters().suspicions, 1u);

  // A second requestor's failed exchange crosses the shared threshold.
  sys.query_trust(shared.requestors[1],
                  subject_other_than(sys, shared.requestors[1], shared.ip));
  EXPECT_TRUE(sys.agent_quarantined(shared.ip));
  EXPECT_GE(sys.recovery_counters().quarantines, 1u);
}

TEST(Recovery, SuccessfulExchangeResetsTheSuspicionLadder) {
  HirepOptions o = small_options();
  o.recovery.suspicion_threshold = 2;
  HirepSystem sys(o);
  const auto shared = find_shared_agent(sys, 3);
  ASSERT_NE(shared.ip, net::kInvalidNode);
  ASSERT_GE(shared.requestors.size(), 3u);

  // Strike one while the agent is down...
  sys.set_agent_online(shared.ip, false);
  sys.query_trust(shared.requestors[0],
                  subject_other_than(sys, shared.requestors[0], shared.ip));
  ASSERT_FALSE(sys.agent_quarantined(shared.ip));

  // ...then a successful exchange wipes the ladder clean...
  sys.set_agent_online(shared.ip, true);
  sys.query_trust(shared.requestors[1],
                  subject_other_than(sys, shared.requestors[1], shared.ip));

  // ...so a later single failure is strike one again, not strike two.
  sys.set_agent_online(shared.ip, false);
  sys.query_trust(shared.requestors[2],
                  subject_other_than(sys, shared.requestors[2], shared.ip));
  EXPECT_FALSE(sys.agent_quarantined(shared.ip));
}

TEST(Recovery, QuarantinedAgentIsNeverContacted) {
  HirepSystem sys(small_options());
  const auto shared = find_shared_agent(sys, 1);
  ASSERT_NE(shared.ip, net::kInvalidNode);
  const auto r = shared.requestors[0];
  const std::size_t listed = sys.peer(r).agents().size();
  ASSERT_GE(listed, 1u);

  sys.quarantine_agent(shared.ip);  // agent itself stays online
  const auto before =
      sys.transport().envelopes().of(net::EnvelopeType::kTrustRequest).sent;
  const auto result =
      sys.query_trust(r, subject_other_than(sys, r, shared.ip));
  const auto after =
      sys.transport().envelopes().of(net::EnvelopeType::kTrustRequest).sent;

  // The community has given up: no request even leaves the requestor for
  // the quarantined agent, while every other listed agent is still asked.
  EXPECT_EQ(after - before, listed - 1);
  EXPECT_EQ(result.ratings.size(), listed - 1);
}

TEST(Recovery, QuarantineSurvivesRestartUntilProbed) {
  HirepOptions o = small_options();
  o.recovery.suspicion_threshold = 1;
  HirepSystem sys(o);
  const auto shared = find_shared_agent(sys, 1);
  ASSERT_NE(shared.ip, net::kInvalidNode);
  const auto r = shared.requestors[0];

  sys.set_agent_online(shared.ip, false);
  sys.query_trust(r, subject_other_than(sys, r, shared.ip));
  ASSERT_TRUE(sys.agent_quarantined(shared.ip));
  ASSERT_FALSE(sys.peer(r).agents().contains(shared.id));

  // Refill while the agent is still dark: the probe reaches the node but
  // finds no live agent, so the quarantine stands and the list refills
  // from discovery — which must skip the quarantined agent (the
  // hirep.quarantine.fresh_probe gate stays silent throughout).
  check::ScopedCapture capture;
  sys.refill(r);
  EXPECT_TRUE(sys.agent_quarantined(shared.ip));
  EXPECT_FALSE(sys.peer(r).agents().contains(shared.id));
  EXPECT_EQ(capture.count(), 0u);

  // A bare restart is not fresh evidence either: still quarantined.
  sys.set_agent_online(shared.ip, true);
  EXPECT_TRUE(sys.agent_quarantined(shared.ip));
}

TEST(Recovery, FreshProbeLiftsQuarantineAndPromotesTheBackup) {
  HirepOptions o = small_options();
  o.recovery.suspicion_threshold = 1;
  HirepSystem sys(o);
  const auto shared = find_shared_agent(sys, 1);
  ASSERT_NE(shared.ip, net::kInvalidNode);
  const auto r = shared.requestors[0];

  sys.set_agent_online(shared.ip, false);
  sys.query_trust(r, subject_other_than(sys, r, shared.ip));
  ASSERT_TRUE(sys.agent_quarantined(shared.ip));
  ASSERT_GE(sys.peer(r).agents().backup_size(), 1u);

  sys.set_agent_online(shared.ip, true);
  check::ScopedCapture capture;
  sys.refill(r);
  // The delivered probe to the live agent is exactly the fresh evidence
  // that lifts the quarantine and readmits the backup entry.
  EXPECT_FALSE(sys.agent_quarantined(shared.ip));
  EXPECT_TRUE(sys.peer(r).agents().contains(shared.id));
  EXPECT_GE(sys.recovery_counters().probations_cleared, 1u);
  EXPECT_GE(sys.recovery_counters().backup_promotions, 1u);
  EXPECT_EQ(capture.count(), 0u);  // probe-backed admission passes the gate
}

TEST(Recovery, BelowQuorumQueryDegradesToFirstHandTrust) {
  HirepOptions o = small_options();
  o.recovery.min_quorum = o.nodes;  // unreachable: every query degrades
  HirepSystem sys(o);
  const auto shared = find_shared_agent(sys, 1);
  ASSERT_NE(shared.ip, net::kInvalidNode);
  const auto r = shared.requestors[0];

  const auto result = sys.query_trust(r, subject_other_than(sys, r, shared.ip));
  EXPECT_TRUE(result.degraded);
  EXPECT_GE(sys.recovery_counters().degraded_queries, 1u);
  EXPECT_GE(result.estimate, 0.0);
  EXPECT_LE(result.estimate, 1.0);
}

TEST(Recovery, QuorumZeroDisablesDegradation) {
  HirepSystem sys(small_options());  // min_quorum defaults to 0
  const auto shared = find_shared_agent(sys, 1);
  ASSERT_NE(shared.ip, net::kInvalidNode);
  const auto r = shared.requestors[0];

  // Even a total blackout produces an undegraded (neutral) estimate.
  for (const auto& entry : sys.peer(r).agents().entries()) {
    sys.set_agent_online(*sys.ip_of(entry.agent_id), false);
  }
  const auto result = sys.query_trust(r, subject_other_than(sys, r, shared.ip));
  EXPECT_TRUE(result.ratings.empty());
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(sys.recovery_counters().degraded_queries, 0u);
}

TEST(Recovery, QuarantineHookValidatesAndCountsOnce) {
  HirepSystem sys(small_options());
  const auto shared = find_shared_agent(sys, 1);
  ASSERT_NE(shared.ip, net::kInvalidNode);

  sys.quarantine_agent(shared.ip);
  sys.quarantine_agent(shared.ip);  // idempotent: one tally
  EXPECT_TRUE(sys.agent_quarantined(shared.ip));
  EXPECT_EQ(sys.recovery_counters().quarantines, 1u);

  // Non-agent nodes are rejected outright.
  net::NodeIndex non_agent = net::kInvalidNode;
  for (net::NodeIndex v = 0; v < sys.node_count(); ++v) {
    if (sys.agent_at(v) == nullptr) {
      non_agent = v;
      break;
    }
  }
  ASSERT_NE(non_agent, net::kInvalidNode);
  EXPECT_THROW(sys.quarantine_agent(non_agent), std::invalid_argument);
}

}  // namespace
}  // namespace hirep::core
