// core::Executor — the unified execution policy: named constructors,
// name/mode round-trips, and validate() as the single gate (nonsense
// rejection + environment-driven downgrade to serial).
#include <stdexcept>

#include <gtest/gtest.h>

#include "hirep/execution.hpp"

namespace hirep::core {
namespace {

TEST(Executor, NamedConstructorsSetTheObviousFields) {
  EXPECT_EQ(Executor::serial().mode, ExecutionMode::kSerial);
  EXPECT_FALSE(Executor::serial().concurrent());

  const Executor par = Executor::parallel(6);
  EXPECT_EQ(par.mode, ExecutionMode::kParallel);
  EXPECT_EQ(par.threads, 6u);
  EXPECT_TRUE(par.concurrent());

  const Executor sh = Executor::sharded(4, 2);
  EXPECT_EQ(sh.mode, ExecutionMode::kSharded);
  EXPECT_EQ(sh.shards, 4u);
  EXPECT_EQ(sh.threads, 2u);
  EXPECT_TRUE(sh.concurrent());

  // The default matches the old ExecutionPolicy default: parallel, 0 =
  // hardware threads.
  EXPECT_EQ(Executor{}.mode, ExecutionMode::kParallel);
  EXPECT_EQ(Executor{}.threads, 0u);
}

TEST(Executor, ModeNamesRoundTrip) {
  for (ExecutionMode mode : {ExecutionMode::kSerial, ExecutionMode::kParallel,
                             ExecutionMode::kSharded}) {
    const auto back = execution_mode_by_name(to_string(mode));
    ASSERT_TRUE(back.has_value()) << to_string(mode);
    EXPECT_EQ(*back, mode);
  }
  EXPECT_FALSE(execution_mode_by_name("bogus").has_value());
  EXPECT_FALSE(execution_mode_by_name("").has_value());
  EXPECT_FALSE(execution_mode_by_name("Parallel").has_value());  // exact match
}

TEST(ExecutorValidate, PassesThroughUnderInstantDelivery) {
  const Executor::Environment instant;  // defaults: instant, no chaos
  const Executor resolved = Executor::sharded(4, 2).validate(instant);
  EXPECT_EQ(resolved.mode, ExecutionMode::kSharded);
  EXPECT_EQ(resolved.shards, 4u);
  EXPECT_EQ(resolved.threads, 2u);
  EXPECT_EQ(Executor::parallel().validate(instant).mode,
            ExecutionMode::kParallel);
  EXPECT_EQ(Executor::serial().validate(instant).mode, ExecutionMode::kSerial);
}

TEST(ExecutorValidate, DowngradesConcurrentEnginesToSerial) {
  Executor::Environment lossy;
  lossy.instant_delivery = false;
  Executor::Environment chaotic;
  chaotic.chaos = true;

  for (const auto& env : {lossy, chaotic}) {
    for (const Executor exec :
         {Executor::parallel(4), Executor::sharded(4, 2)}) {
      const Executor resolved = exec.validate(env);
      EXPECT_EQ(resolved.mode, ExecutionMode::kSerial);
      EXPECT_EQ(resolved.shards, 0u);  // shard knob cleared with the mode
    }
    // Serial stays serial — nothing to downgrade.
    EXPECT_EQ(Executor::serial().validate(env).mode, ExecutionMode::kSerial);
  }
}

TEST(ExecutorValidate, RejectsWrappedNegativesAndMisplacedShardKnob) {
  const Executor::Environment env;
  EXPECT_THROW(Executor::parallel(5000).validate(env), std::invalid_argument);
  EXPECT_THROW(Executor::sharded(5000).validate(env), std::invalid_argument);
  Executor window = Executor::parallel();
  window.wave_window = 2'000'000'000;
  EXPECT_THROW(window.validate(env), std::invalid_argument);

  // shards on a non-sharded engine is a configuration error, not a silent
  // ignore.
  Executor misplaced = Executor::parallel();
  misplaced.shards = 4;
  EXPECT_THROW(misplaced.validate(env), std::invalid_argument);

  // Boundary values stay legal.
  EXPECT_NO_THROW(Executor::parallel(4096).validate(env));
  EXPECT_NO_THROW(Executor::sharded(4096).validate(env));
}

}  // namespace
}  // namespace hirep::core
