#include "hirep/protocol.hpp"

#include <gtest/gtest.h>

namespace hirep::core {
namespace {

struct ProtocolFixture : ::testing::Test {
  ProtocolFixture()
      : rng(1),
        peer(crypto::Identity::generate(rng, 128)),
        agent(crypto::Identity::generate(rng, 128)),
        subject(crypto::Identity::generate(rng, 128)) {}

  onion::Onion dummy_onion(const crypto::Identity& owner, std::uint64_t sq) {
    return onion::build_onion(rng, owner, 3, {}, sq);
  }

  util::Rng rng;
  crypto::Identity peer;
  crypto::Identity agent;
  crypto::Identity subject;
};

TEST_F(ProtocolFixture, TrustRequestRoundTrip) {
  const std::uint64_t nonce = 12345;
  const auto req =
      build_trust_request(rng, agent.signature_public(), peer,
                          subject.node_id(), nonce, dummy_onion(peer, 1));
  const auto opened = open_trust_request(agent, req);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->subject, subject.node_id());
  EXPECT_EQ(opened->nonce, nonce);
  EXPECT_EQ(req.sp_p, peer.signature_public());
}

TEST_F(ProtocolFixture, TrustRequestUnreadableByOthers) {
  const auto req =
      build_trust_request(rng, agent.signature_public(), peer,
                          subject.node_id(), 1, dummy_onion(peer, 1));
  // Only the agent's private key opens it — voter privacy vs third parties.
  EXPECT_FALSE(open_trust_request(peer, req).has_value());
  EXPECT_FALSE(open_trust_request(subject, req).has_value());
}

TEST_F(ProtocolFixture, TrustRequestSerializationRoundTrip) {
  const auto req =
      build_trust_request(rng, agent.signature_public(), peer,
                          subject.node_id(), 7, dummy_onion(peer, 2));
  const auto restored = TrustValueRequest::deserialize(req.serialize());
  ASSERT_TRUE(restored.has_value());
  const auto opened = open_trust_request(agent, *restored);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->nonce, 7u);
  EXPECT_TRUE(onion::verify_onion(restored->reply_onion));
}

TEST_F(ProtocolFixture, TrustResponseRoundTrip) {
  const auto resp = build_trust_response(rng, peer.signature_public(), agent,
                                         0.85, 99, dummy_onion(agent, 1));
  const auto opened = open_trust_response(peer, resp);
  ASSERT_TRUE(opened.has_value());
  EXPECT_DOUBLE_EQ(opened->value, 0.85);
  EXPECT_EQ(opened->nonce, 99u);
  EXPECT_EQ(resp.sp_e, agent.signature_public());
}

TEST_F(ProtocolFixture, TrustResponseUnreadableByOthers) {
  const auto resp = build_trust_response(rng, peer.signature_public(), agent,
                                         0.85, 99, dummy_onion(agent, 1));
  EXPECT_FALSE(open_trust_response(agent, resp).has_value());
}

TEST_F(ProtocolFixture, TrustResponseSerializationRoundTrip) {
  const auto resp = build_trust_response(rng, peer.signature_public(), agent,
                                         0.25, 5, dummy_onion(agent, 3));
  const auto restored = TrustValueResponse::deserialize(resp.serialize());
  ASSERT_TRUE(restored.has_value());
  const auto opened = open_trust_response(peer, *restored);
  ASSERT_TRUE(opened.has_value());
  EXPECT_DOUBLE_EQ(opened->value, 0.25);
}

TEST_F(ProtocolFixture, ReportSignedAndVerifiable) {
  const auto report = build_report(peer, subject.node_id(), 1.0, 42);
  EXPECT_EQ(report.reporter, peer.node_id());
  const auto opened = verify_report(peer.signature_public(), report);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->subject, subject.node_id());
  EXPECT_DOUBLE_EQ(opened->outcome, 1.0);
  EXPECT_EQ(opened->nonce, 42u);
}

TEST_F(ProtocolFixture, ReportRejectsWrongVerificationKey) {
  const auto report = build_report(peer, subject.node_id(), 1.0, 42);
  // §3.5.3: the agent locates SP_p by nodeId; a mismatched key must fail.
  EXPECT_FALSE(verify_report(agent.signature_public(), report).has_value());
}

TEST_F(ProtocolFixture, ReportRejectsTamperedBody) {
  auto report = build_report(peer, subject.node_id(), 1.0, 42);
  report.body[report.body.size() - 1] ^= 0x01;
  EXPECT_FALSE(verify_report(peer.signature_public(), report).has_value());
}

TEST_F(ProtocolFixture, ReportRejectsTamperedSignature) {
  auto report = build_report(peer, subject.node_id(), 1.0, 42);
  report.signature[0] ^= 0x01;
  EXPECT_FALSE(verify_report(peer.signature_public(), report).has_value());
}

TEST_F(ProtocolFixture, ReportSerializationRoundTrip) {
  const auto report = build_report(peer, subject.node_id(), 0.0, 3);
  const auto restored = TransactionReport::deserialize(report.serialize());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->reporter, peer.node_id());
  EXPECT_TRUE(verify_report(peer.signature_public(), *restored).has_value());
}

TEST_F(ProtocolFixture, DeserializeRejectsGarbage) {
  const util::Bytes junk{1, 2, 3, 4};
  EXPECT_FALSE(TrustValueRequest::deserialize(junk).has_value());
  EXPECT_FALSE(TrustValueResponse::deserialize(junk).has_value());
  EXPECT_FALSE(TransactionReport::deserialize(junk).has_value());
}

TEST_F(ProtocolFixture, IdentitySpoofImpossible) {
  // The §4.2.2 spoofing scenario at protocol level: the "attacker" (agent
  // identity here) builds a report and stamps the peer's nodeId on it.
  auto forged = build_report(agent, subject.node_id(), 1.0, 9);
  forged.reporter = peer.node_id();
  // Verification against the claimed reporter's key fails.
  EXPECT_FALSE(verify_report(peer.signature_public(), forged).has_value());
}

}  // namespace
}  // namespace hirep::core
