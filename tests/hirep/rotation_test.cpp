// §3.5 key rotation in a live system: the peer keeps its reputation
// standing under its new self-certified identifier.
#include <gtest/gtest.h>

#include "hirep/system.hpp"

namespace hirep::core {
namespace {

HirepOptions options(CryptoMode mode) {
  HirepOptions o;
  o.nodes = 64;
  o.rsa_bits = 64;
  o.trusted_agents = 5;
  o.onion_relays = 2;
  o.crypto = mode;
  o.seed = 13;
  o.world.malicious_ratio = 0.0;
  return o;
}

class RotationSweep : public ::testing::TestWithParam<CryptoMode> {};

TEST_P(RotationSweep, NodeIdChangesAndMappingFollows) {
  HirepSystem sys(options(GetParam()));
  const auto old_id = sys.peer(3).node_id();
  const auto new_id = sys.rotate_peer_key(3);
  EXPECT_NE(new_id, old_id);
  EXPECT_EQ(sys.peer(3).node_id(), new_id);
  EXPECT_EQ(sys.ip_of(new_id), 3u);
  EXPECT_FALSE(sys.ip_of(old_id).has_value());
}

TEST_P(RotationSweep, AgentsMigrateKeyListEntries) {
  HirepSystem sys(options(GetParam()));
  // A transaction registers peer 3's key with its agents.
  sys.run_transaction(3, 20);
  const auto old_id = sys.peer(3).node_id();
  const auto new_id = sys.rotate_peer_key(3);

  std::size_t migrated = 0, stale = 0;
  for (const auto& entry : sys.peer(3).agents().entries()) {
    const auto ip = sys.ip_of(entry.agent_id);
    if (!ip) continue;
    auto* agent = sys.agent_at(*ip);
    migrated += agent->lookup_key(new_id).has_value();
    stale += agent->lookup_key(old_id).has_value();
  }
  EXPECT_GT(migrated, 0u);
  EXPECT_EQ(stale, 0u);
}

TEST_P(RotationSweep, ReputationEvidenceFollowsSubject) {
  HirepSystem sys(options(GetParam()));
  // Build up reports about provider 20 at peer 3's agents.
  for (int i = 0; i < 3; ++i) sys.run_transaction(3, 20);
  // Provider 20 must itself have its key registered with the agents that
  // hold evidence about it, for the announcement to migrate it.  Let 20
  // transact so its key spreads (20's agents may differ from 3's, so
  // migrate only where known — the test checks total evidence survives
  // where the key was known).
  const auto old_subject = sys.identities()[20].node_id();
  auto evidence_under = [&](const crypto::NodeId& id) {
    std::size_t n = 0;
    for (const auto& entry : sys.peer(3).agents().entries()) {
      const auto ip = sys.ip_of(entry.agent_id);
      if (ip) n += sys.agent_at(*ip)->report_count(id);
    }
    return n;
  };
  const auto before = evidence_under(old_subject);
  ASSERT_GT(before, 0u);

  // 20 registers with 3's agents by the reports naming it?  Reports name
  // the subject but do not register its key; register directly (as a
  // trust request from 20 would).
  for (const auto& entry : sys.peer(3).agents().entries()) {
    const auto ip = sys.ip_of(entry.agent_id);
    if (ip) {
      sys.agent_at(*ip)->register_key(old_subject,
                                      sys.identities()[20].signature_public());
    }
  }
  // 20 rotates; but its own trusted agents differ from 3's.  Deliver the
  // announcement manually to 3's agents (a real peer announces to every
  // party that knows it; the system API covers its own agents).
  const auto new_subject = sys.rotate_peer_key(20);
  EXPECT_EQ(evidence_under(new_subject) + evidence_under(old_subject), before);
}

TEST_P(RotationSweep, TransactionsContinueAfterRotation) {
  HirepSystem sys(options(GetParam()));
  sys.run_transaction(3, 20);
  sys.rotate_peer_key(3);
  const auto rec = sys.run_transaction(3, 21);
  EXPECT_GT(rec.responses, 0u);
  EXPECT_EQ(rec.trust_messages,
            3 * (sys.options().onion_relays + 1) * rec.responses);
}

TEST_P(RotationSweep, RepeatedRotations) {
  HirepSystem sys(options(GetParam()));
  crypto::NodeId id = sys.peer(5).node_id();
  for (int i = 0; i < 3; ++i) {
    const auto next = sys.rotate_peer_key(5);
    EXPECT_NE(next, id);
    id = next;
    EXPECT_EQ(sys.ip_of(id), 5u);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, RotationSweep,
                         ::testing::Values(CryptoMode::kFull, CryptoMode::kFast),
                         [](const auto& info) {
                           return info.param == CryptoMode::kFull ? "Full"
                                                                  : "Fast";
                         });

TEST(AgentMigration, RejectsForgedAnnouncement) {
  util::Rng rng(1);
  trust::WorldParams wp;
  wp.nodes = 8;
  trust::GroundTruth truth(rng, wp);
  auto agent_identity = crypto::Identity::generate(rng, 64);
  ReputationAgent agent(&agent_identity, 0, &truth,
                        trust::ewma_model_factory(), 1);

  auto victim = crypto::Identity::generate(rng, 64);
  auto attacker = crypto::Identity::generate(rng, 64);
  agent.register_key(victim.node_id(), victim.signature_public());

  crypto::Identity::RotationAnnouncement forged;
  forged.old_id = victim.node_id();
  forged.new_signature_public = attacker.signature_public();
  forged.signature = attacker.sign(attacker.signature_public().serialize());
  EXPECT_FALSE(agent.migrate_key(victim.node_id(), forged));
  // Victim's original key untouched.
  EXPECT_TRUE(agent.lookup_key(victim.node_id()).has_value());
}

TEST(AgentMigration, UnknownOldIdRejected) {
  util::Rng rng(2);
  trust::WorldParams wp;
  wp.nodes = 8;
  trust::GroundTruth truth(rng, wp);
  auto agent_identity = crypto::Identity::generate(rng, 64);
  ReputationAgent agent(&agent_identity, 0, &truth,
                        trust::ewma_model_factory(), 1);
  auto peer = crypto::Identity::generate(rng, 64);
  const auto old_id = peer.node_id();
  const auto ann = peer.rotate_signature_key(rng, 64);
  EXPECT_FALSE(agent.migrate_key(old_id, ann));  // was never registered
}

}  // namespace
}  // namespace hirep::core
