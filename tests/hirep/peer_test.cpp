#include "hirep/peer.hpp"

#include <gtest/gtest.h>

namespace hirep::core {
namespace {

ListParams params() {
  ListParams p;
  p.capacity = 5;
  return p;
}

TEST(PeerAggregate, EmptyIsNeutralPrior) {
  EXPECT_DOUBLE_EQ(Peer::aggregate({}), 0.5);
}

TEST(PeerAggregate, WeightedMean) {
  // values 1.0 (weight 3) and 0.0 (weight 1) -> 0.75
  EXPECT_DOUBLE_EQ(Peer::aggregate({{1.0, 3.0}, {0.0, 1.0}}), 0.75);
}

TEST(PeerAggregate, ZeroWeightsFallBackToPlainMean) {
  EXPECT_DOUBLE_EQ(Peer::aggregate({{1.0, 0.0}, {0.0, 0.0}}), 0.5);
  EXPECT_DOUBLE_EQ(Peer::aggregate({{0.8, 0.0}}), 0.8);
}

TEST(PeerAggregate, SingleRating) {
  EXPECT_DOUBLE_EQ(Peer::aggregate({{0.9, 0.7}}), 0.9);
}

TEST(PeerConsistency, SameSideOfHalf) {
  EXPECT_TRUE(Peer::consistent(0.8, 1.0));   // good rating, good outcome
  EXPECT_TRUE(Peer::consistent(0.2, 0.0));   // bad rating, bad outcome
  EXPECT_FALSE(Peer::consistent(0.8, 0.0));  // praised a bad provider
  EXPECT_FALSE(Peer::consistent(0.2, 1.0));  // slandered a good provider
}

TEST(Peer, RelayPathEndsAtOwner) {
  util::Rng rng(1);
  const auto identity = crypto::Identity::generate(rng, 64);
  Peer peer(&identity, 7, params());
  std::vector<onion::RelayInfo> relays;
  std::vector<crypto::Identity> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(crypto::Identity::generate(rng, 64));
    relays.push_back({static_cast<net::NodeIndex>(10 + i),
                      ids.back().anonymity_public()});
  }
  peer.set_relays(relays);
  const auto path = peer.relay_path();
  // Wire order: entry relay (last picked) first, owner last.
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], 12u);
  EXPECT_EQ(path[1], 11u);
  EXPECT_EQ(path[2], 10u);
  EXPECT_EQ(path[3], 7u);
}

TEST(Peer, RelayPathWithoutRelaysIsJustOwner) {
  util::Rng rng(2);
  const auto identity = crypto::Identity::generate(rng, 64);
  Peer peer(&identity, 3, params());
  const auto path = peer.relay_path();
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 3u);
}

TEST(Peer, SequenceNumbersNonDecreasing) {
  util::Rng rng(3);
  const auto identity = crypto::Identity::generate(rng, 64);
  Peer peer(&identity, 0, params());
  const auto a = peer.next_sq();
  const auto b = peer.next_sq();
  EXPECT_GT(b, a);
  const auto onion1 = peer.issue_onion(rng);
  const auto onion2 = peer.issue_onion(rng);
  EXPECT_GT(onion2.sq, onion1.sq);
}

TEST(Peer, TransactionCounter) {
  util::Rng rng(4);
  const auto identity = crypto::Identity::generate(rng, 64);
  Peer peer(&identity, 0, params());
  EXPECT_EQ(peer.transactions(), 0u);
  peer.note_transaction();
  peer.note_transaction();
  EXPECT_EQ(peer.transactions(), 2u);
}

TEST(Peer, IssuedOnionVerifies) {
  util::Rng rng(5);
  const auto identity = crypto::Identity::generate(rng, 128);
  Peer peer(&identity, 4, params());
  const auto onion = peer.issue_onion(rng);
  EXPECT_TRUE(onion::verify_onion(onion));
  EXPECT_EQ(onion.owner_sig_key, identity.signature_public());
  EXPECT_EQ(onion.entry, 4u);  // no relays: owner is the entry
}

}  // namespace
}  // namespace hirep::core
