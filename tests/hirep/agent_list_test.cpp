#include "hirep/agent_list.hpp"

#include <gtest/gtest.h>

namespace hirep::core {
namespace {

crypto::NodeId id_of(std::uint8_t tag) {
  crypto::NodeId id;
  id.bytes[0] = tag;
  return id;
}

AgentEntry entry_of(std::uint8_t tag, double weight = 1.0) {
  AgentEntry e;
  e.agent_id = id_of(tag);
  e.weight = weight;
  return e;
}

ListParams default_params() {
  ListParams p;
  p.alpha = 0.3;
  p.eviction_threshold = 0.4;
  p.capacity = 4;
  p.backup_capacity = 3;
  p.refill_fraction = 0.5;
  return p;
}

TEST(AgentList, InvalidParamsRejected) {
  ListParams p = default_params();
  p.alpha = 0.0;
  EXPECT_THROW(TrustedAgentList{p}, std::invalid_argument);
  p = default_params();
  p.alpha = 1.0;
  EXPECT_THROW(TrustedAgentList{p}, std::invalid_argument);
  p = default_params();
  p.capacity = 0;
  EXPECT_THROW(TrustedAgentList{p}, std::invalid_argument);
}

TEST(AgentList, AddRespectsCapacityAndUniqueness) {
  TrustedAgentList list(default_params());
  EXPECT_TRUE(list.add(entry_of(1)));
  EXPECT_FALSE(list.add(entry_of(1)));  // duplicate
  EXPECT_TRUE(list.add(entry_of(2)));
  EXPECT_TRUE(list.add(entry_of(3)));
  EXPECT_TRUE(list.add(entry_of(4)));
  EXPECT_TRUE(list.full());
  EXPECT_FALSE(list.add(entry_of(5)));  // over capacity
  EXPECT_EQ(list.size(), 4u);
}

TEST(AgentList, FindAndContains) {
  TrustedAgentList list(default_params());
  list.add(entry_of(7, 0.9));
  EXPECT_TRUE(list.contains(id_of(7)));
  const auto* e = list.find(id_of(7));
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->weight, 0.9);
  EXPECT_EQ(list.find(id_of(8)), nullptr);
}

TEST(AgentList, ExpertiseEwmaUpdate) {
  TrustedAgentList list(default_params());
  list.add(entry_of(1, 1.0));
  // Consistent: 0.3*1 + 0.7*1 = 1.0
  EXPECT_DOUBLE_EQ(*list.update_expertise(id_of(1), true), 1.0);
  // Inconsistent: 0.3*0 + 0.7*1 = 0.7
  EXPECT_DOUBLE_EQ(*list.update_expertise(id_of(1), false), 0.7);
  // Again: 0.49 — still above 0.4, stays.
  EXPECT_DOUBLE_EQ(*list.update_expertise(id_of(1), false), 0.49);
  EXPECT_TRUE(list.contains(id_of(1)));
  // 0.343 — below the threshold, evicted.
  EXPECT_DOUBLE_EQ(*list.update_expertise(id_of(1), false), 0.343);
  EXPECT_FALSE(list.contains(id_of(1)));
}

TEST(AgentList, UpdateUnknownAgentReturnsNullopt) {
  TrustedAgentList list(default_params());
  EXPECT_FALSE(list.update_expertise(id_of(9), true).has_value());
}

TEST(AgentList, ConsistentlyBadAgentEvictedInThreeSteps) {
  // The deterministic eviction dynamics the Figure 6/7 analysis relies on:
  // alpha=0.3, threshold 0.4 evicts an always-wrong agent on update 3.
  TrustedAgentList list(default_params());
  list.add(entry_of(1));
  list.update_expertise(id_of(1), false);
  list.update_expertise(id_of(1), false);
  EXPECT_TRUE(list.contains(id_of(1)));
  list.update_expertise(id_of(1), false);
  EXPECT_FALSE(list.contains(id_of(1)));
}

TEST(AgentList, HigherThresholdEvictsFaster) {
  ListParams p = default_params();
  p.eviction_threshold = 0.8;
  TrustedAgentList list(p);
  list.add(entry_of(1));
  list.update_expertise(id_of(1), false);  // 0.7 < 0.8: evicted immediately
  EXPECT_FALSE(list.contains(id_of(1)));
}

TEST(AgentList, OfflineGoodAgentMovesToBackup) {
  TrustedAgentList list(default_params());
  list.add(entry_of(1, 1.0));
  list.handle_offline(id_of(1));
  EXPECT_FALSE(list.contains(id_of(1)));
  EXPECT_EQ(list.backup_size(), 1u);
  const auto restored = list.pop_backup();
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->agent_id, id_of(1));
  EXPECT_EQ(list.backup_size(), 0u);
}

TEST(AgentList, OfflineBadAgentDropped) {
  TrustedAgentList list(default_params());
  AgentEntry e = entry_of(1, 0.2);  // below threshold standing
  list.entries().push_back(e);     // force-insert regardless of add() checks
  list.handle_offline(id_of(1));
  EXPECT_EQ(list.backup_size(), 0u);
}

TEST(AgentList, BackupIsMostRecentFirstAndBounded) {
  TrustedAgentList list(default_params());
  for (std::uint8_t i = 1; i <= 4; ++i) list.add(entry_of(i));
  for (std::uint8_t i = 1; i <= 4; ++i) list.handle_offline(id_of(i));
  // Capacity 3: agent 1 (oldest) fell off the end.
  EXPECT_EQ(list.backup_size(), 3u);
  EXPECT_EQ(list.pop_backup()->agent_id, id_of(4));  // most recent first
  EXPECT_EQ(list.pop_backup()->agent_id, id_of(3));
  EXPECT_EQ(list.pop_backup()->agent_id, id_of(2));
  EXPECT_FALSE(list.pop_backup().has_value());
}

TEST(AgentList, BackupOrderingHoldsAcrossChurnCycles) {
  // Repeated offline -> probe -> re-add cycles (the §3.4.3 failover loop
  // under churn): the backup stack must stay most-recent-first across
  // interleaved evictions and promotions, and exhaust cleanly.
  TrustedAgentList list(default_params());
  for (std::uint8_t i = 1; i <= 3; ++i) list.add(entry_of(i));

  list.handle_offline(id_of(1));
  list.handle_offline(id_of(2));
  // The most recent casualty (2) is probed back before 3 ever goes down...
  auto restored = list.pop_backup();
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->agent_id, id_of(2));
  list.handle_offline(id_of(3));
  // ...so the stack now reads 3 (newest), then 1 (oldest survivor).
  EXPECT_EQ(list.backup_size(), 2u);
  EXPECT_EQ(list.pop_backup()->agent_id, id_of(3));
  EXPECT_EQ(list.pop_backup()->agent_id, id_of(1));
  EXPECT_FALSE(list.pop_backup().has_value());
  EXPECT_EQ(list.backup_size(), 0u);

  // A second full cycle after exhaustion starts a fresh, ordered stack.
  EXPECT_TRUE(list.add(*restored));
  list.handle_offline(id_of(2));
  EXPECT_EQ(list.pop_backup()->agent_id, id_of(2));
}

TEST(AgentList, NeedsRefillBelowFraction) {
  TrustedAgentList list(default_params());  // capacity 4, fraction 0.5
  EXPECT_TRUE(list.needs_refill());
  list.add(entry_of(1));
  EXPECT_TRUE(list.needs_refill());  // 1 < 2
  list.add(entry_of(2));
  EXPECT_FALSE(list.needs_refill());  // 2 >= 2
}

TEST(AgentList, TotalWeight) {
  TrustedAgentList list(default_params());
  list.add(entry_of(1, 1.0));
  list.add(entry_of(2, 0.5));
  EXPECT_DOUBLE_EQ(list.total_weight(), 1.5);
}

}  // namespace
}  // namespace hirep::core
