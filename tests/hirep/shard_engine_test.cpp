// The sharded scale engine's acceptance bar (DESIGN.md §14): a K-shard run
// must be byte-identical to the serial reference — records, message
// totals, envelope counters, and protocol-level obs counters — across
// many seeds and shard counts, including workloads where every
// transaction crosses a shard boundary.
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "hirep/system.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace hirep {
namespace {

using core::Executor;
using core::HirepOptions;
using core::HirepSystem;
using Record = core::HirepSystem::TransactionRecord;
using Pair = std::pair<net::NodeIndex, net::NodeIndex>;

HirepOptions fast_options(std::uint64_t seed, std::size_t nodes) {
  HirepOptions opts;
  opts.nodes = nodes;
  opts.crypto = core::CryptoMode::kFast;
  opts.seed = seed;
  return opts;
}

std::vector<Pair> draw_pairs(std::uint64_t seed, std::size_t nodes,
                             std::size_t count) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<Pair> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    const auto r = static_cast<net::NodeIndex>(rng.below(nodes));
    const auto p = static_cast<net::NodeIndex>(rng.below(nodes));
    if (r != p) pairs.emplace_back(r, p);
  }
  return pairs;
}

void expect_records_identical(const std::vector<Record>& a,
                              const std::vector<Record>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a[i].requestor, b[i].requestor);
    EXPECT_EQ(a[i].provider, b[i].provider);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].estimate),
              std::bit_cast<std::uint64_t>(b[i].estimate));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].truth_value),
              std::bit_cast<std::uint64_t>(b[i].truth_value));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].outcome),
              std::bit_cast<std::uint64_t>(b[i].outcome));
    EXPECT_EQ(a[i].responses, b[i].responses);
    EXPECT_EQ(a[i].trust_messages, b[i].trust_messages);
  }
}

/// Everything one engine run leaves behind that the determinism contract
/// covers: the record stream, message totals, per-type envelope counters,
/// and the protocol-level obs counters.
struct RunTrace {
  std::vector<Record> records;
  std::uint64_t trust_messages = 0;
  std::uint64_t overlay_total = 0;
  std::vector<net::EnvelopeMetrics::Counters> envelopes;
  /// hirep.* counters except hirep.engine.* (cross-shard bookkeeping is
  /// engine-internal and legitimately differs between engines).
  std::vector<obs::Snapshot::CounterEntry> protocol_counters;
};

RunTrace run_trace(const HirepOptions& opts, std::span<const Pair> pairs,
                   const Executor& exec) {
  if constexpr (obs::kEnabled) obs::Registry::global().reset();
  HirepSystem system(opts);
  RunTrace trace;
  trace.records = system.run_transactions(pairs, exec);
  trace.trust_messages = system.trust_message_total();
  trace.overlay_total = system.overlay().metrics().total();
  const auto count = static_cast<std::size_t>(net::EnvelopeType::kCount);
  for (std::size_t t = 0; t < count; ++t) {
    trace.envelopes.push_back(
        system.transport().envelopes().of(static_cast<net::EnvelopeType>(t)));
  }
  if constexpr (obs::kEnabled) {
    for (auto& entry : obs::Registry::global().snapshot().counters) {
      if (entry.name.rfind("hirep.", 0) != 0) continue;
      if (entry.name.rfind("hirep.engine.", 0) == 0) continue;
      trace.protocol_counters.push_back(std::move(entry));
    }
  }
  return trace;
}

void expect_traces_identical(const RunTrace& serial, const RunTrace& other) {
  expect_records_identical(serial.records, other.records);
  EXPECT_EQ(serial.trust_messages, other.trust_messages);
  EXPECT_EQ(serial.overlay_total, other.overlay_total);
  ASSERT_EQ(serial.envelopes.size(), other.envelopes.size());
  for (std::size_t t = 0; t < serial.envelopes.size(); ++t) {
    SCOPED_TRACE("envelope type " + std::to_string(t));
    const auto& a = serial.envelopes[t];
    const auto& b = other.envelopes[t];
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.hop_messages, b.hop_messages);
    EXPECT_EQ(a.payload_bytes_sent, b.payload_bytes_sent);
    EXPECT_EQ(a.payload_bytes_delivered, b.payload_bytes_delivered);
  }
  ASSERT_EQ(serial.protocol_counters.size(), other.protocol_counters.size());
  for (std::size_t i = 0; i < serial.protocol_counters.size(); ++i) {
    EXPECT_EQ(serial.protocol_counters[i].name,
              other.protocol_counters[i].name);
    EXPECT_EQ(serial.protocol_counters[i].value,
              other.protocol_counters[i].value)
        << serial.protocol_counters[i].name;
  }
}

TEST(ShardEngine, ShardedMatchesSerialAcrossSeedsAndShardCounts) {
  // The pinned golden property: for >= 20 seeds and K in {2, 4, 7}, the
  // K-shard engine reproduces the serial reference to the bit.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto opts = fast_options(seed, 96);
    const auto pairs = draw_pairs(seed, opts.nodes, 48);
    const auto serial = run_trace(opts, pairs, Executor::serial());
    for (std::size_t shards : {2UL, 4UL, 7UL}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " shards " +
                   std::to_string(shards));
      const auto sharded =
          run_trace(opts, pairs, Executor::sharded(shards, 2));
      expect_traces_identical(serial, sharded);
    }
  }
}

TEST(ShardEngine, EveryTransactionCrossingShardsStaysIdentical) {
  // Boundary stress: requestor and provider always live on different
  // shards (r % K != p % K for K = 4), and the tiny network guarantees
  // most trusted agents are foreign too, so the barrier exchange carries
  // real traffic instead of degenerating to the inline path.
  constexpr std::size_t kShards = 4;
  const auto opts = fast_options(23, 64);
  util::Rng rng(0xcafef00dULL);
  std::vector<Pair> pairs;
  while (pairs.size() < 96) {
    const auto r = static_cast<net::NodeIndex>(rng.below(opts.nodes));
    const auto p = static_cast<net::NodeIndex>(rng.below(opts.nodes));
    if (r == p || r % kShards == p % kShards) continue;
    pairs.emplace_back(r, p);
  }

  const auto serial = run_trace(opts, pairs, Executor::serial());
  if constexpr (obs::kEnabled) obs::Registry::global().reset();
  HirepSystem sharded_system(opts);
  const auto sharded_records =
      sharded_system.run_transactions(pairs, Executor::sharded(kShards, 4));
  expect_records_identical(serial.records, sharded_records);
  EXPECT_EQ(serial.trust_messages, sharded_system.trust_message_total());
  if constexpr (obs::kEnabled) {
    // The exchange actually exercised the cross-shard path.
    EXPECT_GT(obs::Registry::global()
                  .counter("hirep.engine.cross_shard_reports")
                  .value(),
              0);
  }
}

TEST(ShardEngine, ShardedMatchesSerialFullCrypto) {
  HirepOptions opts;
  opts.nodes = 48;
  opts.crypto = core::CryptoMode::kFull;
  opts.seed = 3;
  const auto pairs = draw_pairs(3, opts.nodes, 8);

  HirepSystem serial(opts);
  HirepSystem sharded(opts);
  expect_records_identical(
      serial.run_transactions(pairs, Executor::serial()),
      sharded.run_transactions(pairs, Executor::sharded(3, 2)));
  EXPECT_EQ(serial.trust_message_total(), sharded.trust_message_total());
}

TEST(ShardEngine, EqualWaveWindowsCompareAcrossEngines) {
  // The wave window moves barriers (hence deferred-maintenance timing), so
  // the byte-identity contract is per-window: serial and sharded agree
  // whenever their windows agree.
  const auto opts = fast_options(31, 96);
  const auto pairs = draw_pairs(31, opts.nodes, 64);
  for (std::size_t window : {1UL, 5UL, 16UL}) {
    SCOPED_TRACE("wave_window " + std::to_string(window));
    Executor serial = Executor::serial();
    serial.wave_window = window;
    Executor sharded = Executor::sharded(4, 2);
    sharded.wave_window = window;
    HirepSystem a(opts);
    HirepSystem b(opts);
    expect_records_identical(a.run_transactions(pairs, serial),
                             b.run_transactions(pairs, sharded));
    EXPECT_EQ(a.trust_message_total(), b.trust_message_total());
  }
}

TEST(ShardEngine, CheckpointedShardedBatchesCompose) {
  // Splitting a sharded run into consecutive batches (experiment
  // checkpointing) yields the same records as one big batch.
  const auto opts = fast_options(17, 96);
  const auto pairs = draw_pairs(17, opts.nodes, 60);

  HirepSystem whole(opts);
  HirepSystem chunked(opts);
  const auto whole_records =
      whole.run_transactions(pairs, Executor::sharded(4, 2));
  std::vector<Record> chunk_records;
  for (std::size_t at = 0; at < pairs.size(); at += 20) {
    const std::size_t n = std::min<std::size_t>(20, pairs.size() - at);
    const auto part = chunked.run_transactions(
        std::span(pairs).subspan(at, n), Executor::sharded(4, 2));
    chunk_records.insert(chunk_records.end(), part.begin(), part.end());
  }
  expect_records_identical(whole_records, chunk_records);
  EXPECT_EQ(whole.trust_message_total(), chunked.trust_message_total());
}

TEST(ShardEngine, ShardedRequiresInstantDeliveryAndShardedMode) {
  auto opts = fast_options(1, 64);
  opts.delivery.policy = net::DeliveryPolicyKind::kFaulty;
  HirepSystem faulty(opts);
  const std::vector<Pair> pairs = {{0, 1}};
  EXPECT_THROW(faulty.run_transactions(pairs, Executor::sharded(2)),
               std::invalid_argument);

  // A shard count on a non-sharded executor is rejected at the engine too
  // (Executor::validate would have caught it earlier on the Scenario path).
  HirepSystem instant(fast_options(1, 64));
  Executor misplaced = Executor::parallel(2);
  misplaced.shards = 2;
  EXPECT_THROW(instant.run_transactions(pairs, misplaced),
               std::invalid_argument);
}

}  // namespace
}  // namespace hirep
