// Open membership: peers joining a running system (§1: "anyone can freely
// join and leave"; agent departure is covered by the online flag).
#include <gtest/gtest.h>

#include "hirep/system.hpp"

namespace hirep::core {
namespace {

HirepOptions options(CryptoMode mode) {
  HirepOptions o;
  o.nodes = 64;
  o.rsa_bits = 64;
  o.trusted_agents = 5;
  o.onion_relays = 2;
  o.crypto = mode;
  o.seed = 17;
  o.world.malicious_ratio = 0.0;
  return o;
}

class JoinSweep : public ::testing::TestWithParam<CryptoMode> {};

TEST_P(JoinSweep, JoinGrowsEveryLayerConsistently) {
  HirepSystem sys(options(GetParam()));
  const auto before_nodes = sys.node_count();
  const auto v = sys.join_peer();
  EXPECT_EQ(v, before_nodes);
  EXPECT_EQ(sys.node_count(), before_nodes + 1);
  EXPECT_EQ(sys.overlay().node_count(), before_nodes + 1);
  EXPECT_EQ(sys.truth().node_count(), before_nodes + 1);
  EXPECT_EQ(sys.identities().size(), before_nodes + 1);
  // Identity mapping is consistent.
  EXPECT_EQ(sys.ip_of(sys.peer(v).node_id()), v);
  // The joiner is wired into the overlay.
  EXPECT_GT(sys.overlay().graph().degree(v), 0u);
  // And verified its onion relays.
  EXPECT_EQ(sys.peer(v).relays().size(), sys.options().onion_relays);
}

TEST_P(JoinSweep, JoinerDiscoversAgentsAndTransacts) {
  HirepSystem sys(options(GetParam()));
  const auto v = sys.join_peer();
  EXPECT_GT(sys.peer(v).agents().size(), 0u);
  const auto rec = sys.run_transaction(v, 3);
  EXPECT_GT(rec.responses, 0u);
  EXPECT_EQ(rec.trust_messages,
            3 * (sys.options().onion_relays + 1) * rec.responses);
}

TEST_P(JoinSweep, JoinerCanBeQueriedAbout) {
  HirepSystem sys(options(GetParam()));
  const auto v = sys.join_peer();
  const auto q = sys.query_trust(0, v);
  if (!q.ratings.empty()) {
    EXPECT_EQ(q.estimate > 0.5, sys.truth().trustable(v));
  }
}

TEST_P(JoinSweep, ManyJoinsKeepInvariants) {
  HirepSystem sys(options(GetParam()));
  for (int i = 0; i < 10; ++i) {
    const auto v = sys.join_peer();
    EXPECT_EQ(sys.ip_of(sys.peer(v).node_id()), v);
  }
  EXPECT_EQ(sys.node_count(), 74u);
  EXPECT_TRUE(sys.overlay().graph().connected());
  // Random transactions over the grown population still work.
  for (int i = 0; i < 10; ++i) {
    const auto rec = sys.run_transaction();
    EXPECT_LT(rec.requestor, 74u);
    EXPECT_LT(rec.provider, 74u);
  }
}

TEST_P(JoinSweep, AgentCapableJoinerServes) {
  HirepSystem sys(options(GetParam()));
  // Join until one joiner rolls agent capability.
  net::NodeIndex agent_joiner = net::kInvalidNode;
  for (int i = 0; i < 30 && agent_joiner == net::kInvalidNode; ++i) {
    const auto v = sys.join_peer();
    if (sys.agent_at(v) != nullptr) agent_joiner = v;
  }
  ASSERT_NE(agent_joiner, net::kInvalidNode);
  EXPECT_TRUE(sys.agent_online(agent_joiner));
  // Another joiner may select it through discovery eventually; at minimum
  // the agent is discoverable via its self-entry.
  const auto shared = sys.shareable_list(agent_joiner);
  EXPECT_FALSE(shared.empty());
}

INSTANTIATE_TEST_SUITE_P(Modes, JoinSweep,
                         ::testing::Values(CryptoMode::kFull, CryptoMode::kFast),
                         [](const auto& info) {
                           return info.param == CryptoMode::kFull ? "Full"
                                                                  : "Fast";
                         });

TEST(Join, PreferentialAttachmentFavorsHubs) {
  // Statistical property of the join wiring: joiners attach to high-degree
  // nodes more often than uniformly.
  HirepOptions o = options(CryptoMode::kFast);
  o.nodes = 200;
  HirepSystem sys(o);
  // Degree of the biggest hub before joins.
  std::size_t hub = 0;
  for (net::NodeIndex v = 0; v < 200; ++v) {
    hub = std::max(hub, sys.overlay().graph().degree(v));
  }
  for (int i = 0; i < 100; ++i) sys.join_peer();
  std::size_t hub_after = 0;
  for (net::NodeIndex v = 0; v < 200; ++v) {
    hub_after = std::max(hub_after, sys.overlay().graph().degree(v));
  }
  EXPECT_GT(hub_after, hub);  // the rich got richer
}

}  // namespace
}  // namespace hirep::core
