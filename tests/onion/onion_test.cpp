#include "onion/onion.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hirep::onion {
namespace {

struct OnionFixture : ::testing::Test {
  OnionFixture() : rng(1) {
    owner = std::make_unique<crypto::Identity>(crypto::Identity::generate(rng, 128));
    for (int i = 0; i < 4; ++i) {
      relay_ids.push_back(crypto::Identity::generate(rng, 128));
      relays.push_back(
          {static_cast<net::NodeIndex>(10 + i), relay_ids.back().anonymity_public()});
    }
  }

  util::Rng rng;
  std::unique_ptr<crypto::Identity> owner;
  std::vector<crypto::Identity> relay_ids;
  std::vector<RelayInfo> relays;  // relays[0] adjacent to owner
};

TEST_F(OnionFixture, EntryIsOutermostRelay) {
  const auto onion = build_onion(rng, *owner, 5, relays, 1);
  EXPECT_EQ(onion.entry, relays.back().ip);
  EXPECT_EQ(onion.relay_count, 4u);
  EXPECT_EQ(onion.sq, 1u);
}

TEST_F(OnionFixture, SignatureVerifies) {
  const auto onion = build_onion(rng, *owner, 5, relays, 3);
  EXPECT_TRUE(verify_onion(onion));
}

TEST_F(OnionFixture, TamperedBlobFailsVerification) {
  auto onion = build_onion(rng, *owner, 5, relays, 3);
  onion.blob[0] ^= 0x01;
  EXPECT_FALSE(verify_onion(onion));
}

TEST_F(OnionFixture, TamperedSqFailsVerification) {
  auto onion = build_onion(rng, *owner, 5, relays, 3);
  onion.sq += 1;  // attacker freshens a stale onion
  EXPECT_FALSE(verify_onion(onion));
}

TEST_F(OnionFixture, PeelsInReverseRelayOrder) {
  const auto onion = build_onion(rng, *owner, 5, relays, 1);
  util::Bytes blob = onion.blob;
  // Peel through relays 3, 2, 1, 0 (outermost inward).
  for (int i = 3; i >= 0; --i) {
    const auto peeled = peel(blob, relay_ids[static_cast<std::size_t>(i)]
                                       .anonymity_private());
    ASSERT_TRUE(peeled.has_value()) << "layer " << i;
    EXPECT_FALSE(peeled->terminal);
    const net::NodeIndex expected_next =
        i > 0 ? relays[static_cast<std::size_t>(i - 1)].ip : 5;
    EXPECT_EQ(peeled->next, expected_next);
    blob = peeled->inner;
  }
  // Finally the owner peels the terminal layer.
  const auto last = peel(blob, owner->anonymity_private());
  ASSERT_TRUE(last.has_value());
  EXPECT_TRUE(last->terminal);
  EXPECT_EQ(last->next, 5u);  // carries the owner's own address
  EXPECT_FALSE(last->inner.empty());  // the fake onion padding
}

TEST_F(OnionFixture, WrongRelayCannotPeel) {
  const auto onion = build_onion(rng, *owner, 5, relays, 1);
  // The outermost layer is for relays[3]; relays[0] must fail.
  EXPECT_FALSE(peel(onion.blob, relay_ids[0].anonymity_private()).has_value());
  EXPECT_FALSE(peel(onion.blob, owner->anonymity_private()).has_value());
}

TEST_F(OnionFixture, RelayCannotTellPositionFromFormat) {
  // Every peel yields the same structure (tag/next/inner); a relay cannot
  // distinguish "next is a relay" from "next is the destination".
  const auto onion = build_onion(rng, *owner, 5, relays, 1);
  auto outer = peel(onion.blob, relay_ids[3].anonymity_private());
  ASSERT_TRUE(outer.has_value());
  // The peeled inner blob looks like opaque ciphertext either way.
  EXPECT_GT(outer->inner.size(), 16u);
  EXPECT_FALSE(outer->terminal);
}

TEST_F(OnionFixture, ZeroRelayOnionIsTerminalForOwner) {
  const auto onion = build_onion(rng, *owner, 5, {}, 1);
  EXPECT_EQ(onion.entry, 5u);  // owner itself
  const auto peeled = peel(onion.blob, owner->anonymity_private());
  ASSERT_TRUE(peeled.has_value());
  EXPECT_TRUE(peeled->terminal);
}

TEST_F(OnionFixture, SerializationRoundTrip) {
  const auto onion = build_onion(rng, *owner, 5, relays, 9);
  const auto restored = Onion::deserialize(onion.serialize());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->entry, onion.entry);
  EXPECT_EQ(restored->sq, onion.sq);
  EXPECT_EQ(restored->relay_count, onion.relay_count);
  EXPECT_EQ(restored->blob, onion.blob);
  EXPECT_TRUE(verify_onion(*restored));
}

TEST_F(OnionFixture, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Onion::deserialize(util::Bytes{1, 2, 3}).has_value());
}

TEST(SequenceGuard, AcceptsAnyAgeUntilRevoked) {
  // Different holders legitimately keep onions of different ages: without
  // a revocation, every sq routes.
  SequenceGuard guard;
  crypto::NodeId id;
  id.bytes[0] = 1;
  EXPECT_TRUE(guard.accept(id, 5));
  EXPECT_TRUE(guard.accept(id, 9));
  EXPECT_TRUE(guard.accept(id, 3));  // older holder, still valid
  EXPECT_EQ(guard.newest(id), 9u);
  EXPECT_EQ(guard.floor_of(id), 0u);
}

TEST(SequenceGuard, RevocationFloorRejectsOlder) {
  SequenceGuard guard;
  crypto::NodeId id;
  id.bytes[0] = 1;
  guard.revoke_before(id, 5);
  EXPECT_FALSE(guard.accept(id, 4));
  EXPECT_TRUE(guard.accept(id, 5));  // at the floor is fine
  EXPECT_TRUE(guard.accept(id, 9));
  EXPECT_EQ(guard.floor_of(id), 5u);
}

TEST(SequenceGuard, FloorsOnlyMoveForward) {
  SequenceGuard guard;
  crypto::NodeId id;
  id.bytes[0] = 1;
  guard.revoke_before(id, 7);
  guard.revoke_before(id, 3);  // attacker cannot lower the floor
  EXPECT_EQ(guard.floor_of(id), 7u);
  EXPECT_FALSE(guard.accept(id, 5));
}

TEST(SequenceGuard, TracksOwnersIndependently) {
  SequenceGuard guard;
  crypto::NodeId a, b;
  a.bytes[0] = 1;
  b.bytes[0] = 2;
  guard.revoke_before(a, 10);
  EXPECT_FALSE(guard.accept(a, 9));
  EXPECT_TRUE(guard.accept(b, 1));  // b's onions unaffected by a's floor
  EXPECT_FALSE(guard.newest(crypto::NodeId{}).has_value());
}

}  // namespace
}  // namespace hirep::onion
