#include "onion/router.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace hirep::onion {
namespace {

struct RouterFixture : ::testing::Test {
  RouterFixture()
      : rng(3), overlay(net::ring_lattice(8, 1), net::LatencyParams{}, 1) {
    for (int i = 0; i < 8; ++i) {
      identities.push_back(crypto::Identity::generate(rng, 128));
    }
    router = std::make_unique<Router>(&overlay, &identities);
  }

  std::vector<RelayInfo> relay_infos(std::initializer_list<net::NodeIndex> ips) {
    std::vector<RelayInfo> out;
    for (auto ip : ips) out.push_back({ip, identities[ip].anonymity_public()});
    return out;
  }

  util::Rng rng;
  net::Overlay overlay;
  std::vector<crypto::Identity> identities;
  std::unique_ptr<Router> router;
};

TEST_F(RouterFixture, DeliversThroughRelays) {
  // Owner 5, relays 1 (adjacent) then 2 then 3 (entry).
  const auto onion = build_onion(rng, identities[5], 5, relay_infos({1, 2, 3}), 1);
  const util::Bytes payload{0xaa, 0xbb};
  const auto result = router->route(0, onion, payload, net::MessageKind::kControl);
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.destination, 5u);
  EXPECT_EQ(result.hops, 4u);  // sender->3->2->1->5
  EXPECT_EQ(result.payload, payload);
  EXPECT_EQ(overlay.metrics().of(net::MessageKind::kControl), 4u);
}

TEST_F(RouterFixture, ZeroRelayOnionDeliversDirect) {
  const auto onion = build_onion(rng, identities[5], 5, {}, 1);
  const auto result = router->route(0, onion, {}, net::MessageKind::kControl);
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.hops, 1u);
}

TEST_F(RouterFixture, BadSignatureRejectedWithoutTraffic) {
  auto onion = build_onion(rng, identities[5], 5, relay_infos({1, 2}), 1);
  onion.blob[0] ^= 1;
  const auto result = router->route(0, onion, {}, net::MessageKind::kControl);
  EXPECT_FALSE(result.delivered);
  EXPECT_EQ(overlay.metrics().total(), 0u);
}

TEST_F(RouterFixture, DifferentAgesRouteUntilRevocation) {
  // Two holders with onions of different ages: both route.
  const auto older = build_onion(rng, identities[5], 5, relay_infos({1}), 1);
  const auto newer = build_onion(rng, identities[5], 5, relay_infos({2}), 2);
  EXPECT_TRUE(router->route(0, newer, {}, net::MessageKind::kControl).delivered);
  EXPECT_TRUE(router->route(0, older, {}, net::MessageKind::kControl).delivered);
}

TEST_F(RouterFixture, RevokedSequenceRejected) {
  const auto stale = build_onion(rng, identities[5], 5, relay_infos({1}), 1);
  const auto fresh = build_onion(rng, identities[5], 5, relay_infos({2}), 2);
  // The owner refreshes its onions and revokes everything older.
  router->sequence_guard().revoke_before(identities[5].node_id(), 2);
  EXPECT_TRUE(router->route(0, fresh, {}, net::MessageKind::kControl).delivered);
  EXPECT_FALSE(router->route(0, stale, {}, net::MessageKind::kControl).delivered);
}

TEST_F(RouterFixture, EqualSequenceStillRoutes) {
  const auto a = build_onion(rng, identities[5], 5, relay_infos({1}), 7);
  EXPECT_TRUE(router->route(0, a, {}, net::MessageKind::kControl).delivered);
  EXPECT_TRUE(router->route(0, a, {}, net::MessageKind::kControl).delivered);
}

TEST_F(RouterFixture, TimedRouteProducesIncreasingCompletion) {
  const auto onion = build_onion(rng, identities[6], 6, relay_infos({1, 2, 3}), 1);
  const auto result =
      router->route_timed(10.0, 0, onion, {}, net::MessageKind::kControl);
  EXPECT_TRUE(result.delivered);
  // 4 hops, each >= 10ms link + 1ms processing, starting at t=10.
  EXPECT_GE(result.completion_ms, 10.0 + 4 * 11.0 - 1e9 * 0);
}

TEST_F(RouterFixture, RouteWithForeignGuardOwnersIndependent) {
  const auto a = build_onion(rng, identities[4], 4, relay_infos({1}), 1);
  const auto b = build_onion(rng, identities[5], 5, relay_infos({2}), 1);
  EXPECT_TRUE(router->route(0, a, {}, net::MessageKind::kControl).delivered);
  EXPECT_TRUE(router->route(0, b, {}, net::MessageKind::kControl).delivered);
}

TEST(PickRelayIps, ExcludesOwnerAndDuplicates) {
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto ips = pick_relay_ips(rng, 20, 5, 7);
    EXPECT_EQ(ips.size(), 5u);
    std::set<net::NodeIndex> unique(ips.begin(), ips.end());
    EXPECT_EQ(unique.size(), 5u);
    EXPECT_EQ(unique.count(7), 0u);
  }
}

TEST(PickRelayIps, ClampsWhenAskingTooMany) {
  util::Rng rng(6);
  const auto ips = pick_relay_ips(rng, 4, 10, 0);
  EXPECT_EQ(ips.size(), 3u);  // everyone but the owner
}

}  // namespace
}  // namespace hirep::onion
