#include "onion/relay.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace hirep::onion {
namespace {

struct RelayFixture : ::testing::Test {
  RelayFixture()
      : rng(1),
        requestor(crypto::Identity::generate(rng, 128)),
        relay_identity(crypto::Identity::generate(rng, 128)),
        overlay(net::ring_lattice(8, 1), net::LatencyParams{}, 1) {}

  util::Rng rng;
  crypto::Identity requestor;
  crypto::Identity relay_identity;
  net::Overlay overlay;
};

TEST_F(RelayFixture, HonestHandshakeSucceeds) {
  HonestRelay relay(3, &relay_identity);
  const auto info = fetch_anonymity_key(overlay, rng, requestor, 0, relay);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->ip, 3u);
  EXPECT_EQ(info->anonymity_key, relay_identity.anonymity_public());
}

TEST_F(RelayFixture, HandshakeCountsFourMessages) {
  HonestRelay relay(3, &relay_identity);
  fetch_anonymity_key(overlay, rng, requestor, 0, relay);
  EXPECT_EQ(overlay.metrics().of(net::MessageKind::kKeyExchange), 4u);
}

// A relay that substitutes a key it does not control: it answers the key
// request with someone else's AP but cannot decrypt the verification.
class SubstitutingRelay final : public RelayEndpoint {
 public:
  SubstitutingRelay(net::NodeIndex ip, const crypto::Identity* claimed,
                    const crypto::Identity* actual)
      : ip_(ip), claimed_(claimed), actual_(actual) {}

  net::NodeIndex ip() const override { return ip_; }

  util::Bytes key_response(util::Rng& rng,
                           const crypto::RsaPublicKey& requestor_ap,
                           net::NodeIndex) override {
    util::ByteWriter w;
    w.u8(0x01);
    w.blob(claimed_->anonymity_public().serialize());
    w.u32(ip_);
    w.u64(rng());
    return crypto::rsa_encrypt_bytes(rng, requestor_ap, w.bytes());
  }

  std::optional<util::Bytes> key_confirm(util::Rng&,
                                         const util::Bytes& verification) override {
    // Tries to decrypt with the key it actually owns — fails.
    const auto plain =
        crypto::rsa_decrypt_bytes(actual_->anonymity_private(), verification);
    if (!plain) return std::nullopt;
    return std::nullopt;
  }

 private:
  net::NodeIndex ip_;
  const crypto::Identity* claimed_;
  const crypto::Identity* actual_;
};

TEST_F(RelayFixture, SubstitutedKeyRejected) {
  auto claimed = crypto::Identity::generate(rng, 128);
  SubstitutingRelay relay(3, &claimed, &relay_identity);
  const auto info = fetch_anonymity_key(overlay, rng, requestor, 0, relay);
  EXPECT_FALSE(info.has_value());
}

// A relay that claims a different transport address than the one contacted.
class RedirectingRelay final : public RelayEndpoint {
 public:
  RedirectingRelay(net::NodeIndex real_ip, const crypto::Identity* identity)
      : real_ip_(real_ip), identity_(identity) {}

  net::NodeIndex ip() const override { return real_ip_; }

  util::Bytes key_response(util::Rng& rng,
                           const crypto::RsaPublicKey& requestor_ap,
                           net::NodeIndex) override {
    util::ByteWriter w;
    w.u8(0x01);
    w.blob(identity_->anonymity_public().serialize());
    w.u32(real_ip_ + 1);  // lies about its address
    w.u64(rng());
    return crypto::rsa_encrypt_bytes(rng, requestor_ap, w.bytes());
  }

  std::optional<util::Bytes> key_confirm(util::Rng&, const util::Bytes&) override {
    ADD_FAILURE() << "requestor should abort before step 3";
    return std::nullopt;
  }

 private:
  net::NodeIndex real_ip_;
  const crypto::Identity* identity_;
};

TEST_F(RelayFixture, AddressMismatchRejectedBeforeVerification) {
  RedirectingRelay relay(3, &relay_identity);
  EXPECT_FALSE(fetch_anonymity_key(overlay, rng, requestor, 0, relay).has_value());
}

// A relay that replays a previous confirmation (wrong nonce).
class ReplayingRelay final : public RelayEndpoint {
 public:
  ReplayingRelay(net::NodeIndex ip, const crypto::Identity* identity)
      : inner_(ip, identity), identity_(identity) {}

  net::NodeIndex ip() const override { return inner_.ip(); }

  util::Bytes key_response(util::Rng& rng,
                           const crypto::RsaPublicKey& requestor_ap,
                           net::NodeIndex requestor_ip) override {
    requestor_ap_ = requestor_ap;
    return inner_.key_response(rng, requestor_ap, requestor_ip);
  }

  std::optional<util::Bytes> key_confirm(util::Rng& rng,
                                         const util::Bytes&) override {
    // Fabricates a confirmation with a made-up nonce instead of echoing
    // the one inside the verification message.
    util::ByteWriter w;
    w.u8(0x03);
    w.u32(inner_.ip());
    w.u64(0xdeadbeefULL);
    return crypto::rsa_encrypt_bytes(rng, requestor_ap_, w.bytes());
  }

 private:
  HonestRelay inner_;
  const crypto::Identity* identity_;
  crypto::RsaPublicKey requestor_ap_;
};

TEST_F(RelayFixture, WrongNonceConfirmationRejected) {
  ReplayingRelay relay(3, &relay_identity);
  EXPECT_FALSE(fetch_anonymity_key(overlay, rng, requestor, 0, relay).has_value());
}

TEST_F(RelayFixture, SequentialHandshakesIndependent) {
  HonestRelay relay(3, &relay_identity);
  ASSERT_TRUE(fetch_anonymity_key(overlay, rng, requestor, 0, relay).has_value());
  ASSERT_TRUE(fetch_anonymity_key(overlay, rng, requestor, 0, relay).has_value());
}

}  // namespace
}  // namespace hirep::onion
