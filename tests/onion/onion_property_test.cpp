// Property-style randomized onion round-trips (§3.3).
//
// For 200 random (relay count 1–8, payload size, seed) tuples: build an
// onion carrying a known terminal payload, peel every layer in relay
// order, and assert (a) payload identity at the terminal peel, (b) the
// §3.3 indistinguishability properties at every intermediate layer — a
// relay sees only tag/next/inner with the same format whether its
// successor is a relay or the destination.  On failure the minimal
// shrunk tuple is printed so the case can be replayed as a unit test.
#include "onion/onion.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "crypto/identity.hpp"
#include "util/rng.hpp"

namespace hirep::onion {
namespace {

constexpr std::size_t kMaxRelays = 8;
constexpr net::NodeIndex kOwnerIp = 5;

struct Tuple {
  std::size_t relay_count = 0;  // 1..8
  std::size_t payload_size = 0;
  std::uint64_t seed = 0;

  std::string describe() const {
    std::ostringstream out;
    out << "(relays=" << relay_count << ", payload=" << payload_size
        << ", seed=" << seed << ")";
    return out.str();
  }
};

// One key pool for the whole suite: RSA keygen dominates runtime, and the
// properties under test concern layering, not key material.  relays[i] is
// adjacent-to-owner first, as build_onion expects.
struct KeyPool {
  KeyPool() : rng(0x0b5e55ed) {
    owner = std::make_unique<crypto::Identity>(
        crypto::Identity::generate(rng, 128));
    for (std::size_t i = 0; i < kMaxRelays; ++i) {
      relay_ids.push_back(crypto::Identity::generate(rng, 128));
      relays.push_back({static_cast<net::NodeIndex>(100 + i),
                        relay_ids.back().anonymity_public()});
    }
  }
  util::Rng rng;
  std::unique_ptr<crypto::Identity> owner;
  std::vector<crypto::Identity> relay_ids;
  std::vector<RelayInfo> relays;
};

KeyPool& pool() {
  static KeyPool p;
  return p;
}

// Runs the round-trip for one tuple.  Returns an empty string on success,
// otherwise a description of the first violated property.
std::string check_tuple(const Tuple& t) {
  auto& kp = pool();
  util::Rng rng(t.seed);

  util::Bytes payload(t.payload_size);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());

  const std::vector<RelayInfo> relays(kp.relays.begin(),
                                      kp.relays.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              t.relay_count));
  const Onion onion =
      build_onion(rng, *kp.owner, kOwnerIp, relays, t.seed, payload);

  if (!verify_onion(onion)) return "owner signature does not verify";
  if (onion.entry != relays.back().ip) return "entry is not the outermost relay";
  if (onion.relay_count != t.relay_count) return "relay_count mismatch";

  // Peel outermost-in: relay k-1 down to relay 0, then the owner.
  util::Bytes blob = onion.blob;
  for (std::size_t i = t.relay_count; i-- > 0;) {
    const auto peeled = peel(blob, kp.relay_ids[i].anonymity_private());
    if (!peeled) return "relay " + std::to_string(i) + " failed to peel";
    // §3.3 indistinguishability: every intermediate layer presents the
    // identical (tag, next, opaque inner) format — never terminal, and
    // the inner blob is ciphertext-sized whether or not the next hop is
    // the destination.
    if (peeled->terminal) {
      return "relay " + std::to_string(i) + " saw a terminal marker";
    }
    const net::NodeIndex expected_next = i > 0 ? relays[i - 1].ip : kOwnerIp;
    if (peeled->next != expected_next) {
      return "relay " + std::to_string(i) + " got wrong next hop";
    }
    if (peeled->inner.size() <= t.payload_size) {
      return "relay " + std::to_string(i) +
             " inner not padded beyond the raw payload (leaks position)";
    }
    // No other relay (nor a premature owner peel) can open this layer.
    const std::size_t other = (i + 1) % kMaxRelays;
    if (other != i &&
        peel(blob, kp.relay_ids[other].anonymity_private()).has_value()) {
      return "relay " + std::to_string(other) + " could peel layer " +
             std::to_string(i);
    }
    blob = peeled->inner;
  }

  const auto last = peel(blob, kp.owner->anonymity_private());
  if (!last) return "owner failed the terminal peel";
  if (!last->terminal) return "owner peel not marked terminal";
  if (last->next != kOwnerIp) return "terminal layer lost the owner address";
  if (last->inner != payload) return "payload identity violated";
  return "";
}

// Shrink: drop relays first, then halve the payload, re-checking each
// step; prints the smallest tuple that still fails.
Tuple shrink(Tuple failing) {
  Tuple best = failing;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    if (best.relay_count > 1) {
      Tuple candidate = best;
      candidate.relay_count -= 1;
      if (!check_tuple(candidate).empty()) {
        best = candidate;
        progressed = true;
        continue;
      }
    }
    if (best.payload_size > 0) {
      Tuple candidate = best;
      candidate.payload_size /= 2;
      if (!check_tuple(candidate).empty()) {
        best = candidate;
        progressed = true;
      }
    }
  }
  return best;
}

TEST(OnionProperty, TwoHundredRandomRoundTrips) {
  util::Rng meta(20260805);
  for (int i = 0; i < 200; ++i) {
    Tuple t;
    t.relay_count = 1 + meta.below(kMaxRelays);          // 1..8
    t.payload_size = meta.below(200);                    // 0..199 bytes
    t.seed = meta();
    const std::string violation = check_tuple(t);
    if (!violation.empty()) {
      const Tuple minimal = shrink(t);
      FAIL() << "onion round-trip property violated: " << violation
             << "\n  failing tuple:  " << t.describe()
             << "\n  shrunk tuple:   " << minimal.describe()
             << "\n  shrunk failure: " << check_tuple(minimal);
    }
  }
}

TEST(OnionProperty, EmptyPayloadRoundTrips) {
  EXPECT_EQ(check_tuple({1, 0, 42}), "");
}

TEST(OnionProperty, MaxRelaysRoundTrips) {
  EXPECT_EQ(check_tuple({kMaxRelays, 64, 7}), "");
}

}  // namespace
}  // namespace hirep::onion
