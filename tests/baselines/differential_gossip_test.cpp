// Differential-gossip baseline (arXiv:1210.4301): push-sum mass
// conservation toward the truth, the differential (mass-only) message
// cost, and the two adversary surfaces (mass evaporation on whitewash,
// neutral-prior sybil join).
#include "baselines/differential_gossip.hpp"

#include <gtest/gtest.h>

namespace hirep::baselines {
namespace {

DifferentialGossipOptions small_options() {
  DifferentialGossipOptions o;
  o.nodes = 120;
  o.seed = 4;
  o.world.malicious_ratio = 0.0;
  return o;
}

TEST(DifferentialGossip, StartsFromTheNeutralPrior) {
  DifferentialGossipSystem sys(small_options());
  EXPECT_DOUBLE_EQ(sys.estimate_at(0, 7), 0.5);
  EXPECT_DOUBLE_EQ(sys.run_transaction(0, 7).estimate, 0.5);
}

TEST(DifferentialGossip, MassSpreadsAndEstimatesTrackTheTruth) {
  DifferentialGossipSystem sys(small_options());
  const net::NodeIndex provider = 7;
  for (net::NodeIndex r = 0; r < 40; ++r) {
    if (r != provider) sys.run_transaction(r, provider);
  }
  // Raters who transacted (and their gossip recipients) hold mass whose
  // value/weight tracks the provider's truth.
  std::size_t informed = 0;
  const double truth = sys.truth().true_trust(provider);
  for (net::NodeIndex v = 0; v < 40; ++v) {
    const double e = sys.estimate_at(v, provider);
    if (e == 0.5) continue;  // still on the prior: no mass reached v
    ++informed;
    EXPECT_NEAR(e, truth, 0.45) << "node " << v;
  }
  EXPECT_GT(informed, 10u);
}

TEST(DifferentialGossip, GossipIsDifferentialNotFlooding) {
  // Message cost per transaction is bounded by the number of mass holders
  // (at most raters + their push chains), never the whole network.
  auto o = small_options();
  o.gossip_rounds = 3;
  DifferentialGossipSystem sys(o);
  const auto rec = sys.run_transaction(0, 7);
  // A single fresh opinion: at most one push per round, so at most
  // gossip_rounds... plus the spread it seeds.  It must be far below one
  // message per node.
  EXPECT_LE(rec.trust_messages, o.gossip_rounds * 4);
  EXPECT_LT(rec.trust_messages, o.nodes);
}

TEST(DifferentialGossip, WhitewashEvaporatesCirculatingMass) {
  DifferentialGossipSystem sys(small_options());
  const net::NodeIndex peer = 7;
  for (net::NodeIndex r = 20; r < 40; ++r) sys.run_transaction(r, peer);
  bool any_mass = false;
  for (net::NodeIndex v = 0; v < 60; ++v) {
    any_mass = any_mass || sys.estimate_at(v, peer) != 0.5;
  }
  ASSERT_TRUE(any_mass);
  sys.reset_reputation(peer);
  for (net::NodeIndex v = 0;
       v < static_cast<net::NodeIndex>(sys.node_count()); ++v) {
    EXPECT_DOUBLE_EQ(sys.estimate_at(v, peer), 0.5) << "node " << v;
  }
}

TEST(DifferentialGossip, SybilJoinsAtTheNeutralPrior) {
  DifferentialGossipSystem sys(small_options());
  const std::size_t before = sys.node_count();
  const net::NodeIndex v = sys.add_node(4);
  EXPECT_EQ(sys.node_count(), before + 1);
  EXPECT_DOUBLE_EQ(sys.estimate_at(0, v), 0.5);
  EXPECT_FALSE(sys.overlay().graph().neighbors(v).empty());
  const auto rec = sys.run_transaction(v, 7);
  EXPECT_EQ(rec.requestor, v);
}

TEST(DifferentialGossip, DeterministicGivenSeed) {
  DifferentialGossipSystem a(small_options()), b(small_options());
  for (int i = 0; i < 20; ++i) {
    const auto requestor = static_cast<net::NodeIndex>(i % 10);
    const auto provider = static_cast<net::NodeIndex>(20 + i % 30);
    const auto ra = a.run_transaction(requestor, provider);
    const auto rb = b.run_transaction(requestor, provider);
    EXPECT_DOUBLE_EQ(ra.estimate, rb.estimate);
    EXPECT_EQ(ra.trust_messages, rb.trust_messages);
  }
}

}  // namespace
}  // namespace hirep::baselines
