#include "baselines/rca.hpp"

#include <gtest/gtest.h>

namespace hirep::baselines {
namespace {

RcaOptions small_options() {
  RcaOptions o;
  o.nodes = 150;
  o.seed = 4;
  o.world.malicious_ratio = 0.0;
  return o;
}

TEST(Rca, ConstantThreeMessagesPerTransaction) {
  RcaSystem sys(small_options());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sys.run_transaction().trust_messages, 3u);
  }
}

TEST(Rca, LearnsFromReports) {
  RcaSystem sys(small_options());
  const net::NodeIndex provider = 7;
  EXPECT_DOUBLE_EQ(sys.run_transaction(0, provider).estimate, 0.5);
  for (int i = 0; i < 5; ++i) sys.run_transaction(0, provider);
  const auto rec = sys.run_transaction(1, provider);
  EXPECT_NEAR(rec.estimate, sys.truth().true_trust(provider), 0.05);
  EXPECT_GT(sys.reports_stored(), 0u);
}

TEST(Rca, SinglePointOfFailure) {
  RcaSystem sys(small_options());
  sys.run_transaction(0, 7);
  sys.set_rca_online(false);
  const auto rec = sys.run_transaction(1, 7);
  EXPECT_FALSE(rec.answered);
  EXPECT_DOUBLE_EQ(rec.estimate, 0.5);    // no information at all
  EXPECT_EQ(rec.trust_messages, 0u);
  sys.set_rca_online(true);
  EXPECT_TRUE(sys.run_transaction(1, 7).answered);
}

TEST(Rca, BottleneckSerializesConcurrentQueries) {
  RcaSystem sys(small_options());
  // The last of N concurrent queries waits behind N-1 serial handlings at
  // the RCA: the burst completion grows roughly linearly in N.
  const double small_burst = sys.timed_query_burst_ms(10);
  const double large_burst = sys.timed_query_burst_ms(500);
  EXPECT_GT(large_burst, small_burst + 400.0 * 1.0 * 0.9);
}

TEST(Rca, DeterministicGivenSeed) {
  RcaSystem a(small_options()), b(small_options());
  for (int i = 0; i < 10; ++i) {
    const auto ra = a.run_transaction();
    const auto rb = b.run_transaction();
    EXPECT_EQ(ra.provider, rb.provider);
    EXPECT_DOUBLE_EQ(ra.estimate, rb.estimate);
  }
}

}  // namespace
}  // namespace hirep::baselines
