// Absolute Trust baseline (arXiv:1601.01419): opinion accumulation, the
// damped weighted fixed point, lying-minority downweighting, and the two
// adversary surfaces (identity-keyed whitewash reset, neutral-prior sybil
// join).
#include "baselines/absolute_trust.hpp"

#include <gtest/gtest.h>

namespace hirep::baselines {
namespace {

AbsoluteTrustOptions small_options() {
  AbsoluteTrustOptions o;
  o.nodes = 120;
  o.seed = 4;
  o.world.malicious_ratio = 0.0;
  return o;
}

TEST(AbsoluteTrust, StartsFromTheNeutralPrior) {
  AbsoluteTrustSystem sys(small_options());
  EXPECT_DOUBLE_EQ(sys.global_trust(7), 0.5);
  EXPECT_DOUBLE_EQ(sys.run_transaction(0, 7).estimate, 0.5);
}

TEST(AbsoluteTrust, ConvergesTowardTheTruthWithHonestRaters) {
  AbsoluteTrustSystem sys(small_options());
  const net::NodeIndex provider = 7;
  for (net::NodeIndex r = 0; r < 30; ++r) {
    if (r != provider) sys.run_transaction(r, provider);
  }
  EXPECT_NEAR(sys.global_trust(provider), sys.truth().true_trust(provider),
              0.25);
}

TEST(AbsoluteTrust, ChargesOneExchangePerNeighborPerTransaction) {
  AbsoluteTrustSystem sys(small_options());
  for (int i = 0; i < 5; ++i) {
    const auto rec = sys.run_transaction(static_cast<net::NodeIndex>(i), 50);
    const auto degree =
        sys.overlay().graph().neighbors(rec.requestor).size();
    // One kTrustRequest + one kTrustResponse per neighbor.
    EXPECT_EQ(rec.trust_messages, 2 * degree);
  }
}

TEST(AbsoluteTrust, LyingMinorityWeightCollapses) {
  // A rater whose own standing is low contributes little: drive one
  // rater's reputation down, then compare a target rated only by it
  // against a target rated by the honest majority.
  AbsoluteTrustSystem sys(small_options());
  const net::NodeIndex liar = 3;
  const net::NodeIndex honest_target = 40;
  // The community learns the liar's own (seeded) trust first.
  for (net::NodeIndex r = 10; r < 30; ++r) sys.run_transaction(r, liar);
  for (net::NodeIndex r = 10; r < 30; ++r) {
    sys.run_transaction(r, honest_target);
  }
  const double honest_score = sys.global_trust(honest_target);
  EXPECT_NEAR(honest_score, sys.truth().true_trust(honest_target), 0.3);
}

TEST(AbsoluteTrust, WhitewashResetWipesStanding) {
  AbsoluteTrustSystem sys(small_options());
  const net::NodeIndex peer = 7;
  for (net::NodeIndex r = 20; r < 40; ++r) sys.run_transaction(r, peer);
  ASSERT_NE(sys.global_trust(peer), 0.5);
  sys.reset_reputation(peer);
  // Identity-keyed: a shed identity re-enters at the neutral prior, and no
  // opinion about the old identity survives.
  EXPECT_DOUBLE_EQ(sys.global_trust(peer), 0.5);
}

TEST(AbsoluteTrust, SybilJoinsAtTheNeutralPrior) {
  AbsoluteTrustSystem sys(small_options());
  const std::size_t before = sys.node_count();
  const net::NodeIndex v = sys.add_node(4);
  EXPECT_EQ(sys.node_count(), before + 1);
  EXPECT_EQ(v, static_cast<net::NodeIndex>(before));
  EXPECT_DOUBLE_EQ(sys.global_trust(v), 0.5);
  EXPECT_FALSE(sys.overlay().graph().neighbors(v).empty());
  // The grown matrices accept transactions touching the new node.
  const auto rec = sys.run_transaction(v, 7);
  EXPECT_EQ(rec.requestor, v);
}

TEST(AbsoluteTrust, DeterministicGivenSeed) {
  AbsoluteTrustSystem a(small_options()), b(small_options());
  for (int i = 0; i < 20; ++i) {
    const auto requestor = static_cast<net::NodeIndex>(i % 10);
    const auto provider = static_cast<net::NodeIndex>(20 + i % 30);
    const auto ra = a.run_transaction(requestor, provider);
    const auto rb = b.run_transaction(requestor, provider);
    EXPECT_DOUBLE_EQ(ra.estimate, rb.estimate);
    EXPECT_EQ(ra.trust_messages, rb.trust_messages);
  }
}

}  // namespace
}  // namespace hirep::baselines
