#include "baselines/pure_voting.hpp"

#include <gtest/gtest.h>

namespace hirep::baselines {
namespace {

VotingOptions small_options() {
  VotingOptions o;
  o.nodes = 200;
  o.average_degree = 4.0;
  o.ttl = 4;
  o.seed = 5;
  o.world.malicious_ratio = 0.0;
  return o;
}

TEST(PureVoting, PollReachesVotersAndCountsTraffic) {
  PureVotingSystem sys(small_options());
  const auto r = sys.poll(0, 1);
  EXPECT_GT(r.votes, 10u);
  EXPECT_GT(r.messages, r.votes);  // flood + responses exceed vote count
  EXPECT_EQ(sys.overlay().metrics().total(), r.messages);
}

TEST(PureVoting, HonestVotesLandOnCorrectSide) {
  PureVotingSystem sys(small_options());
  for (net::NodeIndex provider = 1; provider < 20; ++provider) {
    const auto r = sys.poll(0, provider);
    if (r.votes == 0) continue;
    if (sys.truth().trustable(provider)) {
      EXPECT_GT(r.estimate, 0.5);
    } else {
      EXPECT_LT(r.estimate, 0.5);
    }
  }
}

TEST(PureVoting, MaliciousVotersDegradeEstimate) {
  auto honest_opts = small_options();
  auto bad_opts = small_options();
  bad_opts.world.malicious_ratio = 0.5;
  PureVotingSystem honest(honest_opts);
  PureVotingSystem corrupted(bad_opts);

  // Compare average absolute error across many polls.
  auto error_of = [](PureVotingSystem& sys) {
    double err = 0;
    int n = 0;
    for (net::NodeIndex p = 1; p < 40; ++p) {
      const auto r = sys.poll(0, p);
      if (r.votes == 0) continue;
      err += std::abs(r.estimate - sys.truth().true_trust(p));
      ++n;
    }
    return err / n;
  };
  EXPECT_LT(error_of(honest), error_of(corrupted));
}

TEST(PureVoting, ProviderDoesNotVoteOnItself) {
  PureVotingSystem sys(small_options());
  // Poll a neighbor of the requestor so the provider is surely reached.
  const auto nbs = sys.overlay().graph().neighbors(0);
  ASSERT_FALSE(nbs.empty());
  const auto provider = nbs[0];
  const auto flood_reach =
      net::flood(sys.overlay(), 0, 4, net::MessageKind::kControl).reached.size();
  const auto r = sys.poll(0, provider);
  EXPECT_EQ(r.votes, flood_reach - 1);  // everyone reached except provider
}

TEST(PureVoting, TransactionRecordConsistent) {
  PureVotingSystem sys(small_options());
  const auto rec = sys.run_transaction();
  EXPECT_NE(rec.requestor, rec.provider);
  EXPECT_EQ(rec.truth_value, sys.truth().true_trust(rec.provider));
  EXPECT_GT(rec.trust_messages, 0u);
}

TEST(PureVoting, TimedPollProducesPositiveResponseTime) {
  PureVotingSystem sys(small_options());
  const auto r = sys.poll_timed(0, 1);
  EXPECT_GT(r.votes, 0u);
  EXPECT_GT(r.response_ms, 0.0);
  // At least one round trip of min latency + processing.
  EXPECT_GE(r.response_ms, 2 * (10.0 + 1.0));
}

TEST(PureVoting, TimedPollScalesWithVoteCount) {
  // The requestor ingests every vote serially, so response time is at
  // least votes * processing_ms.
  PureVotingSystem sys(small_options());
  const auto r = sys.poll_timed(0, 1);
  EXPECT_GE(r.response_ms, static_cast<double>(r.votes) *
                               sys.overlay().latency().processing_ms());
}

TEST(PureVoting, LargerTtlMoreTraffic) {
  auto o1 = small_options();
  o1.ttl = 2;
  auto o2 = small_options();
  o2.ttl = 4;
  PureVotingSystem shallow(o1), deep(o2);
  const auto r1 = shallow.poll(0, 1);
  const auto r2 = deep.poll(0, 1);
  EXPECT_LT(r1.messages, r2.messages);
}

TEST(PureVoting, DeterministicGivenSeed) {
  PureVotingSystem a(small_options()), b(small_options());
  const auto ra = a.run_transaction();
  const auto rb = b.run_transaction();
  EXPECT_EQ(ra.requestor, rb.requestor);
  EXPECT_EQ(ra.provider, rb.provider);
  EXPECT_DOUBLE_EQ(ra.estimate, rb.estimate);
  EXPECT_EQ(ra.trust_messages, rb.trust_messages);
}

}  // namespace
}  // namespace hirep::baselines
