#include "baselines/trustme.hpp"

#include <gtest/gtest.h>

namespace hirep::baselines {
namespace {

TrustMeOptions small_options() {
  TrustMeOptions o;
  o.nodes = 150;
  o.average_degree = 4.0;
  o.ttl = 5;
  o.thas_per_peer = 4;
  o.seed = 3;
  o.world.malicious_ratio = 0.0;
  return o;
}

TEST(TrustMe, ThaAssignmentShape) {
  TrustMeSystem sys(small_options());
  for (net::NodeIndex peer = 0; peer < 150; ++peer) {
    const auto& thas = sys.thas_of(peer);
    EXPECT_LE(thas.size(), 4u);
    EXPECT_GE(thas.size(), 3u);  // sampling may drop the self-index pick
    for (auto t : thas) EXPECT_NE(t, peer);
  }
}

TEST(TrustMe, FirstQueryIsUninformed) {
  TrustMeSystem sys(small_options());
  const auto rec = sys.run_transaction(0, 1);
  // THAs had no reports yet: every answer is the 0.5 prior.
  if (rec.responses > 0) {
    EXPECT_DOUBLE_EQ(rec.estimate, 0.5);
  }
}

TEST(TrustMe, LearnsFromReportBroadcasts) {
  TrustMeSystem sys(small_options());
  // Repeat transactions with the same provider; its THAs accumulate real
  // outcomes and later estimates match the truth.
  const net::NodeIndex provider = 9;
  for (int i = 0; i < 10; ++i) sys.run_transaction(0, provider);
  const auto rec = sys.run_transaction(0, provider);
  if (rec.responses > 0) {
    EXPECT_NEAR(rec.estimate, sys.truth().true_trust(provider), 0.05);
  }
}

TEST(TrustMe, DoubleBroadcastCostsMoreThanOneFlood) {
  TrustMeSystem sys(small_options());
  const auto rec = sys.run_transaction(0, 1);
  // Compare with a single flood of the same TTL.
  TrustMeSystem fresh(small_options());
  const auto one_flood =
      net::flood(fresh.overlay(), 0, 5, net::MessageKind::kControl).messages;
  EXPECT_GT(rec.trust_messages, one_flood);
}

TEST(TrustMe, MaliciousThaInverts) {
  auto opts = small_options();
  opts.world.malicious_ratio = 1.0;  // all THAs malicious
  TrustMeSystem sys(opts);
  const net::NodeIndex provider = 5;
  for (int i = 0; i < 8; ++i) sys.run_transaction(0, provider);
  const auto rec = sys.run_transaction(0, provider);
  if (rec.responses > 0) {
    // Estimates are inverted relative to the truth.
    EXPECT_NEAR(rec.estimate, 1.0 - sys.truth().true_trust(provider), 0.05);
  }
}

TEST(TrustMe, RandomTransactionRuns) {
  TrustMeSystem sys(small_options());
  for (int i = 0; i < 5; ++i) {
    const auto rec = sys.run_transaction();
    EXPECT_NE(rec.requestor, rec.provider);
    EXPECT_GT(rec.trust_messages, 0u);
  }
}

}  // namespace
}  // namespace hirep::baselines
