// The invariant layer (hirep::check): the registry itself, every checker
// primitive (positive and negative), and the hot-path wiring — each wired
// invariant is proven to fire on a seeded violation and to stay silent
// across a clean end-to-end run.
#include "check/check.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "check/invariants.hpp"
#include "crypto/identity.hpp"
#include "hirep/protocol.hpp"
#include "hirep/system.hpp"
#include "net/event_sim.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"

namespace hirep::check {
namespace {

// ---------------------------------------------------------------- registry

TEST(CheckRegistry, ReportStoresStructuredViolations) {
  clear();
  report({"test.registry.basic", "something broke", 12.5, 7, 9});
  EXPECT_EQ(violation_count(), 1u);
  const auto stored = violations();
  ASSERT_EQ(stored.size(), 1u);
  EXPECT_EQ(stored[0].invariant, "test.registry.basic");
  EXPECT_EQ(stored[0].detail, "something broke");
  EXPECT_DOUBLE_EQ(stored[0].tick, 12.5);
  EXPECT_EQ(stored[0].actor, 7u);
  EXPECT_EQ(stored[0].subject, 9u);
  clear();
  EXPECT_EQ(violation_count(), 0u);
  EXPECT_TRUE(violations().empty());
}

TEST(CheckRegistry, StorageIsBoundedButTotalKeepsCounting) {
  clear();
  for (int i = 0; i < 1100; ++i) {
    report({"test.registry.bounded", "flood", -1.0, 0, 0});
  }
  EXPECT_EQ(violation_count(), 1100u);
  EXPECT_LE(violations().size(), 1024u);
  clear();
}

TEST(CheckRegistry, ScopedCaptureRedirectsAndNests) {
  clear();
  ScopedCapture outer;
  report({"test.capture.outer", "", -1.0, 0, 0});
  {
    ScopedCapture inner;
    report({"test.capture.inner", "", -1.0, 0, 0});
    EXPECT_EQ(inner.count(), 1u);
    EXPECT_TRUE(inner.fired("test.capture.inner"));
    EXPECT_FALSE(inner.fired("test.capture.outer"));
  }
  report({"test.capture.outer", "", -1.0, 0, 0});
  EXPECT_EQ(outer.count(), 2u);
  EXPECT_TRUE(outer.fired("test.capture.outer"));
  // Nothing leaked into the global registry while captures were active.
  EXPECT_EQ(violation_count(), 0u);
}

// -------------------------------------------------------------- primitives

TEST(CheckPrimitives, MonotoneSequenceAcceptsNonDecreasingPerPair) {
  ScopedCapture capture;
  MonotoneSequence seq("test.sq.monotone");
  EXPECT_TRUE(seq.note(1, 2, 5));
  EXPECT_TRUE(seq.note(1, 2, 5));   // equal is fine (non-decreasing)
  EXPECT_TRUE(seq.note(1, 2, 9));
  EXPECT_TRUE(seq.note(1, 3, 1));   // other holder: independent history
  EXPECT_TRUE(seq.note(4, 2, 1));   // other issuer: independent history
  EXPECT_EQ(capture.count(), 0u);
}

TEST(CheckPrimitives, MonotoneSequenceFiresOnRegression) {
  ScopedCapture capture;
  MonotoneSequence seq("test.sq.monotone");
  EXPECT_TRUE(seq.note(1, 2, 9, 3.0));
  EXPECT_FALSE(seq.note(1, 2, 4, 7.0));
  ASSERT_EQ(capture.count(), 1u);
  const auto& v = capture.captured()[0];
  EXPECT_EQ(v.invariant, "test.sq.monotone");
  EXPECT_DOUBLE_EQ(v.tick, 7.0);
  EXPECT_EQ(v.actor, 1u);
  EXPECT_EQ(v.subject, 2u);
}

TEST(CheckPrimitives, MonotoneSequenceForgetResetsThePair) {
  ScopedCapture capture;
  MonotoneSequence seq("test.sq.monotone");
  EXPECT_TRUE(seq.note(1, 2, 9));
  seq.forget(1, 2);
  EXPECT_TRUE(seq.note(1, 2, 1));  // re-discovery starts a fresh lifetime
  EXPECT_EQ(capture.count(), 0u);
}

TEST(CheckPrimitives, UnitIntervalAcceptsInBoundsValues) {
  ScopedCapture capture;
  EXPECT_TRUE(unit_interval("test.bounds", 0.0));
  EXPECT_TRUE(unit_interval("test.bounds", 1.0));
  EXPECT_TRUE(unit_interval("test.bounds", 0.5));
  EXPECT_EQ(capture.count(), 0u);
}

TEST(CheckPrimitives, UnitIntervalFiresOutsideAndOnNonFinite) {
  ScopedCapture capture;
  EXPECT_FALSE(unit_interval("test.bounds", -0.1, 5, 6));
  EXPECT_FALSE(unit_interval("test.bounds", 1.1));
  EXPECT_FALSE(unit_interval("test.bounds", std::nan("")));
  EXPECT_FALSE(unit_interval("test.bounds",
                             std::numeric_limits<double>::infinity()));
  EXPECT_EQ(capture.count(), 4u);
  EXPECT_EQ(capture.captured()[0].actor, 5u);
  EXPECT_EQ(capture.captured()[0].subject, 6u);
}

TEST(CheckPrimitives, MonotoneClockFiresOnBackwardEvent) {
  ScopedCapture capture;
  EXPECT_TRUE(monotone_clock("test.clock", 10.0, 10.0));
  EXPECT_TRUE(monotone_clock("test.clock", 10.0, 11.0));
  EXPECT_FALSE(monotone_clock("test.clock", 10.0, 9.0));
  ASSERT_EQ(capture.count(), 1u);
  EXPECT_DOUBLE_EQ(capture.captured()[0].tick, 10.0);
}

TEST(CheckPrimitives, ConservedFiresOnAccountingLeak) {
  ScopedCapture capture;
  EXPECT_TRUE(conserved("test.conserve", 10, 7, 2, 1, "ctx"));
  EXPECT_FALSE(conserved("test.conserve", 10, 7, 2, 0, "ctx"));
  ASSERT_EQ(capture.count(), 1u);
  EXPECT_NE(capture.captured()[0].detail.find("ctx"), std::string::npos);
}

TEST(CheckPrimitives, BindingFiresOnMismatch) {
  ScopedCapture capture;
  EXPECT_TRUE(binding("test.binding", true));
  EXPECT_FALSE(binding("test.binding", false, 3, 4));
  ASSERT_EQ(capture.count(), 1u);
  EXPECT_EQ(capture.captured()[0].actor, 3u);
  EXPECT_EQ(capture.captured()[0].subject, 4u);
}

TEST(CheckPrimitives, GateIsSilentWhenThePreconditionHeld) {
  ScopedCapture capture;
  EXPECT_TRUE(gate("test.gate", true, "guarded action"));
  EXPECT_EQ(capture.count(), 0u);
}

TEST(CheckPrimitives, GateFiresWhenAGuardedActionRanWithoutItsPrecondition) {
  ScopedCapture capture;
  EXPECT_FALSE(gate("test.gate", false, "trusted-list admission", 3, 4));
  ASSERT_EQ(capture.count(), 1u);
  const auto& v = capture.captured()[0];
  EXPECT_EQ(v.invariant, "test.gate");
  EXPECT_NE(v.detail.find("trusted-list admission"), std::string::npos);
  EXPECT_EQ(v.actor, 3u);
  EXPECT_EQ(v.subject, 4u);
}

// ------------------------------------------------------------- hot-path wiring
//
// These prove the invariants are live in the code paths they guard.  They
// need the wiring compiled in, so they skip in HIREP_CHECKS=OFF builds
// (where the primitives above still run).

core::HirepOptions small_options(core::CryptoMode mode) {
  core::HirepOptions o;
  o.nodes = 48;
  o.rsa_bits = 64;
  o.trusted_agents = 4;
  o.onion_relays = 2;
  o.crypto = mode;
  o.seed = 11;
  o.world.malicious_ratio = 0.0;
  return o;
}

TEST(CheckWiring, CleanFullRunReportsNoViolations) {
  if (!kEnabled) GTEST_SKIP() << "built with HIREP_CHECKS=OFF";
  ScopedCapture capture;
  {
    core::HirepSystem sys(small_options(core::CryptoMode::kFull));
    for (int i = 0; i < 20; ++i) sys.run_transaction();
    const auto joined = sys.join_peer();
    sys.run_transaction(joined, (joined + 1) % sys.node_count());
    sys.rotate_peer_key(0);
    sys.run_transaction();
  }  // transport teardown runs the conservation check
  EXPECT_EQ(capture.count(), 0u)
      << (capture.count() ? capture.captured()[0].invariant + ": " +
                                capture.captured()[0].detail
                          : "");
}

TEST(CheckWiring, TamperedHeldOnionSqFiresHolderMonotone) {
  if (!kEnabled) GTEST_SKIP() << "built with HIREP_CHECKS=OFF";
  // kFast routes by the entry's recorded relay path, so inflating the held
  // onion's sq does not break delivery — the refreshed onion then looks
  // older than the held one, which is exactly the holder-side violation.
  core::HirepSystem sys(small_options(core::CryptoMode::kFast));
  net::NodeIndex requestor = net::kInvalidNode;
  for (net::NodeIndex v = 0; v < sys.node_count(); ++v) {
    if (!sys.peer(v).agents().entries().empty()) {
      requestor = v;
      break;
    }
  }
  ASSERT_NE(requestor, net::kInvalidNode);
  for (auto& entry : sys.peer(requestor).agents().entries()) {
    entry.onion.sq += 1'000'000;
  }
  ScopedCapture capture;
  sys.query_trust(requestor, (requestor + 1) % sys.node_count());
  EXPECT_TRUE(capture.fired("onion.sq.holder_monotone"));
}

TEST(CheckWiring, ForgedReporterIdFiresProtocolBinding) {
  if (!kEnabled) GTEST_SKIP() << "built with HIREP_CHECKS=OFF";
  util::Rng rng(7);
  const auto reporter = crypto::Identity::generate(rng, 128);
  const auto imposter = crypto::Identity::generate(rng, 128);
  const auto subject = crypto::Identity::generate(rng, 64);
  auto report = core::build_report(reporter, subject.node_id(), 1.0, 42);

  ScopedCapture capture;
  ASSERT_TRUE(
      core::verify_report(reporter.signature_public(), report).has_value());
  EXPECT_EQ(capture.count(), 0u);  // honest report: id matches the key

  // The reporter id rides outside the signed body, so swapping it leaves
  // the signature valid — acceptance with a mismatched id must be flagged.
  report.reporter = imposter.node_id();
  ASSERT_TRUE(
      core::verify_report(reporter.signature_public(), report).has_value());
  EXPECT_TRUE(capture.fired("protocol.report.binding"));
}

TEST(CheckWiring, IdentityGenerationSatisfiesBinding) {
  if (!kEnabled) GTEST_SKIP() << "built with HIREP_CHECKS=OFF";
  ScopedCapture capture;
  util::Rng rng(9);
  auto id = crypto::Identity::generate(rng, 64);
  id.rotate_signature_key(rng, 64);
  EXPECT_EQ(capture.count(), 0u);
}

TEST(CheckWiring, TransportTeardownFiresOnUnaccountedEnvelope) {
  if (!kEnabled) GTEST_SKIP() << "built with HIREP_CHECKS=OFF";
  net::Overlay overlay(net::ring_lattice(8, 2), net::LatencyParams{}, 1);
  ScopedCapture capture;
  {
    net::Transport transport(&overlay, net::DeliveryConfig{}, 1);
    transport.send(net::EnvelopeType::kProbe, 0, {1, 2});
    // An envelope enters the books but never traverses the transport.
    transport.envelopes().count_sent(net::EnvelopeType::kProbe);
  }
  EXPECT_TRUE(capture.fired("net.envelope.conservation"));
}

TEST(CheckWiring, TransportTeardownIsSilentWhenBooksBalance) {
  if (!kEnabled) GTEST_SKIP() << "built with HIREP_CHECKS=OFF";
  net::Overlay overlay(net::ring_lattice(8, 2), net::LatencyParams{}, 1);
  ScopedCapture capture;
  {
    net::Transport transport(&overlay, net::DeliveryConfig{}, 1);
    transport.send(net::EnvelopeType::kProbe, 0, {1, 2});
    transport.send(net::EnvelopeType::kTrustRequest, 2, {3});
  }
  EXPECT_EQ(capture.count(), 0u);
}

TEST(CheckWiring, EventClockStaysMonotoneThroughOutOfOrderScheduling) {
  if (!kEnabled) GTEST_SKIP() << "built with HIREP_CHECKS=OFF";
  ScopedCapture capture;
  net::EventSim sim;
  int order = 0;
  sim.schedule_at(5.0, [&] { ++order; });
  sim.schedule_at(1.0, [&] { ++order; });
  sim.schedule_at(3.0, [&] { sim.schedule_in(0.5, [&] { ++order; }); });
  sim.run();
  EXPECT_EQ(order, 3);
  EXPECT_EQ(capture.count(), 0u);
}

}  // namespace
}  // namespace hirep::check
