#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace hirep::util {
namespace {

TEST(Bytes, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(3.14159);
  w.str("hello");
  const Bytes payload{1, 2, 3};
  w.blob(payload);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.blob(), payload);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  const Bytes expected{0x04, 0x03, 0x02, 0x01};
  EXPECT_EQ(w.bytes(), expected);
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.u64(), TruncatedInput);
}

TEST(Bytes, TruncatedBlobThrows) {
  ByteWriter w;
  w.u32(100);  // claims a 100-byte blob follows, but nothing does
  ByteReader r(w.bytes());
  EXPECT_THROW(r.blob(), TruncatedInput);
}

TEST(Bytes, EmptyBlobOk) {
  ByteWriter w;
  w.blob(Bytes{});
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.blob().empty());
  EXPECT_TRUE(r.done());
}

TEST(Bytes, RemainingTracksPosition) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_TRUE(r.done());
}

TEST(Bytes, RawPassThrough) {
  ByteWriter w;
  const Bytes data{9, 8, 7};
  w.raw(data);
  EXPECT_EQ(w.bytes(), data);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.raw(3), data);
}

TEST(Bytes, TakeMovesBuffer) {
  ByteWriter w;
  w.u8(5);
  const Bytes taken = w.take();
  EXPECT_EQ(taken.size(), 1u);
}

TEST(CtEqual, EqualAndUnequal) {
  const Bytes a{1, 2, 3}, b{1, 2, 3}, c{1, 2, 4}, d{1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Hex, RoundTrip) {
  const Bytes data{0x00, 0xff, 0xa5, 0x3c};
  const auto hex = to_hex(data);
  EXPECT_EQ(hex, "00ffa53c");
  EXPECT_EQ(from_hex(hex), data);
}

TEST(Hex, UpperCaseAccepted) {
  EXPECT_EQ(from_hex("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, InvalidInputThrows) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
}

TEST(Hex, Empty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

}  // namespace
}  // namespace hirep::util
