#include "util/config.hpp"

#include <gtest/gtest.h>

namespace hirep::util {
namespace {

TEST(Config, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "nodes=100", "ratio=0.5", "name=test"};
  const auto c = Config::from_args(4, argv);
  EXPECT_EQ(c.get_int("nodes", 0), 100);
  EXPECT_DOUBLE_EQ(c.get_double("ratio", 0.0), 0.5);
  EXPECT_EQ(c.get_string("name", ""), "test");
}

TEST(Config, FallbacksWhenAbsent) {
  const auto c = Config::from_string("");
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(c.get_string("missing", "dflt"), "dflt");
  EXPECT_TRUE(c.get_bool("missing", true));
}

TEST(Config, MalformedTokenThrows) {
  const char* argv[] = {"prog", "novalue"};
  EXPECT_THROW(Config::from_args(2, argv), std::invalid_argument);
  const char* argv2[] = {"prog", "=5"};
  EXPECT_THROW(Config::from_args(2, argv2), std::invalid_argument);
}

TEST(Config, HelpFlag) {
  const char* argv[] = {"prog", "--help"};
  EXPECT_TRUE(Config::from_args(2, argv).help_requested());
  const char* argv2[] = {"prog", "-h"};
  EXPECT_TRUE(Config::from_args(2, argv2).help_requested());
}

TEST(Config, BadIntThrows) {
  const auto c = Config::from_string("n=12x");
  EXPECT_THROW(c.get_int("n", 0), std::invalid_argument);
}

TEST(Config, BadDoubleThrows) {
  const auto c = Config::from_string("x=abc");
  EXPECT_THROW(c.get_double("x", 0.0), std::invalid_argument);
}

TEST(Config, BoolParsing) {
  const auto c = Config::from_string("a=1 b=true c=off d=no");
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_TRUE(c.get_bool("b", false));
  EXPECT_FALSE(c.get_bool("c", true));
  EXPECT_FALSE(c.get_bool("d", true));
  const auto bad = Config::from_string("e=maybe");
  EXPECT_THROW(bad.get_bool("e", false), std::invalid_argument);
}

TEST(Config, DoubleList) {
  const auto c = Config::from_string("thresholds=0.4,0.6,0.8");
  const auto v = c.get_double_list("thresholds", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 0.6);
  const auto fallback = c.get_double_list("absent", {1.0});
  EXPECT_EQ(fallback.size(), 1u);
}

TEST(Config, UnusedKeysDetectsTypos) {
  const auto c = Config::from_string("used=1 typo=2");
  c.get_int("used", 0);
  const auto unused = c.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Config, LastValueWins) {
  const auto c = Config::from_string("k=1 k=2");
  EXPECT_EQ(c.get_int("k", 0), 2);
}

}  // namespace
}  // namespace hirep::util
