#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <thread>

namespace hirep::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasks) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ManyTasksAggregate) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) {
    sum.fetch_add(static_cast<std::int64_t>(i));
  });
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForDrainsAllTasksBeforeRethrowing) {
  // A throwing index must not let parallel_for return while later tasks
  // (which reference the callable) are still queued or running.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   if (i == 0) throw std::logic_error("x");
                                   ran.fetch_add(1);
                                 }),
               std::logic_error);
  EXPECT_EQ(ran.load(), 63);
}

TEST(ThreadPool, ShutdownDiscardsQueuedTasksBehindABlockedWorker) {
  std::promise<void> release;
  std::atomic<bool> in_flight_started{false};
  std::atomic<int> queued_ran{0};
  std::future<void> blocked, queued;
  std::thread releaser;
  {
    ThreadPool pool(1);
    blocked = pool.submit([&] {
      in_flight_started = true;
      release.get_future().wait();
    });
    while (!in_flight_started.load()) std::this_thread::yield();
    queued = pool.submit([&] { queued_ran.fetch_add(1); });
    // Open the gate only once teardown is underway, so the queued task is
    // provably still unstarted when the destructor clears the queue.
    releaser = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      release.set_value();
    });
  }  // destructor: discard queued task, finish the in-flight one, join
  releaser.join();
  EXPECT_NO_THROW(blocked.get());
  EXPECT_EQ(queued_ran.load(), 0);
  EXPECT_THROW(queued.get(), std::future_error);
}

TEST(ThreadPool, ShutdownCannotBeWedgedByAQueuedBlockingTask) {
  std::promise<void> never;  // intentionally never satisfied
  std::atomic<bool> started{false};
  std::future<void> f;
  {
    ThreadPool pool(1);
    pool.submit([&] {
      started = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    f = pool.submit([&] { never.get_future().wait(); });  // queued behind
    while (!started.load()) std::this_thread::yield();
  }  // draining semantics would run the waiter here and hang forever
  EXPECT_THROW(f.get(), std::future_error);
}

TEST(ThreadPool, ShutdownStressAccountsForEveryTask) {
  // Hammer teardown while the queue is full: every submitted task either
  // completed before the pool died (and is counted) or surfaces
  // broken_promise — never lost, never run after teardown.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    futures.reserve(64);
    {
      ThreadPool pool(2);
      for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
      }
    }  // destructor races the workers mid-queue
    const int after_teardown = ran.load();
    int completed = 0, broken = 0;
    for (auto& f : futures) {
      try {
        f.get();
        ++completed;
      } catch (const std::future_error& e) {
        EXPECT_EQ(e.code(),
                  std::make_error_code(std::future_errc::broken_promise));
        ++broken;
      }
    }
    EXPECT_EQ(completed + broken, 64);
    EXPECT_EQ(completed, after_teardown);
    EXPECT_EQ(ran.load(), after_teardown);
  }
}

}  // namespace
}  // namespace hirep::util
