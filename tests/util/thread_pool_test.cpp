#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace hirep::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasks) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ManyTasksAggregate) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) {
    sum.fetch_add(static_cast<std::int64_t>(i));
  });
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace hirep::util
