// util::Mutex / MutexLock / CondVar — the annotated wrappers every guarded
// structure now locks through (util/sync.hpp).  The semantics under test
// are exactly std::mutex semantics; what these tests pin down is that the
// wrappers stay drop-in (mutual exclusion, RAII release, condition wakeup)
// while carrying the thread-safety capability annotations.
#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hirep::util {
namespace {

TEST(SyncTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  std::uint64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(SyncTest, TryLockReportsContention) {
  Mutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncTest, MutexLockReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock lock(mu);
  }
  // If the RAII release failed this would deadlock (and trip the test
  // timeout); acquiring again proves the scope exit unlocked.
  MutexLock lock(mu);
  SUCCEED();
}

TEST(SyncTest, CondVarWakesExplicitConditionLoop) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;

  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    observed = 42;
  });

  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(SyncTest, NotifyAllReleasesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woken = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.wait(mu);
      ++woken;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.notify_all();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(woken, kWaiters);
}

}  // namespace
}  // namespace hirep::util
