#include "util/log.hpp"

#include <gtest/gtest.h>

namespace hirep::util {
namespace {

TEST(Log, ParseKnownLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_THROW(parse_log_level("loud"), std::invalid_argument);
}

TEST(Log, ToStringRoundTrip) {
  for (auto level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                     LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    EXPECT_EQ(parse_log_level(to_string(level)), level);
  }
}

TEST(Log, EnabledThresholds) {
  auto& logger = Logger::instance();
  const auto saved = logger.level();
  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  logger.set_level(saved);
}

TEST(Log, MacroRespectsLevel) {
  auto& logger = Logger::instance();
  const auto saved = logger.level();
  logger.set_level(LogLevel::kError);
  int evaluations = 0;
  // The streamed expression must not even be evaluated below the level.
  HIREP_DEBUG("test", "count=" << ++evaluations);
  EXPECT_EQ(evaluations, 0);
  testing::internal::CaptureStderr();
  HIREP_ERROR("test", "count=" << ++evaluations);
  const auto text = testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(text.find("[error] [test] count=1"), std::string::npos);
  logger.set_level(saved);
}

}  // namespace
}  // namespace hirep::util
