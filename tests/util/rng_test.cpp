#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace hirep::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, SplitMix64KnownValues) {
  // Reference values for the SplitMix64 sequence from seed 0 (widely
  // published test vector).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454fULL);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalShifted) {
  Rng rng(31);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(37);
  double sum = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(2.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(43);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(47);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = rng.sample_indices(20, 7);
    ASSERT_EQ(s.size(), 7u);
    std::set<std::size_t> unique(s.begin(), s.end());
    EXPECT_EQ(unique.size(), 7u);
    for (auto idx : s) EXPECT_LT(idx, 20u);
  }
}

TEST(Rng, SampleIndicesClampedToN) {
  Rng rng(53);
  const auto s = rng.sample_indices(5, 100);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Rng, SampleIndicesUniformCoverage) {
  Rng rng(59);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    for (auto idx : rng.sample_indices(10, 3)) ++counts[idx];
  }
  // Each index should be picked ~3000 times.
  for (int c : counts) EXPECT_NEAR(c, 3000, 300);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

// Property sweep: below() is unbiased enough across bounds that the
// empirical mean lands near (bound-1)/2.
class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, BelowMeanNearCenter) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 2654435761ULL + 1);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.below(bound));
  const double expect = static_cast<double>(bound - 1) / 2.0;
  EXPECT_NEAR(sum / n, expect, std::max(1.0, expect * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 7, 10, 100, 1000, 65536));

}  // namespace
}  // namespace hirep::util
