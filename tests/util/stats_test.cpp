#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace hirep::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(MseAccumulator, PerfectEstimatesGiveZero) {
  MseAccumulator acc;
  acc.add(1.0, 1.0);
  acc.add(0.0, 0.0);
  EXPECT_EQ(acc.mse(), 0.0);
}

TEST(MseAccumulator, KnownError) {
  MseAccumulator acc;
  acc.add(0.8, 1.0);  // 0.04
  acc.add(0.4, 0.0);  // 0.16
  EXPECT_DOUBLE_EQ(acc.mse(), 0.10);
  EXPECT_DOUBLE_EQ(acc.rmse(), std::sqrt(0.10));
  EXPECT_EQ(acc.count(), 2u);
}

TEST(MseAccumulator, MergeAndReset) {
  MseAccumulator a, b;
  a.add(0.5, 0.0);
  b.add(0.5, 1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mse(), 0.25);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mse(), 0.0);
}

TEST(SampleSet, PercentilesExact) {
  SampleSet s;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.75), 7.5);
}

TEST(SampleSet, AddAfterPercentileStillCorrect) {
  SampleSet s;
  s.add(2.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 3.0);
}

TEST(SampleSet, EmptyReturnsZero) {
  SampleSet s;
  EXPECT_EQ(s.percentile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bucket 0
  h.add(9.5);    // bucket 9
  h.add(-5.0);   // clamps to 0
  h.add(50.0);   // clamps to 9
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const auto text = h.render(10);
  EXPECT_NE(text.find('2'), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Correlation, PerfectPositive) {
  std::vector<double> xs{1, 2, 3, 4}, ys{2, 4, 6, 8};
  EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative) {
  std::vector<double> xs{1, 2, 3, 4}, ys{8, 6, 4, 2};
  EXPECT_NEAR(correlation(xs, ys), -1.0, 1e-12);
}

TEST(Correlation, DegenerateInputsGiveZero) {
  EXPECT_EQ(correlation({1.0}, {2.0}), 0.0);
  EXPECT_EQ(correlation({1, 2}, {5, 5}), 0.0);  // zero variance in y
  EXPECT_EQ(correlation({1, 2, 3}, {1, 2}), 0.0);
}

TEST(LinearSlope, RecoversLine) {
  std::vector<double> xs{0, 1, 2, 3, 4}, ys;
  for (double x : xs) ys.push_back(3.0 * x + 7.0);
  EXPECT_NEAR(linear_slope(xs, ys), 3.0, 1e-12);
}

TEST(LinearSlope, DegenerateGivesZero) {
  EXPECT_EQ(linear_slope({2, 2, 2}, {1, 2, 3}), 0.0);
  EXPECT_EQ(linear_slope({1.0}, {1.0}), 0.0);
}

}  // namespace
}  // namespace hirep::util
