#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hirep::util {
namespace {

TEST(Table, BasicShape) {
  Table t({"a", "b"});
  t.add_row({std::int64_t{1}, 2.5});
  t.add_row({std::int64_t{2}, 3.5});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_DOUBLE_EQ(t.number_at(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(t.number_at(1, 0), 2.0);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowWidthMismatchRejected) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::int64_t{1}}), std::invalid_argument);
}

TEST(Table, ColumnLookupByName) {
  Table t({"x", "y"});
  t.add_row({1.0, 10.0});
  t.add_row({2.0, 20.0});
  EXPECT_EQ(t.column_index("y"), 1u);
  EXPECT_THROW(t.column_index("z"), std::out_of_range);
  const auto col = t.numeric_column("y");
  ASSERT_EQ(col.size(), 2u);
  EXPECT_DOUBLE_EQ(col[0], 10.0);
  EXPECT_DOUBLE_EQ(col[1], 20.0);
}

TEST(Table, NumericColumnSkipsStrings) {
  Table t({"mixed"});
  t.add_row({std::string("n/a")});
  t.add_row({4.0});
  EXPECT_EQ(t.numeric_column(0).size(), 1u);
}

TEST(Table, NumberAtStringThrows) {
  Table t({"s"});
  t.add_row({std::string("x")});
  EXPECT_THROW(t.number_at(0, 0), std::invalid_argument);
}

TEST(Table, PrintContainsHeadersAndValues) {
  Table t({"name", "count"});
  t.add_row({std::string("alpha"), std::int64_t{42}});
  std::ostringstream out;
  t.print(out);
  const auto text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"v"});
  t.add_row({std::string("has,comma")});
  t.add_row({std::string("has\"quote")});
  std::ostringstream out;
  t.print_csv(out);
  const auto text = out.str();
  EXPECT_NE(text.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvRowCount) {
  Table t({"a"});
  t.add_row({1.0});
  t.add_row({2.0});
  std::ostringstream out;
  t.print_csv(out);
  int lines = 0;
  for (char c : out.str()) lines += (c == '\n');
  EXPECT_EQ(lines, 3);  // header + 2 rows
}

}  // namespace
}  // namespace hirep::util
