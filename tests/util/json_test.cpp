#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace hirep::util {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonNumber, ShortestRoundTrip) {
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(-1.25), "-1.25");
  // Deterministic: the same value always prints the same bytes.
  EXPECT_EQ(json_number(0.1), json_number(0.1));
}

TEST(JsonWriter, EmptyObjectAndArray) {
  JsonWriter w;
  w.begin_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{}");

  JsonWriter a;
  a.begin_array();
  a.end_array();
  EXPECT_EQ(a.str(), "[]");
}

// Round-trip against a hand-written expected document: every value type,
// nesting, indentation, and key order.
TEST(JsonWriter, MatchesHandWrittenDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("fig5");
  w.key("count");
  w.value(std::int64_t{3});
  w.key("ratio");
  w.value(0.5);
  w.key("ok");
  w.value(true);
  w.key("missing");
  w.null_value();
  w.key("series");
  w.begin_array();
  w.value(std::int64_t{1});
  w.value(std::int64_t{2});
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.key("deep");
  w.begin_array();
  w.begin_object();
  w.key("x");
  w.value(std::uint64_t{7});
  w.end_object();
  w.end_array();
  w.end_object();
  w.end_object();

  const char* expected = R"({
  "name": "fig5",
  "count": 3,
  "ratio": 0.5,
  "ok": true,
  "missing": null,
  "series": [
    1,
    2
  ],
  "nested": {
    "deep": [
      {
        "x": 7
      }
    ]
  }
})";
  EXPECT_EQ(w.str(), expected);
  std::string error;
  EXPECT_TRUE(json_valid(w.str(), &error)) << error;
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(w.str(), "[\n  null,\n  null\n]");
  EXPECT_TRUE(json_valid(w.str()));
}

TEST(JsonWriter, EscapesKeysAndStringValues) {
  JsonWriter w;
  w.begin_object();
  w.key("we\"ird");
  w.value("line\nbreak");
  w.end_object();
  EXPECT_TRUE(json_valid(w.str()));
  EXPECT_NE(w.str().find("we\\\"ird"), std::string::npos);
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1.0), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("k");
    EXPECT_THROW(w.end_object(), std::logic_error);  // dangling key
  }
}

// ---------------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------------

TEST(JsonValid, AcceptsAllValueTypes) {
  EXPECT_TRUE(json_valid("null"));
  EXPECT_TRUE(json_valid("true"));
  EXPECT_TRUE(json_valid("false"));
  EXPECT_TRUE(json_valid("0"));
  EXPECT_TRUE(json_valid("-12.5e-3"));
  EXPECT_TRUE(json_valid("\"str\""));
  EXPECT_TRUE(json_valid("[1, [2, {\"a\": null}]]"));
  EXPECT_TRUE(json_valid("  { \"k\" : [ ] }  "));
  EXPECT_TRUE(json_valid("\"esc \\n \\u00ff\""));
}

TEST(JsonValid, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("}"));
  EXPECT_FALSE(json_valid("[1,]"));
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("{\"a\" 1}"));
  EXPECT_FALSE(json_valid("{'a': 1}"));
  EXPECT_FALSE(json_valid("01"));
  EXPECT_FALSE(json_valid("1."));
  EXPECT_FALSE(json_valid("1e"));
  EXPECT_FALSE(json_valid("+1"));
  EXPECT_FALSE(json_valid("\"unterminated"));
  EXPECT_FALSE(json_valid("\"bad \\q escape\""));
  EXPECT_FALSE(json_valid("\"bad \\u12 escape\""));
  EXPECT_FALSE(json_valid("nul"));
  EXPECT_FALSE(json_valid("{} {}"));   // trailing value
  EXPECT_FALSE(json_valid("[1] x"));   // trailing garbage
  EXPECT_FALSE(json_valid("\"raw \n newline\""));
}

TEST(JsonValid, ReportsErrorWithOffset) {
  std::string error;
  EXPECT_FALSE(json_valid("[1,]", &error));
  EXPECT_NE(error.find("byte"), std::string::npos);
}

TEST(JsonValid, DeepNestingIsBounded) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(json_valid(deep));  // beyond the 256-level guard
  std::string ok(100, '[');
  ok += "1";
  ok += std::string(100, ']');
  EXPECT_TRUE(json_valid(ok));
}

}  // namespace
}  // namespace hirep::util
