// Unit coverage for the observability layer: instrument semantics, bucket
// boundaries, ScopedTimer nesting, registry snapshot stability, and a
// thread-safety stress test (run under the tsan CI flavour).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace hirep::obs {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(Counter, StartsAtZeroAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, TracksLevelAndHighWater) {
  Gauge g;
  g.set(5);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.high_water(), 5);
  g.add(10);
  EXPECT_EQ(g.value(), 13);
  EXPECT_EQ(g.high_water(), 13);
  g.sub(20);
  EXPECT_EQ(g.value(), -7);
  EXPECT_EQ(g.high_water(), 13);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.high_water(), 0);
}

TEST(Gauge, NegativeValuesNeverRaiseHighWater) {
  Gauge g;
  g.set(-4);
  EXPECT_EQ(g.value(), -4);
  EXPECT_EQ(g.high_water(), 0);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, BucketBoundariesUseLessOrEqualSemantics) {
  Histogram h({1.0, 10.0});
  h.observe(0.5);   // <= 1.0       -> bucket 0
  h.observe(1.0);   // == bound      -> bucket 0 (le semantics)
  h.observe(1.001); // (1, 10]       -> bucket 1
  h.observe(10.0);  // == bound      -> bucket 1
  h.observe(10.5);  // > 10          -> overflow bucket 2
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 10.0 + 10.5);
}

TEST(Histogram, OverflowBucketCatchesEverythingAboveLastBound) {
  Histogram h({1.0});
  h.observe(1e9);
  h.observe(2.0);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.bucket_count(1), 2u);
}

TEST(Histogram, MergeAddsBucketsCountAndSum) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  a.observe(0.5);
  b.observe(1.5);
  b.observe(5.0);
  a.merge(b);
  EXPECT_EQ(a.bucket_count(0), 1u);
  EXPECT_EQ(a.bucket_count(1), 1u);
  EXPECT_EQ(a.bucket_count(2), 1u);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 7.0);
}

TEST(Histogram, MergeRejectsMismatchedBounds) {
  Histogram a({1.0});
  Histogram b({2.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, ResetZeroesEverythingButKeepsBounds) {
  Histogram h({1.0});
  h.observe(0.5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bounds(), std::vector<double>{1.0});
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, SameNameReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, KindsHaveSeparateNamespaces) {
  Registry reg;
  reg.counter("shared");
  reg.gauge("shared");
  reg.timer("shared");
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.timers.size(), 1u);
}

TEST(Registry, HistogramReRegistrationWithDifferentBoundsThrows) {
  Registry reg;
  reg.histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(reg.histogram("h", {1.0, 2.0}));
  EXPECT_THROW(reg.histogram("h", {1.0}), std::invalid_argument);
}

TEST(Registry, ResetZeroesButReferencesStayValid) {
  Registry reg;
  Counter& c = reg.counter("c");
  c.add(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add();  // reference still live
  EXPECT_EQ(reg.counter("c").value(), 1u);
}

TEST(Registry, SnapshotIsSortedByNameAndStable) {
  Registry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  reg.gauge("mid").set(3);
  const auto snap1 = reg.snapshot();
  const auto snap2 = reg.snapshot();
  EXPECT_EQ(snap1, snap2);  // idle registry -> identical snapshots
  ASSERT_EQ(snap1.counters.size(), 2u);
  EXPECT_EQ(snap1.counters[0].name, "alpha");
  EXPECT_EQ(snap1.counters[0].value, 2u);
  EXPECT_EQ(snap1.counters[1].name, "zeta");
  ASSERT_EQ(snap1.gauges.size(), 1u);
  EXPECT_EQ(snap1.gauges[0].name, "mid");
}

TEST(Registry, SnapshotCapturesHistogramShape) {
  Registry reg;
  auto& h = reg.histogram("lat", {1.0, 2.0});
  h.observe(1.5);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& entry = snap.histograms[0];
  EXPECT_EQ(entry.bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(entry.buckets, (std::vector<std::uint64_t>{0, 1, 0}));
  EXPECT_EQ(entry.count, 1u);
}

TEST(Registry, GlobalIsASingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

// ---------------------------------------------------------------------------
// ScopedTimer
// ---------------------------------------------------------------------------

// Deterministic clock: each call advances 1ms.
std::uint64_t fake_clock() {
  static std::atomic<std::uint64_t> ticks{0};
  return ticks.fetch_add(1) * 1'000'000ull;
}

class ScopedTimerTest : public ::testing::Test {
 protected:
  void SetUp() override { set_clock_for_testing(&fake_clock); }
  void TearDown() override { set_clock_for_testing(nullptr); }
  Registry reg_;
};

TEST_F(ScopedTimerTest, RecordsElapsedIntoNamedTimer) {
  {
    ScopedTimer t("phase", reg_);
    EXPECT_EQ(t.path(), "phase");
  }
  const auto snap = reg_.snapshot();
  ASSERT_EQ(snap.timers.size(), 1u);
  EXPECT_EQ(snap.timers[0].name, "phase");
  EXPECT_EQ(snap.timers[0].count, 1u);
  EXPECT_GT(snap.timers[0].total_ns, 0u);
}

TEST_F(ScopedTimerTest, NestingProducesSlashJoinedPaths) {
  {
    ScopedTimer outer("outer", reg_);
    {
      ScopedTimer inner("inner", reg_);
      EXPECT_EQ(inner.path(), "outer/inner");
      {
        ScopedTimer leaf("leaf", reg_);
        EXPECT_EQ(leaf.path(), "outer/inner/leaf");
      }
    }
    // Sibling after the first inner closed: parent path again.
    ScopedTimer sibling("sibling", reg_);
    EXPECT_EQ(sibling.path(), "outer/sibling");
  }
  const auto snap = reg_.snapshot();
  ASSERT_EQ(snap.timers.size(), 4u);  // sorted by name
  EXPECT_EQ(snap.timers[0].name, "outer");
  EXPECT_EQ(snap.timers[1].name, "outer/inner");
  EXPECT_EQ(snap.timers[2].name, "outer/inner/leaf");
  EXPECT_EQ(snap.timers[3].name, "outer/sibling");
}

TEST_F(ScopedTimerTest, SequentialTimersAccumulateCount) {
  for (int i = 0; i < 3; ++i) ScopedTimer t("loop", reg_);
  const auto snap = reg_.snapshot();
  ASSERT_EQ(snap.timers.size(), 1u);
  EXPECT_EQ(snap.timers[0].count, 3u);
}

TEST(ScopedOp, BumpsOpsAndObservesLatency) {
  Counter ops;
  Histogram latency(latency_buckets_ms());
  { ScopedOp op(ops, latency); }
  EXPECT_EQ(ops.value(), 1u);
  EXPECT_EQ(latency.count(), 1u);
}

// ---------------------------------------------------------------------------
// Thread-safety stress (meaningful under -fsanitize=thread)
// ---------------------------------------------------------------------------

TEST(ObsStress, ConcurrentUpdatesAndSnapshotsAreRaceFree) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        // Mix of shared-name updates (atomic contention) and lookups
        // (registry mutex) while another thread snapshots.
        reg.counter("stress.counter").add();
        reg.gauge("stress.gauge").set(i - t);
        reg.histogram("stress.hist", {0.5, 1.0}).observe(i % 3 * 0.4);
        reg.timer("stress.timer").record(1);
        if (i % 256 == 0) (void)reg.snapshot();
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value,
            static_cast<std::uint64_t>(kThreads) * kIters);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count,
            static_cast<std::uint64_t>(kThreads) * kIters);
  ASSERT_EQ(snap.timers.size(), 1u);
  EXPECT_EQ(snap.timers[0].count, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.timers[0].total_ns,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ObsStress, ConcurrentScopedTimersStayPerThread) {
  Registry reg;
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < 500; ++i) {
        ScopedTimer outer("outer", reg);
        ScopedTimer inner("inner", reg);
        // Nesting is tracked thread-locally, so cross-thread interleaving
        // must never produce a mixed path.
        ASSERT_EQ(inner.path(), "outer/inner");
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.timers.size(), 2u);
  EXPECT_EQ(snap.timers[0].name, "outer");
  EXPECT_EQ(snap.timers[1].name, "outer/inner");
  EXPECT_EQ(snap.timers[0].count, 4u * 500u);
  EXPECT_EQ(snap.timers[1].count, 4u * 500u);
}

// The gate macro must be set by the build; primitives work either way.
TEST(ObsGate, CompileTimeFlagIsConsistent) {
  EXPECT_EQ(kEnabled, HIREP_OBS_ENABLED != 0);
}

}  // namespace
}  // namespace hirep::obs
