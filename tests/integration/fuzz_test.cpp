// Failure injection / fuzzing: every deserializer and decryptor must
// reject arbitrary garbage, truncations, and single-bit corruptions
// without crashing and without false acceptance.
#include <gtest/gtest.h>

#include "check/check.hpp"
#include "crypto/identity.hpp"
#include "hirep/protocol.hpp"
#include "onion/onion.hpp"

namespace hirep {
namespace {

util::Bytes random_bytes(util::Rng& rng, std::size_t n) {
  util::Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

TEST(Fuzz, DeserializersSurviveRandomGarbage) {
  util::Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const auto junk = random_bytes(rng, rng.below(200));
    // None of these may throw; all should reject (or, astronomically
    // unlikely, parse into a syntactically valid but useless object).
    EXPECT_NO_THROW(core::TrustValueRequest::deserialize(junk));
    EXPECT_NO_THROW(core::TrustValueResponse::deserialize(junk));
    EXPECT_NO_THROW(core::TransactionReport::deserialize(junk));
    EXPECT_NO_THROW(onion::Onion::deserialize(junk));
    EXPECT_NO_THROW(crypto::Identity::RotationAnnouncement::deserialize(junk));
  }
}

TEST(Fuzz, TruncationsOfValidMessagesRejected) {
  util::Rng rng(2);
  const auto peer = crypto::Identity::generate(rng, 64);
  const auto agent = crypto::Identity::generate(rng, 64);
  const auto onion = onion::build_onion(rng, peer, 3, {}, 1);
  const auto req = core::build_trust_request(
      rng, agent.signature_public(), peer, agent.node_id(), 7, onion);
  const auto wire = req.serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const util::Bytes cut(wire.begin(),
                          wire.begin() + static_cast<std::ptrdiff_t>(len));
    const auto parsed = core::TrustValueRequest::deserialize(cut);
    EXPECT_FALSE(parsed.has_value()) << "accepted truncation at " << len;
  }
}

TEST(Fuzz, BitflippedReportsNeverVerify) {
  util::Rng rng(3);
  const auto reporter = crypto::Identity::generate(rng, 128);
  const auto subject = crypto::Identity::generate(rng, 64);
  const auto report = core::build_report(reporter, subject.node_id(), 1.0, 42);
  const auto wire = report.serialize();
  // The reporter id lives outside the signed body, so a flip there leaves
  // the signature valid; the invariant layer must flag exactly those
  // acceptances (nodeId no longer matches the verifying key).
  check::ScopedCapture capture;
  std::size_t mismatched_accepts = 0;
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = wire;
    corrupted[rng.below(corrupted.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    const auto parsed = core::TransactionReport::deserialize(corrupted);
    if (!parsed) continue;  // framing broke: fine
    // Framing survived: the signature (or reporter id) check must fail —
    // unless the flip landed in the unsigned nonce-free reporter field, in
    // which case verification against the *claimed* reporter's key is the
    // caller's job and the signature still fails for the true key.
    const auto opened = core::verify_report(reporter.signature_public(), *parsed);
    if (opened.has_value()) {
      // Only acceptable when the corruption hit the reporter-id field,
      // which is outside the signed body; the body itself must be intact.
      EXPECT_EQ(parsed->body, report.body);
      EXPECT_NE(parsed->reporter, report.reporter);
      ++mismatched_accepts;
    }
  }
  if (check::kEnabled && mismatched_accepts > 0) {
    EXPECT_TRUE(capture.fired("protocol.report.binding"));
    EXPECT_EQ(capture.count(), mismatched_accepts);
  }
}

TEST(Fuzz, BitflippedOnionsNeverRoute) {
  util::Rng rng(4);
  const auto owner = crypto::Identity::generate(rng, 128);
  std::vector<crypto::Identity> relays_ids;
  std::vector<onion::RelayInfo> relays;
  for (int i = 0; i < 3; ++i) {
    relays_ids.push_back(crypto::Identity::generate(rng, 128));
    relays.push_back({static_cast<net::NodeIndex>(i),
                      relays_ids.back().anonymity_public()});
  }
  const auto onion = onion::build_onion(rng, owner, 5, relays, 1);
  const auto wire = onion.serialize();
  int accepted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = wire;
    corrupted[rng.below(corrupted.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    const auto parsed = onion::Onion::deserialize(corrupted);
    if (!parsed) continue;
    if (onion::verify_onion(*parsed)) ++accepted;
  }
  // Any bit flip in (entry, sq, blob) breaks the signature; flips inside
  // the signature bytes break verification; flips in owner_sig_key change
  // the claimed identity and the signature fails against it.
  EXPECT_EQ(accepted, 0);
}

TEST(Fuzz, HybridDecryptionSurvivesGarbage) {
  util::Rng rng(5);
  const auto pair = crypto::rsa_generate(rng, 96);
  for (int trial = 0; trial < 300; ++trial) {
    const auto junk = random_bytes(rng, rng.below(150));
    EXPECT_NO_THROW({
      const auto out = crypto::rsa_decrypt_bytes(pair.priv, junk);
      (void)out;
    });
  }
}

TEST(Fuzz, PeelSurvivesGarbage) {
  util::Rng rng(6);
  const auto identity = crypto::Identity::generate(rng, 96);
  for (int trial = 0; trial < 300; ++trial) {
    const auto junk = random_bytes(rng, rng.below(150));
    EXPECT_NO_THROW({
      const auto out = onion::peel(junk, identity.anonymity_private());
      EXPECT_FALSE(out.has_value());
    });
  }
}

}  // namespace
}  // namespace hirep
