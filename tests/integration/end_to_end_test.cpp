// Cross-module integration: a small full-crypto hiREP deployment runs the
// complete lifecycle — community formation, onion-routed queries, signed
// reports, expertise maintenance, churn, and attack rejection — with every
// cryptographic operation executed for real.
#include <gtest/gtest.h>

#include "sim/attacks.hpp"
#include "util/stats.hpp"

namespace hirep {
namespace {

core::HirepOptions full_options() {
  core::HirepOptions o;
  o.nodes = 48;
  o.rsa_bits = 128;  // real (small) RSA end to end
  o.trusted_agents = 4;
  o.onion_relays = 3;
  o.crypto = core::CryptoMode::kFull;
  o.seed = 7;
  o.world.malicious_ratio = 0.25;
  return o;
}

struct EndToEnd : ::testing::Test {
  EndToEnd() : system(full_options()) {}
  core::HirepSystem system;
};

TEST_F(EndToEnd, FullLifecycleOverManyTransactions) {
  util::MseAccumulator early, late;
  for (int i = 0; i < 60; ++i) {
    // A small active community so expertise filtering engages.
    const auto requestor = static_cast<net::NodeIndex>(i % 6);
    const auto provider = static_cast<net::NodeIndex>(6 + (i * 7) % 40);
    const auto rec = system.run_transaction(requestor, provider);
    (i < 20 ? early : late).add(rec.estimate, rec.truth_value);
  }
  // Accuracy must not degrade as the system trains, and late MSE must be
  // decent in absolute terms.
  EXPECT_LE(late.mse(), early.mse() + 0.02);
  EXPECT_LT(late.mse(), 0.15);
}

TEST_F(EndToEnd, AgentsAccumulateKeysFromRequestors) {
  system.run_transaction(0, 10);
  // Peer 0's agents must now know peer 0's key.
  bool any_registered = false;
  for (const auto& entry : system.peer(0).agents().entries()) {
    const auto ip = system.ip_of(entry.agent_id);
    ASSERT_TRUE(ip.has_value());
    const auto* agent = system.agent_at(*ip);
    ASSERT_NE(agent, nullptr);
    if (agent->lookup_key(system.peer(0).node_id()).has_value()) {
      any_registered = true;
    }
  }
  EXPECT_TRUE(any_registered);
}

TEST_F(EndToEnd, AgentsAccumulateReports) {
  const net::NodeIndex provider = 20;
  for (int i = 0; i < 3; ++i) system.run_transaction(0, provider);
  const auto subject_id = system.identities()[provider].node_id();
  std::size_t reports = 0;
  for (const auto& entry : system.peer(0).agents().entries()) {
    const auto ip = system.ip_of(entry.agent_id);
    const auto* agent = system.agent_at(*ip);
    reports += agent->report_count(subject_id);
  }
  EXPECT_GT(reports, 0u);
}

TEST_F(EndToEnd, OnionsRefreshAcrossTransactions) {
  ASSERT_GT(system.peer(0).agents().size(), 0u);
  const auto sq_before = system.peer(0).agents().entries()[0].onion.sq;
  system.run_transaction(0, 10);
  system.run_transaction(0, 11);
  // The agent issues a fresh Onion_e with each response; sq advances.
  const auto sq_after = system.peer(0).agents().entries()[0].onion.sq;
  EXPECT_GT(sq_after, sq_before);
}

TEST_F(EndToEnd, AttackSuiteAllRejected) {
  net::NodeIndex agent_ip = 0;
  while (system.agent_at(agent_ip) == nullptr) ++agent_ip;
  EXPECT_FALSE(sim::attempt_report_spoof(system, 1, 2, agent_ip, 30));
  EXPECT_FALSE(sim::attempt_mitm_key_substitution(system, 1, 12, 13));
  EXPECT_FALSE(sim::attempt_onion_replay(system, 3));
}

TEST_F(EndToEnd, SurvivesTotalAgentChurnOfOnePeer) {
  auto& list = system.peer(0).agents();
  // Take every one of peer 0's agents offline.
  std::vector<net::NodeIndex> victims;
  for (const auto& entry : list.entries()) {
    victims.push_back(*system.ip_of(entry.agent_id));
  }
  for (auto v : victims) system.set_agent_online(v, false);
  // Next transaction: all offline -> backup; maintenance re-discovers.
  system.run_transaction(0, 10);
  // Agents elsewhere still exist, so the peer can rebuild a list.
  system.refill(0);
  std::size_t online = 0;
  for (const auto& entry : list.entries()) {
    online += system.agent_online(*system.ip_of(entry.agent_id));
  }
  EXPECT_GT(online, 0u);
}

TEST_F(EndToEnd, KeyRotationPreservesVerifiability) {
  // Key rotation (§3.5) as a library feature: a rotated identity's
  // announcement verifies against its pre-rotation key.
  util::Rng rng(3);
  auto identity = crypto::Identity::generate(rng, 128);
  const auto old_key = identity.signature_public();
  const auto ann = identity.rotate_signature_key(rng, 128);
  EXPECT_TRUE(crypto::Identity::verify_rotation(old_key, ann));
}

}  // namespace
}  // namespace hirep
