// kFast must be a faithful accounting model of kFull: identical message
// structure per protocol action (the random streams differ, so exact
// transcripts cannot be compared — the invariants are structural).
#include <gtest/gtest.h>

#include "hirep/system.hpp"

namespace hirep::core {
namespace {

HirepOptions options(CryptoMode mode, std::uint64_t seed = 31) {
  HirepOptions o;
  o.nodes = 64;
  o.rsa_bits = 64;
  o.trusted_agents = 4;
  o.onion_relays = 3;
  o.crypto = mode;
  o.seed = seed;
  o.world.malicious_ratio = 0.0;
  return o;
}

class ModeSweep : public ::testing::TestWithParam<CryptoMode> {};

TEST_P(ModeSweep, KeyExchangeBootstrapCostIsNodesTimesRelaysTimesFour) {
  const auto o = options(GetParam());
  HirepSystem sys(o);
  EXPECT_EQ(sys.overlay().metrics().of(net::MessageKind::kKeyExchange),
            o.nodes * o.onion_relays * 4);
}

TEST_P(ModeSweep, PerTransactionCostIsThreeLegsPerResponder) {
  const auto o = options(GetParam());
  HirepSystem sys(o);
  for (int i = 0; i < 10; ++i) {
    const auto rec = sys.run_transaction();
    EXPECT_EQ(rec.trust_messages, 3 * (o.onion_relays + 1) * rec.responses);
  }
}

TEST_P(ModeSweep, HonestWorldEstimatesOnCorrectSide) {
  HirepSystem sys(options(GetParam()));
  for (net::NodeIndex p = 1; p < 15; ++p) {
    const auto q = sys.query_trust(0, p);
    if (q.ratings.empty()) continue;
    EXPECT_EQ(q.estimate > 0.5, sys.truth().trustable(p));
  }
}

TEST_P(ModeSweep, EntriesCarrySimulationRelayPaths) {
  const auto o = options(GetParam());
  HirepSystem sys(o);
  sys.run_transaction(0, 10);
  for (const auto& entry : sys.peer(0).agents().entries()) {
    EXPECT_EQ(entry.relay_path.size(), o.onion_relays + 1);
    EXPECT_EQ(entry.relay_path.back(), *sys.ip_of(entry.agent_id));
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ModeSweep,
                         ::testing::Values(CryptoMode::kFull, CryptoMode::kFast),
                         [](const auto& info) {
                           return info.param == CryptoMode::kFull ? "Full"
                                                                  : "Fast";
                         });

TEST(CryptoModeEquivalence, SameWorldSameTopologyAcrossModes) {
  // World generation consumes the rng identically in both modes (crypto
  // randomness comes later), so ground truth and topology must agree.
  HirepSystem fast(options(CryptoMode::kFast, 77));
  HirepSystem full(options(CryptoMode::kFull, 77));
  for (net::NodeIndex v = 0; v < 64; ++v) {
    EXPECT_EQ(fast.truth().trustable(v), full.truth().trustable(v));
    EXPECT_EQ(fast.truth().agent_capable(v), full.truth().agent_capable(v));
    EXPECT_EQ(fast.overlay().graph().degree(v), full.overlay().graph().degree(v));
  }
  EXPECT_EQ(fast.agent_count(), full.agent_count());
}

}  // namespace
}  // namespace hirep::core
