// Reproducibility: a (seed, options) pair fully determines every simulated
// outcome, across all three systems.  This is what makes every figure in
// EXPERIMENTS.md regenerable bit-for-bit.
#include <gtest/gtest.h>

#include "baselines/pure_voting.hpp"
#include "baselines/trustme.hpp"
#include "hirep/system.hpp"

namespace hirep {
namespace {

core::HirepOptions options_with_seed(std::uint64_t seed) {
  core::HirepOptions o;
  o.nodes = 64;
  o.rsa_bits = 64;
  o.trusted_agents = 4;
  o.onion_relays = 2;
  o.crypto = core::CryptoMode::kFast;
  o.seed = seed;
  return o;
}

TEST(Determinism, HirepIdenticalRunsIdenticalResults) {
  core::HirepSystem a(options_with_seed(5)), b(options_with_seed(5));
  for (int i = 0; i < 25; ++i) {
    const auto ra = a.run_transaction();
    const auto rb = b.run_transaction();
    EXPECT_EQ(ra.requestor, rb.requestor);
    EXPECT_EQ(ra.provider, rb.provider);
    EXPECT_DOUBLE_EQ(ra.estimate, rb.estimate);
    EXPECT_EQ(ra.responses, rb.responses);
    EXPECT_EQ(ra.trust_messages, rb.trust_messages);
  }
  EXPECT_EQ(a.overlay().metrics().total(), b.overlay().metrics().total());
}

TEST(Determinism, HirepDifferentSeedsDiverge) {
  core::HirepSystem a(options_with_seed(5)), b(options_with_seed(6));
  bool diverged = false;
  for (int i = 0; i < 10 && !diverged; ++i) {
    const auto ra = a.run_transaction();
    const auto rb = b.run_transaction();
    diverged = ra.requestor != rb.requestor || ra.provider != rb.provider ||
               ra.estimate != rb.estimate;
  }
  EXPECT_TRUE(diverged);
}

TEST(Determinism, IdentitiesDeterministic) {
  core::HirepSystem a(options_with_seed(9)), b(options_with_seed(9));
  for (std::size_t v = 0; v < 64; ++v) {
    EXPECT_EQ(a.identities()[v].node_id(), b.identities()[v].node_id());
  }
}

TEST(Determinism, TopologyDeterministic) {
  core::HirepSystem a(options_with_seed(9)), b(options_with_seed(9));
  const auto& ga = a.overlay().graph();
  const auto& gb = b.overlay().graph();
  ASSERT_EQ(ga.edge_count(), gb.edge_count());
  for (net::NodeIndex v = 0; v < 64; ++v) EXPECT_EQ(ga.degree(v), gb.degree(v));
}

TEST(Determinism, PureVotingDeterministic) {
  baselines::VotingOptions o;
  o.nodes = 100;
  o.seed = 77;
  baselines::PureVotingSystem a(o), b(o);
  for (int i = 0; i < 20; ++i) {
    const auto ra = a.run_transaction();
    const auto rb = b.run_transaction();
    EXPECT_DOUBLE_EQ(ra.estimate, rb.estimate);
    EXPECT_EQ(ra.trust_messages, rb.trust_messages);
  }
}

TEST(Determinism, TrustMeDeterministic) {
  baselines::TrustMeOptions o;
  o.nodes = 100;
  o.seed = 78;
  baselines::TrustMeSystem a(o), b(o);
  for (int i = 0; i < 20; ++i) {
    const auto ra = a.run_transaction();
    const auto rb = b.run_transaction();
    EXPECT_DOUBLE_EQ(ra.estimate, rb.estimate);
    EXPECT_EQ(ra.trust_messages, rb.trust_messages);
  }
}

TEST(Determinism, TimedExperimentsDeterministic) {
  baselines::VotingOptions o;
  o.nodes = 120;
  o.seed = 79;
  baselines::PureVotingSystem a(o), b(o);
  const auto ta = a.poll_timed(0, 1);
  const auto tb = b.poll_timed(0, 1);
  EXPECT_DOUBLE_EQ(ta.response_ms, tb.response_ms);
  EXPECT_EQ(ta.votes, tb.votes);
}

}  // namespace
}  // namespace hirep
