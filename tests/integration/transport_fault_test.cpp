// Fault-injection integration: the protocol must degrade, not wedge, when
// the transport loses messages — and a peer whose trusted agents become
// unreachable must fall back to its backup cache exactly as §3.4.3
// prescribes.
#include <gtest/gtest.h>

#include <memory>

#include "hirep/system.hpp"

namespace hirep::core {
namespace {

HirepOptions small_options(std::uint64_t seed) {
  HirepOptions o;
  o.nodes = 64;
  o.trusted_agents = 4;
  o.onion_relays = 2;
  o.crypto = CryptoMode::kFast;
  o.seed = seed;
  return o;
}

TEST(TransportFaults, DroppedRequestsFallBackToBackupCache) {
  HirepSystem system(small_options(11));

  // Find a peer that actually holds trusted agents.
  net::NodeIndex peer_ip = net::kInvalidNode;
  for (std::size_t v = 0; v < system.node_count(); ++v) {
    if (system.peer(static_cast<net::NodeIndex>(v)).agents().size() >= 2) {
      peer_ip = static_cast<net::NodeIndex>(v);
      break;
    }
  }
  ASSERT_NE(peer_ip, net::kInvalidNode);
  Peer& peer = system.peer(peer_ip);
  const std::size_t listed = peer.agents().size();
  const std::size_t backed_up = peer.agents().backup_size();

  // The network goes dark: every hop drops.
  net::FaultParams blackout;
  blackout.drop_rate = 1.0;
  system.transport().set_policy(
      std::make_unique<net::FaultyDelivery>(blackout, 1));

  const net::NodeIndex subject =
      peer_ip == 0 ? net::NodeIndex{1} : net::NodeIndex{0};
  const auto result = system.query_trust(peer_ip, subject);

  // Every exchange timed out: no ratings, and each unreachable agent was
  // handled per §3.4.3 — positive-standing entries into the backup cache.
  EXPECT_EQ(result.contacted, listed);
  EXPECT_TRUE(result.ratings.empty());
  EXPECT_EQ(result.estimate, 0.5);
  EXPECT_EQ(peer.agents().size(), 0u);
  EXPECT_GT(peer.agents().backup_size(), backed_up);

  // Connectivity returns: the §3.4.3 maintenance probes the backup cache
  // and restores the list without a fresh discovery flood.
  system.transport().set_policy(std::make_unique<net::InstantDelivery>());
  system.refill(peer_ip);
  EXPECT_GT(peer.agents().size(), 0u);
}

TEST(TransportFaults, LossyRunCompletesEveryTransaction) {
  HirepOptions o = small_options(5);
  o.delivery.policy = net::DeliveryPolicyKind::kFaulty;
  o.delivery.faults.drop_rate = 0.10;
  o.delivery.faults.duplicate_rate = 0.05;
  HirepSystem system(o);

  for (int t = 0; t < 30; ++t) {
    const auto rec = system.run_transaction();
    EXPECT_GE(rec.estimate, 0.0);
    EXPECT_LE(rec.estimate, 1.0);
  }

  const auto& envelopes = system.transport().envelopes();
  EXPECT_GT(envelopes.total_sent(), 0u);
  EXPECT_GT(envelopes.total_dropped(), 0u);  // 10% loss must show up
  EXPECT_GT(envelopes.of(net::EnvelopeType::kTrustRequest).delivered, 0u);
  // Every envelope is accounted for exactly once: delivered or dropped.
  EXPECT_EQ(envelopes.total_delivered() + envelopes.total_dropped(),
            envelopes.total_sent());
}

TEST(TransportFaults, DuplicatedDeliveriesNeverDoubleApply) {
  // Regression for the duplicate-application bug: with duplicate_rate=1
  // (and nothing dropped or delayed) every hop lands twice, but the second
  // copy is suppressed by envelope id at the receiver — so agent-side state
  // transitions (reports, expertise updates, sq bumps) apply exactly once
  // and every trust estimate matches the duplicate-free run bit for bit.
  const auto records = [](double duplicate_rate) {
    HirepOptions o = small_options(11);
    if (duplicate_rate > 0.0) {
      o.delivery.policy = net::DeliveryPolicyKind::kFaulty;
      o.delivery.faults.duplicate_rate = duplicate_rate;
    }
    HirepSystem system(o);
    std::vector<HirepSystem::TransactionRecord> out;
    for (int t = 0; t < 30; ++t) out.push_back(system.run_transaction());
    return out;
  };
  const auto clean = records(0.0);
  const auto doubled = records(1.0);
  ASSERT_EQ(clean.size(), doubled.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i].requestor, doubled[i].requestor) << i;
    EXPECT_EQ(clean[i].provider, doubled[i].provider) << i;
    EXPECT_EQ(clean[i].estimate, doubled[i].estimate) << i;
    EXPECT_EQ(clean[i].outcome, doubled[i].outcome) << i;
    EXPECT_EQ(clean[i].responses, doubled[i].responses) << i;
    // trust_messages intentionally not compared: duplicated copies are
    // real wire transmissions and land in the traffic books.
  }
}

TEST(TransportFaults, FullCryptoSurvivesLossToo) {
  HirepOptions o;
  o.nodes = 16;
  o.trusted_agents = 3;
  o.onion_relays = 2;
  o.rsa_bits = 128;
  o.crypto = CryptoMode::kFull;
  o.seed = 3;
  o.delivery.policy = net::DeliveryPolicyKind::kFaulty;
  o.delivery.faults.drop_rate = 0.10;
  HirepSystem system(o);

  for (int t = 0; t < 5; ++t) {
    const auto rec = system.run_transaction();
    EXPECT_GE(rec.estimate, 0.0);
    EXPECT_LE(rec.estimate, 1.0);
  }
  const auto& envelopes = system.transport().envelopes();
  EXPECT_EQ(envelopes.total_delivered() + envelopes.total_dropped(),
            envelopes.total_sent());
}

}  // namespace
}  // namespace hirep::core
