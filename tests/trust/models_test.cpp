#include "trust/trust_model.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hirep::trust {
namespace {

TEST(Models, FactoryByName) {
  EXPECT_EQ(average_model_factory()()->name(), "average");
  EXPECT_EQ(ewma_model_factory()()->name(), "ewma");
  EXPECT_EQ(beta_model_factory()()->name(), "beta");
  EXPECT_EQ(model_factory_by_name("average")()->name(), "average");
  EXPECT_EQ(model_factory_by_name("ewma")()->name(), "ewma");
  EXPECT_EQ(model_factory_by_name("beta")()->name(), "beta");
  EXPECT_THROW(model_factory_by_name("nope"), std::invalid_argument);
}

TEST(Models, NeutralPriorBeforeObservations) {
  for (const auto& name : {"average", "ewma", "beta"}) {
    const auto m = model_factory_by_name(name)();
    EXPECT_DOUBLE_EQ(m->value(), 0.5) << name;
    EXPECT_EQ(m->observations(), 0u);
  }
}

TEST(AverageModel, ComputesMean) {
  auto m = average_model_factory()();
  m->record(1.0);
  m->record(0.0);
  m->record(1.0);
  m->record(1.0);
  EXPECT_DOUBLE_EQ(m->value(), 0.75);
  EXPECT_EQ(m->observations(), 4u);
}

TEST(EwmaModel, FirstObservationReplacesPrior) {
  auto m = ewma_model_factory(0.3)();
  m->record(1.0);
  EXPECT_DOUBLE_EQ(m->value(), 1.0);
}

TEST(EwmaModel, RecurrenceMatchesPaperFormula) {
  auto m = ewma_model_factory(0.3)();
  m->record(1.0);
  m->record(0.0);  // 0.3*0 + 0.7*1 = 0.7
  EXPECT_DOUBLE_EQ(m->value(), 0.7);
  m->record(0.0);  // 0.3*0 + 0.7*0.7 = 0.49
  EXPECT_DOUBLE_EQ(m->value(), 0.49);
}

TEST(EwmaModel, InvalidAlphaRejected) {
  EXPECT_THROW(ewma_model_factory(0.0)(), std::invalid_argument);
  EXPECT_THROW(ewma_model_factory(1.0)(), std::invalid_argument);
  EXPECT_THROW(ewma_model_factory(-1.0)(), std::invalid_argument);
}

TEST(BetaModel, PosteriorMean) {
  auto m = beta_model_factory(1.0, 1.0)();
  m->record(1.0);  // Beta(2,1): mean 2/3
  EXPECT_NEAR(m->value(), 2.0 / 3.0, 1e-12);
  m->record(1.0);  // Beta(3,1): mean 3/4
  EXPECT_NEAR(m->value(), 0.75, 1e-12);
}

TEST(BetaModel, FractionalOutcomes) {
  auto m = beta_model_factory(1.0, 1.0)();
  m->record(0.5);  // Beta(1.5, 1.5): mean 0.5
  EXPECT_DOUBLE_EQ(m->value(), 0.5);
}

TEST(BetaModel, InvalidPriorsRejected) {
  EXPECT_THROW(beta_model_factory(0.0, 1.0)(), std::invalid_argument);
  EXPECT_THROW(beta_model_factory(1.0, -2.0)(), std::invalid_argument);
}

TEST(Models, OutOfRangeOutcomesClamped) {
  for (const auto& name : {"average", "ewma", "beta"}) {
    auto m = model_factory_by_name(name)();
    m->record(5.0);
    EXPECT_LE(m->value(), 1.0) << name;
    m->record(-5.0);
    EXPECT_GE(m->value(), 0.0) << name;
  }
}

TEST(Models, CloneIsIndependentCopy) {
  for (const auto& name : {"average", "ewma", "beta"}) {
    auto m = model_factory_by_name(name)();
    m->record(1.0);
    auto c = m->clone();
    c->record(0.0);
    EXPECT_NE(m->value(), c->value()) << name;
    EXPECT_EQ(m->observations() + 1, c->observations());
  }
}

// Property: all models converge toward the true rate of a Bernoulli stream.
class ModelConvergence
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(ModelConvergence, TracksBernoulliRate) {
  const auto [name, rate] = GetParam();
  util::Rng rng(std::hash<std::string>{}(name) ^
                static_cast<std::uint64_t>(rate * 1000));
  auto m = model_factory_by_name(name)();
  for (int i = 0; i < 5000; ++i) m->record(rng.chance(rate) ? 1.0 : 0.0);
  // EWMA keeps variance ~alpha/(2-alpha); allow a generous band.
  EXPECT_NEAR(m->value(), rate, 0.25) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelConvergence,
    ::testing::Combine(::testing::Values("average", "ewma", "beta"),
                       ::testing::Values(0.1, 0.5, 0.9)));

TEST(Models, ValuesStayInUnitInterval) {
  util::Rng rng(9);
  for (const auto& name : {"average", "ewma", "beta"}) {
    auto m = model_factory_by_name(name)();
    for (int i = 0; i < 500; ++i) {
      m->record(rng.uniform(-0.2, 1.2));
      EXPECT_GE(m->value(), 0.0) << name;
      EXPECT_LE(m->value(), 1.0) << name;
    }
  }
}

}  // namespace
}  // namespace hirep::trust
