#include "trust/ground_truth.hpp"

#include <gtest/gtest.h>

namespace hirep::trust {
namespace {

WorldParams small_world(std::size_t nodes = 2000) {
  WorldParams p;
  p.nodes = nodes;
  return p;
}

TEST(GroundTruth, PopulationRatios) {
  util::Rng rng(1);
  GroundTruth truth(rng, small_world());
  std::size_t trustable = 0, capable = 0;
  for (std::size_t v = 0; v < truth.node_count(); ++v) {
    trustable += truth.trustable(static_cast<net::NodeIndex>(v));
    capable += truth.agent_capable(static_cast<net::NodeIndex>(v));
  }
  EXPECT_NEAR(static_cast<double>(trustable) / 2000.0, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(capable) / 2000.0, 0.4, 0.05);
  EXPECT_NEAR(static_cast<double>(truth.poor_evaluator_count()) / 2000.0, 0.10,
              0.03);
}

TEST(GroundTruth, BandwidthThresholdDefinesAgents) {
  util::Rng rng(2);
  GroundTruth truth(rng, small_world(500));
  for (std::size_t v = 0; v < 500; ++v) {
    const auto node = static_cast<net::NodeIndex>(v);
    EXPECT_EQ(truth.agent_capable(node), truth.bandwidth_kbps(node) > 64.0);
  }
  const auto agents = truth.agent_capable_nodes();
  for (auto a : agents) EXPECT_GT(truth.bandwidth_kbps(a), 64.0);
}

TEST(GroundTruth, TrueTrustBinary) {
  util::Rng rng(3);
  GroundTruth truth(rng, small_world(100));
  for (std::size_t v = 0; v < 100; ++v) {
    const double t = truth.true_trust(static_cast<net::NodeIndex>(v));
    EXPECT_TRUE(t == 0.0 || t == 1.0);
    EXPECT_EQ(truth.transaction_outcome(static_cast<net::NodeIndex>(v)), t);
  }
}

TEST(GroundTruth, GoodEvaluatorRatesWithinScopes) {
  util::Rng rng(4);
  WorldParams p = small_world(200);
  p.malicious_ratio = 0.0;  // everyone honest
  GroundTruth truth(rng, p);
  for (int i = 0; i < 500; ++i) {
    const auto evaluator = static_cast<net::NodeIndex>(rng.below(200));
    const auto subject = static_cast<net::NodeIndex>(rng.below(200));
    const double r = truth.evaluate(evaluator, subject, rng);
    if (truth.trustable(subject)) {
      EXPECT_GE(r, 0.6);
      EXPECT_LE(r, 1.0);
    } else {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 0.4);
    }
  }
}

TEST(GroundTruth, PoorEvaluatorInverts) {
  util::Rng rng(5);
  WorldParams p = small_world(200);
  p.malicious_ratio = 1.0;  // everyone malicious
  GroundTruth truth(rng, p);
  EXPECT_EQ(truth.poor_evaluator_count(), 200u);
  for (int i = 0; i < 500; ++i) {
    const auto evaluator = static_cast<net::NodeIndex>(rng.below(200));
    const auto subject = static_cast<net::NodeIndex>(rng.below(200));
    const double r = truth.evaluate(evaluator, subject, rng);
    if (truth.trustable(subject)) {
      EXPECT_LE(r, 0.4);  // inverted: rates good peers badly
    } else {
      EXPECT_GE(r, 0.6);
    }
  }
}

TEST(GroundTruth, SetMaliciousRatioExact) {
  util::Rng rng(6);
  GroundTruth truth(rng, small_world(1000));
  truth.set_malicious_ratio(rng, 0.3);
  EXPECT_EQ(truth.poor_evaluator_count(), 300u);
  truth.set_malicious_ratio(rng, 0.0);
  EXPECT_EQ(truth.poor_evaluator_count(), 0u);
  truth.set_malicious_ratio(rng, 1.0);
  EXPECT_EQ(truth.poor_evaluator_count(), 1000u);
}

TEST(GroundTruth, CorruptEvaluatorsAddsExactly) {
  util::Rng rng(7);
  GroundTruth truth(rng, small_world(500));
  truth.set_malicious_ratio(rng, 0.0);
  truth.corrupt_evaluators(rng, 50);
  EXPECT_EQ(truth.poor_evaluator_count(), 50u);
  truth.corrupt_evaluators(rng, 1000);  // clamped to remaining honest
  EXPECT_EQ(truth.poor_evaluator_count(), 500u);
}

TEST(GroundTruth, SetMaliciousTargeted) {
  util::Rng rng(8);
  GroundTruth truth(rng, small_world(10));
  truth.set_malicious_ratio(rng, 0.0);
  truth.set_malicious(3, true);
  EXPECT_TRUE(truth.poor_evaluator(3));
  EXPECT_EQ(truth.poor_evaluator_count(), 1u);
  truth.set_malicious(3, false);
  EXPECT_EQ(truth.poor_evaluator_count(), 0u);
}

TEST(GroundTruth, EmptyWorldRejected) {
  util::Rng rng(9);
  WorldParams p;
  p.nodes = 0;
  EXPECT_THROW(GroundTruth(rng, p), std::invalid_argument);
}

TEST(GroundTruth, CustomRatingScopes) {
  util::Rng rng(10);
  WorldParams p = small_world(100);
  p.malicious_ratio = 0.0;
  p.good_rating_lo = 0.9;
  p.good_rating_hi = 1.0;
  p.bad_rating_lo = 0.0;
  p.bad_rating_hi = 0.1;
  GroundTruth truth(rng, p);
  for (int i = 0; i < 200; ++i) {
    const auto subject = static_cast<net::NodeIndex>(rng.below(100));
    const double r = truth.evaluate(0, subject, rng);
    if (truth.trustable(subject)) {
      EXPECT_GE(r, 0.9);
    } else {
      EXPECT_LE(r, 0.1);
    }
  }
}

}  // namespace
}  // namespace hirep::trust
