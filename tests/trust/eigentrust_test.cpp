#include "trust/eigentrust.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace hirep::trust {
namespace {

TEST(EigenTrust, UniformWithNoRatings) {
  EigenTrust et(4);
  const auto t = et.compute();
  for (double v : t) EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST(EigenTrust, SumsToOne) {
  EigenTrust et(5);
  et.add_local_trust(0, 1, 1.0);
  et.add_local_trust(1, 2, 2.0);
  et.add_local_trust(2, 0, 0.5);
  const auto t = et.compute();
  EXPECT_NEAR(std::accumulate(t.begin(), t.end(), 0.0), 1.0, 1e-9);
}

TEST(EigenTrust, UnanimouslyTrustedPeerRanksFirst) {
  EigenTrust et(4);
  for (std::size_t i = 0; i < 4; ++i) {
    if (i != 3) et.add_local_trust(i, 3, 1.0);
  }
  const auto t = et.compute();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_GT(t[3], t[i]);
}

TEST(EigenTrust, NegativeRatingsClampToZero) {
  EigenTrust a(3), b(3);
  a.add_local_trust(0, 1, -5.0);
  const auto ta = a.compute();
  const auto tb = b.compute();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ta[i], tb[i], 1e-12);
}

TEST(EigenTrust, SelfRatingsIgnored) {
  EigenTrust et(3);
  et.add_local_trust(1, 1, 100.0);
  const auto t = et.compute();
  EXPECT_NEAR(t[1], 1.0 / 3.0, 1e-9);
}

TEST(EigenTrust, PreTrustedDampingPullsTowardP) {
  EigenTrust et(4, {0});
  // A collusion clique (2,3) rates only each other.
  et.add_local_trust(2, 3, 1.0);
  et.add_local_trust(3, 2, 1.0);
  const auto t = et.compute(0.5);
  // Strong damping toward pre-trusted peer 0 limits the clique's gain.
  EXPECT_GT(t[0], t[2]);
}

TEST(EigenTrust, OutOfRangeIndicesThrow) {
  EXPECT_THROW(EigenTrust(3, {5}), std::out_of_range);
  EigenTrust et(3);
  EXPECT_THROW(et.add_local_trust(0, 9, 1.0), std::out_of_range);
  EXPECT_THROW(et.add_local_trust(9, 0, 1.0), std::out_of_range);
}

TEST(EigenTrust, ConvergesWithinIterationBudget) {
  EigenTrust et(50);
  for (std::size_t i = 0; i < 50; ++i) {
    // Asymmetric weights so the stationary vector is non-uniform and the
    // iteration has real work to do.
    et.add_local_trust(i, (i + 1) % 50, 1.0 + static_cast<double>(i % 5));
    et.add_local_trust(i, (i + 7) % 50, 0.5);
  }
  et.compute(0.15, 1e-10, 500);
  EXPECT_LT(et.last_iterations(), 500u);
  EXPECT_GT(et.last_iterations(), 1u);
}

TEST(EigenTrust, MaliciousCliqueSuppressedByPreTrust) {
  // 10 peers; 0-6 honest, rating each other; 7-9 a clique inflating itself.
  EigenTrust et(10, {0, 1});
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 7; ++j) {
      if (i != j) et.add_local_trust(i, j, 1.0);
    }
  }
  for (std::size_t i = 7; i < 10; ++i) {
    for (std::size_t j = 7; j < 10; ++j) {
      if (i != j) et.add_local_trust(i, j, 10.0);
    }
  }
  const auto t = et.compute(0.2);
  double honest = 0, clique = 0;
  for (std::size_t i = 0; i < 7; ++i) honest += t[i];
  for (std::size_t i = 7; i < 10; ++i) clique += t[i];
  EXPECT_GT(honest, clique);
}

}  // namespace
}  // namespace hirep::trust
