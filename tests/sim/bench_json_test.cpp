// hirep-bench-v1 emitter tests, including the regression for the json=
// key: it must be consumed through Config so run_exhibit's typo detector
// ("warning: unused parameter") never fires for it.
#include "sim/bench_json.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/json.hpp"

namespace hirep::sim {
namespace {

ExperimentResult sample_result() {
  util::Table table({"transactions", "hirep", "label"});
  table.add_row({std::int64_t{10}, 1.5, std::string("a")});
  table.add_row({std::int64_t{20}, 2.5, std::string("b")});
  ExperimentResult result{std::move(table), {}};
  result.checks.push_back({"traffic stays O(c)", true, "ratio=1.02"});
  result.checks.push_back({"accuracy beats voting", false, "mse worse"});
  return result;
}

obs::Snapshot sample_snapshot() {
  obs::Registry reg;
  reg.counter("net.envelope.report.sent").add(3);
  reg.gauge("net.event_sim.queue_depth").set(5);
  reg.histogram("crypto.rsa.sign.ms", {1.0, 10.0}).observe(0.5);
  reg.timer("bench/run").record(2'000'000);
  return reg.snapshot();
}

TEST(JsonOutputPath, ConsumesTheKeySoItNeverWarns) {
  const auto cfg = util::Config::from_string("json=/tmp/out.json seed=3");
  EXPECT_EQ(json_output_path(cfg), "/tmp/out.json");
  // The regression: json must not appear among unused keys afterwards.
  const auto unused = cfg.unused_keys();
  EXPECT_EQ(std::find(unused.begin(), unused.end(), "json"), unused.end());
  // And an untouched key still does (the detector still works).
  EXPECT_NE(std::find(unused.begin(), unused.end(), "seed"), unused.end());
}

TEST(JsonOutputPath, EmptyWhenAbsent) {
  const auto cfg = util::Config::from_string("seed=3");
  EXPECT_EQ(json_output_path(cfg), "");
}

TEST(WriteBenchJson, ProducesASchemaValidDocument) {
  std::ostringstream out;
  const auto cfg = util::Config::from_string("seed=3 network_size=200");
  write_bench_json(out, "Figure 5 — traffic", sample_result(), cfg,
                   sample_snapshot());
  const std::string doc = out.str();

  std::string error;
  ASSERT_TRUE(util::json_valid(doc, &error)) << error;

  // Top-level identity and the exhibit payload.
  EXPECT_NE(doc.find("\"schema\": \"hirep-bench-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"title\": \"Figure 5 — traffic\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\": \"3\""), std::string::npos);
  EXPECT_NE(doc.find("\"transactions\""), std::string::npos);
  EXPECT_NE(doc.find("\"traffic stays O(c)\""), std::string::npos);
  EXPECT_NE(doc.find("\"all_hold\": false"), std::string::npos);

  // Table cells keep their original types: int row key, double value,
  // string label.
  EXPECT_NE(doc.find("10,"), std::string::npos);
  EXPECT_NE(doc.find("1.5"), std::string::npos);
  EXPECT_NE(doc.find("\"a\""), std::string::npos);

  // Registry snapshot sections.
  EXPECT_NE(doc.find("\"net.envelope.report.sent\""), std::string::npos);
  EXPECT_NE(doc.find("\"net.event_sim.queue_depth\""), std::string::npos);
  EXPECT_NE(doc.find("\"crypto.rsa.sign.ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"bench/run\""), std::string::npos);
  // Phase timings: ms view plus the raw ns under metrics.timers.
  EXPECT_NE(doc.find("\"total_ms\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"total_ns\": 2000000"), std::string::npos);
}

TEST(WriteBenchJson, DeterministicForIdenticalInputs) {
  const auto cfg = util::Config::from_string("seed=3");
  std::ostringstream a, b;
  write_bench_json(a, "t", sample_result(), cfg, sample_snapshot());
  write_bench_json(b, "t", sample_result(), cfg, sample_snapshot());
  EXPECT_EQ(a.str(), b.str());
}

TEST(WriteBenchJsonFile, ThrowsOnUnwritablePath) {
  const auto cfg = util::Config::from_string("");
  EXPECT_THROW(write_bench_json_file("/nonexistent-dir/x.json", "t",
                                     sample_result(), cfg, sample_snapshot()),
               std::runtime_error);
}

TEST(WriteBenchJsonFile, WritesAValidatableFile) {
  const std::string path = ::testing::TempDir() + "hirep_bench_test.json";
  const auto cfg = util::Config::from_string("seed=3");
  write_bench_json_file(path, "t", sample_result(), cfg, sample_snapshot());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::string error;
  EXPECT_TRUE(util::json_valid(buf.str(), &error)) << error;
}

}  // namespace
}  // namespace hirep::sim
