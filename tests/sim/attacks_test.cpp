#include "sim/attacks.hpp"

#include <gtest/gtest.h>

namespace hirep::sim {
namespace {

core::HirepOptions small_options() {
  core::HirepOptions o;
  o.nodes = 64;
  o.rsa_bits = 64;
  o.trusted_agents = 5;
  o.onion_relays = 3;
  o.seed = 21;
  o.world.malicious_ratio = 0.1;
  return o;
}

struct AttackFixture : ::testing::Test {
  AttackFixture() : system(small_options()) {}
  core::HirepSystem system;
};

TEST_F(AttackFixture, ReportSpoofAlwaysRejected) {
  // Find an agent node.
  net::NodeIndex agent_ip = 0;
  while (system.agent_at(agent_ip) == nullptr) ++agent_ip;
  for (int trial = 0; trial < 5; ++trial) {
    const auto attacker = static_cast<net::NodeIndex>(trial);
    const auto victim = static_cast<net::NodeIndex>(trial + 10);
    EXPECT_FALSE(attempt_report_spoof(system, attacker, victim, agent_ip,
                                      /*subject=*/30))
        << "spoof accepted on trial " << trial;
  }
}

TEST_F(AttackFixture, MitmKeySubstitutionAlwaysRejected) {
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_FALSE(attempt_mitm_key_substitution(
        system, /*requestor=*/static_cast<net::NodeIndex>(trial),
        /*relay=*/static_cast<net::NodeIndex>(trial + 20),
        /*attacker=*/static_cast<net::NodeIndex>(trial + 40)));
  }
}

TEST_F(AttackFixture, OnionReplayRejected) {
  EXPECT_FALSE(attempt_onion_replay(system, 5));
  EXPECT_FALSE(attempt_onion_replay(system, 17));
}

TEST_F(AttackFixture, AgentPopularityCensus) {
  const auto pop = agent_popularity(system);
  EXPECT_FALSE(pop.empty());
  // Sorted descending and every listed node is an agent.
  for (std::size_t i = 1; i < pop.size(); ++i) {
    EXPECT_GE(pop[i - 1].second, pop[i].second);
  }
  for (const auto& [ip, refs] : pop) {
    EXPECT_NE(system.agent_at(ip), nullptr);
    EXPECT_GT(refs, 0u);
  }
}

TEST_F(AttackFixture, DosTakesTopAgentsOffline) {
  const auto victims = dos_top_agents(system, 3);
  EXPECT_EQ(victims.size(), 3u);
  for (auto v : victims) EXPECT_FALSE(system.agent_online(v));
}

TEST_F(AttackFixture, SystemRecoversFromDos) {
  const auto victims = dos_top_agents(system, 5);
  ASSERT_FALSE(victims.empty());
  // Transactions keep flowing; peers replace lost agents via maintenance.
  std::size_t responses = 0;
  for (int i = 0; i < 30; ++i) responses += system.run_transaction().responses;
  EXPECT_GT(responses, 0u);
}

TEST_F(AttackFixture, SybilCorruptsRequestedCount) {
  const auto before = system.truth().poor_evaluator_count();
  const auto converted = sybil_corrupt_agents(system, 4);
  EXPECT_EQ(converted.size(), 4u);
  EXPECT_EQ(system.truth().poor_evaluator_count(), before + 4);
  for (auto v : converted) EXPECT_TRUE(system.truth().poor_evaluator(v));
}

TEST_F(AttackFixture, HostileRecommendationsShape) {
  const auto lists = hostile_recommendations(system, {1, 2}, {3, 4, 5}, 6);
  EXPECT_EQ(lists.size(), 6u);
  for (const auto& list : lists) {
    EXPECT_EQ(list.size(), 5u);
    for (const auto& e : list) {
      const auto ip = system.ip_of(e.agent_id);
      ASSERT_TRUE(ip.has_value());
      if (*ip == 1 || *ip == 2) {
        EXPECT_DOUBLE_EQ(e.weight, 0.0);  // bad-mouthed
      } else {
        EXPECT_DOUBLE_EQ(e.weight, 1.0);  // shilled
      }
    }
  }
}

}  // namespace
}  // namespace hirep::sim
