// Golden-value pins for the figure pipelines.  The tables below were
// captured from the counted-send implementation (pre-transport) at full
// double precision; the transport refactor with InstantDelivery must keep
// reproducing them bit for bit — message counts AND estimates.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/pure_voting.hpp"
#include "sim/experiment.hpp"
#include "sim/response_time.hpp"

namespace hirep::sim {
namespace {

Params golden_params() {
  Params p;
  p.network_size = 200;
  p.transactions = 60;
  p.seeds = 1;
  p.seed = 7;
  p.mse_window = 20;
  p.requestor_pool = 20;
  p.provider_pool = 40;
  return p;
}

// transactions, voting-2, voting-3, voting-4, hirep
const std::vector<std::vector<double>> kFig5Golden = {
    {6, 1118, 3924, 6611, 1044},
    {12, 2627, 8203, 12410, 2088},
    {18, 3762, 12278, 19016, 3132},
    {24, 5334, 16558, 25595, 4194},
    {30, 6219, 20164, 31807, 5274},
    {36, 7811, 24060, 38173, 6354},
    {42, 9691, 28273, 44625, 7416},
    {48, 11027, 31677, 50950, 8496},
    {54, 13104, 35265, 57253, 9558},
    {60, 14510, 39553, 63114, 10638},
};

// transactions, voting, hirep-4, hirep-6, hirep-8
const std::vector<std::vector<double>> kFig6Golden = {
    {10, 0.065214480445090123, 0.080035689513480765, 0.080035689513480765,
     0.065145401261152286},
    {20, 0.066617504433397451, 0.067371222968806876, 0.067371222968806876,
     0.056654274109578719},
    {30, 0.068760310759109072, 0.050869266286786077, 0.050455355289226365,
     0.038948800818810692},
    {40, 0.069004387412457818, 0.039480252039594037, 0.036623217204582559,
     0.035974303917042601},
    {50, 0.068954216591999934, 0.034618628063436553, 0.029845344957288505,
     0.043887303625152023},
    {60, 0.068990047087019307, 0.043384601103030607, 0.032215411389345722,
     0.037280212707840543},
    {70, 0.068849215668431246, 0.034866607060602309, 0.024936393101890542,
     0.027186629242294973},
    {80, 0.068820776620601445, 0.019299958889424703, 0.014438967525969015,
     0.025166374059194661},
    {90, 0.06601638460023343, 0.018432784840077265, 0.016359346253063491,
     0.021439508416014545},
    {100, 0.065284440396730758, 0.021923948629325792, 0.019405916975276948,
     0.012842275106270515},
};

void expect_table_equals(const util::Table& table,
                         const std::vector<std::vector<double>>& golden) {
  ASSERT_EQ(table.rows(), golden.size());
  for (std::size_t r = 0; r < golden.size(); ++r) {
    ASSERT_EQ(table.columns(), golden[r].size());
    for (std::size_t c = 0; c < golden[r].size(); ++c) {
      // Bit-for-bit: InstantDelivery must not perturb a single count or
      // rng draw relative to the pre-transport implementation.
      EXPECT_EQ(table.number_at(r, c), golden[r][c])
          << "row " << r << " col " << c;
    }
  }
}

TEST(GoldenValues, Fig5TrafficIsUnchangedByTheTransportLayer) {
  const auto result = run_fig5_traffic(golden_params());
  expect_table_equals(result.table, kFig5Golden);
}

TEST(GoldenValues, Fig6AccuracyIsUnchangedByTheTransportLayer) {
  const auto result = run_fig6_accuracy(golden_params());
  expect_table_equals(result.table, kFig6Golden);
}

TEST(AverageOverSeeds, ParallelMatchesSerialBitForBit) {
  Params p = golden_params();
  p.seeds = 4;
  const auto series = [&](std::uint64_t seed) {
    Params q = p;
    q.seed = seed;
    baselines::PureVotingSystem system(q.voting_options());
    std::vector<double> ys;
    for (int t = 0; t < 10; ++t) {
      ys.push_back(system.run_transaction().estimate);
    }
    return ys;
  };
  const auto parallel =
      average_over_seeds(p, series, SeedExecution::kParallel);
  const auto serial = average_over_seeds(p, series, SeedExecution::kSerial);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "index " << i;
  }
}

TEST(AverageOverSeeds, Fig8ResponseParallelMatchesSerialBitForBit) {
  // The whole fig8 pipeline (three hirep relay configurations + the timed
  // voting baseline) through average_over_seeds both ways.  Tiny params:
  // the property is scheduling-independence, not the figure itself.
  Params p = golden_params();
  p.network_size = 64;
  p.transactions = 20;
  p.seeds = 2;
  const auto parallel = run_fig8_response(p, SeedExecution::kParallel);
  const auto serial = run_fig8_response(p, SeedExecution::kSerial);
  ASSERT_EQ(parallel.table.rows(), serial.table.rows());
  ASSERT_EQ(parallel.table.columns(), serial.table.columns());
  for (std::size_t r = 0; r < parallel.table.rows(); ++r) {
    for (std::size_t c = 0; c < parallel.table.columns(); ++c) {
      EXPECT_EQ(parallel.table.number_at(r, c), serial.table.number_at(r, c))
          << "row " << r << " col " << c;
    }
  }
  ASSERT_EQ(parallel.checks.size(), serial.checks.size());
  for (std::size_t i = 0; i < parallel.checks.size(); ++i) {
    EXPECT_EQ(parallel.checks[i].holds, serial.checks[i].holds) << "check " << i;
    EXPECT_EQ(parallel.checks[i].detail, serial.checks[i].detail) << "check " << i;
  }
}

}  // namespace
}  // namespace hirep::sim
