// Golden-value pins for the figure pipelines.  The tables below were
// captured at full double precision from the batched scale engine
// (per-transaction RNG streams, pre-drawn workload, Neumaier-compensated
// MSE windows) with the parallel executor enabled; both executors and any
// future refactor must keep reproducing them bit for bit — message counts
// AND estimates.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/pure_voting.hpp"
#include "sim/experiment.hpp"
#include "sim/response_time.hpp"

namespace hirep::sim {
namespace {

Params golden_params() {
  Params p;
  p.network_size = 200;
  p.transactions = 60;
  p.seeds = 1;
  p.seed = 7;
  p.mse_window = 20;
  p.requestor_pool = 20;
  p.provider_pool = 40;
  return p;
}

// transactions, voting-2, voting-3, voting-4, hirep
const std::vector<std::vector<double>> kFig5Golden = {
    {6, 1118, 3924, 6611, 1080},
    {12, 2627, 8203, 12410, 2160},
    {18, 3762, 12278, 19016, 3186},
    {24, 5334, 16558, 25595, 4230},
    {30, 6219, 20164, 31807, 5310},
    {36, 7811, 24060, 38173, 6390},
    {42, 9691, 28273, 44625, 7434},
    {48, 11027, 31677, 50950, 8496},
    {54, 13104, 35265, 57253, 9540},
    {60, 14510, 39553, 63114, 10602},
};

// transactions, voting, hirep-4, hirep-6, hirep-8
const std::vector<std::vector<double>> kFig6Golden = {
    {10, 0.065214480445090123, 0.05508763509368194, 0.052465014763679797,
     0.050683057404128942},
    {20, 0.066617504433397451, 0.056722056685676113, 0.055410746520675035,
     0.049215727834424114},
    {30, 0.068760310759109072, 0.055083403087215176, 0.052087824363662508,
     0.046783784357187004},
    {40, 0.069004387412457818, 0.045235900272596739, 0.042240321549044071,
     0.034547557987852751},
    {50, 0.068954216591999976, 0.041036754185416552, 0.039190185769198416,
     0.030742185205088111},
    {60, 0.068990047087019321, 0.035968456127620438, 0.03106494425688262,
     0.029481741961594827},
    {70, 0.068849215668431246, 0.037432651265569009, 0.031601239766079536,
     0.026959620362453963},
    {80, 0.068820776620601487, 0.033536857060491948, 0.030762389015522168,
     0.026625112387190526},
    {90, 0.066016384600233471, 0.027511702333610027, 0.026033926706891149,
     0.024962281866082653},
    {100, 0.065284440396730786, 0.020954497939377356, 0.019476722312658477,
     0.018728699988924864},
};

// Full-crypto pins, captured from the base-2^32 schoolbook bignum before
// the word-limb Montgomery + CRT rewrite.  RSA is deterministic math and
// the random draw pattern (one 32-bit word per rng() call) is part of the
// BigInt contract, so the rewrite — and any future exponentiation-strategy
// change — must reproduce every count and estimate bit for bit; only
// walltime may move.
// transactions, voting-2, voting-3, voting-4, hirep
const std::vector<std::vector<double>> kFig5FullCryptoGolden = {
    {6, 1118, 3924, 6611, 1080},
    {12, 2627, 8203, 12410, 2142},
    {18, 3762, 12278, 19016, 3150},
    {24, 5334, 16558, 25595, 4230},
    {30, 6219, 20164, 31807, 5292},
    {36, 7811, 24060, 38173, 6372},
    {42, 9691, 28273, 44625, 7416},
    {48, 11027, 31677, 50950, 8424},
    {54, 13104, 35265, 57253, 9468},
    {60, 14510, 39553, 63114, 10512},
};

// transactions, voting, hirep-4, hirep-6, hirep-8
const std::vector<std::vector<double>> kFig6FullCryptoGolden = {
    {10, 0.065214480445090123, 0.064557153544964302, 0.064557153544964302,
     0.064557153544964302},
    {20, 0.066617504433397451, 0.062143217813308983, 0.062143217813308983,
     0.06004917227054065},
    {30, 0.068760310759109072, 0.053356021097825945, 0.049466478920644319,
     0.044776928199562721},
    {40, 0.069004387412457818, 0.039149038235274589, 0.035259496058092962,
     0.028922168993577614},
    {50, 0.068954216591999976, 0.032100909309034684, 0.031556253178500283,
     0.027005304049157314},
    {60, 0.068990047087019321, 0.026455837717664722, 0.024556078862603581,
     0.023746951619462699},
    {70, 0.068849215668431246, 0.026803130716015745, 0.024745396289175679,
     0.023250579218913683},
    {80, 0.068820776620601487, 0.025462440185696999, 0.024159540498910281,
     0.02176241618458355},
    {90, 0.066016384600233471, 0.016668987624261482, 0.014795867085309073,
     0.013697995831036236},
    {100, 0.065284440396730786, 0.012091743437725525, 0.010818890883246508,
     0.010623326873038404},
};

void expect_table_equals(const util::Table& table,
                         const std::vector<std::vector<double>>& golden) {
  ASSERT_EQ(table.rows(), golden.size());
  for (std::size_t r = 0; r < golden.size(); ++r) {
    ASSERT_EQ(table.columns(), golden[r].size());
    for (std::size_t c = 0; c < golden[r].size(); ++c) {
      // Bit-for-bit: InstantDelivery must not perturb a single count or
      // rng draw relative to the pre-transport implementation.
      EXPECT_EQ(table.number_at(r, c), golden[r][c])
          << "row " << r << " col " << c;
    }
  }
}

TEST(GoldenValues, Fig5TrafficIsUnchangedByTheScaleEngine) {
  const auto result = run_fig5_traffic(golden_params());
  expect_table_equals(result.table, kFig5Golden);
}

TEST(GoldenValues, Fig6AccuracyIsUnchangedByTheScaleEngine) {
  const auto result = run_fig6_accuracy(golden_params());
  expect_table_equals(result.table, kFig6Golden);
}

TEST(GoldenValues, Fig5FullCryptoIsUnchangedByTheBignumKernel) {
  Params p = golden_params();
  p.crypto_mode = "full";
  expect_table_equals(run_fig5_traffic(p).table, kFig5FullCryptoGolden);
}

TEST(GoldenValues, Fig6FullCryptoIsUnchangedByTheBignumKernel) {
  Params p = golden_params();
  p.crypto_mode = "full";
  expect_table_equals(run_fig6_accuracy(p).table, kFig6FullCryptoGolden);
}

TEST(GoldenValues, SerialExecutorReproducesTheSameFigures) {
  // The pins above run with Params' default execution=parallel; the serial
  // engine must land on every golden bit as well.
  Params p = golden_params();
  p.execution = "serial";
  expect_table_equals(run_fig5_traffic(p).table, kFig5Golden);
  expect_table_equals(run_fig6_accuracy(p).table, kFig6Golden);
}

TEST(GoldenValues, ChaosStackDisabledLeavesEveryGoldenBitAlone) {
  // The robustness layer's golden-safety contract, spelled out: with the
  // chaos engine compiled in but off, the zero-retry reliable channel, and
  // recovery at its defaults (quorum disabled), the figure pipelines —
  // which now route every request through ReliableChannel and call
  // install_chaos() unconditionally — reproduce the pre-chaos pins bit for
  // bit.  Every knob is pinned explicitly so a future default change that
  // would silently perturb the goldens fails here, by name.
  Params p = golden_params();
  p.chaos = "off";
  p.retry_max_attempts = 1;
  p.retry_timeout_ms = 0.0;
  p.retry_backoff_ms = 0.0;
  p.retry_jitter_ms = 0.0;
  p.suspicion_threshold = 3;
  p.min_quorum = 0;
  expect_table_equals(run_fig5_traffic(p).table, kFig5Golden);
  expect_table_equals(run_fig6_accuracy(p).table, kFig6Golden);
}

TEST(GoldenValues, AdversaryStackDisabledLeavesEveryGoldenBitAlone) {
  // The adversary engine's golden-safety contract: with the engine
  // compiled in but off, the figure pipelines — which now call
  // install_adversary() unconditionally (fig7) and share GroundTruth's
  // behavior/override vectors — reproduce the pins bit for bit.  Every
  // adversary knob is pinned explicitly, by name, so a future default
  // change that would silently perturb the goldens fails here.
  Params p = golden_params();
  p.adversary = "off";
  p.adversary_seed = 0;
  p.adversary_ring_size = 0;
  p.adversary_ring_at = 0;
  p.adversary_ring_targets = 4;
  p.adversary_sybil_count = 0;
  p.adversary_sybil_at = 0;
  p.adversary_sybil_period = 0;
  p.adversary_sybil_corrupt = 0;
  p.adversary_whitewash_count = 0;
  p.adversary_whitewash_threshold = 0.3;
  p.adversary_whitewash_cooldown = 10;
  p.adversary_oscillator_count = 0;
  p.adversary_oscillator_on = 0.7;
  p.adversary_oscillator_burst = 5;
  p.adversary_front_count = 0;
  p.adversary_front_at = 0;
  expect_table_equals(run_fig5_traffic(p).table, kFig5Golden);
  expect_table_equals(run_fig6_accuracy(p).table, kFig6Golden);
}

TEST(AverageOverSeeds, ParallelMatchesSerialBitForBit) {
  Params p = golden_params();
  p.seeds = 4;
  const auto series = [&](std::uint64_t seed) {
    Params q = p;
    q.seed = seed;
    baselines::PureVotingSystem system(q.voting_options());
    std::vector<double> ys;
    for (int t = 0; t < 10; ++t) {
      ys.push_back(system.run_transaction().estimate);
    }
    return ys;
  };
  const auto parallel =
      average_over_seeds(p, series, SeedExecution::kParallel);
  const auto serial = average_over_seeds(p, series, SeedExecution::kSerial);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "index " << i;
  }
}

TEST(AverageOverSeeds, Fig8ResponseParallelMatchesSerialBitForBit) {
  // The whole fig8 pipeline (three hirep relay configurations + the timed
  // voting baseline) through average_over_seeds both ways.  Tiny params:
  // the property is scheduling-independence, not the figure itself.
  Params p = golden_params();
  p.network_size = 64;
  p.transactions = 20;
  p.seeds = 2;
  const auto parallel = run_fig8_response(p, SeedExecution::kParallel);
  const auto serial = run_fig8_response(p, SeedExecution::kSerial);
  ASSERT_EQ(parallel.table.rows(), serial.table.rows());
  ASSERT_EQ(parallel.table.columns(), serial.table.columns());
  for (std::size_t r = 0; r < parallel.table.rows(); ++r) {
    for (std::size_t c = 0; c < parallel.table.columns(); ++c) {
      EXPECT_EQ(parallel.table.number_at(r, c), serial.table.number_at(r, c))
          << "row " << r << " col " << c;
    }
  }
  ASSERT_EQ(parallel.checks.size(), serial.checks.size());
  for (std::size_t i = 0; i < parallel.checks.size(); ++i) {
    EXPECT_EQ(parallel.checks[i].holds, serial.checks[i].holds) << "check " << i;
    EXPECT_EQ(parallel.checks[i].detail, serial.checks[i].detail) << "check " << i;
  }
}

}  // namespace
}  // namespace hirep::sim
