// sim::ChaosEngine — the deterministic fault scheduler: scripted crash /
// restart, group partitions, burst-loss windows, per-node slowdown, random
// churn, the ChaosDelivery wire overlay, golden safety (chaos=off touches
// nothing), and bit-identical replay of a chaotic run.
#include "sim/chaos.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <span>
#include <utility>
#include <vector>

#include "sim/scenario.hpp"

namespace hirep::sim {
namespace {

Params small_params() {
  Params p;
  p.network_size = 64;
  p.transactions = 40;
  p.requestor_pool = 0;  // whole-network workload at this size
  p.provider_pool = 0;
  p.seed = 11;
  return p;
}

TEST(ChaosInstall, OffLeavesTheRunUntouched) {
  const Params p = small_params();  // chaos defaults to "off"
  core::HirepSystem sys(p.hirep_options());
  EXPECT_EQ(install_chaos(sys, p), nullptr);
  EXPECT_STREQ(sys.transport().policy().name(), "instant");
}

TEST(ChaosInstall, OnWrapsTheConfiguredDeliveryPolicy) {
  Params p = small_params();
  p.chaos = "on";
  core::HirepSystem sys(p.hirep_options());
  const auto engine = install_chaos(sys, p);
  ASSERT_NE(engine, nullptr);
  EXPECT_STREQ(sys.transport().policy().name(), "chaos");
  EXPECT_EQ(engine->now(), 0u);
}

TEST(ChaosParamsFrom, ProjectsEveryScheduleKnob) {
  Params p = small_params();
  p.chaos_seed = 77;
  p.chaos_crash_rate = 0.1;
  p.chaos_mean_downtime = 5.0;
  p.chaos_crash_at = 3;
  p.chaos_restart_at = 6;
  p.chaos_agent_crash_fraction = 0.4;
  p.chaos_partition_at = 9;
  p.chaos_heal_at = 12;
  p.chaos_partition_fraction = 0.2;
  p.chaos_burst_at = 15;
  p.chaos_burst_until = 18;
  p.chaos_burst_drop = 0.6;
  p.chaos_slowdown_fraction = 0.3;
  p.chaos_slowdown_ms = 2.5;
  const auto c = chaos_params_from(p);
  EXPECT_EQ(c.seed, 77u);
  EXPECT_DOUBLE_EQ(c.crash_rate, 0.1);
  EXPECT_DOUBLE_EQ(c.mean_downtime, 5.0);
  EXPECT_EQ(c.crash_at, 3u);
  EXPECT_EQ(c.restart_at, 6u);
  EXPECT_DOUBLE_EQ(c.agent_crash_fraction, 0.4);
  EXPECT_EQ(c.partition_at, 9u);
  EXPECT_EQ(c.heal_at, 12u);
  EXPECT_DOUBLE_EQ(c.partition_fraction, 0.2);
  EXPECT_EQ(c.burst_at, 15u);
  EXPECT_EQ(c.burst_until, 18u);
  EXPECT_DOUBLE_EQ(c.burst_drop, 0.6);
  EXPECT_DOUBLE_EQ(c.slowdown_fraction, 0.3);
  EXPECT_DOUBLE_EQ(c.slowdown_ms, 2.5);
}

TEST(ChaosSchedule, ScriptedCrashDownsAgentsAndRestartRevivesThem) {
  Params p = small_params();
  p.chaos = "on";
  p.chaos_crash_at = 2;
  p.chaos_restart_at = 4;
  p.chaos_agent_crash_fraction = 1.0;
  core::HirepSystem sys(p.hirep_options());
  const auto engine = install_chaos(sys, p);
  ASSERT_NE(engine, nullptr);

  engine->advance_to(1);
  EXPECT_EQ(engine->counters().scripted_crashes, 0u);

  engine->advance_to(2);
  EXPECT_EQ(engine->counters().scripted_crashes, sys.agent_count());
  for (net::NodeIndex v = 0; v < sys.node_count(); ++v) {
    if (sys.agent_at(v) != nullptr) {
      EXPECT_TRUE(engine->crashed(v)) << "agent " << v;
      EXPECT_FALSE(sys.agent_online(v)) << "agent " << v;
    }
  }

  engine->advance_to(4);
  EXPECT_EQ(engine->counters().restarts, sys.agent_count());
  for (net::NodeIndex v = 0; v < sys.node_count(); ++v) {
    if (sys.agent_at(v) != nullptr) {
      EXPECT_FALSE(engine->crashed(v)) << "agent " << v;
      EXPECT_TRUE(sys.agent_online(v)) << "agent " << v;
    }
  }
  // Ticks already in the past are a no-op.
  engine->advance_to(2);
  EXPECT_EQ(engine->now(), 4u);
}

TEST(ChaosSchedule, PartitionSeversExactlyTheCutAndHealsClean) {
  Params p = small_params();
  p.chaos = "on";
  p.chaos_partition_at = 1;
  p.chaos_heal_at = 3;
  p.chaos_partition_fraction = 0.25;
  core::HirepSystem sys(p.hirep_options());
  const auto engine = install_chaos(sys, p);
  ASSERT_NE(engine, nullptr);

  EXPECT_FALSE(engine->severed(0, 1));  // no cut before the schedule fires
  engine->advance_to(1);
  EXPECT_EQ(engine->counters().partitions, 1u);

  // A fraction-0.25 cut of 64 nodes severs a 16-node side: exactly
  // 16 * 48 unordered pairs cross the cut, every one symmetrically.
  const auto n = static_cast<net::NodeIndex>(sys.node_count());
  std::size_t severed_pairs = 0;
  for (net::NodeIndex a = 0; a < n; ++a) {
    for (net::NodeIndex b = a + 1; b < n; ++b) {
      if (engine->severed(a, b)) {
        ++severed_pairs;
        EXPECT_TRUE(engine->severed(b, a));
      }
    }
  }
  EXPECT_EQ(severed_pairs, 16u * 48u);

  engine->advance_to(3);
  EXPECT_EQ(engine->counters().heals, 1u);
  for (net::NodeIndex a = 0; a < n; ++a) {
    for (net::NodeIndex b = a + 1; b < n; ++b) {
      EXPECT_FALSE(engine->severed(a, b));
    }
  }
}

TEST(ChaosSchedule, BurstWindowOpensAndClosesOnSchedule) {
  Params p = small_params();
  p.chaos = "on";
  p.chaos_burst_at = 2;
  p.chaos_burst_until = 4;
  p.chaos_burst_drop = 1.0;
  core::HirepSystem sys(p.hirep_options());
  const auto engine = install_chaos(sys, p);
  ASSERT_NE(engine, nullptr);

  engine->advance_to(1);
  EXPECT_FALSE(engine->burst_active());
  engine->advance_to(2);
  EXPECT_TRUE(engine->burst_active());
  EXPECT_TRUE(engine->draw_burst_drop());  // drop=1: every draw loses
  engine->advance_to(3);
  EXPECT_TRUE(engine->burst_active());
  engine->advance_to(4);
  EXPECT_FALSE(engine->burst_active());
}

TEST(ChaosSchedule, BurstUntilZeroNeverCloses) {
  Params p = small_params();
  p.chaos = "on";
  p.chaos_burst_at = 1;
  p.chaos_burst_until = 0;
  p.chaos_burst_drop = 0.5;
  core::HirepSystem sys(p.hirep_options());
  const auto engine = install_chaos(sys, p);
  engine->advance_to(100);
  EXPECT_TRUE(engine->burst_active());
}

TEST(ChaosSchedule, SlowdownTaxesExactlyTheSampledFraction) {
  Params p = small_params();
  p.chaos = "on";
  p.chaos_slowdown_fraction = 0.5;
  p.chaos_slowdown_ms = 2.5;
  core::HirepSystem sys(p.hirep_options());
  const auto engine = install_chaos(sys, p);
  std::size_t slowed = 0;
  for (net::NodeIndex v = 0; v < sys.node_count(); ++v) {
    const double s = engine->slowdown_of(v);
    EXPECT_TRUE(s == 0.0 || s == 2.5);
    slowed += s > 0.0;
  }
  EXPECT_EQ(slowed, sys.node_count() / 2);
}

TEST(ChaosChurn, RandomCrashesAreDeterministicPerSeed) {
  const auto trace = [](std::uint64_t chaos_seed) {
    Params p = small_params();
    p.chaos = "on";
    p.chaos_seed = chaos_seed;
    p.chaos_crash_rate = 0.05;
    p.chaos_mean_downtime = 3.0;
    core::HirepSystem sys(p.hirep_options());
    const auto engine = install_chaos(sys, p);
    std::vector<std::pair<std::uint64_t, std::vector<bool>>> snapshots;
    for (std::uint64_t t = 1; t <= 30; ++t) {
      engine->advance_to(t);
      std::vector<bool> down;
      for (net::NodeIndex v = 0; v < sys.node_count(); ++v) {
        down.push_back(engine->crashed(v));
      }
      snapshots.emplace_back(engine->counters().random_crashes,
                             std::move(down));
    }
    return snapshots;
  };
  const auto a = trace(5);
  EXPECT_EQ(a, trace(5));
  EXPECT_NE(a, trace(6));
  // The churn actually fires at this rate and nodes do come back.
  EXPECT_GT(a.back().first, 0u);
}

TEST(ChaosDeliveryOverlay, CrashedEndpointDropsTheHop) {
  Params p = small_params();
  p.chaos = "on";
  p.chaos_crash_at = 1;
  p.chaos_agent_crash_fraction = 1.0;
  core::HirepSystem sys(p.hirep_options());
  const auto engine = install_chaos(sys, p);
  engine->advance_to(1);

  net::NodeIndex agent_ip = net::kInvalidNode;
  net::NodeIndex plain_ip = net::kInvalidNode;
  for (net::NodeIndex v = 0; v < sys.node_count(); ++v) {
    if (sys.agent_at(v) != nullptr && agent_ip == net::kInvalidNode) {
      agent_ip = v;
    }
    if (sys.agent_at(v) == nullptr && plain_ip == net::kInvalidNode) {
      plain_ip = v;
    }
  }
  ASSERT_NE(agent_ip, net::kInvalidNode);
  ASSERT_NE(plain_ip, net::kInvalidNode);

  const auto to_crashed =
      sys.transport().send(net::EnvelopeType::kProbe, plain_ip, {agent_ip});
  EXPECT_FALSE(to_crashed.delivered);
  EXPECT_GE(engine->counters().crash_drops, 1u);

  // Hops between two live nodes still go through untouched.
  net::NodeIndex other_plain = net::kInvalidNode;
  for (net::NodeIndex v = plain_ip + 1; v < sys.node_count(); ++v) {
    if (sys.agent_at(v) == nullptr) {
      other_plain = v;
      break;
    }
  }
  ASSERT_NE(other_plain, net::kInvalidNode);
  EXPECT_TRUE(sys.transport()
                  .send(net::EnvelopeType::kProbe, plain_ip, {other_plain})
                  .delivered);
}

TEST(ChaosExecution, ParallelBatchesAreRejectedUnderChaos) {
  Params p = small_params();
  p.chaos = "on";
  core::HirepSystem sys(p.hirep_options());
  install_chaos(sys, p);
  const std::vector<std::pair<net::NodeIndex, net::NodeIndex>> pairs{{0, 1}};
  EXPECT_THROW(sys.run_transactions(pairs, core::Executor::parallel()),
               std::invalid_argument);
  // The sharded engine falls under the same rule.
  EXPECT_THROW(sys.run_transactions(pairs, core::Executor::sharded(2)),
               std::invalid_argument);
}

TEST(ChaosExecution, ScenarioDowngradesToSerialWhenChaosIsOn) {
  Params p = small_params();
  p.execution = "parallel";
  p.chaos = "on";
  EXPECT_EQ(Scenario(p).execution_policy().mode,
            core::ExecutionMode::kSerial);
  p.chaos = "off";
  EXPECT_EQ(Scenario(p).execution_policy().mode,
            core::ExecutionMode::kParallel);
  // chaos + sharded downgrades exactly like chaos + parallel.
  p.execution = "sharded";
  p.shards = 4;
  p.chaos = "on";
  const auto downgraded = Scenario(p).execution_policy();
  EXPECT_EQ(downgraded.mode, core::ExecutionMode::kSerial);
  EXPECT_EQ(downgraded.shards, 0u);
  p.chaos = "off";
  EXPECT_EQ(Scenario(p).execution_policy().mode,
            core::ExecutionMode::kSharded);
}

TEST(ChaosReplay, FullChaoticRunIsBitIdentical) {
  Params p = small_params();
  p.chaos = "on";
  p.chaos_crash_at = 10;
  p.chaos_restart_at = 20;
  p.chaos_agent_crash_fraction = 0.5;
  p.chaos_partition_at = 25;
  p.chaos_heal_at = 30;
  p.chaos_partition_fraction = 0.3;
  p.retry_max_attempts = 2;
  p.retry_backoff_ms = 0.5;
  p.min_quorum = 4;

  std::vector<std::pair<net::NodeIndex, net::NodeIndex>> pairs;
  for (std::size_t i = 0; i < p.transactions; ++i) {
    pairs.emplace_back(static_cast<net::NodeIndex>(i % 32),
                       static_cast<net::NodeIndex>(32 + (i * 7) % 32));
  }

  const auto run = [&] {
    core::HirepSystem sys(p.hirep_options());
    const auto engine = install_chaos(sys, p);
    std::vector<core::HirepSystem::TransactionRecord> records;
    const std::span<const std::pair<net::NodeIndex, net::NodeIndex>> all(
        pairs);
    const auto exec = core::Executor::serial();
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      records.push_back(sys.run_transactions(all.subspan(i, 1), exec)[0]);
      engine->advance_to(i + 1);
    }
    return std::make_pair(std::move(records), engine->counters());
  };

  const auto first = run();
  const auto second = run();
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  ASSERT_EQ(first.first.size(), second.first.size());
  for (std::size_t i = 0; i < first.first.size(); ++i) {
    const auto& a = first.first[i];
    const auto& b = second.first[i];
    EXPECT_EQ(a.requestor, b.requestor) << i;
    EXPECT_EQ(a.provider, b.provider) << i;
    EXPECT_EQ(bits(a.estimate), bits(b.estimate)) << i;
    EXPECT_EQ(bits(a.outcome), bits(b.outcome)) << i;
    EXPECT_EQ(a.responses, b.responses) << i;
    EXPECT_EQ(a.trust_messages, b.trust_messages) << i;
  }
  EXPECT_EQ(first.second.scripted_crashes, second.second.scripted_crashes);
  EXPECT_EQ(first.second.restarts, second.second.restarts);
  EXPECT_EQ(first.second.crash_drops, second.second.crash_drops);
  EXPECT_EQ(first.second.partition_drops, second.second.partition_drops);
  // The schedule genuinely fired (this is a chaos run, not a calm one).
  EXPECT_GT(first.second.scripted_crashes, 0u);
  EXPECT_GT(first.second.crash_drops, 0u);
}

}  // namespace
}  // namespace hirep::sim
