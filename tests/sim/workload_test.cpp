#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <map>

namespace hirep::sim {
namespace {

TEST(Workload, UniformNeverSelfTransacts) {
  WorkloadGenerator gen(10, 1);
  for (int i = 0; i < 1000; ++i) {
    const auto t = gen.uniform();
    EXPECT_NE(t.requestor, t.provider);
    EXPECT_LT(t.requestor, 10u);
    EXPECT_LT(t.provider, 10u);
  }
}

TEST(Workload, UniformBatchSize) {
  WorkloadGenerator gen(50, 2);
  EXPECT_EQ(gen.uniform_batch(123).size(), 123u);
}

TEST(Workload, UniformCoversProviders) {
  WorkloadGenerator gen(20, 3);
  std::map<net::NodeIndex, int> counts;
  for (const auto& t : gen.uniform_batch(4000)) ++counts[t.provider];
  EXPECT_EQ(counts.size(), 20u);
  for (const auto& [node, count] : counts) EXPECT_NEAR(count, 200, 80);
}

TEST(Workload, ZipfSkewsProviders) {
  WorkloadGenerator gen(100, 4);
  std::map<net::NodeIndex, int> counts;
  for (const auto& t : gen.zipf_batch(5000, 1.2)) ++counts[t.provider];
  // The most popular provider should dominate; find the max share.
  int max_count = 0;
  for (const auto& [node, count] : counts) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 5000 / 10);  // >10% on the hottest item
}

TEST(Workload, HigherExponentMoreSkew) {
  auto max_share = [](double s) {
    WorkloadGenerator gen(100, 5);
    std::map<net::NodeIndex, int> counts;
    for (const auto& t : gen.zipf_batch(5000, s)) ++counts[t.provider];
    int max_count = 0;
    for (const auto& [node, c] : counts) max_count = std::max(max_count, c);
    return max_count;
  };
  EXPECT_LT(max_share(0.5), max_share(2.0));
}

TEST(Workload, ZipfNoSelfTransactions) {
  WorkloadGenerator gen(10, 6);
  for (const auto& t : gen.zipf_batch(500, 1.0)) {
    EXPECT_NE(t.requestor, t.provider);
  }
}

TEST(Workload, RejectsDegenerateSize) {
  EXPECT_THROW(WorkloadGenerator(1, 7), std::invalid_argument);
}

TEST(Workload, DeterministicGivenSeed) {
  WorkloadGenerator a(30, 8), b(30, 8);
  for (int i = 0; i < 100; ++i) {
    const auto ta = a.uniform();
    const auto tb = b.uniform();
    EXPECT_EQ(ta.requestor, tb.requestor);
    EXPECT_EQ(ta.provider, tb.provider);
  }
}

}  // namespace
}  // namespace hirep::sim
