// sim::Scenario — table-driven parsing, whole-configuration validation,
// fluent builder, and the execution-policy projection for the scale engine.
#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

#include "sim/scenario.hpp"

namespace hirep::sim {
namespace {

util::Config cfg(const std::string& line) {
  return util::Config::from_string(line);
}

TEST(ScenarioTable, EveryOptionParsesFromConfig) {
  // One representative per field type, plus spot checks that values land
  // in the right Params member.
  const auto sc = Scenario::from_config(
      cfg("network_size=500 neighbors_per_node=3.5 crypto=full seed=42 "
          "voting_ttl=6 execution=serial threads=3 malicious_ratio=0.25"));
  EXPECT_EQ(sc.params().network_size, 500u);
  EXPECT_DOUBLE_EQ(sc.params().neighbors_per_node, 3.5);
  EXPECT_EQ(sc.params().crypto_mode, "full");
  EXPECT_EQ(sc.params().seed, 42u);
  EXPECT_EQ(sc.params().voting_ttl, 6u);
  EXPECT_EQ(sc.params().execution, "serial");
  EXPECT_EQ(sc.params().threads, 3u);
  EXPECT_DOUBLE_EQ(sc.params().malicious_ratio, 0.25);
}

TEST(ScenarioTable, NamesAreUniqueAndHelpCoversThemAll) {
  std::unordered_set<std::string> names;
  for (const auto& spec : Scenario::option_table()) {
    EXPECT_TRUE(names.insert(spec.name).second)
        << "duplicate option " << spec.name;
    EXPECT_NE(std::string(spec.help), "") << spec.name;
  }
  const auto help = Scenario::help_text();
  for (const auto& spec : Scenario::option_table()) {
    EXPECT_NE(help.find(spec.name), std::string::npos)
        << spec.name << " missing from --help";
  }
}

TEST(ScenarioTable, UnknownKeysAreLeftForTheUnusedScan) {
  const auto config = cfg("network_size=300 not_a_param=1");
  Scenario::from_config(config);
  const auto unused = config.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "not_a_param");
}

TEST(ScenarioValidate, RejectsImpossibleCombinations) {
  EXPECT_THROW(Scenario::from_config(cfg("network_size=4")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("crypto=quantum")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("delivery=pigeon")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("execution=warp")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("malicious_ratio=1.5")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("good_rating_lo=0.9 "
                                         "good_rating_hi=0.2")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("expertise_alpha=0")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("seeds=0")), std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("network_size=100 "
                                         "relays_per_onion=100 "
                                         "provider_pool=100")),
               std::invalid_argument);
  // The headline case: a provider pool larger than the network.
  EXPECT_THROW(Scenario::from_config(cfg("network_size=50")),
               std::invalid_argument);  // default provider_pool=100 > 50
  EXPECT_THROW(
      Scenario::from_config(cfg("network_size=200 provider_pool=300")),
      std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("fault_delay_min_ms=5 "
                                         "fault_delay_max_ms=1")),
               std::invalid_argument);
}

TEST(ScenarioValidate, RejectsBrokenRetryAndRecoveryKnobs) {
  // retry_max_attempts parses through int64: 0 and negative (which would
  // wrap the uint32) are both rejected at the validation layer.
  EXPECT_THROW(Scenario::from_config(cfg("retry_max_attempts=0")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("retry_max_attempts=-1")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("retry_max_attempts=100000")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("retry_timeout_ms=-1")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("retry_backoff_ms=-0.5")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("retry_jitter_ms=-2")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("suspicion_threshold=0")),
               std::invalid_argument);
  EXPECT_NO_THROW(Scenario::from_config(
      cfg("retry_max_attempts=5 retry_timeout_ms=10 retry_backoff_ms=1 "
          "retry_jitter_ms=0.5 suspicion_threshold=2 min_quorum=3")));
}

TEST(ScenarioValidate, RejectsImpossibleChaosSchedules) {
  EXPECT_THROW(Scenario::from_config(cfg("chaos=sometimes")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("chaos_crash_rate=1.5")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("chaos_agent_crash_fraction=-0.1")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("chaos_partition_fraction=2")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("chaos_burst_drop=1.01")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("chaos_slowdown_fraction=7")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("chaos_mean_downtime=-1")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("chaos_slowdown_ms=-3")),
               std::invalid_argument);
  // A restart/heal/burst-close scheduled before its opening event can
  // never fire as intended.
  EXPECT_THROW(
      Scenario::from_config(cfg("chaos_crash_at=10 chaos_restart_at=5")),
      std::invalid_argument);
  EXPECT_THROW(
      Scenario::from_config(cfg("chaos_partition_at=10 chaos_heal_at=5")),
      std::invalid_argument);
  EXPECT_THROW(
      Scenario::from_config(cfg("chaos_burst_at=10 chaos_burst_until=5")),
      std::invalid_argument);
  // 0 means "never"/"stay open", so one-sided schedules are fine.
  EXPECT_NO_THROW(Scenario::from_config(
      cfg("chaos=on chaos_crash_at=10 chaos_agent_crash_fraction=0.3 "
          "chaos_burst_at=4 chaos_burst_until=0")));
}

TEST(ScenarioValidate, RejectsImpossibleAdversaryCampaigns) {
  EXPECT_THROW(Scenario::from_config(cfg("adversary=sometimes")),
               std::invalid_argument);
  EXPECT_THROW(
      Scenario::from_config(cfg("adversary_whitewash_threshold=1.5")),
      std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("adversary_oscillator_on=-0.1")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("adversary_whitewash_cooldown=0")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(cfg("adversary_oscillator_burst=0")),
               std::invalid_argument);
  // Recruitment counts can never exceed the population.
  EXPECT_THROW(
      Scenario::from_config(cfg("network_size=100 adversary_ring_size=101")),
      std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(
                   cfg("network_size=100 adversary_ring_targets=101")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(
                   cfg("network_size=100 adversary_whitewash_count=101")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(
                   cfg("network_size=100 adversary_oscillator_count=101")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(
                   cfg("network_size=100 adversary_front_count=101")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(
                   cfg("network_size=100 adversary_sybil_count=101")),
               std::invalid_argument);
  EXPECT_THROW(Scenario::from_config(
                   cfg("network_size=100 adversary_sybil_corrupt=101")),
               std::invalid_argument);
  // A full campaign with every strategy armed parses cleanly.
  EXPECT_NO_THROW(Scenario::from_config(
      cfg("adversary=on adversary_ring_size=8 adversary_ring_at=5 "
          "adversary_sybil_count=4 adversary_sybil_period=10 "
          "adversary_whitewash_count=6 adversary_oscillator_count=3 "
          "adversary_front_count=2")));
}

TEST(ScenarioValidate, AcceptsPoolsDisabledOrWithinBounds) {
  EXPECT_NO_THROW(Scenario::from_config(
      cfg("network_size=50 requestor_pool=0 provider_pool=0")));
  EXPECT_NO_THROW(Scenario::from_config(
      cfg("network_size=200 requestor_pool=50 provider_pool=200")));
}

TEST(ScenarioBuilder, FluentChainProjectsIntoEngineOptions) {
  auto sc = Scenario()
                .network_size(300)
                .transactions(40)
                .seed(9)
                .crypto("full")
                .trusted_agents(6)
                .malicious_ratio(0.2)
                .validate();
  const auto o = sc.hirep_options();
  EXPECT_EQ(o.nodes, 300u);
  EXPECT_EQ(o.seed, 9u);
  EXPECT_EQ(o.crypto, core::CryptoMode::kFull);
  EXPECT_EQ(o.trusted_agents, 6u);
  EXPECT_DOUBLE_EQ(o.world.malicious_ratio, 0.2);
  EXPECT_EQ(sc.voting_options().nodes, 300u);
  EXPECT_EQ(sc.trustme_options().nodes, 300u);
}

TEST(ScenarioExecutionPolicy, ParallelOnlyUnderInstantDelivery) {
  auto sc = Scenario().execution("parallel").threads(4);
  EXPECT_EQ(sc.execution_policy().mode, core::ExecutionMode::kParallel);
  EXPECT_EQ(sc.execution_policy().threads, 4u);

  // Lossy/delayed transports are order-dependent: downgrade to serial.
  sc.delivery("latency");
  EXPECT_EQ(sc.execution_policy().mode, core::ExecutionMode::kSerial);
  sc.delivery("instant");
  EXPECT_EQ(sc.execution_policy().mode, core::ExecutionMode::kParallel);

  sc.execution("serial");
  EXPECT_EQ(sc.execution_policy().mode, core::ExecutionMode::kSerial);
}

TEST(ScenarioExecutionPolicy, ShardedKnobsProjectAndValidate) {
  auto sc = Scenario().execution("sharded").shards(4).threads(2).wave_window(64);
  sc.validate();
  const auto exec = sc.execution_policy();
  EXPECT_EQ(exec.mode, core::ExecutionMode::kSharded);
  EXPECT_EQ(exec.shards, 4u);
  EXPECT_EQ(exec.threads, 2u);
  EXPECT_EQ(exec.wave_window, 64u);

  // Downgrade clears the shard count with the mode.
  sc.delivery("latency");
  const auto downgraded = sc.execution_policy();
  EXPECT_EQ(downgraded.mode, core::ExecutionMode::kSerial);
  EXPECT_EQ(downgraded.shards, 0u);
}

TEST(ScenarioValidate, RejectsNonsenseEngineKnobs) {
  // A negative CLI value wraps through int64 into a huge uint64; validate()
  // rejects it at config time rather than OOMing in the thread pool.
  EXPECT_THROW(Scenario(Params{.threads = 5000}).validate(),
               std::invalid_argument);
  EXPECT_THROW(
      Scenario(Params{.execution = "sharded", .shards = 5000}).validate(),
      std::invalid_argument);
  EXPECT_THROW(Scenario(Params{.wave_window = 2'000'000'000}).validate(),
               std::invalid_argument);
  EXPECT_THROW(Scenario(Params{.execution = "bogus"}).validate(),
               std::invalid_argument);
  // shards only makes sense under the sharded engine.
  EXPECT_THROW(Scenario(Params{.execution = "parallel", .shards = 2}).validate(),
               std::invalid_argument);
  EXPECT_NO_THROW(
      Scenario(Params{.execution = "sharded", .shards = 8}).validate());
}

TEST(ScenarioBackCompat, ParamsFromConfigDelegatesToScenario) {
  const auto p = Params::from_config(
      cfg("network_size=400 crypto=full execution=serial"));
  EXPECT_EQ(p.network_size, 400u);
  EXPECT_EQ(p.crypto_mode, "full");
  EXPECT_EQ(p.execution, "serial");
  EXPECT_THROW(Params::from_config(cfg("network_size=2")),
               std::invalid_argument);
}

}  // namespace
}  // namespace hirep::sim
