// WindowedMse — the sliding window must agree with a from-scratch
// recomputation of the same window even after many slides (the naive
// running-sum implementation drifts), and never report a negative MSE.
#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <vector>

#include "sim/windowed_mse.hpp"
#include "util/rng.hpp"

namespace hirep::sim {
namespace {

double reference_mse(const std::deque<double>& window) {
  if (window.empty()) return 0.0;
  // Exact mean via long-double accumulation of the stored squared errors.
  long double sum = 0.0L;
  for (double v : window) sum += v;
  return static_cast<double>(sum / static_cast<long double>(window.size()));
}

TEST(WindowedMse, MatchesNaiveDefinitionOnShortStreams) {
  WindowedMse w(4);
  EXPECT_EQ(w.mse(), 0.0);
  w.add(1.0, 0.0);
  EXPECT_DOUBLE_EQ(w.mse(), 1.0);
  w.add(0.0, 1.0);
  EXPECT_DOUBLE_EQ(w.mse(), 1.0);
  w.add(0.5, 0.0);
  EXPECT_DOUBLE_EQ(w.mse(), (1.0 + 1.0 + 0.25) / 3.0);
  w.add(0.0, 0.0);
  w.add(0.0, 0.0);  // first value slides out
  EXPECT_DOUBLE_EQ(w.mse(), (1.0 + 0.25) / 4.0);
  EXPECT_EQ(w.size(), 4u);
}

TEST(WindowedMse, NoDriftAfterManySlides) {
  // Mixed magnitudes are the drift trigger: occasional huge squared errors
  // followed by tiny ones leave the naive running sum with a residue that
  // dwarfs the true window content.  The compensated window must track the
  // from-scratch recomputation to ~1 ulp forever.
  const std::size_t window_size = 50;
  WindowedMse w(window_size);
  std::deque<double> window;
  util::Rng rng(99);
  for (std::size_t t = 0; t < 200000; ++t) {
    double err = rng.uniform() * 1e-6;
    if (t % 97 == 0) err = rng.uniform() * 1e6;  // rare huge outlier
    w.add(err, 0.0);
    window.push_back(err * err);
    if (window.size() > window_size) window.pop_front();
    if (t % 1000 == 999) {
      const double expected = reference_mse(window);
      const double tolerance = std::max(expected * 1e-12, 1e-300);
      EXPECT_NEAR(w.mse(), expected, tolerance) << "at t=" << t;
    }
  }
}

TEST(WindowedMse, NeverReportsNegativeAfterOutlierPassesThrough) {
  WindowedMse w(8);
  w.add(1e8, 0.0);  // huge squared error enters...
  for (int i = 0; i < 8; ++i) w.add(1e-9, 0.0);  // ...then slides out
  EXPECT_GE(w.mse(), 0.0);
  // The window now holds eight 1e-18 squared errors; the reported MSE
  // must reflect them, not the residue of the departed outlier.
  EXPECT_NEAR(w.mse(), 1e-18, 1e-24);
}

TEST(WindowedMse, AllZeroWindowIsExactlyZero) {
  WindowedMse w(16);
  w.add(123.0, 0.0);
  for (int i = 0; i < 16; ++i) w.add(0.5, 0.5);
  EXPECT_EQ(w.mse(), 0.0);
}

}  // namespace
}  // namespace hirep::sim
