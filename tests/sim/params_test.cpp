#include "sim/params.hpp"

#include <gtest/gtest.h>

namespace hirep::sim {
namespace {

TEST(Params, DefaultsMatchTable1) {
  const Params p;
  EXPECT_EQ(p.network_size, 1000u);
  EXPECT_DOUBLE_EQ(p.neighbors_per_node, 4.0);
  EXPECT_DOUBLE_EQ(p.good_rating_lo, 0.6);
  EXPECT_DOUBLE_EQ(p.good_rating_hi, 1.0);
  EXPECT_DOUBLE_EQ(p.bad_rating_lo, 0.0);
  EXPECT_DOUBLE_EQ(p.bad_rating_hi, 0.4);
  EXPECT_EQ(p.trusted_agents, 10u);
  EXPECT_DOUBLE_EQ(p.malicious_ratio, 0.10);
  EXPECT_EQ(p.voting_ttl, 4u);
  EXPECT_EQ(p.tokens, 10u);
  EXPECT_EQ(p.discovery_ttl, 7u);
}

TEST(Params, ConfigOverrides) {
  const auto cfg = util::Config::from_string(
      "network_size=500 malicious_ratio=0.25 trusted_agents=8 crypto=full "
      "eviction_threshold=0.6 seed=99");
  const auto p = Params::from_config(cfg);
  EXPECT_EQ(p.network_size, 500u);
  EXPECT_DOUBLE_EQ(p.malicious_ratio, 0.25);
  EXPECT_EQ(p.trusted_agents, 8u);
  EXPECT_EQ(p.crypto_mode, "full");
  EXPECT_DOUBLE_EQ(p.eviction_threshold, 0.6);
  EXPECT_EQ(p.seed, 99u);
}

TEST(Params, InvalidCryptoModeRejected) {
  const auto cfg = util::Config::from_string("crypto=quantum");
  EXPECT_THROW(Params::from_config(cfg), std::invalid_argument);
}

TEST(Params, HirepOptionsMirrorParams) {
  Params p;
  p.network_size = 300;
  p.trusted_agents = 7;
  p.relays_per_onion = 4;
  p.eviction_threshold = 0.8;
  p.crypto_mode = "full";
  const auto o = p.hirep_options();
  EXPECT_EQ(o.nodes, 300u);
  EXPECT_EQ(o.trusted_agents, 7u);
  EXPECT_EQ(o.onion_relays, 4u);
  EXPECT_DOUBLE_EQ(o.eviction_threshold, 0.8);
  EXPECT_EQ(o.crypto, core::CryptoMode::kFull);
  EXPECT_DOUBLE_EQ(o.world.malicious_ratio, p.malicious_ratio);
}

TEST(Params, VotingOptionsMirrorParams) {
  Params p;
  p.network_size = 250;
  p.voting_ttl = 6;
  p.neighbors_per_node = 3.0;
  const auto o = p.voting_options();
  EXPECT_EQ(o.nodes, 250u);
  EXPECT_EQ(o.ttl, 6u);
  EXPECT_DOUBLE_EQ(o.average_degree, 3.0);
}

TEST(Params, TrustMeOptionsMirrorParams) {
  Params p;
  p.network_size = 222;
  const auto o = p.trustme_options();
  EXPECT_EQ(o.nodes, 222u);
}

TEST(Params, Table1HasAllRows) {
  const Params p;
  const auto t = p.table1();
  EXPECT_EQ(t.columns(), 4u);
  EXPECT_GE(t.rows(), 14u);
}

}  // namespace
}  // namespace hirep::sim
