// sim::Adversary — the deterministic attack-campaign engine: opt-in
// install (adversary=off touches nothing, an idle adversary=on run is
// byte-identical to off), knob projection, the five strategy schedules
// (collusion ring, sybil floods, whitewashing, on-off oscillators, front
// peers), the §3.4.3 quarantine ladder evicting sybil-corrupted agents,
// and bit-identical replay of a full campaign across runs and across the
// serial | parallel | sharded executors.
#include "sim/adversary.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <span>
#include <utility>
#include <vector>

#include "hirep/execution.hpp"
#include "sim/attacks.hpp"
#include "sim/scenario.hpp"

namespace hirep::sim {
namespace {

Params small_params() {
  Params p;
  p.network_size = 64;
  p.transactions = 40;
  p.requestor_pool = 0;  // whole-network workload at this size
  p.provider_pool = 0;
  p.seed = 11;
  return p;
}

std::vector<std::pair<net::NodeIndex, net::NodeIndex>> draw_pairs(
    std::size_t count) {
  std::vector<std::pair<net::NodeIndex, net::NodeIndex>> pairs;
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<net::NodeIndex>(i % 32),
                       static_cast<net::NodeIndex>(32 + (i * 7) % 32));
  }
  return pairs;
}

using Records = std::vector<core::HirepSystem::TransactionRecord>;

void expect_records_bit_identical(const Records& a, const Records& b) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].requestor, b[i].requestor) << i;
    EXPECT_EQ(a[i].provider, b[i].provider) << i;
    EXPECT_EQ(bits(a[i].estimate), bits(b[i].estimate)) << i;
    EXPECT_EQ(bits(a[i].truth_value), bits(b[i].truth_value)) << i;
    EXPECT_EQ(bits(a[i].outcome), bits(b[i].outcome)) << i;
    EXPECT_EQ(a[i].responses, b[i].responses) << i;
    EXPECT_EQ(a[i].trust_messages, b[i].trust_messages) << i;
  }
}

TEST(AdversaryInstall, OffReturnsNullptr) {
  const Params p = small_params();  // adversary defaults to "off"
  core::HirepSystem sys(p.hirep_options());
  EXPECT_EQ(install_adversary(sys, p), nullptr);
}

TEST(AdversaryInstall, IdleEngineIsByteIdenticalToOff) {
  // adversary=on with every strategy count at 0 installs the engine but
  // schedules nothing: the run must not move a single bit.
  const auto run = [](const char* mode) {
    Params p = small_params();
    p.adversary = mode;
    core::HirepSystem sys(p.hirep_options());
    const auto engine = install_adversary(sys, p);
    EXPECT_EQ(engine != nullptr, std::string(mode) == "on");
    const auto pairs = draw_pairs(p.transactions);
    Records records;
    const std::span<const std::pair<net::NodeIndex, net::NodeIndex>> all(
        pairs);
    const auto exec = core::Executor::serial();
    for (std::size_t i = 0; i < pairs.size(); i += 8) {
      const auto n = std::min<std::size_t>(8, pairs.size() - i);
      const auto batch = sys.run_transactions(all.subspan(i, n), exec);
      records.insert(records.end(), batch.begin(), batch.end());
      if (engine != nullptr) {
        engine->observe_records(batch);
        engine->advance_to(i + n);
      }
    }
    return records;
  };
  expect_records_bit_identical(run("on"), run("off"));
}

TEST(AdversaryParamsFrom, ProjectsEveryKnob) {
  Params p = small_params();
  p.adversary_seed = 99;
  p.requestor_pool = 20;
  p.provider_pool = 40;
  p.adversary_ring_size = 5;
  p.adversary_ring_at = 3;
  p.adversary_ring_targets = 2;
  p.adversary_sybil_count = 7;
  p.adversary_sybil_at = 4;
  p.adversary_sybil_period = 6;
  p.adversary_sybil_corrupt = 3;
  p.adversary_whitewash_count = 8;
  p.adversary_whitewash_threshold = 0.25;
  p.adversary_whitewash_cooldown = 12;
  p.adversary_oscillator_count = 9;
  p.adversary_oscillator_on = 0.8;
  p.adversary_oscillator_burst = 4;
  p.adversary_front_count = 10;
  p.adversary_front_at = 5;
  p.malicious_ratio = 0.2;
  const auto a = adversary_params_from(p);
  EXPECT_EQ(a.seed, 99u);
  EXPECT_EQ(a.requestor_pool, 20u);
  EXPECT_EQ(a.provider_pool, 40u);
  EXPECT_EQ(a.ring_size, 5u);
  EXPECT_EQ(a.ring_at, 3u);
  EXPECT_EQ(a.ring_targets, 2u);
  EXPECT_EQ(a.sybil_count, 7u);
  EXPECT_EQ(a.sybil_at, 4u);
  EXPECT_EQ(a.sybil_period, 6u);
  EXPECT_EQ(a.sybil_corrupt, 3u);
  EXPECT_EQ(a.whitewash_count, 8u);
  EXPECT_DOUBLE_EQ(a.whitewash_threshold, 0.25);
  EXPECT_EQ(a.whitewash_cooldown, 12u);
  EXPECT_EQ(a.oscillator_count, 9u);
  EXPECT_DOUBLE_EQ(a.oscillator_on, 0.8);
  EXPECT_EQ(a.oscillator_burst, 4u);
  EXPECT_EQ(a.front_count, 10u);
  EXPECT_EQ(a.front_at, 5u);
  EXPECT_DOUBLE_EQ(a.static_ratio, 0.2);
}

TEST(AdversaryRing, FormsOnScheduleAndMarksTheWorld) {
  Params p = small_params();
  p.adversary = "on";
  p.adversary_ring_size = 4;
  p.adversary_ring_at = 3;
  p.adversary_ring_targets = 2;
  core::HirepSystem sys(p.hirep_options());
  const auto engine = install_adversary(sys, p);
  ASSERT_NE(engine, nullptr);

  engine->advance_to(2);
  EXPECT_TRUE(engine->ring_members().empty());
  EXPECT_EQ(engine->counters().ring_recruits, 0u);

  engine->advance_to(3);
  const auto members = engine->ring_members();
  const auto targets = engine->ring_targets();
  ASSERT_EQ(members.size(), 4u);
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(engine->counters().ring_recruits, 4u);
  EXPECT_EQ(engine->counters().ring_targets_marked, 2u);
  for (net::NodeIndex m : members) {
    EXPECT_EQ(sys.truth().behavior(m), trust::Behavior::kBadmouth);
    EXPECT_TRUE(sys.truth().ring_member(m));
  }
  for (net::NodeIndex t : targets) {
    // Bad-mouthing only damages peers with standing to lose.
    EXPECT_TRUE(sys.truth().trustable(t));
    EXPECT_TRUE(sys.truth().ring_target(t));
  }
  // A ring member min-rates targets and ballot-stuffs fellow members in
  // its reports, regardless of what it observed.
  EXPECT_EQ(sys.truth().reported_outcome(members[0], targets[0], 1.0), 0.0);
  EXPECT_EQ(sys.truth().reported_outcome(members[0], members[1], 0.0), 1.0);

  // The §4.2.1 manipulation payload is available once the ring is live.
  const auto lists = engine->ring_recommendations(3);
  ASSERT_EQ(lists.size(), 3u);
  for (const auto& list : lists) EXPECT_FALSE(list.empty());
}

TEST(AdversarySybil, WavesJoinIdentitiesAndCorruptFringeAgents) {
  Params p = small_params();
  p.adversary = "on";
  p.adversary_sybil_count = 3;
  p.adversary_sybil_at = 0;   // first wave at install
  p.adversary_sybil_period = 5;
  p.adversary_sybil_corrupt = 2;
  core::HirepSystem sys(p.hirep_options());
  const std::size_t base_nodes = sys.node_count();
  const auto engine = install_adversary(sys, p);
  ASSERT_NE(engine, nullptr);

  // Install wave: three fresh identities joined the running system as
  // malicious evaluators, and two fringe agents were flipped.
  EXPECT_EQ(sys.node_count(), base_nodes + 3);
  EXPECT_EQ(engine->counters().sybil_joins, 3u);
  EXPECT_EQ(engine->counters().sybil_agent_corruptions, 2u);
  const auto converts = engine->sybil_converts();
  ASSERT_EQ(converts.size(), 5u);
  for (net::NodeIndex v : converts) {
    EXPECT_TRUE(sys.truth().poor_evaluator(v)) << "node " << v;
  }

  engine->advance_to(4);
  EXPECT_EQ(engine->counters().sybil_joins, 3u);  // next wave is at 5
  engine->advance_to(5);
  EXPECT_EQ(engine->counters().sybil_joins, 6u);
  EXPECT_EQ(sys.node_count(), base_nodes + 6);
  engine->advance_to(10);
  EXPECT_EQ(engine->counters().sybil_joins, 9u);
}

TEST(AdversaryWhitewash, RotatesOnCollapseAndHonorsTheCooldown) {
  Params p = small_params();
  p.adversary = "on";
  p.adversary_whitewash_count = 1;
  p.adversary_whitewash_threshold = 0.3;
  p.adversary_whitewash_cooldown = 10;
  core::HirepSystem sys(p.hirep_options());
  const auto engine = install_adversary(sys, p);
  ASSERT_NE(engine, nullptr);
  const auto washers = engine->whitewashers();
  ASSERT_EQ(washers.size(), 1u);
  const net::NodeIndex peer = washers[0];
  // Whitewashers earn the reputation they shed: untrustable by seed.
  EXPECT_FALSE(sys.truth().trustable(peer));

  // No observation yet: nothing to react to.
  engine->advance_to(12);
  EXPECT_EQ(engine->counters().whitewash_rotations, 0u);

  // The community's estimate collapses; the §3.5 rotation fires on the
  // next tick (hiREP migrates standing, so it counts as a rotation, never
  // a reset).
  engine->observe(peer, 0.1);
  engine->advance_to(13);
  EXPECT_EQ(engine->counters().whitewash_rotations, 1u);
  EXPECT_EQ(engine->counters().whitewash_resets, 0u);

  // A fresh collapse inside the cooldown window must wait it out.
  engine->observe(peer, 0.05);
  engine->advance_to(22);  // last_action=13, cooldown=10: too early
  EXPECT_EQ(engine->counters().whitewash_rotations, 1u);
  engine->advance_to(23);
  EXPECT_EQ(engine->counters().whitewash_rotations, 2u);

  // An estimate at or above the threshold never triggers.
  engine->observe(peer, 0.3);
  engine->advance_to(40);
  EXPECT_EQ(engine->counters().whitewash_rotations, 2u);
}

TEST(AdversaryOscillator, DefectsOnceTrustedThenRecovers) {
  Params p = small_params();
  p.adversary = "on";
  p.adversary_oscillator_count = 1;
  p.adversary_oscillator_on = 0.7;
  p.adversary_oscillator_burst = 5;
  core::HirepSystem sys(p.hirep_options());
  const auto engine = install_adversary(sys, p);
  ASSERT_NE(engine, nullptr);
  const auto oscillators = engine->oscillators();
  ASSERT_EQ(oscillators.size(), 1u);
  const net::NodeIndex peer = oscillators[0];

  // Opens in the play-nice phase: an untrustable peer serving well.
  EXPECT_FALSE(sys.truth().trustable(peer));
  EXPECT_TRUE(sys.truth().effective_trustable(peer));
  EXPECT_EQ(sys.truth().true_trust(peer), 1.0);

  // Not trusted yet: stays nice.
  engine->observe(peer, 0.5);
  engine->advance_to(1);
  EXPECT_TRUE(sys.truth().effective_trustable(peer));
  EXPECT_EQ(engine->counters().oscillator_defections, 0u);

  // Community trust crosses the trigger: defect for `burst` ticks.
  engine->observe(peer, 0.9);
  engine->advance_to(2);
  EXPECT_FALSE(sys.truth().effective_trustable(peer));
  EXPECT_EQ(engine->counters().oscillator_defections, 1u);
  engine->advance_to(6);  // defect_until = 2 + 5 = 7: still in the burst
  EXPECT_FALSE(sys.truth().effective_trustable(peer));
  engine->advance_to(7);
  EXPECT_TRUE(sys.truth().effective_trustable(peer));
  EXPECT_EQ(engine->counters().oscillator_recoveries, 1u);
}

TEST(AdversaryFronts, ServeHonestlyAndReportDishonestly) {
  Params p = small_params();
  p.adversary = "on";
  p.adversary_front_count = 2;
  core::HirepSystem sys(p.hirep_options());
  const auto engine = install_adversary(sys, p);
  ASSERT_NE(engine, nullptr);
  const auto fronts = engine->front_peers();
  ASSERT_EQ(fronts.size(), 2u);
  EXPECT_EQ(engine->counters().front_recruits, 2u);
  for (net::NodeIndex v : fronts) {
    EXPECT_EQ(sys.truth().behavior(v), trust::Behavior::kFront);
    // Honest service…
    EXPECT_TRUE(sys.truth().effective_trustable(v));
    // …dishonest reporting: every report is inverted.
    EXPECT_EQ(sys.truth().reported_outcome(v, 1, 1.0), 0.0);
    EXPECT_EQ(sys.truth().reported_outcome(v, 1, 0.0), 1.0);
  }
}

TEST(AdversaryQuarantine, FailoverLadderEvictsSybilCorruptedAgents) {
  // The §3.4.3 negative guarantee: a sybil identity that has captured
  // fringe agents does not hold its seat forever — once its agents stop
  // answering, the suspicion ladder quarantines exactly them, and re-entry
  // would demand a fresh successful probe.
  Params p = small_params();
  p.adversary = "on";
  p.adversary_sybil_count = 1;
  p.adversary_sybil_corrupt = 4;
  p.suspicion_threshold = 1;  // one failed exchange quarantines
  core::HirepSystem sys(p.hirep_options());
  const auto engine = install_adversary(sys, p);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->counters().sybil_agent_corruptions, 4u);

  // The captured fringe agents go dark (the sybil operator milks them and
  // walks away — the classic hit-and-run).  Only agents some peer actually
  // lists can climb the suspicion ladder, so restrict the assertion to the
  // referenced captures.
  const auto popularity = agent_popularity(sys);
  const auto referenced = [&](net::NodeIndex v) {
    for (const auto& [agent, count] : popularity) {
      if (agent == v) return count > 0;
    }
    return false;
  };
  std::vector<net::NodeIndex> dark;
  std::vector<net::NodeIndex> captured;
  for (net::NodeIndex v : engine->sybil_converts()) {
    if (sys.agent_at(v) == nullptr) continue;
    sys.set_agent_online(v, false);
    dark.push_back(v);
    if (referenced(v)) captured.push_back(v);
  }
  ASSERT_FALSE(captured.empty());
  for (net::NodeIndex v : captured) {
    EXPECT_FALSE(sys.agent_quarantined(v)) << "agent " << v;
  }

  // Every node takes a turn as requestor, so every referenced agent's
  // silence is eventually witnessed.
  std::vector<std::pair<net::NodeIndex, net::NodeIndex>> pairs;
  for (std::size_t i = 0; i < 512; ++i) {
    const auto requestor = static_cast<net::NodeIndex>(i % 64);
    const auto provider =
        static_cast<net::NodeIndex>((requestor + 1 + (i * 7) % 63) % 64);
    pairs.emplace_back(requestor, provider);
  }
  const std::span<const std::pair<net::NodeIndex, net::NodeIndex>> all(pairs);
  const auto exec = core::Executor::serial();
  const auto all_quarantined = [&] {
    return std::all_of(captured.begin(), captured.end(), [&](net::NodeIndex v) {
      return sys.agent_quarantined(v);
    });
  };
  for (std::size_t i = 0; i < pairs.size() && !all_quarantined(); i += 8) {
    const auto batch =
        sys.run_transactions(all.subspan(i, 8), exec);
    engine->observe_records(batch);
    engine->advance_to(i + 8);
  }
  for (net::NodeIndex v : captured) {
    EXPECT_TRUE(sys.agent_quarantined(v)) << "agent " << v;
  }
  // Only the dark sybil agents earned quarantine; the rest of the
  // community is untouched.
  for (net::NodeIndex v = 0; v < sys.node_count(); ++v) {
    if (sys.agent_at(v) == nullptr || !sys.agent_quarantined(v)) continue;
    EXPECT_NE(std::find(dark.begin(), dark.end(), v), dark.end())
        << "agent " << v << " quarantined without being captured";
  }
  EXPECT_GE(sys.recovery_counters().quarantines, captured.size());
}

TEST(AdversaryReplay, FullCampaignIsBitIdenticalAcrossRunsAndExecutors) {
  // Every strategy armed at once; the engine only acts at batch
  // boundaries, so the same seed must replay byte-identically however the
  // batches execute.
  Params p = small_params();
  p.adversary = "on";
  p.adversary_ring_size = 4;
  p.adversary_ring_at = 8;
  p.adversary_ring_targets = 2;
  p.adversary_sybil_count = 2;
  p.adversary_sybil_at = 16;
  p.adversary_sybil_corrupt = 1;
  p.adversary_whitewash_count = 2;
  p.adversary_whitewash_threshold = 0.4;
  p.adversary_whitewash_cooldown = 4;
  p.adversary_oscillator_count = 2;
  p.adversary_oscillator_on = 0.6;
  p.adversary_oscillator_burst = 4;
  p.adversary_front_count = 2;

  const auto pairs = draw_pairs(48);
  const auto run = [&](const core::Executor& exec) {
    core::HirepSystem sys(p.hirep_options());
    const auto engine = install_adversary(sys, p);
    Records records;
    const std::span<const std::pair<net::NodeIndex, net::NodeIndex>> all(
        pairs);
    for (std::size_t i = 0; i < pairs.size(); i += 8) {
      const auto batch = sys.run_transactions(all.subspan(i, 8), exec);
      records.insert(records.end(), batch.begin(), batch.end());
      engine->observe_records(batch);
      engine->advance_to(i + 8);
    }
    return std::make_pair(std::move(records), engine->counters());
  };

  const auto serial = run(core::Executor::serial());
  const auto serial_again = run(core::Executor::serial());
  const auto parallel = run(core::Executor::parallel());
  const auto sharded = run(core::Executor::sharded(4));

  expect_records_bit_identical(serial.first, serial_again.first);
  expect_records_bit_identical(serial.first, parallel.first);
  expect_records_bit_identical(serial.first, sharded.first);
  const auto expect_counters_equal = [](const Adversary::Counters& a,
                                        const Adversary::Counters& b) {
    EXPECT_EQ(a.ring_recruits, b.ring_recruits);
    EXPECT_EQ(a.ring_targets_marked, b.ring_targets_marked);
    EXPECT_EQ(a.sybil_joins, b.sybil_joins);
    EXPECT_EQ(a.sybil_evaluator_corruptions, b.sybil_evaluator_corruptions);
    EXPECT_EQ(a.sybil_agent_corruptions, b.sybil_agent_corruptions);
    EXPECT_EQ(a.whitewash_rotations, b.whitewash_rotations);
    EXPECT_EQ(a.whitewash_resets, b.whitewash_resets);
    EXPECT_EQ(a.oscillator_defections, b.oscillator_defections);
    EXPECT_EQ(a.oscillator_recoveries, b.oscillator_recoveries);
    EXPECT_EQ(a.front_recruits, b.front_recruits);
  };
  expect_counters_equal(serial.second, serial_again.second);
  expect_counters_equal(serial.second, parallel.second);
  expect_counters_equal(serial.second, sharded.second);
  // The campaign genuinely fired.
  EXPECT_EQ(serial.second.ring_recruits, 4u);
  EXPECT_EQ(serial.second.sybil_joins, 2u);
  EXPECT_EQ(serial.second.front_recruits, 2u);
}

TEST(AdversaryExecution, ScenarioPerformsNoExecutorDowngrade) {
  // Unlike chaos, the adversary never touches the wire, so adversary=on
  // keeps the configured executor.
  Params p = small_params();
  p.execution = "parallel";
  p.adversary = "on";
  EXPECT_EQ(Scenario(p).execution_policy().mode,
            core::ExecutionMode::kParallel);
  p.execution = "sharded";
  p.shards = 4;
  EXPECT_EQ(Scenario(p).execution_policy().mode,
            core::ExecutionMode::kSharded);
}

}  // namespace
}  // namespace hirep::sim
