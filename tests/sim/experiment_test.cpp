#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/response_time.hpp"

namespace hirep::sim {
namespace {

Params tiny_params() {
  Params p;
  p.network_size = 200;
  p.transactions = 60;
  p.mse_window = 20;
  p.requestor_pool = 20;
  p.provider_pool = 40;
  p.seeds = 1;
  return p;
}

TEST(Experiment, Fig5TableShape) {
  const auto result = run_fig5_traffic(tiny_params());
  EXPECT_EQ(result.table.columns(), 5u);
  EXPECT_GE(result.table.rows(), 5u);
  EXPECT_EQ(result.checks.size(), 3u);
  // Cumulative series are non-decreasing.
  for (const auto& col : {"voting-2", "voting-3", "voting-4", "hirep"}) {
    const auto ys = result.table.numeric_column(col);
    for (std::size_t i = 1; i < ys.size(); ++i) {
      EXPECT_LE(ys[i - 1], ys[i]) << col;
    }
  }
}

TEST(Experiment, Fig5HirepBeatsVotingOnTraffic) {
  const auto result = run_fig5_traffic(tiny_params());
  const auto hirep = result.table.numeric_column("hirep");
  const auto voting = result.table.numeric_column("voting-4");
  EXPECT_LT(hirep.back(), voting.back());
}

TEST(Experiment, Fig6TableShape) {
  auto p = tiny_params();
  p.transactions = 120;
  const auto result = run_fig6_accuracy(p);
  EXPECT_EQ(result.table.columns(), 5u);
  EXPECT_GE(result.checks.size(), 5u);
  for (const auto& col : {"voting", "hirep-4", "hirep-6", "hirep-8"}) {
    for (double v : result.table.numeric_column(col)) {
      EXPECT_GE(v, 0.0) << col;
      EXPECT_LE(v, 1.0) << col;
    }
  }
}

TEST(Experiment, TrafficBoundHoldsExactly) {
  auto p = tiny_params();
  const auto result = run_traffic_bound(p);
  EXPECT_TRUE(all_hold(result)) << "closed-form traffic bound violated";
  EXPECT_EQ(result.table.rows(), 9u);  // 3 x 3 sweep
}

TEST(Experiment, Fig8OrderingChecks) {
  auto p = tiny_params();
  p.network_size = 400;  // voting's serial vote ingestion needs scale
  p.transactions = 30;
  const auto result = run_fig8_response(p);
  EXPECT_EQ(result.table.columns(), 5u);
  // Relay-count ordering is structural and holds even at small scale.
  EXPECT_TRUE(result.checks[0].holds) << result.checks[0].detail;
}

TEST(Experiment, PrintResultIsWellFormed) {
  const auto result = run_traffic_bound(tiny_params());
  testing::internal::CaptureStdout();
  print_result(result, "unit-test");
  const auto text = testing::internal::GetCapturedStdout();
  EXPECT_NE(text.find("unit-test"), std::string::npos);
  EXPECT_NE(text.find("[PASS]"), std::string::npos);
}

TEST(Experiment, AverageOverSeedsAverages) {
  Params p;
  p.seeds = 4;
  const auto ys = average_over_seeds(
      p, [](std::uint64_t seed) {
        return std::vector<double>{static_cast<double>(seed % 2)};
      });
  ASSERT_EQ(ys.size(), 1u);
  EXPECT_GE(ys[0], 0.0);
  EXPECT_LE(ys[0], 1.0);
}

TEST(ResponseTime, HirepQueryPositiveAndBounded) {
  Params p = tiny_params();
  core::HirepSystem system(p.hirep_options());
  const double t = hirep_query_response_ms(system, 0, 5);
  if (system.peer(0).agents().size() > 0) {
    EXPECT_GT(t, 0.0);
    // Upper bound: 2*(o+1) hops of max latency + processing, plus slack
    // for requestor serialization.
    const double per_hop = 40.0 + 1.0;
    const double legs = 2.0 * static_cast<double>(p.relays_per_onion + 1);
    EXPECT_LT(t, legs * per_hop + 50.0);
  }
}

TEST(ResponseTime, MoreRelaysSlower) {
  auto mean_response = [](std::size_t relays) {
    Params p = tiny_params();
    p.relays_per_onion = relays;
    core::HirepSystem system(p.hirep_options());
    double sum = 0;
    for (int i = 0; i < 20; ++i) {
      sum += hirep_query_response_ms(system, static_cast<net::NodeIndex>(i), 50);
    }
    return sum / 20.0;
  };
  EXPECT_LT(mean_response(2), mean_response(8));
}

}  // namespace
}  // namespace hirep::sim
