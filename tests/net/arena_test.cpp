// PayloadArena: slab growth, LIFO mark/rewind, reset-with-slab-reuse, and
// the stability guarantee batched envelopes rely on (spans handed out stay
// valid while the arena grows).
#include "net/arena.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace hirep::net {
namespace {

TEST(PayloadArena, AllocateHandsOutDistinctWritableRegions) {
  PayloadArena arena(64);
  auto a = arena.allocate(16);
  auto b = arena.allocate(16);
  ASSERT_EQ(a.size(), 16u);
  ASSERT_EQ(b.size(), 16u);
  std::memset(a.data(), 0xAA, a.size());
  std::memset(b.data(), 0xBB, b.size());
  EXPECT_EQ(a[0], 0xAA);
  EXPECT_EQ(b[0], 0xBB);
  EXPECT_EQ(arena.bytes_in_use(), 32u);
}

TEST(PayloadArena, ZeroByteAllocationIsEmptyAndFree) {
  PayloadArena arena(64);
  EXPECT_TRUE(arena.allocate(0).empty());
  EXPECT_TRUE(arena.store({}).empty());
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.slab_count(), 0u);
}

TEST(PayloadArena, StoreCopiesTheBytes) {
  PayloadArena arena;
  std::vector<std::uint8_t> src(33);
  std::iota(src.begin(), src.end(), 1);
  const auto interned = arena.store(src);
  ASSERT_EQ(interned.size(), src.size());
  EXPECT_NE(interned.data(), src.data());
  EXPECT_EQ(0, std::memcmp(interned.data(), src.data(), src.size()));
}

TEST(PayloadArena, GrowsByWholeSlabsAndOversizedGetsADedicatedSlab) {
  PayloadArena arena(64);
  arena.allocate(40);
  EXPECT_EQ(arena.slab_count(), 1u);
  arena.allocate(40);  // does not fit the 24 bytes left: second slab
  EXPECT_EQ(arena.slab_count(), 2u);
  const auto big = arena.allocate(1000);  // larger than the slab size
  EXPECT_EQ(big.size(), 1000u);
  EXPECT_EQ(arena.slab_count(), 3u);
  EXPECT_EQ(arena.slab_allocs(), 3u);
}

TEST(PayloadArena, SpansStayValidWhileTheArenaGrows) {
  // The batched transport keeps Envelope::payload views across later
  // pushes; growing must never move existing slabs.
  PayloadArena arena(64);
  auto first = arena.allocate(48);
  std::memset(first.data(), 0x5A, first.size());
  for (int i = 0; i < 32; ++i) arena.allocate(48);  // many new slabs
  for (std::uint8_t byte : first) EXPECT_EQ(byte, 0x5A);
}

TEST(PayloadArena, RewindReleasesAndReusesMemoryWithoutNewSlabs) {
  PayloadArena arena(64);
  const auto mark = arena.mark();
  const auto a = arena.allocate(32);
  const auto allocs_before = arena.slab_allocs();
  arena.rewind(mark);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  const auto b = arena.allocate(32);
  EXPECT_EQ(a.data(), b.data());  // same storage, no fresh slab
  EXPECT_EQ(arena.slab_allocs(), allocs_before);
}

TEST(PayloadArena, RewindAcrossSlabBoundaryRestoresOccupancy) {
  PayloadArena arena(64);
  arena.allocate(48);
  const auto mark = arena.mark();
  arena.allocate(48);  // spills into a second slab
  arena.allocate(48);  // and a third
  EXPECT_EQ(arena.slab_count(), 3u);
  arena.rewind(mark);
  EXPECT_EQ(arena.bytes_in_use(), 48u);
  // Refilling reuses the retained slabs: no new allocations.
  const auto allocs = arena.slab_allocs();
  arena.allocate(48);
  arena.allocate(48);
  EXPECT_EQ(arena.slab_allocs(), allocs);
}

TEST(PayloadArena, ResetRetainsSlabsForReuse) {
  PayloadArena arena(64);
  for (int i = 0; i < 8; ++i) arena.allocate(48);
  const auto slabs = arena.slab_count();
  const auto allocs = arena.slab_allocs();
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.resets(), 1u);
  EXPECT_EQ(arena.slab_count(), slabs);
  for (int i = 0; i < 8; ++i) arena.allocate(48);
  EXPECT_EQ(arena.slab_allocs(), allocs);  // warm slabs, zero allocator work
}

TEST(PayloadArena, HighWaterTracksThePeakNotThePresent) {
  PayloadArena arena(64);
  const auto mark = arena.mark();
  arena.allocate(48);
  arena.allocate(48);
  const auto peak = arena.bytes_in_use();
  arena.rewind(mark);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_GE(arena.high_water(), peak);
}

}  // namespace
}  // namespace hirep::net
