#include "net/flood.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/topology.hpp"

namespace hirep::net {
namespace {

Overlay ring_overlay(std::size_t nodes, std::size_t k = 1) {
  return Overlay(ring_lattice(nodes, k), LatencyParams{}, 1);
}

TEST(Flood, RingReachWithinTtl) {
  auto ov = ring_overlay(20);
  const auto r = flood(ov, 0, 3, MessageKind::kTrustRequest);
  // Ring degree 2: TTL 3 reaches 3 nodes on each side.
  EXPECT_EQ(r.reached.size(), 6u);
  for (std::size_t i = 0; i < r.reached.size(); ++i) {
    EXPECT_GE(r.depth[i], 1u);
    EXPECT_LE(r.depth[i], 3u);
  }
}

TEST(Flood, RingMessageCountExact) {
  auto ov = ring_overlay(20);
  const auto r = flood(ov, 0, 3, MessageKind::kTrustRequest);
  // Source sends 2; each newly reached node (6 of them) forwards 1 copy
  // onward while TTL remains: depth-1 and depth-2 nodes forward (4 nodes),
  // depth-3 nodes do not.
  EXPECT_EQ(r.messages, 2u + 4u);
  EXPECT_EQ(ov.metrics().of(MessageKind::kTrustRequest), r.messages);
}

TEST(Flood, TtlZeroReachesNothing) {
  auto ov = ring_overlay(10);
  const auto r = flood(ov, 0, 0, MessageKind::kControl);
  EXPECT_TRUE(r.reached.empty());
  EXPECT_EQ(r.messages, 0u);
}

TEST(Flood, FullCoverageWithLargeTtl) {
  auto ov = ring_overlay(16, 2);
  const auto r = flood(ov, 3, 16, MessageKind::kControl);
  EXPECT_EQ(r.reached.size(), 15u);  // everyone but the source
  std::set<NodeIndex> unique(r.reached.begin(), r.reached.end());
  EXPECT_EQ(unique.size(), 15u);
  EXPECT_EQ(unique.count(3), 0u);  // source not in reached set
}

TEST(Flood, DepthsMatchBfsDistances) {
  util::Rng rng(4);
  Overlay ov(power_law(rng, 200, 4.0), LatencyParams{}, 2);
  const auto dist = ov.graph().bfs_distances(7);
  const auto r = flood(ov, 7, 4, MessageKind::kControl);
  for (std::size_t i = 0; i < r.reached.size(); ++i) {
    EXPECT_EQ(r.depth[i], dist[r.reached[i]]);
  }
}

TEST(Flood, ResponseCostSumsDepths) {
  FloodResult r;
  r.reached = {1, 2, 3};
  r.depth = {1, 2, 3};
  EXPECT_EQ(response_cost(r), 6u);
}

TEST(TimedFlood, ArrivalTimesIncreaseWithDepth) {
  auto ov = ring_overlay(30);
  const auto arrivals = timed_flood(ov, 0, 5, 0.0, MessageKind::kControl);
  EXPECT_EQ(arrivals.size(), 10u);
  for (const auto& a : arrivals) {
    EXPECT_GT(a.time_ms, 0.0);
    // Each hop costs at least min-latency + processing.
    EXPECT_GE(a.time_ms, a.depth * (10.0 + 1.0) - 1e-9);
  }
}

TEST(TimedFlood, ParentsFormTreeTowardSource) {
  util::Rng rng(5);
  Overlay ov(power_law(rng, 100, 4.0), LatencyParams{}, 3);
  const auto arrivals = timed_flood(ov, 0, 4, 0.0, MessageKind::kControl);
  std::vector<NodeIndex> parent(ov.node_count(), kInvalidNode);
  for (const auto& a : arrivals) parent[a.node] = a.parent;
  for (const auto& a : arrivals) {
    // Walking parents must terminate at the source within depth steps.
    NodeIndex at = a.node;
    std::uint32_t steps = 0;
    while (at != 0 && steps <= a.depth) {
      at = parent[at];
      ASSERT_NE(at, kInvalidNode);
      ++steps;
    }
    EXPECT_EQ(at, 0u);
  }
}

TEST(TokenWalk, ConsumesAtMostTokens) {
  auto ov = ring_overlay(50, 2);
  util::Rng rng(6);
  const auto visits = token_walk(ov, rng, 0, 5, 10,
                                 [](NodeIndex) { return true; },
                                 MessageKind::kAgentDiscovery);
  EXPECT_LE(visits.size(), 5u);
  EXPECT_GE(visits.size(), 1u);
}

TEST(TokenWalk, SkipsNonConsumers) {
  auto ov = ring_overlay(50, 2);
  util::Rng rng(7);
  // Only even nodes answer.
  const auto visits = token_walk(ov, rng, 1, 4, 20,
                                 [](NodeIndex v) { return v % 2 == 0; },
                                 MessageKind::kAgentDiscovery);
  for (const auto& v : visits) EXPECT_EQ(v.node % 2, 0u);
}

TEST(TokenWalk, ZeroTokensOrTtlNoVisits) {
  auto ov = ring_overlay(20);
  util::Rng rng(8);
  EXPECT_TRUE(token_walk(ov, rng, 0, 0, 5, [](NodeIndex) { return true; },
                         MessageKind::kControl)
                  .empty());
  EXPECT_TRUE(token_walk(ov, rng, 0, 5, 0, [](NodeIndex) { return true; },
                         MessageKind::kControl)
                  .empty());
}

TEST(TokenWalk, TtlBoundsReach) {
  auto ov = ring_overlay(100);
  util::Rng rng(9);
  // Ring with TTL 2 from node 0: only nodes within 2 hops can answer.
  const auto visits = token_walk(ov, rng, 0, 50, 2,
                                 [](NodeIndex) { return true; },
                                 MessageKind::kControl);
  for (const auto& v : visits) {
    const bool near = v.node <= 2 || v.node >= 98;
    EXPECT_TRUE(near) << "node " << v.node << " beyond TTL";
  }
}

TEST(TokenWalk, CountsTraffic) {
  auto ov = ring_overlay(30, 2);
  util::Rng rng(10);
  token_walk(ov, rng, 0, 5, 5, [](NodeIndex) { return true; },
             MessageKind::kAgentDiscovery);
  EXPECT_GT(ov.metrics().of(MessageKind::kAgentDiscovery), 0u);
}

}  // namespace
}  // namespace hirep::net
