#include "net/overlay.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace hirep::net {
namespace {

Overlay make_overlay(std::size_t nodes = 10) {
  Graph g = ring_lattice(nodes, 1);
  return Overlay(std::move(g), LatencyParams{}, 42);
}

TEST(LatencyModel, SymmetricAndBounded) {
  LatencyParams params{10.0, 40.0, 1.0};
  LatencyModel model(params, 7);
  for (NodeIndex a = 0; a < 20; ++a) {
    for (NodeIndex b = 0; b < 20; ++b) {
      const double l = model.link_ms(a, b);
      EXPECT_GE(l, 10.0);
      EXPECT_LT(l, 40.0);
      EXPECT_DOUBLE_EQ(l, model.link_ms(b, a));
    }
  }
}

TEST(LatencyModel, StablePerLink) {
  LatencyModel model({10, 40, 1}, 9);
  EXPECT_DOUBLE_EQ(model.link_ms(3, 5), model.link_ms(3, 5));
}

TEST(LatencyModel, SeedChangesLatencies) {
  LatencyModel a({10, 40, 1}, 1), b({10, 40, 1}, 2);
  int differs = 0;
  for (NodeIndex i = 0; i < 50; ++i) {
    if (a.link_ms(i, i + 1) != b.link_ms(i, i + 1)) ++differs;
  }
  EXPECT_GT(differs, 40);
}

TEST(TrafficMetrics, CountsByKind) {
  TrafficMetrics m;
  m.count(MessageKind::kTrustRequest, 3);
  m.count(MessageKind::kQuery, 2);
  EXPECT_EQ(m.of(MessageKind::kTrustRequest), 3u);
  EXPECT_EQ(m.total(), 5u);
  EXPECT_EQ(m.trust_traffic(), 3u);  // excludes kQuery
  m.reset();
  EXPECT_EQ(m.total(), 0u);
}

TEST(TrafficMetrics, SummaryMentionsNonZeroKinds) {
  TrafficMetrics m;
  m.count(MessageKind::kReport, 7);
  const auto s = m.summary();
  EXPECT_NE(s.find("report=7"), std::string::npos);
  EXPECT_NE(s.find("total=7"), std::string::npos);
}

TEST(Overlay, TimedSendAddsLatencyAndProcessing) {
  auto ov = make_overlay();
  const double done = ov.timed_send(0.0, 0, 1, MessageKind::kControl);
  const double expected =
      ov.latency().link_ms(0, 1) + ov.latency().processing_ms();
  EXPECT_DOUBLE_EQ(done, expected);
  EXPECT_EQ(ov.metrics().of(MessageKind::kControl), 1u);
}

TEST(Overlay, ReceiverSerializesMessages) {
  auto ov = make_overlay();
  // Two messages arriving at node 2 at the same time: the second waits.
  const double first = ov.timed_send(0.0, 0, 2, MessageKind::kControl);
  const double second = ov.timed_send(0.0, 0, 2, MessageKind::kControl);
  EXPECT_DOUBLE_EQ(second, first + ov.latency().processing_ms());
}

TEST(Overlay, ResetTimeStateClearsQueues) {
  auto ov = make_overlay();
  ov.timed_send(0.0, 0, 1, MessageKind::kControl);
  ov.reset_time_state();
  const double done = ov.timed_send(0.0, 0, 1, MessageKind::kControl);
  EXPECT_DOUBLE_EQ(done,
                   ov.latency().link_ms(0, 1) + ov.latency().processing_ms());
}

TEST(Overlay, TimedPathAccumulates) {
  auto ov = make_overlay();
  const std::vector<NodeIndex> path{0, 1, 2, 3};
  const double done = ov.timed_path(0.0, path, MessageKind::kControl);
  double expected = 0.0;
  for (int i = 0; i < 3; ++i) {
    expected += ov.latency().link_ms(static_cast<NodeIndex>(i),
                                     static_cast<NodeIndex>(i + 1)) +
                ov.latency().processing_ms();
  }
  EXPECT_DOUBLE_EQ(done, expected);
  EXPECT_EQ(ov.metrics().of(MessageKind::kControl), 3u);
}

TEST(Overlay, StatelessPathMatchesTimedOnQuietNetwork) {
  auto ov = make_overlay();
  const std::vector<NodeIndex> path{0, 2, 4, 6};
  const double stateless = ov.stateless_path(0.0, path, MessageKind::kControl);
  ov.reset_time_state();
  const double timed = ov.timed_path(0.0, path, MessageKind::kControl);
  EXPECT_DOUBLE_EQ(stateless, timed);
}

TEST(Overlay, StatelessPathHasNoQueueSideEffects) {
  auto ov = make_overlay();
  ov.stateless_path(0.0, {0, 5}, MessageKind::kControl);
  // Node 5 must not be busy afterwards.
  const double done = ov.timed_send(0.0, 0, 5, MessageKind::kControl);
  EXPECT_DOUBLE_EQ(done,
                   ov.latency().link_ms(0, 5) + ov.latency().processing_ms());
}

TEST(Overlay, ShortPathsAreNoops) {
  auto ov = make_overlay();
  EXPECT_DOUBLE_EQ(ov.timed_path(5.0, {0}, MessageKind::kControl), 5.0);
  EXPECT_DOUBLE_EQ(ov.stateless_path(5.0, {}, MessageKind::kControl), 5.0);
}

}  // namespace
}  // namespace hirep::net
