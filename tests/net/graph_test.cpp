#include "net/graph.hpp"

#include <gtest/gtest.h>

namespace hirep::net {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, AddEdgeBasics) {
  Graph g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, RejectsSelfLoopsAndDuplicates) {
  Graph g(3);
  EXPECT_FALSE(g.add_edge(1, 1));
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, OutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(g.degree(5), std::out_of_range);
  EXPECT_THROW(g.neighbors(2), std::out_of_range);
}

TEST(Graph, NeighborsContent) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const auto nbs = g.neighbors(0);
  EXPECT_EQ(nbs.size(), 2u);
}

TEST(Graph, ConnectivityDetection) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
  EXPECT_EQ(g.component_size(0), 2u);
  EXPECT_EQ(g.component_size(2), 2u);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.component_size(0), 4u);
}

TEST(Graph, BfsDistances) {
  // Path 0-1-2-3 plus shortcut 0-3.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  const auto d = g.bfs_distances(0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[3], 1u);
  EXPECT_EQ(d[4], std::numeric_limits<std::uint32_t>::max());  // isolated
}

TEST(Graph, AverageAndMaxDegree) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.5);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Graph, DegreeHistogram) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const auto hist = g.degree_histogram();
  ASSERT_EQ(hist.size(), 3u);  // max degree 2
  EXPECT_EQ(hist[0], 1u);      // node 3
  EXPECT_EQ(hist[1], 2u);      // nodes 1, 2
  EXPECT_EQ(hist[2], 1u);      // node 0
}

}  // namespace
}  // namespace hirep::net
