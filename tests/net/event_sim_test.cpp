#include "net/event_sim.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace hirep::net {
namespace {

TEST(EventSim, RunsInTimeOrder) {
  EventSim sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(EventSim, FifoTieBreak) {
  EventSim sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventSim, ScheduleInIsRelative) {
  EventSim sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(EventSim, PastTimesClampToNow) {
  EventSim sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_at(3.0, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(EventSim, RunUntilStopsAtDeadline) {
  EventSim sim;
  int count = 0;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&] { ++count; });
  }
  EXPECT_EQ(sim.run_until(2.5), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(count, 4);
}

TEST(EventSim, CascadingEvents) {
  EventSim sim;
  int depth = 0;
  std::function<void()> cascade = [&] {
    if (++depth < 10) sim.schedule_in(1.0, cascade);
  };
  sim.schedule_at(0.0, cascade);
  EXPECT_EQ(sim.run(), 10u);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(EventSim, AdvanceToMovesTheIdleClockForward) {
  // The shard barrier aligns every lane's queue to the latest shard clock.
  EventSim sim;
  sim.advance_to(4.5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.5);
  // Moving backwards (or to the same instant) is a no-op, not a rewind.
  sim.advance_to(2.0);
  EXPECT_DOUBLE_EQ(sim.now(), 4.5);
  sim.advance_to(4.5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.5);
  // Events scheduled afterwards run relative to the advanced clock.
  double fired_at = -1.0;
  sim.schedule_in(1.0, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.5);
}

TEST(EventSim, AdvanceToRefusesToJumpOverPendingEvents) {
  EventSim sim;
  sim.schedule_at(3.0, [] {});
  EXPECT_THROW(sim.advance_to(3.5), std::logic_error);
  // Advancing up to (but not past) the pending event is legal.
  sim.advance_to(3.0);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(EventSim, ResetClearsEverything) {
  EventSim sim;
  sim.schedule_at(5.0, [] {});
  sim.reset();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.run(), 0u);
}

}  // namespace
}  // namespace hirep::net
