// The batched-transport determinism contract: send_batch processes
// envelopes strictly one at a time in push order, so a batch must be
// byte-identical — receipts, metrics, clock — to the same sends issued
// sequentially, under every delivery policy (Instant, Latency, Faulty,
// Chaos).  Plus the drain_groups grouping rules, the arena lifecycle of
// a batch, the payload byte counters, and the scale-engine lane-arena
// reset.
#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "hirep/system.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "sim/chaos.hpp"
#include "util/rng.hpp"

namespace hirep::net {
namespace {

constexpr std::size_t kNodes = 24;
constexpr std::size_t kTypeCount =
    static_cast<std::size_t>(EnvelopeType::kCount);
constexpr std::size_t kKindCount =
    static_cast<std::size_t>(MessageKind::kCount);

Overlay make_overlay(std::uint64_t seed = 1) {
  return Overlay(ring_lattice(kNodes, 2), LatencyParams{}, seed);
}

/// One randomly drawn send.
struct PlannedSend {
  EnvelopeType type;
  NodeIndex sender;
  std::vector<NodeIndex> path;
  util::Bytes payload;
};

/// A random schedule: 1..8 envelopes with random types, paths (length
/// 0..4, so undeliverable empty paths are covered too), and payloads.
std::vector<PlannedSend> draw_schedule(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x5eed5a1eULL);
  constexpr EnvelopeType kTypes[] = {
      EnvelopeType::kTrustRequest, EnvelopeType::kReport,
      EnvelopeType::kProbe, EnvelopeType::kVoteReturn};
  std::vector<PlannedSend> plan(1 + rng.below(8));
  for (auto& p : plan) {
    p.type = kTypes[rng.below(4)];
    p.sender = static_cast<NodeIndex>(rng.below(kNodes));
    p.path.resize(rng.below(5));
    for (auto& hop : p.path) hop = static_cast<NodeIndex>(rng.below(kNodes));
    p.payload.resize(rng.below(17));
    for (auto& byte : p.payload) byte = static_cast<std::uint8_t>(rng.below(256));
  }
  return plan;
}

/// Everything observable about one schedule's execution.
struct RunResult {
  std::vector<DeliveryReceipt> receipts;
  std::array<EnvelopeMetrics::Counters, kTypeCount> counters;
  std::array<std::uint64_t, kKindCount> traffic;
  double clock = 0.0;
};

RunResult snapshot(Transport& transport, std::vector<DeliveryReceipt> receipts) {
  RunResult result;
  result.receipts = std::move(receipts);
  for (std::size_t i = 0; i < kTypeCount; ++i) {
    result.counters[i] = transport.envelopes().of(static_cast<EnvelopeType>(i));
  }
  for (std::size_t k = 0; k < kKindCount; ++k) {
    result.traffic[k] = transport.overlay().metrics().of(
        static_cast<MessageKind>(k));
  }
  result.clock = transport.sim().now();
  return result;
}

RunResult run_sequential(Transport& transport,
                         const std::vector<PlannedSend>& plan) {
  std::vector<DeliveryReceipt> receipts;
  for (const auto& p : plan) {
    receipts.push_back(transport.send(p.type, p.sender, p.path, p.payload));
  }
  return snapshot(transport, std::move(receipts));
}

RunResult run_batched(Transport& transport,
                      const std::vector<PlannedSend>& plan) {
  EnvelopeBatch batch = transport.make_batch();
  for (const auto& p : plan) batch.push(p.type, p.sender, p.path, p.payload);
  const auto receipts = transport.send_batch(batch);
  return snapshot(transport,
                  std::vector<DeliveryReceipt>(receipts.begin(), receipts.end()));
}

/// Byte-level equality: doubles compared by bit pattern so any drift a
/// tolerance would mask fails loudly.
void expect_identical(const RunResult& seq, const RunResult& bat) {
  ASSERT_EQ(seq.receipts.size(), bat.receipts.size());
  for (std::size_t i = 0; i < seq.receipts.size(); ++i) {
    SCOPED_TRACE("receipt " + std::to_string(i));
    const auto& a = seq.receipts[i];
    const auto& b = bat.receipts[i];
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.destination, b.destination);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.start_ms),
              std::bit_cast<std::uint64_t>(b.start_ms));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.completion_ms),
              std::bit_cast<std::uint64_t>(b.completion_ms));
    EXPECT_EQ(a.payload, b.payload);
  }
  for (std::size_t i = 0; i < kTypeCount; ++i) {
    SCOPED_TRACE(std::string("type ") +
                 to_string(static_cast<EnvelopeType>(i)));
    const auto& a = seq.counters[i];
    const auto& b = bat.counters[i];
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.duplicated, b.duplicated);
    EXPECT_EQ(a.hop_messages, b.hop_messages);
    EXPECT_EQ(a.suppressed, b.suppressed);
    EXPECT_EQ(a.payload_bytes_sent, b.payload_bytes_sent);
    EXPECT_EQ(a.payload_bytes_delivered, b.payload_bytes_delivered);
    EXPECT_EQ(a.payload_bytes_dropped, b.payload_bytes_dropped);
  }
  EXPECT_EQ(seq.traffic, bat.traffic);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(seq.clock),
            std::bit_cast<std::uint64_t>(bat.clock));
}

void run_config_property(const DeliveryConfig& config, std::uint64_t seeds) {
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("schedule seed " + std::to_string(seed));
    const auto plan = draw_schedule(seed);
    Overlay seq_overlay = make_overlay();
    Transport seq_transport(&seq_overlay, config, seed);
    Overlay bat_overlay = make_overlay();
    Transport bat_transport(&bat_overlay, config, seed);
    expect_identical(run_sequential(seq_transport, plan),
                     run_batched(bat_transport, plan));
  }
}

TEST(TransportBatchProperty, InstantBatchMatchesSequential) {
  run_config_property(DeliveryConfig{}, 40);
}

TEST(TransportBatchProperty, LatencyBatchMatchesSequential) {
  DeliveryConfig config;
  config.policy = DeliveryPolicyKind::kLatency;
  run_config_property(config, 40);
}

TEST(TransportBatchProperty, FaultyZeroDelayBatchMatchesSequential) {
  // Pure tight-loop path with drops and same-tick duplicates.
  DeliveryConfig config;
  config.policy = DeliveryPolicyKind::kFaulty;
  config.faults.drop_rate = 0.25;
  config.faults.duplicate_rate = 0.2;
  run_config_property(config, 40);
}

TEST(TransportBatchProperty, FaultyDelayedBatchMatchesSequential) {
  // Mixed tight-loop / event-driven path: positive random hop delays force
  // the fallback from the first delayed hop.
  DeliveryConfig config;
  config.policy = DeliveryPolicyKind::kFaulty;
  config.faults.drop_rate = 0.2;
  config.faults.duplicate_rate = 0.15;
  config.faults.delay_max_ms = 0.6;
  run_config_property(config, 40);
}

TEST(TransportBatchProperty, ChaosBatchMatchesSequential) {
  // ChaosDelivery over a faulty inner policy, with an active partition,
  // an open burst window, and slowdown delays.  Two engines with the same
  // seed and no crash schedule (crashes would mutate shared system state)
  // evolve identically, so sequential-vs-batch is a fair comparison.
  core::HirepOptions opts;
  opts.nodes = kNodes;
  opts.crypto = core::CryptoMode::kFast;
  opts.seed = 5;
  core::HirepSystem system(opts);

  sim::ChaosParams chaos;
  chaos.seed = 77;
  chaos.partition_at = 1;
  chaos.partition_fraction = 0.4;
  chaos.burst_at = 1;
  chaos.burst_drop = 0.25;
  chaos.slowdown_fraction = 0.3;
  chaos.slowdown_ms = 0.5;

  FaultParams faults;
  faults.drop_rate = 0.15;
  faults.duplicate_rate = 0.1;

  const auto run = [&](std::uint64_t seed, bool batched) {
    Overlay overlay = make_overlay();
    auto engine = std::make_shared<sim::ChaosEngine>(&system, chaos, 1);
    engine->advance_to(2);
    Transport transport(
        &overlay, std::make_unique<sim::ChaosDelivery>(
                      std::make_unique<FaultyDelivery>(faults, seed), engine));
    const auto plan = draw_schedule(seed);
    return batched ? run_batched(transport, plan)
                   : run_sequential(transport, plan);
  };
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("schedule seed " + std::to_string(seed));
    expect_identical(run(seed, false), run(seed, true));
  }
}

TEST(EnvelopeBatch, DrainGroupsPartitionsByKeyStableWithinGroup) {
  Overlay overlay = make_overlay();
  Transport transport(&overlay, DeliveryConfig{}, 1);
  EnvelopeBatch batch = transport.make_batch();
  // Destinations: 5, 2, (undelivered), 5, 1, 2.
  batch.push(EnvelopeType::kProbe, 0, std::vector<NodeIndex>{5});
  batch.push(EnvelopeType::kProbe, 0, std::vector<NodeIndex>{2});
  batch.push(EnvelopeType::kProbe, 0, {});  // empty path: never delivered
  batch.push(EnvelopeType::kProbe, 0, std::vector<NodeIndex>{3, 5});
  batch.push(EnvelopeType::kProbe, 0, std::vector<NodeIndex>{1});
  batch.push(EnvelopeType::kProbe, 0, std::vector<NodeIndex>{2});
  transport.send_batch(batch);

  std::vector<std::uint64_t> keys;
  std::vector<std::vector<std::uint32_t>> groups;
  batch.drain_groups(
      [](std::size_t, const DeliveryReceipt& r) {
        return static_cast<std::uint64_t>(r.destination);
      },
      [&](const ReceiptGroup& g) {
        keys.push_back(g.key);
        groups.emplace_back(g.entries.begin(), g.entries.end());
      });
  // One group per delivered destination, ascending; entry order within a
  // group follows push order (stable).
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 2, 5}));
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<std::uint32_t>{4}));
  EXPECT_EQ(groups[1], (std::vector<std::uint32_t>{1, 5}));
  EXPECT_EQ(groups[2], (std::vector<std::uint32_t>{0, 3}));
}

TEST(EnvelopeBatch, DrainGroupsSupportsArbitraryKeys) {
  Overlay overlay = make_overlay();
  Transport transport(&overlay, DeliveryConfig{}, 1);
  EnvelopeBatch batch = transport.make_batch();
  for (NodeIndex dest : {5, 2, 7, 1, 4}) {
    batch.push(EnvelopeType::kProbe, 0, std::vector<NodeIndex>{dest});
  }
  transport.send_batch(batch);

  // Key by destination parity — the shard-exchange shape (ip % K).
  std::vector<std::uint64_t> keys;
  std::vector<std::size_t> sizes;
  batch.drain_groups(
      [](std::size_t, const DeliveryReceipt& r) {
        return static_cast<std::uint64_t>(r.destination % 2);
      },
      [&](const ReceiptGroup& g) {
        keys.push_back(g.key);
        sizes.push_back(g.entries.size());
      });
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 3}));
}

TEST(EnvelopeBatch, DrainGroupsByDestinationFlattensToSortedOrder) {
  // Grouping by destination visits groups in ascending key order and
  // preserves push order within each group.
  Overlay overlay = make_overlay();
  Transport transport(&overlay, DeliveryConfig{}, 1);
  EnvelopeBatch batch = transport.make_batch();
  batch.push(EnvelopeType::kProbe, 0, std::vector<NodeIndex>{5});
  batch.push(EnvelopeType::kProbe, 0, std::vector<NodeIndex>{2});
  batch.push(EnvelopeType::kProbe, 0, {});  // empty path: never delivered
  batch.push(EnvelopeType::kProbe, 0, std::vector<NodeIndex>{3, 5});
  batch.push(EnvelopeType::kProbe, 0, std::vector<NodeIndex>{1});
  batch.push(EnvelopeType::kProbe, 0, std::vector<NodeIndex>{2});
  transport.send_batch(batch);

  std::vector<std::size_t> order;
  std::vector<NodeIndex> destinations;
  batch.drain_groups(
      [](std::size_t, const DeliveryReceipt& r) {
        return static_cast<std::uint64_t>(r.destination);
      },
      [&](const ReceiptGroup& g) {
        for (const std::uint32_t i : g.entries) {
          order.push_back(i);
          destinations.push_back(batch.receipt(i).destination);
        }
      });
  EXPECT_EQ(order, (std::vector<std::size_t>{4, 1, 5, 0, 3}));
  EXPECT_EQ(destinations, (std::vector<NodeIndex>{1, 2, 2, 5, 5}));
}

TEST(EnvelopeBatch, SendReleasesArenaBytesAndReceiptsKeepTheirCopies) {
  Overlay overlay = make_overlay();
  Transport transport(&overlay, DeliveryConfig{}, 1);
  const auto base = transport.arena().bytes_in_use();
  EnvelopeBatch batch = transport.make_batch();
  const util::Bytes payload{1, 2, 3, 4, 5};
  batch.push(EnvelopeType::kReport, 0, std::vector<NodeIndex>{1, 2}, payload);
  EXPECT_GT(transport.arena().bytes_in_use(), base);  // interned
  transport.send_batch(batch);
  // The batch leaves the arena exactly where it found it…
  EXPECT_EQ(transport.arena().bytes_in_use(), base);
  // …and the delivered payload survives in the receipt's own storage.
  ASSERT_TRUE(batch.receipt(0).delivered);
  EXPECT_EQ(batch.receipt(0).payload, payload);
}

TEST(EnvelopeBatch, ClearReleasesAnUnsentBatch) {
  Overlay overlay = make_overlay();
  Transport transport(&overlay, DeliveryConfig{}, 1);
  const auto base = transport.arena().bytes_in_use();
  EnvelopeBatch batch = transport.make_batch();
  batch.push(EnvelopeType::kReport, 0, std::vector<NodeIndex>{1},
             util::Bytes(100, 0x11));
  EXPECT_GT(transport.arena().bytes_in_use(), base);
  batch.clear();
  EXPECT_EQ(transport.arena().bytes_in_use(), base);
  EXPECT_TRUE(batch.empty());
}

TEST(EnvelopeMetrics, PayloadByteCountersFollowDeliveryOutcomes) {
  Overlay overlay = make_overlay();
  {
    Transport transport(&overlay, DeliveryConfig{}, 1);
    transport.send(EnvelopeType::kReport, 0, {1, 2}, util::Bytes(7, 0xAB));
    const auto& c = transport.envelopes().of(EnvelopeType::kReport);
    EXPECT_EQ(c.payload_bytes_sent, 7u);
    EXPECT_EQ(c.payload_bytes_delivered, 7u);
    EXPECT_EQ(c.payload_bytes_dropped, 0u);
  }
  {
    DeliveryConfig config;
    config.policy = DeliveryPolicyKind::kFaulty;
    config.faults.drop_rate = 1.0;
    Transport transport(&overlay, config, 1);
    transport.send(EnvelopeType::kReport, 0, {1}, util::Bytes(9, 0xCD));
    const auto& c = transport.envelopes().of(EnvelopeType::kReport);
    EXPECT_EQ(c.payload_bytes_sent, 9u);
    EXPECT_EQ(c.payload_bytes_delivered, 0u);
    EXPECT_EQ(c.payload_bytes_dropped, 9u);
  }
}

TEST(ScaleLanes, ParallelLaneAbsorptionMatchesSerialAndResetsLaneArenas) {
  // The lane-absorption identity under the batched pipeline: parallel
  // waves over per-lane transports must reproduce the serial run record
  // for record, and every lane arena is reset at the wave barrier.
  core::HirepOptions opts;
  opts.nodes = 200;
  opts.crypto = core::CryptoMode::kFast;
  opts.seed = 13;
  util::Rng rng(0xfeedULL);
  std::vector<std::pair<net::NodeIndex, net::NodeIndex>> pairs;
  while (pairs.size() < 60) {
    const auto r = static_cast<net::NodeIndex>(rng.below(opts.nodes));
    const auto p = static_cast<net::NodeIndex>(rng.below(opts.nodes));
    if (r != p) pairs.emplace_back(r, p);
  }

  core::HirepSystem serial(opts);
  core::HirepSystem parallel(opts);
  const auto serial_records =
      serial.run_transactions(pairs, core::Executor::serial());
  std::uint64_t resets_before = 0;
  if constexpr (obs::kEnabled) {
    resets_before = obs::Registry::global().counter("net.arena.resets").value();
  }
  const auto parallel_records =
      parallel.run_transactions(pairs, core::Executor::parallel(2));
  if constexpr (obs::kEnabled) {
    EXPECT_GT(obs::Registry::global().counter("net.arena.resets").value(),
              resets_before);
  }

  ASSERT_EQ(serial_records.size(), parallel_records.size());
  for (std::size_t i = 0; i < serial_records.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(serial_records[i].requestor, parallel_records[i].requestor);
    EXPECT_EQ(serial_records[i].provider, parallel_records[i].provider);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial_records[i].estimate),
              std::bit_cast<std::uint64_t>(parallel_records[i].estimate));
    EXPECT_EQ(serial_records[i].trust_messages,
              parallel_records[i].trust_messages);
  }
  EXPECT_EQ(serial.trust_message_total(), parallel.trust_message_total());
}

}  // namespace
}  // namespace hirep::net
