// Transport layer: typed envelopes, pluggable delivery policies, and the
// per-envelope-type accounting in net::EnvelopeMetrics.
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "check/check.hpp"
#include "net/flood.hpp"
#include "net/topology.hpp"

namespace hirep::net {
namespace {

Overlay make_overlay(std::size_t nodes = 12, std::uint64_t seed = 1) {
  return Overlay(ring_lattice(nodes, 2), LatencyParams{}, seed);
}

TEST(TransportInstant, CountsOneMessagePerHopAndDelivers) {
  Overlay overlay = make_overlay();
  Transport transport(&overlay, DeliveryConfig{}, 1);
  const std::vector<NodeIndex> path{3, 7, 2, 9};

  const auto receipt =
      transport.send(EnvelopeType::kTrustRequest, 0, path, {0xAB});

  EXPECT_TRUE(receipt.delivered);
  EXPECT_EQ(receipt.destination, 9u);
  EXPECT_EQ(receipt.messages, path.size());
  EXPECT_EQ(receipt.hops, path.size());
  EXPECT_EQ(receipt.completion_ms, 0.0);
  ASSERT_EQ(receipt.payload.size(), 1u);
  EXPECT_EQ(receipt.payload[0], 0xAB);
  // Exactly what Overlay::count_send(kind, path.size()) would have counted.
  EXPECT_EQ(overlay.metrics().of(MessageKind::kTrustRequest), path.size());
  EXPECT_EQ(overlay.metrics().total(), path.size());

  const auto& c = transport.envelopes().of(EnvelopeType::kTrustRequest);
  EXPECT_EQ(c.sent, 1u);
  EXPECT_EQ(c.delivered, 1u);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(c.hop_messages, path.size());
}

TEST(TransportInstant, EmptyPathIsNotDelivered) {
  Overlay overlay = make_overlay();
  Transport transport(&overlay, DeliveryConfig{}, 1);
  const auto receipt = transport.send(EnvelopeType::kProbe, 0, {});
  EXPECT_FALSE(receipt.delivered);
  EXPECT_EQ(receipt.messages, 0u);
  EXPECT_EQ(overlay.metrics().total(), 0u);
}

TEST(TransportInstant, HopsCountUnderTheEnvelopesKind) {
  Overlay overlay = make_overlay();
  Transport transport(&overlay, DeliveryConfig{}, 1);
  transport.send(EnvelopeType::kVotePoll, 0, {1});
  transport.send(EnvelopeType::kVoteReturn, 1, {0});
  transport.send(EnvelopeType::kAgentListReply, 2, {0});
  transport.send(EnvelopeType::kProbe, 0, {5});
  EXPECT_EQ(overlay.metrics().of(MessageKind::kTrustRequest), 1u);
  EXPECT_EQ(overlay.metrics().of(MessageKind::kTrustResponse), 1u);
  EXPECT_EQ(overlay.metrics().of(MessageKind::kAgentDiscovery), 1u);
  EXPECT_EQ(overlay.metrics().of(MessageKind::kControl), 1u);
}

TEST(TransportLatency, CompletionTimeIsTheSumOfHopDelays) {
  Overlay overlay = make_overlay();
  DeliveryConfig config;
  config.policy = DeliveryPolicyKind::kLatency;
  Transport transport(&overlay, config, 1);
  const std::vector<NodeIndex> path{4, 8, 1};

  const auto receipt = transport.send(EnvelopeType::kReport, 0, path);

  ASSERT_TRUE(receipt.delivered);
  const auto& model = overlay.latency();
  double expected = 0.0;
  NodeIndex from = 0;
  for (NodeIndex to : path) {
    expected += model.link_ms(from, to) + model.processing_ms();
    from = to;
  }
  EXPECT_DOUBLE_EQ(receipt.completion_ms, expected);
  EXPECT_GT(receipt.completion_ms, 0.0);
}

TEST(TransportFaulty, DropRateOneLosesEveryEnvelopeAtTheFirstHop) {
  Overlay overlay = make_overlay();
  DeliveryConfig config;
  config.policy = DeliveryPolicyKind::kFaulty;
  config.faults.drop_rate = 1.0;
  Transport transport(&overlay, config, 1);

  for (int i = 0; i < 10; ++i) {
    const auto receipt =
        transport.send(EnvelopeType::kTrustRequest, 0, {1, 2, 3});
    EXPECT_FALSE(receipt.delivered);
    EXPECT_EQ(receipt.messages, 1u);  // left the sender, never landed
    EXPECT_EQ(receipt.hops, 0u);
  }
  const auto& c = transport.envelopes().of(EnvelopeType::kTrustRequest);
  EXPECT_EQ(c.sent, 10u);
  EXPECT_EQ(c.dropped, 10u);
  EXPECT_EQ(c.delivered, 0u);
}

TEST(TransportFaulty, DuplicateRateOneDoublesEveryTransmission) {
  Overlay overlay = make_overlay();
  DeliveryConfig config;
  config.policy = DeliveryPolicyKind::kFaulty;
  config.faults.duplicate_rate = 1.0;
  Transport transport(&overlay, config, 1);
  const std::vector<NodeIndex> path{1, 2, 3};

  const auto receipt = transport.send(EnvelopeType::kReport, 0, path);

  EXPECT_TRUE(receipt.delivered);
  EXPECT_EQ(receipt.messages, 2 * path.size());
  EXPECT_EQ(overlay.metrics().of(MessageKind::kReport), 2 * path.size());
  EXPECT_EQ(transport.envelopes().of(EnvelopeType::kReport).duplicated,
            path.size());
  // Every second copy lands at its receiver and is discarded by envelope
  // id, so handler side effects apply exactly once per hop.
  EXPECT_EQ(transport.envelopes().of(EnvelopeType::kReport).suppressed,
            path.size());
}

TEST(TransportFaulty, OutcomesAreDeterministicUnderAFixedSeed) {
  DeliveryConfig config;
  config.policy = DeliveryPolicyKind::kFaulty;
  config.faults.drop_rate = 0.3;
  config.faults.duplicate_rate = 0.2;
  config.faults.delay_min_ms = 1.0;
  config.faults.delay_max_ms = 5.0;

  const auto run = [&](std::uint64_t seed) {
    Overlay overlay = make_overlay();
    Transport transport(&overlay, config, seed);
    std::vector<std::tuple<bool, std::uint64_t, double>> outcomes;
    for (int i = 0; i < 50; ++i) {
      const auto r = transport.send(EnvelopeType::kProbe, 0, {1, 2, 3, 4});
      outcomes.emplace_back(r.delivered, r.messages, r.completion_ms);
    }
    return outcomes;
  };

  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(TransportFaulty, ConservationHoldsExactlyUnderDropsAndDuplicates) {
  // Every envelope the faulty policy touches is accounted for, exactly:
  // sent == delivered + dropped per type, and the hop-message books match
  // the receipts transmission for transmission (duplicates included).
  Overlay overlay = make_overlay();
  DeliveryConfig config;
  config.policy = DeliveryPolicyKind::kFaulty;
  config.faults.drop_rate = 0.25;
  config.faults.duplicate_rate = 0.3;
  config.faults.delay_min_ms = 0.5;
  config.faults.delay_max_ms = 2.0;

  std::uint64_t receipt_messages = 0, receipt_delivered = 0;
  std::uint64_t receipt_hops = 0;
  const std::vector<EnvelopeType> types{EnvelopeType::kTrustRequest,
                                        EnvelopeType::kTrustResponse,
                                        EnvelopeType::kReport,
                                        EnvelopeType::kProbe};
  hirep::check::ScopedCapture capture;
  {
    Transport transport(&overlay, config, 13);
    for (int i = 0; i < 400; ++i) {
      const auto type = types[static_cast<std::size_t>(i) % types.size()];
      const std::vector<NodeIndex> path{1, 2, static_cast<NodeIndex>(3 + i % 5)};
      const auto receipt = transport.send(type, 0, path);
      receipt_messages += receipt.messages;
      receipt_hops += receipt.hops;
      if (receipt.delivered) ++receipt_delivered;
    }

    std::uint64_t sent = 0, delivered = 0, dropped = 0;
    std::uint64_t duplicated = 0, hop_messages = 0, suppressed = 0;
    for (const auto type : types) {
      const auto& c = transport.envelopes().of(type);
      EXPECT_EQ(c.sent, c.delivered + c.dropped) << to_string(type);
      sent += c.sent;
      delivered += c.delivered;
      dropped += c.dropped;
      duplicated += c.duplicated;
      hop_messages += c.hop_messages;
      suppressed += c.suppressed;
    }
    EXPECT_EQ(sent, 400u);
    EXPECT_EQ(delivered, receipt_delivered);
    EXPECT_EQ(dropped, 400u - receipt_delivered);
    EXPECT_GT(dropped, 0u);     // the rates are high enough to observe both
    EXPECT_GT(duplicated, 0u);
    EXPECT_EQ(hop_messages, receipt_messages);
    EXPECT_EQ(hop_messages, receipt_hops + duplicated + dropped);
    // Duplicates are only minted on undropped hops, so every second copy
    // lands and is suppressed at its receiver — one for one.
    EXPECT_EQ(suppressed, duplicated);
    EXPECT_EQ(overlay.metrics().total(), receipt_messages);
  }
  // Teardown ran the envelope-conservation invariant; the books balance,
  // so it must have stayed silent.
  EXPECT_EQ(capture.count(), 0u);
}

TEST(TransportFaulty, ModerateDropRateDegradesButDoesNotWedge) {
  Overlay overlay = make_overlay();
  DeliveryConfig config;
  config.policy = DeliveryPolicyKind::kFaulty;
  config.faults.drop_rate = 0.2;
  Transport transport(&overlay, config, 7);

  std::size_t delivered = 0;
  const int sends = 200;
  for (int i = 0; i < sends; ++i) {
    if (transport.send(EnvelopeType::kTrustRequest, 0, {1, 2}).delivered) {
      ++delivered;
    }
  }
  // P(deliver) = 0.8^2 = 0.64; allow a wide band.
  EXPECT_GT(delivered, sends / 3);
  EXPECT_LT(delivered, sends);
  EXPECT_EQ(transport.envelopes().of(EnvelopeType::kTrustRequest).sent,
            static_cast<std::uint64_t>(sends));
  EXPECT_EQ(transport.envelopes().total_delivered() +
                transport.envelopes().total_dropped(),
            static_cast<std::uint64_t>(sends));
}

TEST(TransportPolicy, NamesRoundTrip) {
  EXPECT_EQ(policy_kind_by_name("instant"), DeliveryPolicyKind::kInstant);
  EXPECT_EQ(policy_kind_by_name("latency"), DeliveryPolicyKind::kLatency);
  EXPECT_EQ(policy_kind_by_name("faulty"), DeliveryPolicyKind::kFaulty);
  EXPECT_FALSE(policy_kind_by_name("carrier-pigeon").has_value());

  Overlay overlay = make_overlay();
  Transport transport(&overlay, DeliveryConfig{}, 1);
  EXPECT_STREQ(transport.policy().name(), "instant");
  transport.set_policy(std::make_unique<FaultyDelivery>(FaultParams{}, 1));
  EXPECT_STREQ(transport.policy().name(), "faulty");
}

TEST(TransportFlood, InstantFloodMatchesCountedFlood) {
  Overlay counted = make_overlay(20, 3);
  Overlay routed = make_overlay(20, 3);
  Transport transport(&routed, DeliveryConfig{}, 3);

  const auto a = flood(counted, 0, 3, MessageKind::kTrustRequest);
  const auto b = flood(transport, 0, 3, EnvelopeType::kVotePoll);

  EXPECT_EQ(a.reached, b.reached);
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(counted.metrics().total(), routed.metrics().total());
}

TEST(TransportFlood, DropsPruneTheFloodFrontier) {
  Overlay overlay = make_overlay(20, 3);
  DeliveryConfig config;
  config.policy = DeliveryPolicyKind::kFaulty;
  config.faults.drop_rate = 1.0;
  Transport transport(&overlay, config, 3);

  const auto result = flood(transport, 0, 3, EnvelopeType::kVotePoll);
  EXPECT_TRUE(result.reached.empty());           // nothing ever lands
  EXPECT_EQ(result.messages, 4u);                // the source's 4 neighbors
}

TEST(TransportTokenWalk, InstantWalkMatchesCountedWalk) {
  Overlay counted = make_overlay(30, 5);
  Overlay routed = make_overlay(30, 5);
  Transport transport(&routed, DeliveryConfig{}, 5);
  util::Rng rng_a(11), rng_b(11);
  const auto consumes = [](NodeIndex v) { return v % 3 == 0; };

  const auto a = token_walk(counted, rng_a, 0, 6, 4, consumes,
                            MessageKind::kAgentDiscovery);
  const auto b = token_walk(transport, rng_b, 0, 6, 4, consumes);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].tokens_spent, b[i].tokens_spent);
  }
  EXPECT_EQ(counted.metrics().total(), routed.metrics().total());
}

TEST(EnvelopeMetrics, SummaryListsActiveTypes) {
  EnvelopeMetrics metrics;
  metrics.count_sent(EnvelopeType::kTrustRequest);
  metrics.count_delivered(EnvelopeType::kTrustRequest);
  const std::string s = metrics.summary();
  EXPECT_NE(s.find(to_string(EnvelopeType::kTrustRequest)), std::string::npos);
}

}  // namespace
}  // namespace hirep::net
