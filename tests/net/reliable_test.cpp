// ReliableChannel: the retry discipline over the typed transport — the
// zero-retry identity contract (golden safety), loss recovery through
// bounded retransmission, per-attempt deadlines, deterministic exponential
// backoff with seeded jitter, and at-most-once application of retried
// copies at the destination.
#include "net/reliable.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "net/topology.hpp"

namespace hirep::net {
namespace {

Overlay make_overlay(std::size_t nodes = 12, std::uint64_t seed = 1) {
  return Overlay(ring_lattice(nodes, 2), LatencyParams{}, seed);
}

DeliveryConfig faulty(double drop_rate) {
  DeliveryConfig config;
  config.policy = DeliveryPolicyKind::kFaulty;
  config.faults.drop_rate = drop_rate;
  return config;
}

TEST(ReliableZeroRetry, DefaultPolicyIsCallForCallIdenticalToBareSend) {
  // The golden-safety contract: with the default (1 attempt, no deadline)
  // policy, a lossy transport driven through the channel sees the exact
  // same per-request outcomes as the same transport driven bare — no extra
  // RNG draws, no clock movement.
  const auto outcomes = [](bool through_channel) {
    Overlay overlay = make_overlay();
    Transport transport(&overlay, faulty(0.3), 42);
    ReliableChannel channel(&transport, ReliablePolicy{}, 99);
    std::vector<std::tuple<bool, std::uint64_t, NodeIndex>> seen;
    for (int i = 0; i < 50; ++i) {
      if (through_channel) {
        const auto r =
            channel.request(EnvelopeType::kTrustRequest, 0, {1, 2, 3});
        seen.emplace_back(r.ok, r.messages, r.destination);
      } else {
        const auto r =
            transport.send(EnvelopeType::kTrustRequest, 0, {1, 2, 3});
        seen.emplace_back(r.delivered, r.messages, r.destination);
      }
    }
    // The wrapper never advances the event clock under the default policy.
    EXPECT_DOUBLE_EQ(transport.sim().now(), 0.0);
    return seen;
  };
  EXPECT_EQ(outcomes(true), outcomes(false));
}

TEST(ReliableZeroRetry, StatsCountRequestsButNoRetries) {
  Overlay overlay = make_overlay();
  Transport transport(&overlay, DeliveryConfig{}, 1);
  ReliableChannel channel(&transport, ReliablePolicy{}, 1);
  const auto r = channel.request(EnvelopeType::kProbe, 0, {1, 2});
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.applied);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_EQ(channel.stats().requests, 1u);
  EXPECT_EQ(channel.stats().retries, 0u);
  EXPECT_EQ(channel.stats().timeouts, 0u);
  EXPECT_EQ(channel.stats().gave_up, 0u);
}

TEST(ReliableRetry, BoundedRetransmissionRecoversLoss) {
  const auto successes = [](std::uint32_t max_attempts, std::uint64_t* retries) {
    Overlay overlay = make_overlay();
    Transport transport(&overlay, faulty(0.5), 7);
    ReliablePolicy policy;
    policy.max_attempts = max_attempts;
    ReliableChannel channel(&transport, policy, 11);
    std::size_t ok = 0;
    for (int i = 0; i < 100; ++i) {
      ok += channel.request(EnvelopeType::kTrustRequest, 0, {1, 2}).ok;
    }
    if (retries != nullptr) *retries = channel.stats().retries;
    return ok;
  };
  std::uint64_t retries = 0;
  const auto one_shot = successes(1, nullptr);
  const auto retried = successes(5, &retries);
  // P(deliver a 2-hop path) = 0.25 per attempt vs 1 - 0.75^5 ~ 0.76.
  EXPECT_GT(retried, one_shot);
  EXPECT_GT(retries, 0u);
  EXPECT_GT(retried, 50u);
  EXPECT_LT(one_shot, 50u);
}

TEST(ReliableRetry, ExhaustedAttemptsAreCountedAsGivingUp) {
  Overlay overlay = make_overlay();
  Transport transport(&overlay, faulty(1.0), 3);
  ReliablePolicy policy;
  policy.max_attempts = 3;
  ReliableChannel channel(&transport, policy, 3);
  const auto r = channel.request(EnvelopeType::kReport, 0, {1, 2});
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.applied);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.timeouts, 3u);
  EXPECT_EQ(channel.stats().retries, 2u);
  EXPECT_EQ(channel.stats().timeouts, 3u);
  EXPECT_EQ(channel.stats().gave_up, 1u);
}

TEST(ReliableDeadline, LateDeliveryFailsTheRequestButStillApplies) {
  // Latency delivery lands the envelope after a positive delay; a deadline
  // below that makes every attempt "late": the destination received the
  // copy (side effects applied), but the requestor treats it as lost.
  Overlay overlay = make_overlay();
  DeliveryConfig config;
  config.policy = DeliveryPolicyKind::kLatency;
  Transport transport(&overlay, config, 1);
  ReliablePolicy policy;
  policy.max_attempts = 1;
  policy.timeout_ms = 1e-6;
  ReliableChannel channel(&transport, policy, 5);
  const auto r = channel.request(EnvelopeType::kTrustRequest, 0, {1, 2});
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.applied);
  EXPECT_EQ(r.timeouts, 1u);
  EXPECT_EQ(channel.stats().timeouts, 1u);
  EXPECT_EQ(channel.stats().gave_up, 1u);
}

TEST(ReliableBackoff, ExponentialScheduleIsExactOnTheSimClock) {
  // drop=1 forces every attempt to fail; with backoff 2ms and no jitter the
  // waits before attempts 2, 3, 4 are 2, 4, 8 ms — the clock must land on
  // exactly 14 ms, nothing stochastic about it.
  Overlay overlay = make_overlay();
  Transport transport(&overlay, faulty(1.0), 9);
  ReliablePolicy policy;
  policy.max_attempts = 4;
  policy.backoff_ms = 2.0;
  ReliableChannel channel(&transport, policy, 17);
  channel.request(EnvelopeType::kTrustRequest, 0, {1});
  EXPECT_DOUBLE_EQ(transport.sim().now(), 14.0);
}

TEST(ReliableBackoff, JitterIsDrawnFromTheChannelSeed) {
  const auto clock_after = [](std::uint64_t channel_seed) {
    Overlay overlay = make_overlay();
    Transport transport(&overlay, faulty(1.0), 9);
    ReliablePolicy policy;
    policy.max_attempts = 3;
    policy.backoff_ms = 1.0;
    policy.jitter_ms = 5.0;
    ReliableChannel channel(&transport, policy, channel_seed);
    channel.request(EnvelopeType::kTrustRequest, 0, {1});
    return transport.sim().now();
  };
  EXPECT_EQ(clock_after(21), clock_after(21));  // deterministic per seed
  EXPECT_NE(clock_after(21), clock_after(22));  // but genuinely seeded
  // Base waits are 1 + 2 = 3ms; jitter adds [0, 5) per retry.
  EXPECT_GE(clock_after(21), 3.0);
  EXPECT_LT(clock_after(21), 13.0);
}

TEST(ReliableDuplicates, RetransmissionsApplyAtMostOnce) {
  // Every attempt is delivered but late (deadline below the latency floor),
  // so the channel retries after copies already landed: the first copy
  // applies, every retransmission that lands afterwards is suppressed.
  Overlay overlay = make_overlay();
  DeliveryConfig config;
  config.policy = DeliveryPolicyKind::kLatency;
  Transport transport(&overlay, config, 1);
  ReliablePolicy policy;
  policy.max_attempts = 3;
  policy.timeout_ms = 1e-6;
  ReliableChannel channel(&transport, policy, 5);
  const auto r = channel.request(EnvelopeType::kReport, 0, {1, 2});
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.applied);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(channel.stats().dup_suppressed, 2u);
}

TEST(DedupTable, FirstApplicationIsTrueExactlyOnce) {
  DedupTable table;
  EXPECT_TRUE(table.first_application(1, 0.0));
  EXPECT_FALSE(table.first_application(1, 0.0));
  EXPECT_TRUE(table.first_application(2, 0.0));
  EXPECT_FALSE(table.first_application(2, 0.0));
  EXPECT_EQ(table.size(), 2u);
}

TEST(DedupTable, SizeStaysBoundedByTwiceTheGenerationCapacity) {
  DedupTable table(/*capacity=*/64, /*window_ms=*/60'000.0);
  for (std::uint64_t id = 0; id < 10'000; ++id) {
    EXPECT_TRUE(table.first_application(id, 0.0));
    EXPECT_LE(table.size(), table.capacity());
  }
  EXPECT_EQ(table.capacity(), 128u);
}

TEST(DedupTable, ActivelyRetriedIdsSurviveGenerationRotation) {
  // A duplicate check refreshes the id into the current generation, so an
  // id that keeps being retried never ages out even while the table churns
  // through thousands of other ids.
  DedupTable table(/*capacity=*/64, /*window_ms=*/60'000.0);
  EXPECT_TRUE(table.first_application(999'999, 0.0));
  for (std::uint64_t id = 0; id < 2'000; ++id) {
    table.first_application(id, 0.0);
    EXPECT_FALSE(table.first_application(999'999, 0.0));
  }
}

TEST(DedupTable, IdleIdsAgeOutAfterTheTimeWindow) {
  DedupTable table(/*capacity=*/1024, /*window_ms=*/100.0);
  EXPECT_TRUE(table.first_application(7, 0.0));
  // Two window rotations with no touches in between: the id is forgotten.
  EXPECT_TRUE(table.first_application(8, 150.0));
  EXPECT_TRUE(table.first_application(9, 300.0));
  EXPECT_TRUE(table.first_application(7, 450.0));
}

TEST(ReliableDuplicates, SuppressionTableStaysBoundedUnderSustainedRetries) {
  // S1 regression: 10k logical requests, every one retried (latency floor
  // above the deadline forces a timeout per attempt), must not grow the
  // duplicate-suppression state without bound.
  Overlay overlay = make_overlay();
  DeliveryConfig config;
  config.policy = DeliveryPolicyKind::kLatency;
  Transport transport(&overlay, config, 1);
  ReliablePolicy policy;
  policy.max_attempts = 2;
  policy.timeout_ms = 1e-6;
  ReliableChannel channel(&transport, policy, 5);
  for (int i = 0; i < 10'000; ++i) {
    channel.request(EnvelopeType::kReport, 0, {1});
    ASSERT_LE(channel.dedup_size(), channel.dedup_capacity());
  }
  EXPECT_GT(channel.stats().dup_suppressed, 0u);
}

TEST(ReliableBatch, DefaultPolicyIsRequestForRequestIdenticalToSequential) {
  // The batched form of the zero-retry identity: with the default policy a
  // request_batch over N requests must match N sequential request() calls
  // outcome for outcome on the same lossy transport.
  const std::vector<NodeIndex> path_a{1, 2, 3};
  const std::vector<NodeIndex> path_b{4, 5};
  const auto outcomes = [&](bool batched) {
    Overlay overlay = make_overlay();
    Transport transport(&overlay, faulty(0.3), 42);
    ReliableChannel channel(&transport, ReliablePolicy{}, 99);
    std::vector<std::tuple<bool, bool, std::uint64_t, NodeIndex>> seen;
    const auto note = [&](const RequestOutcome& r) {
      seen.emplace_back(r.ok, r.applied, r.messages, r.destination);
    };
    for (int round = 0; round < 25; ++round) {
      if (batched) {
        const ReliableChannel::BatchRequest requests[] = {
            {.sender = 0, .path = &path_a, .payload = {}},
            {.sender = 0, .path = &path_b, .payload = {}},
        };
        for (const auto& r :
             channel.request_batch(EnvelopeType::kTrustRequest, requests)) {
          note(r);
        }
      } else {
        note(channel.request(EnvelopeType::kTrustRequest, 0, path_a));
        note(channel.request(EnvelopeType::kTrustRequest, 0, path_b));
      }
    }
    EXPECT_DOUBLE_EQ(transport.sim().now(), 0.0);
    return seen;
  };
  EXPECT_EQ(outcomes(true), outcomes(false));
}

TEST(ReliableBatch, RetriedWavesRecoverLossAndCountStats) {
  Overlay overlay = make_overlay();
  Transport transport(&overlay, faulty(0.5), 7);
  ReliablePolicy policy;
  policy.max_attempts = 5;
  policy.backoff_ms = 1.0;
  ReliableChannel channel(&transport, policy, 11);
  const std::vector<NodeIndex> path{1, 2};
  std::vector<ReliableChannel::BatchRequest> requests(
      100, ReliableChannel::BatchRequest{.sender = 0, .path = &path,
                                         .payload = {}});
  const auto outcomes =
      channel.request_batch(EnvelopeType::kTrustRequest, requests);
  ASSERT_EQ(outcomes.size(), 100u);
  std::size_t ok = 0;
  for (const auto& r : outcomes) ok += r.ok;
  // P(deliver the 2-hop path) = 0.25 per attempt, ~0.76 across five.
  EXPECT_GT(ok, 50u);
  EXPECT_EQ(channel.stats().requests, 100u);
  EXPECT_GT(channel.stats().retries, 0u);
  EXPECT_EQ(channel.stats().gave_up, 100u - ok);
  // Waves only retry the still-pending requests, so the retry total is far
  // below the worst case of every request burning all four retries.
  EXPECT_LT(channel.stats().retries, 400u);
}

TEST(ReliableBatch, PayloadsReachTheirDestinations) {
  Overlay overlay = make_overlay();
  Transport transport(&overlay, DeliveryConfig{}, 1);
  ReliableChannel channel(&transport, ReliablePolicy{}, 1);
  const std::vector<NodeIndex> path_a{1};
  const std::vector<NodeIndex> path_b{2};
  const util::Bytes payload_a{0xAA, 0xAB};
  const util::Bytes payload_b{0xBB};
  const ReliableChannel::BatchRequest requests[] = {
      {.sender = 0, .path = &path_a, .payload = payload_a},
      {.sender = 0, .path = &path_b, .payload = payload_b},
  };
  const auto outcomes = channel.request_batch(EnvelopeType::kReport, requests);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_EQ(outcomes[0].destination, 1u);
  EXPECT_EQ(outcomes[0].payload, payload_a);
  EXPECT_TRUE(outcomes[1].ok);
  EXPECT_EQ(outcomes[1].destination, 2u);
  EXPECT_EQ(outcomes[1].payload, payload_b);
}

}  // namespace
}  // namespace hirep::net
