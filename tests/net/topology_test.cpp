#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hirep::net {
namespace {

TEST(Topology, BarabasiAlbertBasicShape) {
  util::Rng rng(1);
  const auto g = barabasi_albert(rng, 500, 2);
  EXPECT_EQ(g.node_count(), 500u);
  EXPECT_TRUE(g.connected());
  EXPECT_NEAR(g.average_degree(), 4.0, 0.5);
}

TEST(Topology, BarabasiAlbertRejectsBadArgs) {
  util::Rng rng(2);
  EXPECT_THROW(barabasi_albert(rng, 10, 0), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(rng, 3, 3), std::invalid_argument);
}

TEST(Topology, BarabasiAlbertHasHubs) {
  // Preferential attachment produces heavy-tailed degrees: the max degree
  // should be far above the average.
  util::Rng rng(3);
  const auto g = barabasi_albert(rng, 1000, 2);
  EXPECT_GT(g.max_degree(), 4 * static_cast<std::size_t>(g.average_degree()));
}

class PowerLawSweep : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawSweep, RealizesRequestedAverageDegree) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam() * 10));
  const auto g = power_law(rng, 800, GetParam());
  EXPECT_TRUE(g.connected());
  EXPECT_NEAR(g.average_degree(), GetParam(), 0.8);
}

INSTANTIATE_TEST_SUITE_P(Degrees, PowerLawSweep,
                         ::testing::Values(2.0, 3.0, 4.0, 6.0));

TEST(Topology, PowerLawDegreeDistributionIsHeavyTailed) {
  util::Rng rng(5);
  const auto g = power_law(rng, 2000, 4.0);
  const auto hist = g.degree_histogram();
  // Count nodes with degree >= 5x the average — a power law keeps a
  // noticeable tail, an ER graph of the same density essentially none.
  std::size_t heavy = 0;
  for (std::size_t d = 20; d < hist.size(); ++d) heavy += hist[d];
  EXPECT_GT(heavy, 10u);
}

TEST(Topology, ErdosRenyiDensityMatches) {
  util::Rng rng(6);
  const auto g = erdos_renyi(rng, 600, 6.0);
  EXPECT_NEAR(g.average_degree(), 6.0, 0.8);
}

TEST(Topology, ErdosRenyiZeroDegreeEdgeCase) {
  util::Rng rng(7);
  const auto g = erdos_renyi(rng, 50, 0.0);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Topology, RingLatticeDeterministic) {
  const auto g = ring_lattice(10, 2);
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.edge_count(), 20u);
  EXPECT_TRUE(g.connected());
  for (NodeIndex v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_THROW(ring_lattice(2, 1), std::invalid_argument);
}

TEST(Topology, EnsureConnectedRepairsFragments) {
  util::Rng rng(8);
  Graph g(20);  // no edges at all: 20 components
  ensure_connected(rng, g);
  EXPECT_TRUE(g.connected());
  EXPECT_GE(g.edge_count(), 19u);
}

TEST(Topology, EnsureConnectedNoopWhenConnected) {
  util::Rng rng(9);
  auto g = ring_lattice(10, 1);
  const auto edges = g.edge_count();
  ensure_connected(rng, g);
  EXPECT_EQ(g.edge_count(), edges);
}

TEST(Topology, DeterministicGivenSeed) {
  util::Rng a(77), b(77);
  const auto ga = power_law(a, 300, 4.0);
  const auto gb = power_law(b, 300, 4.0);
  EXPECT_EQ(ga.edge_count(), gb.edge_count());
  for (NodeIndex v = 0; v < 300; ++v) EXPECT_EQ(ga.degree(v), gb.degree(v));
}

}  // namespace
}  // namespace hirep::net
