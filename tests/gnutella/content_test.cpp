#include "gnutella/content.hpp"

#include <gtest/gtest.h>

#include <map>

namespace hirep::gnutella {
namespace {

CatalogParams small_params() {
  CatalogParams p;
  p.files = 20;
  p.min_replicas = 2;
  p.max_replicas = 15;
  return p;
}

TEST(ContentCatalog, ShapeInvariants) {
  util::Rng rng(1);
  ContentCatalog catalog(rng, 100, small_params());
  EXPECT_EQ(catalog.file_count(), 20u);
  EXPECT_EQ(catalog.node_count(), 100u);
  for (FileId f = 0; f < 20; ++f) {
    const auto& providers = catalog.providers_of(f);
    EXPECT_GE(providers.size(), 2u);
    EXPECT_LE(providers.size(), 15u);
    for (auto p : providers) {
      EXPECT_LT(p, 100u);
      EXPECT_TRUE(catalog.has_file(p, f));
    }
  }
}

TEST(ContentCatalog, PopularFilesHaveMoreReplicas) {
  util::Rng rng(2);
  ContentCatalog catalog(rng, 200, small_params());
  EXPECT_GT(catalog.providers_of(0).size(), catalog.providers_of(19).size());
}

TEST(ContentCatalog, ShelvesConsistentWithProviders) {
  util::Rng rng(3);
  ContentCatalog catalog(rng, 50, small_params());
  for (net::NodeIndex v = 0; v < 50; ++v) {
    for (FileId f : catalog.files_at(v)) {
      const auto& providers = catalog.providers_of(f);
      EXPECT_NE(std::find(providers.begin(), providers.end(), v),
                providers.end());
    }
  }
}

TEST(ContentCatalog, RequestSamplingSkewsToPopular) {
  util::Rng rng(4);
  CatalogParams p = small_params();
  p.popularity_zipf_s = 1.2;
  ContentCatalog catalog(rng, 100, p);
  std::map<FileId, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[catalog.sample_request(rng)];
  EXPECT_GT(counts[0], counts[19] * 3);
}

TEST(ContentCatalog, PollutionTracksGroundTruth) {
  util::Rng rng(5);
  trust::WorldParams wp;
  wp.nodes = 50;
  trust::GroundTruth truth(rng, wp);
  ContentCatalog catalog(rng, 50, small_params());
  for (net::NodeIndex v = 0; v < 50; ++v) {
    EXPECT_EQ(catalog.copy_polluted(truth, v), !truth.trustable(v));
  }
}

TEST(ContentCatalog, DegenerateParamsRejected) {
  util::Rng rng(6);
  CatalogParams p = small_params();
  p.files = 0;
  EXPECT_THROW(ContentCatalog(rng, 50, p), std::invalid_argument);
  p = small_params();
  p.min_replicas = 5;
  p.max_replicas = 2;
  EXPECT_THROW(ContentCatalog(rng, 50, p), std::invalid_argument);
  EXPECT_THROW(ContentCatalog(rng, 1, small_params()), std::invalid_argument);
}

TEST(ContentCatalog, ReplicasClampedToPopulation) {
  util::Rng rng(7);
  CatalogParams p = small_params();
  p.max_replicas = 1000;
  ContentCatalog catalog(rng, 30, p);
  EXPECT_LE(catalog.providers_of(0).size(), 30u);
}

}  // namespace
}  // namespace hirep::gnutella
