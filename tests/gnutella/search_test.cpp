#include "gnutella/search.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace hirep::gnutella {
namespace {

struct SearchFixture : ::testing::Test {
  SearchFixture()
      : rng(1),
        overlay(net::power_law(rng, 200, 4.0), net::LatencyParams{}, 1),
        catalog(rng, 200, [] {
          CatalogParams p;
          p.files = 10;
          p.min_replicas = 5;
          p.max_replicas = 60;
          return p;
        }()) {}

  util::Rng rng;
  net::Overlay overlay;
  ContentCatalog catalog;
};

TEST_F(SearchFixture, FindsPopularFile) {
  const auto result = search(overlay, catalog, 0, 0, 4);
  EXPECT_TRUE(result.found());
  EXPECT_GT(result.query_messages, 0u);
  EXPECT_GT(result.hit_messages, 0u);
  for (const auto& hit : result.hits) {
    EXPECT_TRUE(catalog.has_file(hit.provider, 0));
    EXPECT_GE(hit.hops, 1u);
    EXPECT_LE(hit.hops, 4u);
  }
}

TEST_F(SearchFixture, HitsOnlyFromReachedProviders) {
  // TTL 1: only direct neighbors can answer.
  const auto result = search(overlay, catalog, 0, 0, 1);
  const auto nbs = overlay.graph().neighbors(0);
  for (const auto& hit : result.hits) {
    EXPECT_NE(std::find(nbs.begin(), nbs.end(), hit.provider), nbs.end());
  }
}

TEST_F(SearchFixture, RequestorOwnCopyDoesNotHit) {
  // Give the flood a file the requestor itself holds.
  net::NodeIndex holder = catalog.providers_of(0)[0];
  const auto result = search(overlay, catalog, holder, 0, 4);
  for (const auto& hit : result.hits) EXPECT_NE(hit.provider, holder);
}

TEST_F(SearchFixture, RareFilesHarderToFind) {
  std::size_t popular_hits = 0, rare_hits = 0;
  for (net::NodeIndex start = 0; start < 20; ++start) {
    popular_hits += search(overlay, catalog, start, 0, 3).hits.size();
    rare_hits += search(overlay, catalog, start, 9, 3).hits.size();
  }
  EXPECT_GT(popular_hits, rare_hits);
}

TEST_F(SearchFixture, TrafficCountedUnderQueryKind) {
  overlay.metrics().reset();
  const auto result = search(overlay, catalog, 0, 0, 3);
  EXPECT_EQ(overlay.metrics().of(net::MessageKind::kQuery),
            result.query_messages + result.hit_messages);
  // Search traffic never pollutes the trust-traffic accounting.
  EXPECT_EQ(overlay.metrics().trust_traffic(), 0u);
}

TEST_F(SearchFixture, FirstHitTimePositiveWhenFound) {
  const double t = search_first_hit_ms(overlay, catalog, 0, 0, 4);
  EXPECT_GT(t, 0.0);
  // Round trip of at least one hop each way.
  EXPECT_GE(t, 2 * (10.0 + 1.0));
}

TEST_F(SearchFixture, FirstHitNegativeWhenNotFound) {
  // A fresh catalog where file 9 is rare; search from a node far from all
  // of its providers with TTL 0 equivalent (ttl=0 flood finds nothing).
  const double t = search_first_hit_ms(overlay, catalog, 0, 9, 0);
  EXPECT_LT(t, 0.0);
}

}  // namespace
}  // namespace hirep::gnutella
