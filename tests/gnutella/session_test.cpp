#include "gnutella/session.hpp"

#include <gtest/gtest.h>

namespace hirep::gnutella {
namespace {

core::HirepOptions system_options() {
  core::HirepOptions o;
  o.nodes = 150;
  o.rsa_bits = 64;
  o.trusted_agents = 6;
  o.onion_relays = 2;
  o.crypto = core::CryptoMode::kFast;
  o.seed = 9;
  o.world.malicious_ratio = 0.2;
  return o;
}

SessionOptions session_options() {
  SessionOptions s;
  s.catalog.files = 15;
  s.catalog.min_replicas = 4;
  s.catalog.max_replicas = 50;
  s.query_ttl = 4;
  s.max_candidates = 4;
  return s;
}

struct SessionFixture : ::testing::Test {
  SessionFixture() : system(system_options()), session(&system, session_options()) {}
  core::HirepSystem system;
  FileSharingSession session;
};

TEST_F(SessionFixture, DownloadFollowsFigureOneFlow) {
  const auto rec = session.download(0, /*file=*/0);
  ASSERT_TRUE(rec.found);
  EXPECT_NE(rec.provider, net::kInvalidNode);
  EXPECT_TRUE(session.catalog().has_file(rec.provider, 0));
  EXPECT_GT(rec.search_messages, 0u);
  EXPECT_GT(rec.candidates, 0u);
  EXPECT_LE(rec.candidates, 4u);
  // Trust traffic: per checked candidate 2(o+1) query legs + one report
  // phase for the chosen provider — bounded, never a flood.
  EXPECT_GT(rec.trust_messages, 0u);
  EXPECT_LT(rec.trust_messages, 1000u);
}

TEST_F(SessionFixture, PollutionMatchesProviderTruth) {
  for (int i = 0; i < 10; ++i) {
    const auto rec = session.download(static_cast<net::NodeIndex>(i), 0);
    if (!rec.found) continue;
    EXPECT_EQ(rec.polluted, !system.truth().trustable(rec.provider));
  }
}

TEST_F(SessionFixture, StatisticsAccumulate) {
  std::size_t found = 0;
  for (int i = 0; i < 20; ++i) {
    found += session.download(static_cast<net::NodeIndex>(i % 10)).found;
  }
  EXPECT_EQ(session.downloads(), found);
  EXPECT_LE(session.polluted_downloads(), session.downloads());
}

TEST_F(SessionFixture, TrustFilteringBeatsBlindChoice) {
  // Run downloads from a small active community; compare the realized
  // pollution rate against the blind expectation (= untrustable share of
  // all copies of the requested files).
  std::size_t polluted = 0, total = 0;
  for (int i = 0; i < 150; ++i) {
    const auto rec = session.download(static_cast<net::NodeIndex>(i % 8));
    if (!rec.found) continue;
    ++total;
    polluted += rec.polluted;
  }
  ASSERT_GT(total, 50u);
  const double rate = static_cast<double>(polluted) / static_cast<double>(total);
  // ~50% of providers are untrustable (trustable_ratio 0.5); the session
  // must do far better than blind choice.
  EXPECT_LT(rate, 0.25);
}

TEST_F(SessionFixture, SearchAndTrustTrafficSeparated) {
  system.overlay().metrics().reset();
  session.download(0, 0);
  const auto& m = system.overlay().metrics();
  EXPECT_GT(m.of(net::MessageKind::kQuery), 0u);
  EXPECT_GT(m.trust_traffic(), 0u);
  EXPECT_EQ(m.total(), m.of(net::MessageKind::kQuery) + m.trust_traffic());
}

TEST(FileSharingSession, UnfindableFileReportsNotFound) {
  auto opts = system_options();
  core::HirepSystem system(opts);
  SessionOptions s = session_options();
  s.query_ttl = 0;  // nothing reachable
  FileSharingSession session(&system, s);
  const auto rec = session.download(0, 0);
  EXPECT_FALSE(rec.found);
  EXPECT_EQ(session.downloads(), 0u);
}

}  // namespace
}  // namespace hirep::gnutella
