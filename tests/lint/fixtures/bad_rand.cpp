// Fixture: draws from libc's hidden global generator.  hirep-lint must
// flag both the seeding and the draw (rule: no-libc-rand) — global RNG
// state is shared across every caller, so draw order depends on scheduling.
#include <cstdlib>

int libc_draw() {
  std::srand(42);        // <-- finding
  return rand() % 100;   // <-- finding
}
