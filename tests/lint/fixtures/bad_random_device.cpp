// Fixture: seeds an RNG from hardware entropy.  hirep-lint must flag the
// std::random_device use (rule: no-random-device) — runs would differ on
// every execution, breaking the replayable-simulation contract.
#include <cstdint>
#include <random>

std::uint64_t nondeterministic_seed() {
  std::random_device rd;  // <-- finding
  return (static_cast<std::uint64_t>(rd()) << 32) | rd();
}
