// Fixture: stashes an Envelope's arena-backed payload span into long-lived
// storage.  hirep-lint must flag both the member assignment and the
// container store (rule: arena-span-escape) — the arena resets at batch
// scope, so the span dangles on the next batch.
#include <cstdint>
#include <span>
#include <vector>

struct Envelope {
  std::span<const std::uint8_t> payload;
};

class PayloadHoarder {
 public:
  void observe(const Envelope& env) {
    stash_ = env.payload;            // <-- finding (member assignment)
    history_.push_back(env.payload); // <-- finding (member container store)
  }

 private:
  std::span<const std::uint8_t> stash_;
  std::vector<std::span<const std::uint8_t>> history_;
};
