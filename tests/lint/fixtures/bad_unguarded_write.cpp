// Fixture: writes a HIREP_GUARDED_BY field with no lock scope in the body
// and no HIREP_REQUIRES on the method.  hirep-lint must flag the writes
// (rule: guarded-field-write).  The macros are stubbed locally so the
// fixture is self-contained for the tool's token scan.
#include <cstdint>
#include <queue>

#define HIREP_GUARDED_BY(x)
#define HIREP_REQUIRES(x)

namespace fixture {

struct Mutex {
  void lock() {}
  void unlock() {}
};

class Unguarded {
 public:
  void enqueue(std::uint64_t v) {
    pending_.push(v);  // <-- finding (no lock, no REQUIRES)
    ++count_;          // <-- finding
  }

  void drain() HIREP_REQUIRES(mu_);

 private:
  Mutex mu_;
  std::queue<std::uint64_t> pending_ HIREP_GUARDED_BY(mu_);
  std::uint64_t count_ HIREP_GUARDED_BY(mu_) = 0;
};

// REQUIRES-annotated body: the caller holds the lock, so this one is clean.
void Unguarded::drain() {
  while (!pending_.empty()) pending_.pop();
  count_ = 0;
}

}  // namespace fixture
