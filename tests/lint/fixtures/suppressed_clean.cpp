// Fixture: every violation here carries a well-formed inline suppression,
// so hirep-lint must report ZERO findings for this file.  Exercises the
// same-line form, the line-above form, and allow-file.
//
// hirep-lint: allow-file(no-libc-rand) -- fixture demonstrates file-wide suppression
#include <chrono>
#include <cstdlib>
#include <random>

int suppressed_everything() {
  // hirep-lint: allow(no-random-device) -- fixture: line-above suppression form
  std::random_device rd;
  const auto t = std::chrono::steady_clock::now();  // hirep-lint: allow(no-wall-clock) -- fixture: same-line suppression form
  std::srand(7);  // covered by the allow-file directive above
  return static_cast<int>(rd()) ^ rand() ^
         static_cast<int>(t.time_since_epoch().count());
}
