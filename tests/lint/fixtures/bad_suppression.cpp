// Fixture: malformed suppression comments.  hirep-lint must flag each
// (rule: suppression-format) — a typo'd allow() silently allowing nothing
// is worse than no suppression at all, so the grammar is enforced.
#include <random>

int typod_suppressions() {
  // hirep-lint: allow(no-random-devise) -- unknown rule name   <-- finding
  std::random_device rd;
  // hirep-lint: allow(no-random-device)                        <-- finding (no reason)
  std::random_device rd2;
  // hirep-lint: please-ignore                                  <-- finding (bad directive)
  return static_cast<int>(rd() + rd2());
}
