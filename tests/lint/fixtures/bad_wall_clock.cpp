// Fixture: reads the host clock from simulation code.  hirep-lint must
// flag both clock types (rule: no-wall-clock) — simulated time comes from
// EventSim; host time makes runs irreproducible and machine-dependent.
#include <chrono>
#include <cstdint>

std::uint64_t wall_now() {
  const auto t = std::chrono::steady_clock::now();  // <-- finding
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t.time_since_epoch())
          .count());
}

double wall_seconds() {
  const auto t = std::chrono::system_clock::now();  // <-- finding
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
