// Fixture: iterates an unordered_map and sends inside the loop body.
// hirep-lint must flag the loop (rule: unordered-iteration) — bucket order
// is implementation-defined, so the wire order (and thus every downstream
// RNG alignment) would differ across standard libraries and reserve()
// calls.  A float accumulation over a set is flagged for the same reason:
// FP addition does not commute.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct FakeTransport {
  void send(std::uint32_t to) { last = to; }
  std::uint32_t last = 0;
};

double order_sensitive(FakeTransport& transport) {
  std::unordered_map<std::uint32_t, double> scores;
  scores[3] = 0.5;
  for (const auto& [node, score] : scores) {  // <-- finding (send in body)
    transport.send(node);
  }

  std::unordered_set<std::uint32_t> members{1, 2, 3};
  double total = 0.0;
  for (std::uint32_t m : members) {  // <-- finding (float accumulation)
    total += 0.1 * static_cast<double>(m);
  }
  return total;
}
