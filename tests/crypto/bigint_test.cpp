#include "crypto/bigint.hpp"

#include <gtest/gtest.h>

namespace hirep::crypto {
namespace {

TEST(BigInt, ZeroProperties) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_TRUE(z.is_even());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z.to_decimal(), "0");
  EXPECT_TRUE(z.to_bytes().empty());
}

TEST(BigInt, FromUint64) {
  BigInt v(0x1122334455667788ULL);
  EXPECT_EQ(v.low_u64(), 0x1122334455667788ULL);
  EXPECT_EQ(v.bit_length(), 61u);
  EXPECT_EQ(v.to_hex(), "1122334455667788");
}

TEST(BigInt, HexRoundTrip) {
  const std::string hex = "deadbeefcafebabe0123456789abcdef";
  EXPECT_EQ(BigInt::from_hex(hex).to_hex(), hex);
  EXPECT_THROW(BigInt::from_hex("xyz"), std::invalid_argument);
}

TEST(BigInt, BytesRoundTrip) {
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const BigInt v = BigInt::random_bits(rng, 1 + static_cast<unsigned>(rng.below(300)));
    EXPECT_EQ(BigInt::from_bytes(v.to_bytes()), v);
  }
}

TEST(BigInt, DecimalKnown) {
  EXPECT_EQ(BigInt(1234567890).to_decimal(), "1234567890");
  EXPECT_EQ(BigInt::from_hex("ff").to_decimal(), "255");
  // 2^100
  const BigInt big = BigInt(1) << 100;
  EXPECT_EQ(big.to_decimal(), "1267650600228229401496703205376");
}

TEST(BigInt, Comparison) {
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_GT(BigInt(5), BigInt(3));
  EXPECT_EQ(BigInt(7), BigInt(7));
  EXPECT_LT(BigInt(0xffffffffULL), BigInt(0x100000000ULL));
}

TEST(BigInt, AdditionCarries) {
  const BigInt a = BigInt::from_hex("ffffffffffffffff");
  EXPECT_EQ((a + BigInt(1)).to_hex(), "10000000000000000");
}

TEST(BigInt, SubtractionBorrows) {
  const BigInt a = BigInt::from_hex("10000000000000000");
  EXPECT_EQ((a - BigInt(1)).to_hex(), "ffffffffffffffff");
  EXPECT_THROW(BigInt(3) - BigInt(5), std::underflow_error);
}

TEST(BigInt, MultiplicationKnown) {
  const BigInt a = BigInt::from_hex("ffffffff");
  EXPECT_EQ((a * a).to_hex(), "fffffffe00000001");
  EXPECT_TRUE((a * BigInt()).is_zero());
}

TEST(BigInt, ShiftRoundTrip) {
  const BigInt v = BigInt::from_hex("123456789abcdef");
  for (unsigned s : {1u, 7u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ((v << s) >> s, v) << "shift " << s;
  }
  EXPECT_TRUE((BigInt(1) >> 1).is_zero());
}

TEST(BigInt, DivModSmall) {
  auto [q, r] = BigInt::divmod(BigInt(100), BigInt(7));
  EXPECT_EQ(q, BigInt(14));
  EXPECT_EQ(r, BigInt(2));
  EXPECT_THROW(BigInt::divmod(BigInt(1), BigInt()), std::domain_error);
}

TEST(BigInt, DivModNumeratorSmaller) {
  auto [q, r] = BigInt::divmod(BigInt(3), BigInt(10));
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, BigInt(3));
}

// Property: for random a, b: a == (a/b)*b + a%b and a%b < b.
class DivModProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(DivModProperty, Invariant) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const BigInt a = BigInt::random_bits(rng, 1 + static_cast<unsigned>(rng.below(GetParam())));
    const BigInt b = BigInt::random_bits(rng, 1 + static_cast<unsigned>(rng.below(GetParam() / 2 + 1)));
    auto [q, r] = BigInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DivModProperty,
                         ::testing::Values(32u, 64u, 128u, 256u, 512u));

// Property: (a + b) - b == a; (a * b) / b == a for b != 0.
class RingProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RingProperty, AddSubMulDiv) {
  util::Rng rng(GetParam() * 31 + 1);
  for (int i = 0; i < 100; ++i) {
    const BigInt a = BigInt::random_bits(rng, GetParam());
    const BigInt b = BigInt::random_bits(rng, GetParam());
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a * b) / b, a);
    EXPECT_TRUE(((a * b) % b).is_zero());
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, RingProperty,
                         ::testing::Values(16u, 48u, 100u, 256u));

TEST(BigInt, PowModKnown) {
  // 3^7 mod 10 = 7 (2187 mod 10)
  EXPECT_EQ(BigInt::powmod(BigInt(3), BigInt(7), BigInt(10)), BigInt(7));
  // Fermat: a^(p-1) = 1 mod p for prime p.
  const BigInt p(1000000007ULL);
  EXPECT_EQ(BigInt::powmod(BigInt(123456789), p - BigInt(1), p), BigInt(1));
  EXPECT_EQ(BigInt::powmod(BigInt(5), BigInt(0), BigInt(7)), BigInt(1));
  EXPECT_TRUE(BigInt::powmod(BigInt(5), BigInt(3), BigInt(1)).is_zero());
}

TEST(BigInt, GcdKnown) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)), BigInt(1));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)), BigInt(5));
}

TEST(BigInt, ModInvKnown) {
  // 3 * 7 = 21 = 1 mod 10
  EXPECT_EQ(BigInt::modinv(BigInt(3), BigInt(10)), BigInt(7));
  EXPECT_THROW(BigInt::modinv(BigInt(4), BigInt(10)), std::domain_error);
}

TEST(BigInt, ModInvProperty) {
  util::Rng rng(99);
  const BigInt m(1000000007ULL);  // prime modulus: everything invertible
  for (int i = 0; i < 100; ++i) {
    const BigInt a = BigInt::random_below(rng, m - BigInt(2)) + BigInt(1);
    const BigInt inv = BigInt::modinv(a, m);
    EXPECT_EQ(BigInt::mulmod(a, inv, m), BigInt(1));
  }
}

TEST(BigInt, RandomBelowRespectsBound) {
  util::Rng rng(5);
  const BigInt bound = BigInt::from_hex("10000000000000001");
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(BigInt::random_below(rng, bound), bound);
  }
  EXPECT_THROW(BigInt::random_below(rng, BigInt()), std::domain_error);
}

TEST(BigInt, RandomBitsExactWidth) {
  util::Rng rng(7);
  for (unsigned bits : {1u, 2u, 31u, 32u, 33u, 64u, 127u, 256u}) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(BigInt::random_bits(rng, bits).bit_length(), bits);
    }
  }
  EXPECT_THROW(BigInt::random_bits(rng, 0), std::domain_error);
}

TEST(BigInt, BitAccess) {
  const BigInt v = BigInt::from_hex("5");  // 0b101
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(2));
  EXPECT_FALSE(v.bit(100));
}

TEST(BigInt, MulModMatchesManual) {
  util::Rng rng(11);
  const BigInt m = BigInt::from_hex("ffffffffffffffffffffffff");
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_below(rng, m);
    const BigInt b = BigInt::random_below(rng, m);
    EXPECT_EQ(BigInt::mulmod(a, b, m), (a * b) % m);
  }
}

}  // namespace
}  // namespace hirep::crypto
