#include "crypto/montgomery.hpp"

#include <gtest/gtest.h>

#include "crypto/prime.hpp"
#include "crypto/rsa.hpp"

namespace hirep::crypto {
namespace {

// Reference implementations that cannot take the Montgomery path.
BigInt naive_powmod(const BigInt& base, const BigInt& exp, const BigInt& m) {
  BigInt result(1);
  BigInt b = base % m;
  for (unsigned i = 0; i < exp.bit_length(); ++i) {
    if (exp.bit(i)) result = (result * b) % m;
    b = (b * b) % m;
  }
  return result;
}

TEST(Montgomery, RejectsEvenOrTinyModulus) {
  EXPECT_THROW(MontgomeryContext(BigInt(10)), std::invalid_argument);
  EXPECT_THROW(MontgomeryContext(BigInt(2)), std::invalid_argument);
  EXPECT_THROW(MontgomeryContext(BigInt(1)), std::invalid_argument);
  EXPECT_THROW(MontgomeryContext(BigInt(0)), std::invalid_argument);
}

TEST(Montgomery, MulKnownSmallValues) {
  MontgomeryContext ctx(BigInt(97));
  EXPECT_EQ(ctx.mul(BigInt(12), BigInt(34)), BigInt((12 * 34) % 97));
  EXPECT_EQ(ctx.mul(BigInt(96), BigInt(96)), BigInt((96 * 96) % 97));
  EXPECT_EQ(ctx.mul(BigInt(0), BigInt(50)), BigInt(0));
  EXPECT_EQ(ctx.mul(BigInt(1), BigInt(50)), BigInt(50));
}

TEST(Montgomery, PowKnownValues) {
  MontgomeryContext ctx(BigInt(1000000007ULL));
  EXPECT_EQ(ctx.pow(BigInt(2), BigInt(10)), BigInt(1024));
  EXPECT_EQ(ctx.pow(BigInt(5), BigInt(0)), BigInt(1));
  // Fermat little theorem.
  EXPECT_EQ(ctx.pow(BigInt(123456789), BigInt(1000000006ULL)), BigInt(1));
}

class MontgomerySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(MontgomerySweep, MulMatchesSchoolbook) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    BigInt m = BigInt::random_bits(rng, GetParam());
    if (m.is_even()) m = m + BigInt(1);
    MontgomeryContext ctx(m);
    const BigInt a = BigInt::random_below(rng, m);
    const BigInt b = BigInt::random_below(rng, m);
    EXPECT_EQ(ctx.mul(a, b), (a * b) % m);
  }
}

TEST_P(MontgomerySweep, PowMatchesNaive) {
  util::Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 10; ++trial) {
    BigInt m = BigInt::random_bits(rng, GetParam());
    if (m.is_even()) m = m + BigInt(1);
    MontgomeryContext ctx(m);
    const BigInt base = BigInt::random_below(rng, m);
    const BigInt exp = BigInt::random_bits(rng, 32);
    EXPECT_EQ(ctx.pow(base, exp), naive_powmod(base, exp, m));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MontgomerySweep,
                         ::testing::Values(64u, 96u, 128u, 256u, 512u, 1024u));

TEST(Montgomery, PowmodDispatchAgreesWithNaive) {
  // BigInt::powmod now routes odd 64+-bit moduli through Montgomery; its
  // results must be indistinguishable from the naive path.
  util::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    BigInt m = BigInt::random_bits(rng, 128);
    if (m.is_even()) m = m + BigInt(1);
    const BigInt base = BigInt::random_below(rng, m);
    const BigInt exp = BigInt::random_bits(rng, 64);
    EXPECT_EQ(BigInt::powmod(base, exp, m), naive_powmod(base, exp, m));
  }
}

TEST(Montgomery, EvenModulusStillCorrectViaNaivePath) {
  // powmod must stay correct for even moduli (no Montgomery available).
  EXPECT_EQ(BigInt::powmod(BigInt(3), BigInt(5), BigInt(100)), BigInt(43));
  const BigInt m = BigInt(1) << 80;  // even 81-bit modulus
  util::Rng rng(7);
  const BigInt base = BigInt::random_below(rng, m);
  EXPECT_EQ(BigInt::powmod(base, BigInt(3), m), ((base * base) % m * base) % m);
}

TEST(Montgomery, BaseLargerThanModulusReduced) {
  MontgomeryContext ctx(BigInt(101));
  EXPECT_EQ(ctx.pow(BigInt(1000), BigInt(2)),
            naive_powmod(BigInt(1000), BigInt(2), BigInt(101)));
}

TEST(Montgomery, RsaRoundTripThroughMontgomeryPath) {
  util::Rng rng(9);
  const auto pair = rsa_generate(rng, 256);
  const BigInt m = BigInt::random_below(rng, pair.pub.n);
  const BigInt c = BigInt::powmod(m, pair.pub.e, pair.pub.n);
  EXPECT_EQ(BigInt::powmod(c, pair.priv.d, pair.priv.n), m);
}

}  // namespace
}  // namespace hirep::crypto
