#include "crypto/montgomery.hpp"

#include <gtest/gtest.h>

#include "crypto/prime.hpp"
#include "crypto/rsa.hpp"

namespace hirep::crypto {
namespace {

// Reference implementations that cannot take the Montgomery path.
BigInt naive_powmod(const BigInt& base, const BigInt& exp, const BigInt& m) {
  BigInt result(1);
  BigInt b = base % m;
  for (unsigned i = 0; i < exp.bit_length(); ++i) {
    if (exp.bit(i)) result = (result * b) % m;
    b = (b * b) % m;
  }
  return result;
}

TEST(Montgomery, RejectsEvenOrTinyModulus) {
  EXPECT_THROW(MontgomeryContext(BigInt(10)), std::invalid_argument);
  EXPECT_THROW(MontgomeryContext(BigInt(2)), std::invalid_argument);
  EXPECT_THROW(MontgomeryContext(BigInt(1)), std::invalid_argument);
  EXPECT_THROW(MontgomeryContext(BigInt(0)), std::invalid_argument);
}

TEST(Montgomery, MulKnownSmallValues) {
  MontgomeryContext ctx(BigInt(97));
  EXPECT_EQ(ctx.mul(BigInt(12), BigInt(34)), BigInt((12 * 34) % 97));
  EXPECT_EQ(ctx.mul(BigInt(96), BigInt(96)), BigInt((96 * 96) % 97));
  EXPECT_EQ(ctx.mul(BigInt(0), BigInt(50)), BigInt(0));
  EXPECT_EQ(ctx.mul(BigInt(1), BigInt(50)), BigInt(50));
}

TEST(Montgomery, PowKnownValues) {
  MontgomeryContext ctx(BigInt(1000000007ULL));
  EXPECT_EQ(ctx.pow(BigInt(2), BigInt(10)), BigInt(1024));
  EXPECT_EQ(ctx.pow(BigInt(5), BigInt(0)), BigInt(1));
  // Fermat little theorem.
  EXPECT_EQ(ctx.pow(BigInt(123456789), BigInt(1000000006ULL)), BigInt(1));
}

class MontgomerySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(MontgomerySweep, MulMatchesSchoolbook) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    BigInt m = BigInt::random_bits(rng, GetParam());
    if (m.is_even()) m = m + BigInt(1);
    MontgomeryContext ctx(m);
    const BigInt a = BigInt::random_below(rng, m);
    const BigInt b = BigInt::random_below(rng, m);
    EXPECT_EQ(ctx.mul(a, b), (a * b) % m);
  }
}

TEST_P(MontgomerySweep, PowMatchesNaive) {
  util::Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 10; ++trial) {
    BigInt m = BigInt::random_bits(rng, GetParam());
    if (m.is_even()) m = m + BigInt(1);
    MontgomeryContext ctx(m);
    const BigInt base = BigInt::random_below(rng, m);
    const BigInt exp = BigInt::random_bits(rng, 32);
    EXPECT_EQ(ctx.pow(base, exp), naive_powmod(base, exp, m));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MontgomerySweep,
                         ::testing::Values(64u, 96u, 128u, 256u, 512u, 1024u));

TEST(Montgomery, PowmodDispatchAgreesWithNaive) {
  // BigInt::powmod now routes odd 64+-bit moduli through Montgomery; its
  // results must be indistinguishable from the naive path.
  util::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    BigInt m = BigInt::random_bits(rng, 128);
    if (m.is_even()) m = m + BigInt(1);
    const BigInt base = BigInt::random_below(rng, m);
    const BigInt exp = BigInt::random_bits(rng, 64);
    EXPECT_EQ(BigInt::powmod(base, exp, m), naive_powmod(base, exp, m));
  }
}

TEST(Montgomery, EvenModulusStillCorrectViaNaivePath) {
  // powmod must stay correct for even moduli (no Montgomery available).
  EXPECT_EQ(BigInt::powmod(BigInt(3), BigInt(5), BigInt(100)), BigInt(43));
  const BigInt m = BigInt(1) << 80;  // even 81-bit modulus
  util::Rng rng(7);
  const BigInt base = BigInt::random_below(rng, m);
  EXPECT_EQ(BigInt::powmod(base, BigInt(3), m), ((base * base) % m * base) % m);
}

TEST(Montgomery, BaseLargerThanModulusReduced) {
  MontgomeryContext ctx(BigInt(101));
  EXPECT_EQ(ctx.pow(BigInt(1000), BigInt(2)),
            naive_powmod(BigInt(1000), BigInt(2), BigInt(101)));
}

TEST(Montgomery, RsaRoundTripThroughMontgomeryPath) {
  util::Rng rng(9);
  const auto pair = rsa_generate(rng, 256);
  const BigInt m = BigInt::random_below(rng, pair.pub.n);
  const BigInt c = BigInt::powmod(m, pair.pub.e, pair.pub.n);
  EXPECT_EQ(BigInt::powmod(c, pair.priv.d, pair.priv.n), m);
}

TEST(Montgomery, SmallestLegalModulus) {
  // n = 3 stresses every reduction corner: R mod 3, the conditional
  // subtract, and exhaustively small residues.
  MontgomeryContext ctx(BigInt(3));
  for (std::uint64_t a = 0; a < 3; ++a) {
    for (std::uint64_t b = 0; b < 3; ++b) {
      EXPECT_EQ(ctx.mul(BigInt(a), BigInt(b)), BigInt((a * b) % 3));
    }
    for (std::uint64_t e = 0; e < 8; ++e) {
      EXPECT_EQ(ctx.pow(BigInt(a), BigInt(e)),
                naive_powmod(BigInt(a), BigInt(e), BigInt(3)));
    }
  }
}

TEST(Montgomery, AllOnesLimbModulus) {
  // n = 2^64 - 1: every limb of n is maximal, so the m * n rows in the
  // reduction produce the largest possible carries; a dropped carry
  // anywhere in the chain shows up here.
  const BigInt m(~std::uint64_t{0});
  MontgomeryContext ctx(m);
  util::Rng rng(0xff5);
  for (int trial = 0; trial < 20; ++trial) {
    const BigInt a = BigInt::random_below(rng, m);
    const BigInt b = BigInt::random_below(rng, m);
    EXPECT_EQ(ctx.mul(a, b), (a * b) % m);
    EXPECT_EQ(ctx.pow(a, BigInt(0x10001)),
              naive_powmod(a, BigInt(0x10001), m));
  }
  // Multi-limb all-ones: (2^192 - 1) is divisible by 3^2*7*... but still
  // odd, so it is a legal modulus with maximal limbs everywhere.
  const BigInt m3 = (BigInt(1) << 192) - BigInt(1);
  MontgomeryContext ctx3(m3);
  const BigInt a = BigInt::random_below(rng, m3);
  const BigInt b = BigInt::random_below(rng, m3);
  EXPECT_EQ(ctx3.mul(a, b), (a * b) % m3);
}

TEST(Montgomery, FixedKernelToGenericSeam) {
  // Moduli of 4 limbs take the unrolled stack kernels; 5 limbs fall back
  // to the generic CIOS loop.  The two paths must agree with the naive
  // reference right across the seam (and with each other via it).
  util::Rng rng(0x5ea);
  for (unsigned bits : {255u, 256u, 257u, 319u, 320u, 321u}) {
    SCOPED_TRACE(bits);
    BigInt m = BigInt::random_bits(rng, bits);
    if (m.is_even()) m = m + BigInt(1);
    MontgomeryContext ctx(m);
    const BigInt base = BigInt::random_below(rng, m);
    const BigInt exp = BigInt::random_bits(rng, 48);
    EXPECT_EQ(ctx.pow(base, exp), naive_powmod(base, exp, m));
    const BigInt b2 = BigInt::random_below(rng, m);
    EXPECT_EQ(ctx.mul(base, b2), (base * b2) % m);
  }
}

TEST(Montgomery, EveryWindowWidthAgreesWithNaive) {
  // Exponent bit lengths straddling each window-width breakpoint (1/2/3/4/5
  // bits at <=24, <=80, <=240, <=768, else) — the table construction and
  // the final odd-window multiply differ at every width.
  util::Rng rng(0x33);
  BigInt m = BigInt::random_bits(rng, 96);
  if (m.is_even()) m = m + BigInt(1);
  MontgomeryContext ctx(m);
  for (unsigned ebits : {8u, 24u, 25u, 80u, 81u, 240u, 241u, 768u, 769u}) {
    SCOPED_TRACE(ebits);
    const BigInt base = BigInt::random_below(rng, m);
    const BigInt exp = BigInt::random_bits(rng, ebits);
    EXPECT_EQ(ctx.pow(base, exp), naive_powmod(base, exp, m));
  }
}

TEST(Montgomery, PowHandlesDegenerateBases) {
  MontgomeryContext ctx(BigInt(1000003));
  EXPECT_EQ(ctx.pow(BigInt(0), BigInt(12345)), BigInt(0));
  EXPECT_EQ(ctx.pow(BigInt(0), BigInt(0)), BigInt(1));  // 0^0 = 1 here
  EXPECT_EQ(ctx.pow(BigInt(1), BigInt(1) << 200), BigInt(1));
  // base == n reduces to zero; base = n+1 reduces to one.
  EXPECT_EQ(ctx.pow(BigInt(1000003), BigInt(3)), BigInt(0));
  EXPECT_EQ(ctx.pow(BigInt(1000004), BigInt(1) << 100), BigInt(1));
}

}  // namespace
}  // namespace hirep::crypto
