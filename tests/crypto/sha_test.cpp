#include <gtest/gtest.h>

#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace hirep::crypto {
namespace {

std::string sha1_hex(const std::string& msg) {
  return util::to_hex(Sha1::hash(msg));
}

std::string sha256_hex(const std::string& msg) {
  return util::to_hex(Sha256::hash(msg));
}

// FIPS 180 / de-facto standard test vectors.
TEST(Sha1, StandardVectors) {
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(sha1_hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(util::to_hex(h.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, StreamingMatchesOneShot) {
  const std::string msg = "hello world, this is a streaming test message";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha1 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finish(), Sha1::hash(msg)) << "split at " << split;
  }
}

TEST(Sha1, BlockBoundaryLengths) {
  // Lengths around the 64-byte block / 56-byte padding boundary.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha1 h;
    for (char c : msg) h.update(std::string(1, c));
    EXPECT_EQ(h.finish(), Sha1::hash(msg)) << "len " << len;
  }
}

TEST(Sha256, StandardVectors) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(10000, 'a');
  for (int i = 0; i < 100; ++i) h.update(chunk);
  EXPECT_EQ(util::to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string msg(200, 'q');
  Sha256 h;
  h.update(msg.substr(0, 63));
  h.update(msg.substr(63, 64));
  h.update(msg.substr(127));
  EXPECT_EQ(h.finish(), Sha256::hash(msg));
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hash("a"), Sha256::hash("b"));
  EXPECT_NE(Sha256::hash(""), Sha256::hash(std::string(1, '\0')));
}

// RFC 4231 HMAC-SHA256 test vectors.
TEST(HmacSha256, Rfc4231Case1) {
  const util::Bytes key(20, 0x0b);
  const std::string msg = "Hi There";
  const auto mac = hmac_sha256(
      key, std::span(reinterpret_cast<const std::uint8_t*>(msg.data()),
                     msg.size()));
  EXPECT_EQ(util::to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const auto mac = hmac_sha256(
      std::span(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(util::to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const util::Bytes key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const auto mac = hmac_sha256(
      key, std::span(reinterpret_cast<const std::uint8_t*>(msg.data()),
                     msg.size()));
  EXPECT_EQ(util::to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, KeySensitivity) {
  const util::Bytes k1{1, 2, 3}, k2{1, 2, 4}, msg{9, 9, 9};
  EXPECT_NE(hmac_sha256(k1, msg), hmac_sha256(k2, msg));
}

}  // namespace
}  // namespace hirep::crypto
