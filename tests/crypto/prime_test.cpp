#include "crypto/prime.hpp"

#include <gtest/gtest.h>

namespace hirep::crypto {
namespace {

TEST(Prime, SmallKnownPrimes) {
  util::Rng rng(1);
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 97ULL,
                          251ULL, 257ULL, 65537ULL, 1000000007ULL}) {
    EXPECT_TRUE(is_probable_prime(BigInt(p), rng)) << p;
  }
}

TEST(Prime, SmallKnownComposites) {
  util::Rng rng(2);
  for (std::uint64_t n : {0ULL, 1ULL, 4ULL, 6ULL, 9ULL, 15ULL, 21ULL, 91ULL,
                          221ULL, 65536ULL, 1000000008ULL}) {
    EXPECT_FALSE(is_probable_prime(BigInt(n), rng)) << n;
  }
}

TEST(Prime, CarmichaelNumbersRejected) {
  // Carmichael numbers fool Fermat tests but not Miller-Rabin.
  util::Rng rng(3);
  for (std::uint64_t n : {561ULL, 1105ULL, 1729ULL, 2465ULL, 2821ULL,
                          6601ULL, 8911ULL, 41041ULL, 825265ULL}) {
    EXPECT_FALSE(is_probable_prime(BigInt(n), rng)) << n;
  }
}

TEST(Prime, LargeKnownPrime) {
  util::Rng rng(4);
  // 2^89 - 1 is a Mersenne prime.
  const BigInt m89 = (BigInt(1) << 89) - BigInt(1);
  EXPECT_TRUE(is_probable_prime(m89, rng));
  // 2^67 - 1 is famously composite (193707721 * 761838257287).
  const BigInt m67 = (BigInt(1) << 67) - BigInt(1);
  EXPECT_FALSE(is_probable_prime(m67, rng));
}

class PrimeGenSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrimeGenSweep, GeneratesExactWidthProbablePrimes) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 3; ++i) {
    const BigInt p = random_prime(rng, GetParam());
    EXPECT_EQ(p.bit_length(), GetParam());
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PrimeGenSweep,
                         ::testing::Values(16u, 24u, 32u, 48u, 64u, 96u, 128u));

TEST(Prime, RsaPrimeCoprimality) {
  util::Rng rng(7);
  const BigInt e(65537);
  for (int i = 0; i < 5; ++i) {
    const BigInt p = random_rsa_prime(rng, 48, e);
    EXPECT_EQ(BigInt::gcd(p - BigInt(1), e), BigInt(1));
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

TEST(Prime, RejectsTinyWidths) {
  util::Rng rng(8);
  EXPECT_THROW(random_prime(rng, 1), std::invalid_argument);
}

TEST(Prime, ProductOfTwoPrimesIsComposite) {
  util::Rng rng(9);
  const BigInt p = random_prime(rng, 40);
  const BigInt q = random_prime(rng, 40);
  EXPECT_FALSE(is_probable_prime(p * q, rng));
}

}  // namespace
}  // namespace hirep::crypto
