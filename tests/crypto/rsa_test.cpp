#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

#include "crypto/prime.hpp"

namespace hirep::crypto {
namespace {

class RsaSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(RsaSweep, KeyGenerationInvariants) {
  util::Rng rng(GetParam());
  const auto pair = rsa_generate(rng, GetParam());
  EXPECT_EQ(pair.priv.n, pair.priv.p * pair.priv.q);
  EXPECT_NE(pair.priv.p, pair.priv.q);
  EXPECT_GE(pair.pub.n.bit_length(), GetParam() - 2);
  // e*d = 1 mod phi
  const BigInt phi = (pair.priv.p - BigInt(1)) * (pair.priv.q - BigInt(1));
  EXPECT_EQ(BigInt::mulmod(pair.priv.e, pair.priv.d, phi), BigInt(1));
}

TEST_P(RsaSweep, RawRoundTrip) {
  util::Rng rng(GetParam() + 1);
  const auto pair = rsa_generate(rng, GetParam());
  for (int i = 0; i < 10; ++i) {
    const BigInt m = BigInt::random_below(rng, pair.pub.n);
    EXPECT_EQ(rsa_decrypt_raw(pair.priv, rsa_encrypt_raw(pair.pub, m)), m);
  }
}

TEST_P(RsaSweep, HybridBytesRoundTrip) {
  util::Rng rng(GetParam() + 2);
  const auto pair = rsa_generate(rng, GetParam());
  for (std::size_t len : {0u, 1u, 16u, 100u, 1000u}) {
    util::Bytes data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const auto ct = rsa_encrypt_bytes(rng, pair.pub, data);
    const auto pt = rsa_decrypt_bytes(pair.priv, ct);
    ASSERT_TRUE(pt.has_value()) << "len " << len;
    EXPECT_EQ(*pt, data);
  }
}

TEST_P(RsaSweep, SignVerify) {
  util::Rng rng(GetParam() + 3);
  const auto pair = rsa_generate(rng, GetParam());
  const util::Bytes msg{10, 20, 30, 40};
  const auto sig = rsa_sign(pair.priv, msg);
  EXPECT_TRUE(rsa_verify(pair.pub, msg, sig));
}

INSTANTIATE_TEST_SUITE_P(KeySizes, RsaSweep,
                         ::testing::Values(64u, 96u, 128u, 256u, 512u));

TEST(Rsa, WrongKeyCannotDecrypt) {
  util::Rng rng(50);
  const auto a = rsa_generate(rng, 128);
  const auto b = rsa_generate(rng, 128);
  const util::Bytes data{1, 2, 3, 4, 5};
  const auto ct = rsa_encrypt_bytes(rng, a.pub, data);
  EXPECT_FALSE(rsa_decrypt_bytes(b.priv, ct).has_value());
}

TEST(Rsa, TamperedCiphertextRejected) {
  util::Rng rng(51);
  const auto pair = rsa_generate(rng, 128);
  const util::Bytes data{9, 8, 7, 6};
  auto ct = rsa_encrypt_bytes(rng, pair.pub, data);
  // Flip one bit in every position; all must be rejected or decrypt to
  // something that is NOT silently equal to the plaintext.
  int rejected = 0;
  for (std::size_t i = 0; i < ct.size(); ++i) {
    auto copy = ct;
    copy[i] ^= 0x01;
    const auto pt = rsa_decrypt_bytes(pair.priv, copy);
    if (!pt.has_value()) ++rejected;
  }
  EXPECT_EQ(rejected, static_cast<int>(ct.size()));
}

TEST(Rsa, SignatureRejectsModifiedMessage) {
  util::Rng rng(52);
  const auto pair = rsa_generate(rng, 128);
  const util::Bytes msg{1, 1, 1};
  const auto sig = rsa_sign(pair.priv, msg);
  const util::Bytes other{1, 1, 2};
  EXPECT_FALSE(rsa_verify(pair.pub, other, sig));
}

TEST(Rsa, SignatureRejectsWrongKey) {
  util::Rng rng(53);
  const auto a = rsa_generate(rng, 128);
  const auto b = rsa_generate(rng, 128);
  const util::Bytes msg{5, 5, 5};
  EXPECT_FALSE(rsa_verify(b.pub, msg, rsa_sign(a.priv, msg)));
}

TEST(Rsa, SignatureRejectsTamperedSignature) {
  util::Rng rng(54);
  const auto pair = rsa_generate(rng, 128);
  const util::Bytes msg{3, 2, 1};
  auto sig = rsa_sign(pair.priv, msg);
  sig[0] ^= 0xff;
  EXPECT_FALSE(rsa_verify(pair.pub, msg, sig));
}

TEST(Rsa, PublicKeySerializationRoundTrip) {
  util::Rng rng(55);
  const auto pair = rsa_generate(rng, 96);
  const auto bytes = pair.pub.serialize();
  const auto restored = RsaPublicKey::deserialize(bytes);
  EXPECT_EQ(restored, pair.pub);
}

TEST(Rsa, EncryptRawRejectsOversizedMessage) {
  util::Rng rng(56);
  const auto pair = rsa_generate(rng, 64);
  EXPECT_THROW(rsa_encrypt_raw(pair.pub, pair.pub.n), std::invalid_argument);
  EXPECT_THROW(rsa_decrypt_raw(pair.priv, pair.pub.n + BigInt(1)),
               std::invalid_argument);
}

TEST(Rsa, RejectsTinyKeySize) {
  util::Rng rng(57);
  EXPECT_THROW(rsa_generate(rng, 16), std::invalid_argument);
}

TEST(Rsa, MalformedCiphertextRejected) {
  util::Rng rng(58);
  const auto pair = rsa_generate(rng, 96);
  EXPECT_FALSE(rsa_decrypt_bytes(pair.priv, util::Bytes{1, 2, 3}).has_value());
  EXPECT_FALSE(rsa_decrypt_bytes(pair.priv, util::Bytes{}).has_value());
}

TEST(Rsa, DeterministicKeygenFromSeed) {
  util::Rng a(77), b(77);
  const auto ka = rsa_generate(a, 96);
  const auto kb = rsa_generate(b, 96);
  EXPECT_EQ(ka.pub, kb.pub);
}

}  // namespace
}  // namespace hirep::crypto
