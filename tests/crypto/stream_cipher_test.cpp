#include "crypto/stream_cipher.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hirep::crypto {
namespace {

StreamCipher::Key test_key(std::uint8_t fill) {
  StreamCipher::Key k;
  k.fill(fill);
  return k;
}

TEST(StreamCipher, EncryptDecryptRoundTrip) {
  const util::Bytes plain{1, 2, 3, 4, 5, 200, 0, 42};
  StreamCipher enc(test_key(7), 1);
  const auto ct = enc.transform(plain);
  StreamCipher dec(test_key(7), 1);
  EXPECT_EQ(dec.transform(ct), plain);
}

TEST(StreamCipher, CiphertextDiffersFromPlaintext) {
  const util::Bytes plain(64, 0);
  StreamCipher enc(test_key(1));
  const auto ct = enc.transform(plain);
  EXPECT_NE(ct, plain);
}

TEST(StreamCipher, DifferentKeysDifferentStreams) {
  const util::Bytes plain(32, 0);
  StreamCipher a(test_key(1)), b(test_key(2));
  EXPECT_NE(a.transform(plain), b.transform(plain));
}

TEST(StreamCipher, DifferentNoncesDifferentStreams) {
  const util::Bytes plain(32, 0);
  StreamCipher a(test_key(1), 10), b(test_key(1), 11);
  EXPECT_NE(a.transform(plain), b.transform(plain));
}

TEST(StreamCipher, ChunkedApplicationMatchesWhole) {
  util::Rng rng(1);
  util::Bytes plain(200);
  for (auto& b : plain) b = static_cast<std::uint8_t>(rng());

  StreamCipher whole(test_key(5), 3);
  const auto expected = whole.transform(plain);

  StreamCipher chunked(test_key(5), 3);
  util::Bytes actual = plain;
  std::span<std::uint8_t> view(actual);
  chunked.apply(view.subspan(0, 13));
  chunked.apply(view.subspan(13, 100));
  chunked.apply(view.subspan(113));
  EXPECT_EQ(actual, expected);
}

TEST(StreamCipher, EmptyInputIsNoop) {
  StreamCipher c(test_key(9));
  EXPECT_TRUE(c.transform({}).empty());
}

TEST(StreamCipher, KeystreamLooksBalanced) {
  // XOR of zeros exposes the raw keystream; its bit density should be ~50%.
  const util::Bytes zeros(4096, 0);
  StreamCipher c(test_key(3), 99);
  const auto stream = c.transform(zeros);
  std::size_t ones = 0;
  for (auto byte : stream) ones += static_cast<std::size_t>(__builtin_popcount(byte));
  const double density = static_cast<double>(ones) / (4096.0 * 8.0);
  EXPECT_NEAR(density, 0.5, 0.02);
}

}  // namespace
}  // namespace hirep::crypto
