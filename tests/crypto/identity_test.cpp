#include "crypto/identity.hpp"

#include <gtest/gtest.h>

namespace hirep::crypto {
namespace {

TEST(NodeId, IsHashOfSignatureKey) {
  util::Rng rng(1);
  const auto id = Identity::generate(rng, 96);
  const auto expected = Sha1::hash(id.signature_public().serialize());
  EXPECT_EQ(id.node_id().bytes, expected);
}

TEST(NodeId, DistinctIdentitiesDistinctIds) {
  util::Rng rng(2);
  const auto a = Identity::generate(rng, 96);
  const auto b = Identity::generate(rng, 96);
  EXPECT_NE(a.node_id(), b.node_id());
}

TEST(NodeId, HexRendering) {
  util::Rng rng(3);
  const auto id = Identity::generate(rng, 64);
  EXPECT_EQ(id.node_id().to_hex().size(), 40u);  // 160 bits
  EXPECT_EQ(id.node_id().short_hex(8).size(), 8u + std::string("…").size());
}

TEST(NodeId, OfKeyBindsKey) {
  util::Rng rng(4);
  const auto a = Identity::generate(rng, 96);
  const auto b = Identity::generate(rng, 96);
  EXPECT_EQ(NodeId::of_key(a.signature_public()), a.node_id());
  // An attacker cannot claim a's nodeId with b's key.
  EXPECT_NE(NodeId::of_key(b.signature_public()), a.node_id());
}

TEST(NodeIdHash, UsableInUnorderedContainers) {
  util::Rng rng(5);
  const auto a = Identity::generate(rng, 64);
  NodeIdHash h;
  EXPECT_EQ(h(a.node_id()), h(a.node_id()));
}

TEST(Identity, SignVerifyOwn) {
  util::Rng rng(6);
  const auto id = Identity::generate(rng, 128);
  const util::Bytes msg{1, 2, 3};
  const auto sig = id.sign(msg);
  EXPECT_TRUE(id.verify_own(msg, sig));
  EXPECT_FALSE(id.verify_own(util::Bytes{1, 2, 4}, sig));
}

TEST(Identity, AnonymityAndSignatureKeysDiffer) {
  util::Rng rng(7);
  const auto id = Identity::generate(rng, 96);
  EXPECT_NE(id.signature_public(), id.anonymity_public());
}

TEST(Identity, RotationProducesVerifiableAnnouncement) {
  util::Rng rng(8);
  auto id = Identity::generate(rng, 96);
  const auto old_key = id.signature_public();
  const auto old_id = id.node_id();

  const auto ann = id.rotate_signature_key(rng, 96);
  EXPECT_EQ(ann.old_id, old_id);
  EXPECT_TRUE(Identity::verify_rotation(old_key, ann));
  // The identity has moved to the new key.
  EXPECT_EQ(id.node_id(), NodeId::of_key(ann.new_signature_public));
  EXPECT_NE(id.node_id(), old_id);
}

TEST(Identity, RotationForgedByOtherKeyRejected) {
  util::Rng rng(9);
  auto victim = Identity::generate(rng, 96);
  auto attacker = Identity::generate(rng, 96);
  // Attacker crafts an announcement claiming the victim rotates to the
  // attacker's key — but can only sign with its own SR.
  Identity::RotationAnnouncement forged;
  forged.old_id = victim.node_id();
  forged.new_signature_public = attacker.signature_public();
  forged.signature = attacker.sign(attacker.signature_public().serialize());
  EXPECT_FALSE(Identity::verify_rotation(victim.signature_public(), forged));
}

TEST(Identity, RotationAnnouncementSerializationRoundTrip) {
  util::Rng rng(10);
  auto id = Identity::generate(rng, 96);
  const auto old_key = id.signature_public();
  const auto ann = id.rotate_signature_key(rng, 96);
  const auto bytes = ann.serialize();
  const auto restored = Identity::RotationAnnouncement::deserialize(bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->old_id, ann.old_id);
  EXPECT_EQ(restored->new_signature_public, ann.new_signature_public);
  EXPECT_TRUE(Identity::verify_rotation(old_key, *restored));
}

TEST(Identity, RotationDeserializeRejectsGarbage) {
  EXPECT_FALSE(Identity::RotationAnnouncement::deserialize(util::Bytes{1, 2})
                   .has_value());
}

TEST(Identity, ChainedRotations) {
  util::Rng rng(11);
  auto id = Identity::generate(rng, 96);
  auto key0 = id.signature_public();
  const auto ann1 = id.rotate_signature_key(rng, 96);
  auto key1 = id.signature_public();
  const auto ann2 = id.rotate_signature_key(rng, 96);
  // Each link verifies against its predecessor's key.
  EXPECT_TRUE(Identity::verify_rotation(key0, ann1));
  EXPECT_TRUE(Identity::verify_rotation(key1, ann2));
  // But not across links.
  EXPECT_FALSE(Identity::verify_rotation(key0, ann2));
}

}  // namespace
}  // namespace hirep::crypto
