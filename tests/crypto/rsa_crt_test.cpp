// CRT private-key path: equivalence with the single-exponentiation path,
// pinned known-answer signatures, factor-order robustness, and domain
// checks.  Signatures are deterministic (hash-then-sign, no salt), so
// CRT on/off must be byte-identical — any divergence means the Garner
// recombination or the CRT residues are wrong for that key.
#include <gtest/gtest.h>

#include <string_view>

#include "crypto/rsa.hpp"

namespace hirep::crypto {
namespace {

util::Bytes bytes_of(std::string_view s) {
  return util::Bytes(s.begin(), s.end());
}

RsaPrivateKey without_crt(RsaPrivateKey key) {
  key.d_p = BigInt();
  key.d_q = BigInt();
  key.q_inv = BigInt();
  return key;
}

TEST(RsaCrt, GeneratedKeysCarryCrtResidues) {
  util::Rng rng(1);
  const auto pair = rsa_generate(rng, 128);
  EXPECT_TRUE(pair.priv.has_crt());
  EXPECT_EQ(pair.priv.d_p, pair.priv.d % (pair.priv.p - BigInt(1)));
  EXPECT_EQ(pair.priv.d_q, pair.priv.d % (pair.priv.q - BigInt(1)));
  EXPECT_EQ(BigInt::mulmod(pair.priv.q_inv, pair.priv.q, pair.priv.p),
            BigInt(1));
  EXPECT_FALSE(without_crt(pair.priv).has_crt());
}

TEST(RsaCrt, CrtAndFallbackSignaturesAreByteIdentical) {
  // The satellite contract at real key sizes: 512/1024/2048-bit seeded
  // keys, several messages each, CRT on vs CRT off.
  for (unsigned bits : {512u, 1024u, 2048u}) {
    SCOPED_TRACE(bits);
    util::Rng rng(0xca7 + bits);
    const auto pair = rsa_generate(rng, bits);
    ASSERT_TRUE(pair.priv.has_crt());
    const RsaPrivateKey slow = without_crt(pair.priv);
    ASSERT_FALSE(slow.has_crt());
    for (int i = 0; i < 3; ++i) {
      const auto msg = bytes_of("hirep crt message " + std::to_string(i));
      const auto fast_sig = rsa_sign(pair.priv, msg);
      const auto slow_sig = rsa_sign(slow, msg);
      EXPECT_EQ(fast_sig, slow_sig);
      EXPECT_TRUE(rsa_verify(pair.pub, msg, fast_sig));
    }
  }
}

TEST(RsaCrt, CrtAndFallbackDecryptIdentically) {
  util::Rng rng(0xdec);
  const auto pair = rsa_generate(rng, 512);
  const RsaPrivateKey slow = without_crt(pair.priv);
  for (int i = 0; i < 8; ++i) {
    const BigInt m = BigInt::random_below(rng, pair.pub.n);
    const BigInt c = rsa_encrypt_raw(pair.pub, m);
    EXPECT_EQ(rsa_decrypt_raw(pair.priv, c), m);
    EXPECT_EQ(rsa_decrypt_raw(slow, c), m);
  }
}

TEST(RsaCrt, PinnedKnownAnswerSignatures) {
  // Captured from this implementation at the keygen seeds below; the
  // whole chain — prime generation draw pattern, keygen, SHA-256,
  // CRT exponentiation, byte codec — must keep reproducing them.
  struct Kat {
    unsigned bits;
    const char* n_hex;
    const char* sig_hex;
  };
  const Kat kats[] = {
      {512u,
       "7b51952e82bce7b6da68e20be44a061d72437f9b2ac9b29be50a73c1bf6008c8"
       "4bfb6d199053fbc55648ed26c005f77e8fff3bdc3c91a0cdb6b4f8de8d4b8eef",
       "2925139b306d1d3d92924b9c9505ca1c3e49ef354fc1f6885e5326c15117280b"
       "4016c087eb098c48a9c0f1f19d520667c3ff42cbc5d210fa44cb96a637b0c404"},
      {1024u,
       "8c2aacc582386f9b1364aa65379d8f0ec1c69246e33eb038e42ec3533330f765"
       "28353b46430c530b9f14f5c1af9d66e41ed416c398d9ae818b28b7cb937d5040"
       "7f2ac9573b825433d883844419de6e91ab831ebd05aaf272570f41df4eafc46f"
       "dcecf45b13566ed0c98b4c2761b5b81e61938b7e276eaf261661ab1d735ba3e1",
       "6d35ce0ebcb37e3a8865c6c3471f568b74b821adad962afa7818bd93c965a8db"
       "ac1bf1c55ae01811151d07a8ee1cdf072dfd68107a7d5a03f047532b31ffdc0d"
       "973692f62d9938ef832a358f5da09d23e6bce9f7e8a16f57ff931155c5b88091"
       "060a614783e9e56c95391399d26779650224e6a121f181c31340a15c41b65dcd"},
      {2048u,
       "82c748f8066240f9488120e5ee9ba8c4c8ec860374fe22161f90d6c65552a6e8"
       "b893393bf02fb3c32fa235427115dbd1e7a2ca6a8d3d7374840a83dacdfb779c"
       "6c38ef5d66b0a0f8ed5bda09dd7dc973528d9a5d03d628cc049a4d005f3a88db"
       "a6dcbd905d1e6549945e4d54b62ae5833684b0de86216932a8059af26c725517"
       "c8774c5c65a442e10b9580b338e1ee27c1b9920fa7e78a2e9ef586258bd2438c"
       "00eddbec0655809d1a755623430d444941bd37e46ffed9fcec125538dd2f6a5e"
       "27239ee63712c3612ea8515b1c9829d88005fc809e2376d79bda01f480eb6090"
       "857f4de03861cdb3bc4ac07a29c00bb4a2a26571f69228a23630bd45069fda15",
       "7128140dbed752b8e761ce2fee2c284e7ad3d767f0e2719dbe6e0e8948403621"
       "15182e59f6cbd674c45a977bbfa3ca32cbb478f54c805fc961d8dfcb2cc522cc"
       "ca62945e99fef084e298b37c713a95a0b4f23eabf3b905bf5227dfc48b315e94"
       "704f1f8727c07fa4a284d490303c4ef8795311db7148f7a7dde9e68ca9fbad64"
       "27bbcd56ee4dada73b02dad532d5a7d1d6447dc0d3787288e963125ba2ac0a70"
       "4f78e133705671c6e5436390615390280e0c2817bed4972f67960eb1a5b647dd"
       "eca09b64e8dd5c8f78e8f2a0171a445234e4caf7ffda8ea9d72f98fa99c94808"
       "5ecdc20db6ae5b48a6a570f57b598dbf8965a8cf0910414ac78fc32c5fec90f5"},
  };
  const auto msg = bytes_of("hirep kat message");
  for (const Kat& kat : kats) {
    SCOPED_TRACE(kat.bits);
    util::Rng rng(0xca7 + kat.bits);
    const auto pair = rsa_generate(rng, kat.bits);
    EXPECT_EQ(pair.pub.n, BigInt::from_hex(kat.n_hex));
    const auto sig = rsa_sign(pair.priv, msg);
    EXPECT_EQ(BigInt::from_bytes(sig), BigInt::from_hex(kat.sig_hex));
    EXPECT_TRUE(rsa_verify(pair.pub, msg, sig));
  }
}

TEST(RsaCrt, SwappedFactorsSignIdentically) {
  // derive_crt computes the residues against the stored order of p and q,
  // so a key imported with the factors the other way round must produce
  // the same signatures.
  util::Rng rng(0x5a9);
  const auto pair = rsa_generate(rng, 512);
  RsaPrivateKey swapped = pair.priv;
  std::swap(swapped.p, swapped.q);
  swapped.d_p = BigInt();
  swapped.d_q = BigInt();
  swapped.q_inv = BigInt();
  swapped.derive_crt();
  ASSERT_TRUE(swapped.has_crt());
  const auto msg = bytes_of("factor order must not matter");
  EXPECT_EQ(rsa_sign(swapped, msg), rsa_sign(pair.priv, msg));
}

TEST(RsaCrt, DeriveCrtIsANoOpWithoutFactors) {
  util::Rng rng(0x90);
  const auto pair = rsa_generate(rng, 128);
  RsaPrivateKey external;  // e.g. a key loaded as (n, e, d) only
  external.n = pair.priv.n;
  external.e = pair.priv.e;
  external.d = pair.priv.d;
  external.derive_crt();
  EXPECT_FALSE(external.has_crt());
  // It still signs — through the full-width fallback — and verifies.
  const auto msg = bytes_of("no factors");
  const auto sig = rsa_sign(external, msg);
  EXPECT_EQ(sig, rsa_sign(pair.priv, msg));
  EXPECT_TRUE(rsa_verify(pair.pub, msg, sig));
}

TEST(RsaCrt, MessageAtLeastModulusIsRejected) {
  util::Rng rng(0xbad);
  const auto pair = rsa_generate(rng, 128);
  EXPECT_THROW((void)rsa_encrypt_raw(pair.pub, pair.pub.n),
               std::invalid_argument);
  EXPECT_THROW((void)rsa_encrypt_raw(pair.pub, pair.pub.n + BigInt(1)),
               std::invalid_argument);
  EXPECT_THROW((void)rsa_decrypt_raw(pair.priv, pair.priv.n),
               std::invalid_argument);
  // An oversized signature blob is rejected (false), not an exception.
  const auto msg = bytes_of("m");
  EXPECT_FALSE(rsa_verify(pair.pub, msg, (pair.pub.n + BigInt(1)).to_bytes()));
}

}  // namespace
}  // namespace hirep::crypto
