// Differential property suite for the 64-bit-limb BigInt kernel.
//
// A deliberately boring base-256 reference implementation (one byte per
// limb, schoolbook everything, binary long division) re-computes every
// public BigInt operation over seeded random operand streams at mixed
// widths, from a single limb up to 2048 bits.  Any divergence is shrunk
// to a minimal failing operand pair before it is reported, so a carry
// chain bug shows up as a two-byte counterexample instead of a 2048-bit
// hex wall.  The reference shares no code — and no bug — with the
// word-limb kernel: it never touches 64-bit carries, Knuth D, or
// Montgomery form.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "crypto/bigint.hpp"
#include "util/rng.hpp"

namespace hirep::crypto {
namespace {

// ---------------------------------------------------------------------------
// Reference implementation: little-endian base-256 digits, normalized (no
// trailing zero bytes).  Everything is O(n^2) or worse on purpose.

using Ref = std::vector<std::uint8_t>;

void ref_trim(Ref& a) {
  while (!a.empty() && a.back() == 0) a.pop_back();
}

int ref_cmp(const Ref& a, const Ref& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

Ref ref_add(const Ref& a, const Ref& b) {
  Ref out;
  unsigned carry = 0;
  for (std::size_t i = 0; i < std::max(a.size(), b.size()) || carry; ++i) {
    unsigned s = carry;
    if (i < a.size()) s += a[i];
    if (i < b.size()) s += b[i];
    out.push_back(static_cast<std::uint8_t>(s & 0xff));
    carry = s >> 8;
  }
  ref_trim(out);
  return out;
}

// Requires a >= b.
Ref ref_sub(const Ref& a, const Ref& b) {
  Ref out;
  int borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    int s = static_cast<int>(a[i]) - borrow - (i < b.size() ? b[i] : 0);
    borrow = s < 0;
    if (s < 0) s += 256;
    out.push_back(static_cast<std::uint8_t>(s));
  }
  ref_trim(out);
  return out;
}

Ref ref_mul(const Ref& a, const Ref& b) {
  if (a.empty() || b.empty()) return {};
  Ref out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    unsigned carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      const unsigned s = out[i + j] + a[i] * b[j] + carry;
      out[i + j] = static_cast<std::uint8_t>(s & 0xff);
      carry = s >> 8;
    }
    std::size_t k = i + b.size();
    while (carry) {
      const unsigned s = out[k] + carry;
      out[k] = static_cast<std::uint8_t>(s & 0xff);
      carry = s >> 8;
      ++k;
    }
  }
  ref_trim(out);
  return out;
}

// Binary long division: bit-at-a-time shift-subtract.  Slow and obvious.
std::pair<Ref, Ref> ref_divmod(const Ref& num, const Ref& den) {
  Ref q(num.size(), 0);
  Ref r;
  for (std::size_t i = num.size(); i-- > 0;) {
    for (int bit = 7; bit >= 0; --bit) {
      // r = (r << 1) | num bit
      unsigned carry = (num[i] >> bit) & 1u;
      for (auto& digit : r) {
        const unsigned s = (static_cast<unsigned>(digit) << 1) | carry;
        digit = static_cast<std::uint8_t>(s & 0xff);
        carry = s >> 8;
      }
      if (carry) r.push_back(static_cast<std::uint8_t>(carry));
      if (ref_cmp(r, den) >= 0) {
        r = ref_sub(r, den);
        q[i] |= static_cast<std::uint8_t>(1u << bit);
      }
    }
  }
  ref_trim(q);
  return {q, r};
}

Ref ref_mod(const Ref& a, const Ref& m) { return ref_divmod(a, m).second; }

Ref ref_powmod(const Ref& base, const Ref& exp, const Ref& m) {
  if (m.size() == 1 && m[0] == 1) return {};
  Ref result{1};
  Ref b = ref_mod(base, m);
  for (std::size_t i = 0; i < exp.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      if ((exp[i] >> bit) & 1u) result = ref_mod(ref_mul(result, b), m);
      b = ref_mod(ref_mul(b, b), m);
    }
  }
  return result;
}

Ref ref_shl(const Ref& a, unsigned bits) {
  if (a.empty()) return {};
  Ref out(a.size() + bits / 8 + 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const unsigned v = static_cast<unsigned>(a[i]) << (bits % 8);
    out[i + bits / 8] |= static_cast<std::uint8_t>(v & 0xff);
    out[i + bits / 8 + 1] |= static_cast<std::uint8_t>(v >> 8);
  }
  ref_trim(out);
  return out;
}

Ref ref_shr(const Ref& a, unsigned bits) {
  const std::size_t drop = bits / 8;
  if (drop >= a.size()) return {};
  Ref out;
  const unsigned sh = bits % 8;
  for (std::size_t i = drop; i < a.size(); ++i) {
    unsigned v = static_cast<unsigned>(a[i]) >> sh;
    if (sh && i + 1 < a.size()) {
      v |= static_cast<unsigned>(a[i + 1]) << (8 - sh);
    }
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
  }
  ref_trim(out);
  return out;
}

Ref ref_gcd(Ref a, Ref b) {
  while (!b.empty()) {
    Ref r = ref_mod(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

// ---------------------------------------------------------------------------
// Conversions between the two worlds (via the big-endian byte codec, which
// gets its own direct round-trip coverage below).

BigInt to_big(const Ref& a) {
  std::vector<std::uint8_t> be(a.rbegin(), a.rend());
  return BigInt::from_bytes(be);
}

Ref to_ref(const BigInt& x) {
  const auto be = x.to_bytes();
  Ref out(be.rbegin(), be.rend());
  ref_trim(out);
  return out;
}

std::string hex_of(const Ref& a) {
  const BigInt b = to_big(a);
  return b.is_zero() ? "0" : b.to_hex();
}

Ref random_ref(util::Rng& rng, unsigned max_bits) {
  const unsigned bits = 1 + static_cast<unsigned>(rng() % max_bits);
  const unsigned bytes = (bits + 7) / 8;
  Ref out(bytes);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  // Clamp to the bit budget so widths cluster across the whole range.
  const unsigned top = bits % 8;
  if (top) out.back() &= static_cast<std::uint8_t>((1u << top) - 1);
  ref_trim(out);
  return out;
}

// ---------------------------------------------------------------------------
// Shrinking: given a failing (a, b) pair for a binary operation, greedily
// try smaller operands that still fail, and report the smallest found.

using FailsFn = std::function<bool(const Ref&, const Ref&)>;

std::vector<Ref> shrink_candidates(const Ref& a) {
  std::vector<Ref> out;
  if (a.empty()) return out;
  Ref half(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(a.size() / 2));
  ref_trim(half);
  out.push_back(std::move(half));                       // drop the top half
  Ref top(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(a.size() - 1));
  ref_trim(top);
  out.push_back(std::move(top));                        // drop the top byte
  out.push_back(ref_shr(a, 1));                         // halve the value
  if (!(a.size() == 1 && a[0] == 1)) {
    out.push_back(ref_sub(a, Ref{1}));                  // decrement
  }
  return out;
}

std::pair<Ref, Ref> shrink_pair(Ref a, Ref b, const FailsFn& fails) {
  // At most a few hundred probes: each accepted candidate strictly
  // shrinks a byte count or the value, so this terminates fast.
  for (int round = 0; round < 512; ++round) {
    bool improved = false;
    for (const Ref& cand : shrink_candidates(a)) {
      if (fails(cand, b)) {
        a = cand;
        improved = true;
        break;
      }
    }
    for (const Ref& cand : shrink_candidates(b)) {
      if (fails(a, cand)) {
        b = cand;
        improved = true;
        break;
      }
    }
    if (!improved) break;
  }
  return {a, b};
}

// Checks one binary op; on mismatch, shrinks and fails the test with the
// minimal counterexample.
void check_op(const char* name, const Ref& a, const Ref& b,
              const std::function<bool(const Ref&, const Ref&)>& agrees) {
  if (agrees(a, b)) return;
  const FailsFn fails = [&](const Ref& x, const Ref& y) { return !agrees(x, y); };
  const auto [sa, sb] = shrink_pair(a, b, fails);
  ADD_FAILURE() << name << " diverges from the byte-limb reference; shrunk "
                << "counterexample: a=0x" << hex_of(sa) << " b=0x"
                << hex_of(sb) << " (original widths " << a.size() * 8 << "/"
                << b.size() * 8 << " bits)";
}

bool big_eq(const BigInt& got, const Ref& want) { return to_ref(got) == want; }

// One random operation over one width class, checked both ways.
void run_case(util::Rng& rng, unsigned max_bits) {
  const Ref a = random_ref(rng, max_bits);
  const Ref b = random_ref(rng, max_bits);
  const BigInt A = to_big(a);
  const BigInt B = to_big(b);

  switch (rng() % 6) {
    case 0:
      check_op("add", a, b, [](const Ref& x, const Ref& y) {
        return big_eq(to_big(x) + to_big(y), ref_add(x, y));
      });
      break;
    case 1:
      check_op("sub", a, b, [](const Ref& x, const Ref& y) {
        const Ref& hi = ref_cmp(x, y) >= 0 ? x : y;
        const Ref& lo = ref_cmp(x, y) >= 0 ? y : x;
        return big_eq(to_big(hi) - to_big(lo), ref_sub(hi, lo));
      });
      break;
    case 2:
      check_op("mul", a, b, [](const Ref& x, const Ref& y) {
        return big_eq(to_big(x) * to_big(y), ref_mul(x, y));
      });
      break;
    case 3:
    case 4: {
      if (b.empty()) {
        EXPECT_THROW((void)BigInt::divmod(A, B), std::domain_error);
        break;
      }
      check_op("divmod", a, b, [](const Ref& x, const Ref& y) {
        const auto [q, r] = BigInt::divmod(to_big(x), to_big(y));
        const auto [rq, rr] = ref_divmod(x, y);
        return big_eq(q, rq) && big_eq(r, rr) &&
               big_eq(to_big(x) / to_big(y), rq) &&
               big_eq(to_big(x) % to_big(y), rr);
      });
      break;
    }
    default: {
      // powmod: cap the exponent so the byte-limb reference stays fast;
      // the modulus still spans every limb-boundary width.
      Ref m = random_ref(rng, std::min(max_bits, 256u));
      if (m.empty()) m = Ref{1};
      Ref e = random_ref(rng, 48);
      check_op("powmod", a, m, [&e](const Ref& x, const Ref& y) {
        return big_eq(BigInt::powmod(to_big(x), to_big(e), to_big(y)),
                      ref_powmod(x, e, y));
      });
      break;
    }
  }

  // Cheap invariants on every draw: comparison agreement, shift round
  // trips, and the mulmod identity.
  EXPECT_EQ(A < B, ref_cmp(a, b) < 0);
  EXPECT_EQ(A == B, ref_cmp(a, b) == 0);
  const unsigned sh = static_cast<unsigned>(rng() % 130);
  EXPECT_TRUE(big_eq(A << sh, ref_shl(a, sh)));
  EXPECT_TRUE(big_eq(A >> sh, ref_shr(a, sh)));
  if (!b.empty()) {
    EXPECT_TRUE(big_eq(BigInt::mulmod(A, B, B), ref_mod(ref_mul(a, b), b)));
  }
}

// ---------------------------------------------------------------------------

TEST(BigIntDiff, TwoHundredRandomSequencesAcrossMixedWidths) {
  // >= 200 independent seeded sequences; each draws its own width class so
  // the suite sweeps 1-limb values through 2048-bit ones.  Any failure
  // names its sequence seed, so a red run is reproducible in isolation.
  const unsigned kWidths[] = {64, 64, 128, 192, 256, 512, 1024, 2048};
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    SCOPED_TRACE("sequence seed " + std::to_string(seq));
    util::Rng rng(0x5eedb15e + seq);
    const unsigned max_bits = kWidths[seq % (sizeof(kWidths) / sizeof(*kWidths))];
    for (int op = 0; op < 6; ++op) run_case(rng, max_bits);
  }
}

TEST(BigIntDiff, EdgeVectors) {
  const BigInt zero;
  const BigInt one(1);
  const BigInt limb_max(~std::uint64_t{0});           // 2^64 - 1
  const BigInt two64 = limb_max + one;                // 2^64
  const BigInt two64p1 = two64 + one;                 // 2^64 + 1

  EXPECT_TRUE((zero + zero).is_zero());
  EXPECT_TRUE((zero * limb_max).is_zero());
  EXPECT_EQ(limb_max + one, BigInt::from_hex("10000000000000000"));
  EXPECT_EQ(two64 - one, limb_max);
  EXPECT_EQ(two64p1 % two64, one);
  EXPECT_EQ(two64 * two64, BigInt(1) << 128);
  EXPECT_EQ(limb_max * limb_max,
            (BigInt(1) << 128) - (two64 << 1) + one);  // (2^64-1)^2
  EXPECT_EQ(BigInt::divmod(two64p1, limb_max).second, BigInt(2));
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(limb_max.bit_length(), 64u);
  EXPECT_EQ(two64.bit_length(), 65u);
  EXPECT_EQ(two64.low_u64(), 0u);
  EXPECT_EQ(two64p1.low_u64(), 1u);
  EXPECT_THROW((void)(one - two64), std::underflow_error);
  EXPECT_THROW((void)BigInt::divmod(one, zero), std::domain_error);
  EXPECT_THROW((void)(one % zero), std::domain_error);
}

TEST(BigIntDiff, LeadingZeroLimbNormalization) {
  // from_limbs must strip high zero limbs so equal values compare equal
  // and hash/serialize identically, whatever buffer they arrived in.
  const std::vector<BigInt::Limb> padded = {0x1234, 0, 0, 0};
  const BigInt a = BigInt::from_limbs(padded);
  EXPECT_EQ(a, BigInt(0x1234));
  EXPECT_EQ(a.limbs().size(), 1u);

  const std::vector<BigInt::Limb> zeros = {0, 0, 0};
  EXPECT_TRUE(BigInt::from_limbs(zeros).is_zero());
  EXPECT_TRUE(BigInt::from_limbs({}).is_zero());

  // Mid-stream zero limbs are significant and must survive.
  const std::vector<BigInt::Limb> gap = {7, 0, 9};
  const BigInt g = BigInt::from_limbs(gap);
  EXPECT_EQ(g.limbs().size(), 3u);
  EXPECT_EQ(g >> 128, BigInt(9));
  EXPECT_EQ(g.low_u64(), 7u);

  // Leading zero bytes on the wire normalize the same way.
  const std::uint8_t be[] = {0, 0, 0, 0x12, 0x34};
  EXPECT_EQ(BigInt::from_bytes(be), BigInt(0x1234));
}

TEST(BigIntDiff, CodecRoundTripsAgainstReference) {
  util::Rng rng(0xc0dec);
  for (int i = 0; i < 64; ++i) {
    const Ref a = random_ref(rng, 1 + static_cast<unsigned>(rng() % 512));
    const BigInt A = to_big(a);
    // bytes -> BigInt -> bytes is minimal big-endian
    const auto bytes = A.to_bytes();
    EXPECT_EQ(BigInt::from_bytes(bytes), A);
    if (!a.empty()) {
      EXPECT_NE(bytes.front(), 0u) << "non-minimal encoding";
    }
    // hex and limb codecs agree with the byte codec
    EXPECT_EQ(BigInt::from_hex(A.to_hex()), A);
    EXPECT_EQ(BigInt::from_limbs(A.limbs()), A);
    // decimal: spot-check via the reference (divide by 10 repeatedly)
    std::string dec;
    Ref n = a;
    const Ref ten{10};
    if (n.empty()) dec = "0";
    while (!n.empty()) {
      auto [q, r] = ref_divmod(n, ten);
      dec.insert(dec.begin(),
                 static_cast<char>('0' + (r.empty() ? 0 : r[0])));
      n = std::move(q);
    }
    EXPECT_EQ(A.to_decimal(), dec);
  }
}

TEST(BigIntDiff, GcdAndModinvAgreeWithReference) {
  util::Rng rng(0x6cd);
  for (int i = 0; i < 48; ++i) {
    const Ref a = random_ref(rng, 256);
    const Ref b = random_ref(rng, 256);
    if (a.empty() && b.empty()) continue;
    const Ref g = ref_gcd(a, b);
    EXPECT_TRUE(big_eq(BigInt::gcd(to_big(a), to_big(b)), g));
    // Modular inverse: verified by its defining property when it exists.
    if (!b.empty() && !(b.size() == 1 && b[0] == 1) &&
        g.size() == 1 && g[0] == 1 && !a.empty()) {
      const BigInt inv = BigInt::modinv(to_big(a), to_big(b));
      EXPECT_EQ(BigInt::mulmod(inv, to_big(a), to_big(b)), BigInt(1));
    }
  }
  EXPECT_THROW((void)BigInt::modinv(BigInt(2), BigInt(4)), std::domain_error);
}

TEST(BigIntDiff, RandomDrawPatternIsOneWordPer32Bits) {
  // The deterministic-replay contract: random_bits consumes exactly
  // ceil(bits/32) rng draws, little-end first, top word masked and its
  // top bit forced.  Two generators seeded identically must interleave.
  util::Rng a(42), b(42);
  const BigInt x = BigInt::random_bits(a, 96);
  std::uint64_t w0 = b() & 0xffffffffu;
  std::uint64_t w1 = b() & 0xffffffffu;
  std::uint64_t w2 = b() & 0xffffffffu;
  w2 = (w2 & ((1ull << 32) - 1)) | (1ull << 31);  // top word, top bit set
  const std::vector<BigInt::Limb> limbs = {w0 | (w1 << 32), w2};
  EXPECT_EQ(x, BigInt::from_limbs(limbs));
  // And both streams are in the same state afterwards.
  EXPECT_EQ(a(), b());
}

TEST(BigIntDiff, RandomBelowMasksPer32BitWord) {
  // random_below rejects by masking candidate words to the bound's bit
  // length — 32-bit words, not 64-bit limbs.  A bound just over a 32-bit
  // boundary must therefore draw 2 words (not 2 limbs) per candidate.
  util::Rng a(7), b(7);
  const BigInt bound = BigInt(1) << 33;  // 34 bits
  const BigInt x = BigInt::random_below(a, bound);
  EXPECT_TRUE(x < bound);
  // Replay manually: draw word pairs, mask to 34 bits, first hit wins.
  for (;;) {
    const std::uint64_t w0 = b() & 0xffffffffu;
    const std::uint64_t w1 = b() & 0xffffffffu;
    const std::uint64_t v = (w0 | (w1 << 32)) & ((1ull << 34) - 1);
    if (BigInt(v) < bound) {
      EXPECT_EQ(x, BigInt(v));
      break;
    }
  }
  EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace hirep::crypto
