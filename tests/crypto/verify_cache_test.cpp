// Verification-cache safety properties (DESIGN.md §9): only successful
// verdicts are memoized, forged signatures are re-checked every time, the
// nodeId binding memo agrees with NodeId::of_key, LRU capacity is honored,
// and concurrent mixed hit/miss traffic neither crashes nor miscounts.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "crypto/identity.hpp"
#include "crypto/rsa.hpp"
#include "crypto/verify_cache.hpp"
#include "util/rng.hpp"

namespace hirep::crypto {
namespace {

util::Bytes message(std::uint8_t tag, std::size_t n = 24) {
  util::Bytes m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = static_cast<std::uint8_t>(tag + i * 7);
  }
  return m;
}

class VerifyCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(2026);
    pair_ = rsa_generate(rng, 128);
    other_ = rsa_generate(rng, 128);
  }

  RsaKeyPair pair_;
  RsaKeyPair other_;
};

TEST_F(VerifyCacheTest, SecondVerificationIsAHit) {
  VerifyCache cache;
  const auto data = message(1);
  const auto sig = rsa_sign(pair_.priv, data);
  EXPECT_TRUE(cache.verify(pair_.pub, data, sig));
  EXPECT_TRUE(cache.verify(pair_.pub, data, sig));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.verify_misses, 1u);
  EXPECT_EQ(stats.verify_hits, 1u);
}

TEST_F(VerifyCacheTest, ForgedSignatureIsNeverCached) {
  VerifyCache cache;
  const auto data = message(2);
  auto sig = rsa_sign(pair_.priv, data);
  sig[0] ^= 0x01;  // forge
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(cache.verify(pair_.pub, data, sig));
  }
  const auto stats = cache.stats();
  // Every attempt re-ran the real verification: all misses, no hits.
  EXPECT_EQ(stats.verify_misses, 3u);
  EXPECT_EQ(stats.verify_hits, 0u);
  // ...and the genuine signature still verifies (no shadowing).
  sig[0] ^= 0x01;
  EXPECT_TRUE(cache.verify(pair_.pub, data, sig));
}

TEST_F(VerifyCacheTest, WrongKeyDataOrSignatureMisses) {
  VerifyCache cache;
  const auto data = message(3);
  const auto sig = rsa_sign(pair_.priv, data);
  ASSERT_TRUE(cache.verify(pair_.pub, data, sig));
  EXPECT_FALSE(cache.verify(other_.pub, data, sig));
  EXPECT_FALSE(cache.verify(pair_.pub, message(4), sig));
  const auto sig2 = rsa_sign(pair_.priv, message(4));
  EXPECT_FALSE(cache.verify(pair_.pub, data, sig2));
  EXPECT_EQ(cache.stats().verify_hits, 0u);
}

TEST_F(VerifyCacheTest, LruEvictionBoundsTheTable) {
  // Tiny capacity: 16 entries over 8 shards = 2 per shard.  Insert many
  // distinct valid triples, then re-verify the first one — it must have
  // been evicted and count as a miss again (still returning true).
  VerifyCache cache(16);
  const auto first = message(10);
  const auto first_sig = rsa_sign(pair_.priv, first);
  ASSERT_TRUE(cache.verify(pair_.pub, first, first_sig));
  for (std::uint8_t tag = 11; tag < 11 + 64; ++tag) {
    const auto data = message(tag);
    ASSERT_TRUE(cache.verify(pair_.pub, data, rsa_sign(pair_.priv, data)));
  }
  const auto before = cache.stats();
  EXPECT_TRUE(cache.verify(pair_.pub, first, first_sig));
  const auto after = cache.stats();
  EXPECT_EQ(after.verify_misses, before.verify_misses + 1);
  EXPECT_EQ(after.verify_hits, before.verify_hits);
}

TEST_F(VerifyCacheTest, NodeIdBindingMatchesOfKeyAndMemoizes) {
  VerifyCache cache;
  const auto expected = NodeId::of_key(pair_.pub);
  EXPECT_EQ(cache.node_id_of(pair_.pub), expected);
  EXPECT_EQ(cache.node_id_of(pair_.pub), expected);
  EXPECT_EQ(cache.node_id_of(other_.pub), NodeId::of_key(other_.pub));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.binding_misses, 2u);
  EXPECT_EQ(stats.binding_hits, 1u);
}

TEST_F(VerifyCacheTest, ClearResetsTablesAndStats) {
  VerifyCache cache;
  const auto data = message(5);
  const auto sig = rsa_sign(pair_.priv, data);
  ASSERT_TRUE(cache.verify(pair_.pub, data, sig));
  ASSERT_TRUE(cache.verify(pair_.pub, data, sig));
  cache.clear();
  const auto zeroed = cache.stats();
  EXPECT_EQ(zeroed.verify_hits, 0u);
  EXPECT_EQ(zeroed.verify_misses, 0u);
  EXPECT_TRUE(cache.verify(pair_.pub, data, sig));
  EXPECT_EQ(cache.stats().verify_misses, 1u);
}

TEST_F(VerifyCacheTest, GlobalWrappersAgreeWithDirectCalls) {
  const auto data = message(6);
  const auto sig = rsa_sign(pair_.priv, data);
  EXPECT_EQ(verify_cached(pair_.pub, data, sig),
            rsa_verify(pair_.pub, data, sig));
  EXPECT_EQ(node_id_of_cached(pair_.pub), NodeId::of_key(pair_.pub));
}

TEST_F(VerifyCacheTest, ConcurrentMixedTrafficCountsConsistently) {
  VerifyCache cache;
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  // Each thread hammers a shared valid triple plus its own forged one.
  const auto data = message(7);
  const auto good = rsa_sign(pair_.priv, data);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto forged = good;
      forged[0] ^= static_cast<std::uint8_t>(t + 1);
      for (int i = 0; i < kRounds; ++i) {
        ASSERT_TRUE(cache.verify(pair_.pub, data, good));
        ASSERT_FALSE(cache.verify(pair_.pub, data, forged));
        cache.node_id_of(pair_.pub);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.verify_hits + stats.verify_misses,
            static_cast<std::uint64_t>(2 * kThreads * kRounds));
  // Forged triples never hit, so hits are bounded by the valid lookups
  // (minus the at-least-one populating miss).
  EXPECT_LT(stats.verify_hits,
            static_cast<std::uint64_t>(kThreads * kRounds));
  EXPECT_EQ(stats.binding_hits + stats.binding_misses,
            static_cast<std::uint64_t>(kThreads * kRounds));
}

}  // namespace
}  // namespace hirep::crypto
