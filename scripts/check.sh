#!/usr/bin/env bash
# Tier-1 verification under AddressSanitizer + UBSan: configures a separate
# sanitizer build tree, builds everything, and runs the full test suite.
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-asan}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B "$build" -S "$repo" -DHIREP_SANITIZE=ON
cmake --build "$build" -j "$jobs"
ctest --test-dir "$build" --output-on-failure -j "$jobs"
