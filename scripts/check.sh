#!/usr/bin/env bash
# Tier-1 verification under both sanitizer flavours: for each of
# AddressSanitizer+UBSan and ThreadSanitizer, configure a separate build
# tree, build everything, and run the full test suite.
#
# Usage: scripts/check.sh [flavour ...]   (default: address thread)
#   scripts/check.sh address   # ASan+UBSan only (build-asan/)
#   scripts/check.sh thread    # TSan only (build-tsan/)
#   scripts/check.sh lint      # static analysis gate (scripts/lint.sh)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
flavours=("$@")
if [[ ${#flavours[@]} -eq 0 ]]; then flavours=(address thread); fi

for flavour in "${flavours[@]}"; do
  case "$flavour" in
    address) build="$repo/build-asan" ;;
    thread)  build="$repo/build-tsan" ;;
    lint)
      "$repo/scripts/lint.sh"
      continue ;;
    *) echo "check.sh: unknown flavour '$flavour' (use: address thread lint)" >&2
       exit 2 ;;
  esac
  echo "== check.sh: HIREP_SANITIZE=$flavour ($build) =="
  cmake -B "$build" -S "$repo" -DHIREP_SANITIZE="$flavour"
  cmake --build "$build" -j "$jobs"
  ctest --test-dir "$build" --output-on-failure -j "$jobs"
done
