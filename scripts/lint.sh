#!/usr/bin/env bash
# Project static-analysis gate (DESIGN.md §12):
#
#   1. builds hirep-lint and runs it over src/ with every rule enabled,
#      feeding it the compile database (CMAKE_EXPORT_COMPILE_COMMANDS is
#      always on) so the TU list matches what the build actually compiles;
#   2. runs the lint fixture suite (ctest -R '^lint\.') — every known-bad
#      fixture must be flagged by exactly its rule, and the clean tree must
#      stay clean;
#   3. when a Clang toolchain is available, configures a separate build
#      tree with -DHIREP_THREAD_SAFETY=ON and -Werror and builds it, so
#      -Wthread-safety verifies the HIREP_GUARDED_BY / HIREP_REQUIRES
#      annotations for real.  On gcc-only hosts this step prints a notice
#      and is skipped (the annotations compile away under GCC); CI runs it.
#
# Usage: scripts/lint.sh [build-dir]   (default: build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== lint.sh: hirep-lint over src/ =="
if [[ ! -f "$build/compile_commands.json" ]]; then
  cmake -B "$build" -S "$repo" >/dev/null
fi
cmake --build "$build" --target hirep-lint -j "$jobs"
lint="$build/tools/lint/hirep-lint"
"$lint" --root "$repo" --compdb "$build/compile_commands.json"

echo "== lint.sh: fixture suite =="
# The fixture tests need the test tree configured; build whatever the lint
# tests depend on (just hirep-lint, already built) and run them.
ctest --test-dir "$build" -R '^lint\.' --output-on-failure -j "$jobs"

echo "== lint.sh: clang thread-safety analysis =="
clangxx=""
for candidate in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
                 clang++-15 clang++-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    clangxx="$candidate"
    break
  fi
done
if [[ -z "$clangxx" ]]; then
  echo "lint.sh: clang++ not found on PATH; skipping -Wthread-safety build" \
       "(the annotations are inert under GCC — CI runs this step)"
  exit 0
fi
tsbuild="$repo/build-threadsafety"
cmake -B "$tsbuild" -S "$repo" \
  -DCMAKE_CXX_COMPILER="$clangxx" \
  -DHIREP_THREAD_SAFETY=ON -DHIREP_WERROR=ON >/dev/null
cmake --build "$tsbuild" -j "$jobs"
echo "lint.sh: thread-safety build clean"
