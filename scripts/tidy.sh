#!/usr/bin/env bash
# clang-tidy over the production sources, using the repo-root .clang-tidy
# and the compile database exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS
# is always on).  Exits non-zero on any finding (WarningsAsErrors: '*').
#
# Usage: scripts/tidy.sh [build-dir]   (default: build)
#
# When clang-tidy is not installed the script prints a notice and exits 0,
# so the gate degrades gracefully on gcc-only toolchains; CI images that do
# ship clang-tidy get the full gate.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
jobs="$(nproc 2>/dev/null || echo 4)"

tidy=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    tidy="$candidate"
    break
  fi
done

if [[ -z "$tidy" ]]; then
  echo "tidy.sh: clang-tidy not found on PATH; skipping (install clang-tidy to enable the gate)"
  exit 0
fi

if [[ ! -f "$build/compile_commands.json" ]]; then
  cmake -B "$build" -S "$repo" >/dev/null
fi

# Production sources plus the test and bench trees (each has its own
# .clang-tidy layering extra checks / opt-outs on top of the root config).
mapfile -t sources < <(find "$repo/src" "$repo/tests" "$repo/bench" \
  -name '*.cpp' | sort)
echo "tidy.sh: $tidy over ${#sources[@]} files ($build/compile_commands.json)"

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$tidy" -p "$build" -j "$jobs" -quiet \
    "${sources[@]}"
else
  "$tidy" -p "$build" --quiet "${sources[@]}"
fi
echo "tidy.sh: clean"
