#!/usr/bin/env bash
# Machine-readable benchmark sweep: runs the google-benchmark micro suites
# and the figure/analysis benches, then assembles two artifacts in the
# repo root (schema documented in EXPERIMENTS.md):
#
#   BENCH_micro.json    — per-suite google-benchmark JSON output
#   BENCH_figures.json  — one hirep-bench-v1 document per exhibit
#
# Usage: scripts/bench.sh [build-dir]          (default: build)
#   BENCH_PROFILE=quick   small deterministic params, minutes   (default)
#   BENCH_PROFILE=full    paper-scale params, hours
#
# Figure benches exit 1 when a paper claim fails to hold at the chosen
# params; with quick params that is expected and the artifact is still
# written, so only exit code 2 (hard error) aborts the sweep.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
profile="${BENCH_PROFILE:-quick}"
out_micro="$repo/BENCH_micro.json"
out_figures="$repo/BENCH_figures.json"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

case "$profile" in
  quick)
    fig_params=(network_size=200 transactions=60 seed=7 seeds=1)
    micro_min_time=0.05
    scale_fast_params=(network_size=10000 transactions=2000 crypto=fast seed=1)
    scale_full_params=(network_size=2000 transactions=300 crypto=full seed=1)
    chaos_params=(network_size=200 transactions=240 crypto=fast seed=7)
    transport_params=(network_size=1000 transactions=100000 seed=1)
    shard_params=(network_size=10000 transactions=2000 crypto=fast seed=1 execution=sharded shards=8)
    ;;
  full)
    fig_params=()
    micro_min_time=0.5
    scale_fast_params=(network_size=100000 transactions=10000 crypto=fast seed=1)
    scale_full_params=(network_size=10000 transactions=1000 crypto=full seed=1)
    chaos_params=(network_size=1000 transactions=2000 crypto=fast seed=7)
    transport_params=(network_size=10000 transactions=1000000 seed=1)
    shard_params=(network_size=100000 transactions=10000 crypto=fast seed=1 execution=sharded shards=8)
    ;;
  *)
    echo "bench.sh: unknown BENCH_PROFILE '$profile' (use: quick full)" >&2
    exit 2
    ;;
esac

bench_dir="$build/bench"
if [[ ! -d "$bench_dir" ]]; then
  echo "bench.sh: $bench_dir not found — build the tree first" >&2
  exit 2
fi

# --- micro suites (google-benchmark JSON) ---------------------------------
micro_suites=(micro_crypto micro_hirep micro_overlay)
for suite in "${micro_suites[@]}"; do
  echo "== bench.sh: $suite (min_time=${micro_min_time}s) =="
  "$bench_dir/$suite" \
    --benchmark_min_time="$micro_min_time" \
    --benchmark_out="$tmp/$suite.json" \
    --benchmark_out_format=json
done

# Scale engine: serial vs parallel batch execution, both crypto modes;
# chaos engine: fault schedule + failover recovery; batched transport:
# per-envelope vs arena-backed send_batch; sharded engine: thread sweep
# over a shard partition, plus the fig5-at-1M exhibit — a million-agent
# fig5-shaped workload under fast crypto, same params in both profiles
# because the exhibit is defined at N=1,000,000 (bootstrap dominates its
# wall-clock, ~7 min) (hirep-bench-v1 documents; exit 1 = a claim did
# not hold, still recorded).
scale_runs=(micro_scale_fast micro_scale_full chaos_recovery micro_transport
            micro_shard micro_shard_1m)
for run in "${scale_runs[@]}"; do
  case "$run" in
    micro_scale_fast) binary=micro_scale params=("${scale_fast_params[@]}") ;;
    micro_scale_full) binary=micro_scale params=("${scale_full_params[@]}") ;;
    chaos_recovery)   binary=chaos_recovery params=("${chaos_params[@]}") ;;
    micro_transport)  binary=micro_transport params=("${transport_params[@]}") ;;
    micro_shard)      binary=micro_shard params=("${shard_params[@]}") ;;
    micro_shard_1m)   binary=micro_shard
                      params=(network_size=1000000 transactions=2000
                              crypto=fast seed=1 execution=sharded shards=8) ;;
  esac
  echo "== bench.sh: $binary (${params[*]}) =="
  rc=0
  "$bench_dir/$binary" "${params[@]}" json="$tmp/$run.json" || rc=$?
  if [[ $rc -ge 2 ]]; then
    echo "bench.sh: $binary failed hard (exit $rc)" >&2
    exit "$rc"
  fi
  if [[ ! -s "$tmp/$run.json" ]]; then
    echo "bench.sh: $binary produced no JSON output" >&2
    exit 2
  fi
done

{
  printf '{\n  "schema": "hirep-bench-micro-v1",\n  "profile": "%s",\n  "suites": {\n' "$profile"
  first=1
  for suite in "${micro_suites[@]}" "${scale_runs[@]}"; do
    [[ $first -eq 0 ]] && printf ',\n'
    first=0
    printf '    "%s": ' "$suite"
    cat "$tmp/$suite.json"
  done
  printf '\n  }\n}\n'
} > "$out_micro"
echo "wrote $out_micro"

# --- figure / analysis exhibits (hirep-bench-v1) --------------------------
figure_benches=(fig5_traffic fig6_accuracy fig7_malicious fig8_response
                analysis_traffic_bound adversary_curves)
for bench in "${figure_benches[@]}"; do
  echo "== bench.sh: $bench ($profile params) =="
  rc=0
  "$bench_dir/$bench" "${fig_params[@]}" json="$tmp/$bench.json" || rc=$?
  if [[ $rc -ge 2 ]]; then
    echo "bench.sh: $bench failed hard (exit $rc)" >&2
    exit "$rc"
  fi
  if [[ $rc -eq 1 ]]; then
    echo "bench.sh: note: $bench claim checks did not all hold at $profile params"
  fi
  if [[ ! -s "$tmp/$bench.json" ]]; then
    echo "bench.sh: $bench produced no JSON output" >&2
    exit 2
  fi
done

{
  printf '{\n  "schema": "hirep-bench-suite-v1",\n  "profile": "%s",\n  "exhibits": {\n' "$profile"
  first=1
  for bench in "${figure_benches[@]}"; do
    [[ $first -eq 0 ]] && printf ',\n'
    first=0
    printf '    "%s": ' "$bench"
    cat "$tmp/$bench.json"
  done
  printf '\n  }\n}\n'
} > "$out_figures"
echo "wrote $out_figures"

# --- sanity: both artifacts must parse as JSON ----------------------------
if command -v python3 > /dev/null 2>&1; then
  python3 - "$out_micro" "$out_figures" <<'EOF'
import json, sys
for path in sys.argv[1:]:
    with open(path) as f:
        json.load(f)
    print(f"validated {path}")
EOF
else
  echo "bench.sh: python3 not found, skipping JSON validation"
fi
