
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bigint.cpp" "src/CMakeFiles/hirep_crypto.dir/crypto/bigint.cpp.o" "gcc" "src/CMakeFiles/hirep_crypto.dir/crypto/bigint.cpp.o.d"
  "/root/repo/src/crypto/identity.cpp" "src/CMakeFiles/hirep_crypto.dir/crypto/identity.cpp.o" "gcc" "src/CMakeFiles/hirep_crypto.dir/crypto/identity.cpp.o.d"
  "/root/repo/src/crypto/montgomery.cpp" "src/CMakeFiles/hirep_crypto.dir/crypto/montgomery.cpp.o" "gcc" "src/CMakeFiles/hirep_crypto.dir/crypto/montgomery.cpp.o.d"
  "/root/repo/src/crypto/prime.cpp" "src/CMakeFiles/hirep_crypto.dir/crypto/prime.cpp.o" "gcc" "src/CMakeFiles/hirep_crypto.dir/crypto/prime.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/CMakeFiles/hirep_crypto.dir/crypto/rsa.cpp.o" "gcc" "src/CMakeFiles/hirep_crypto.dir/crypto/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/CMakeFiles/hirep_crypto.dir/crypto/sha1.cpp.o" "gcc" "src/CMakeFiles/hirep_crypto.dir/crypto/sha1.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/hirep_crypto.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/hirep_crypto.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/stream_cipher.cpp" "src/CMakeFiles/hirep_crypto.dir/crypto/stream_cipher.cpp.o" "gcc" "src/CMakeFiles/hirep_crypto.dir/crypto/stream_cipher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hirep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
