# Empty dependencies file for hirep_crypto.
# This may be replaced when dependencies are built.
