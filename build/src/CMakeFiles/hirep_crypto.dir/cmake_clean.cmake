file(REMOVE_RECURSE
  "CMakeFiles/hirep_crypto.dir/crypto/bigint.cpp.o"
  "CMakeFiles/hirep_crypto.dir/crypto/bigint.cpp.o.d"
  "CMakeFiles/hirep_crypto.dir/crypto/identity.cpp.o"
  "CMakeFiles/hirep_crypto.dir/crypto/identity.cpp.o.d"
  "CMakeFiles/hirep_crypto.dir/crypto/montgomery.cpp.o"
  "CMakeFiles/hirep_crypto.dir/crypto/montgomery.cpp.o.d"
  "CMakeFiles/hirep_crypto.dir/crypto/prime.cpp.o"
  "CMakeFiles/hirep_crypto.dir/crypto/prime.cpp.o.d"
  "CMakeFiles/hirep_crypto.dir/crypto/rsa.cpp.o"
  "CMakeFiles/hirep_crypto.dir/crypto/rsa.cpp.o.d"
  "CMakeFiles/hirep_crypto.dir/crypto/sha1.cpp.o"
  "CMakeFiles/hirep_crypto.dir/crypto/sha1.cpp.o.d"
  "CMakeFiles/hirep_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/hirep_crypto.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/hirep_crypto.dir/crypto/stream_cipher.cpp.o"
  "CMakeFiles/hirep_crypto.dir/crypto/stream_cipher.cpp.o.d"
  "libhirep_crypto.a"
  "libhirep_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirep_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
