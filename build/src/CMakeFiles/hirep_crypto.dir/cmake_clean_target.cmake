file(REMOVE_RECURSE
  "libhirep_crypto.a"
)
