# Empty compiler generated dependencies file for hirep_sim.
# This may be replaced when dependencies are built.
