file(REMOVE_RECURSE
  "CMakeFiles/hirep_sim.dir/sim/attacks.cpp.o"
  "CMakeFiles/hirep_sim.dir/sim/attacks.cpp.o.d"
  "CMakeFiles/hirep_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/hirep_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/hirep_sim.dir/sim/params.cpp.o"
  "CMakeFiles/hirep_sim.dir/sim/params.cpp.o.d"
  "CMakeFiles/hirep_sim.dir/sim/response_time.cpp.o"
  "CMakeFiles/hirep_sim.dir/sim/response_time.cpp.o.d"
  "CMakeFiles/hirep_sim.dir/sim/workload.cpp.o"
  "CMakeFiles/hirep_sim.dir/sim/workload.cpp.o.d"
  "libhirep_sim.a"
  "libhirep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirep_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
