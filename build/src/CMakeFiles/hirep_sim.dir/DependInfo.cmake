
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/attacks.cpp" "src/CMakeFiles/hirep_sim.dir/sim/attacks.cpp.o" "gcc" "src/CMakeFiles/hirep_sim.dir/sim/attacks.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/hirep_sim.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/hirep_sim.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/params.cpp" "src/CMakeFiles/hirep_sim.dir/sim/params.cpp.o" "gcc" "src/CMakeFiles/hirep_sim.dir/sim/params.cpp.o.d"
  "/root/repo/src/sim/response_time.cpp" "src/CMakeFiles/hirep_sim.dir/sim/response_time.cpp.o" "gcc" "src/CMakeFiles/hirep_sim.dir/sim/response_time.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/CMakeFiles/hirep_sim.dir/sim/workload.cpp.o" "gcc" "src/CMakeFiles/hirep_sim.dir/sim/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hirep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_onion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
