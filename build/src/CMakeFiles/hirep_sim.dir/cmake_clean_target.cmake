file(REMOVE_RECURSE
  "libhirep_sim.a"
)
