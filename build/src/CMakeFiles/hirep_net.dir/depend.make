# Empty dependencies file for hirep_net.
# This may be replaced when dependencies are built.
