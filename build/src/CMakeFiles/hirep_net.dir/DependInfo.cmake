
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/event_sim.cpp" "src/CMakeFiles/hirep_net.dir/net/event_sim.cpp.o" "gcc" "src/CMakeFiles/hirep_net.dir/net/event_sim.cpp.o.d"
  "/root/repo/src/net/flood.cpp" "src/CMakeFiles/hirep_net.dir/net/flood.cpp.o" "gcc" "src/CMakeFiles/hirep_net.dir/net/flood.cpp.o.d"
  "/root/repo/src/net/graph.cpp" "src/CMakeFiles/hirep_net.dir/net/graph.cpp.o" "gcc" "src/CMakeFiles/hirep_net.dir/net/graph.cpp.o.d"
  "/root/repo/src/net/latency.cpp" "src/CMakeFiles/hirep_net.dir/net/latency.cpp.o" "gcc" "src/CMakeFiles/hirep_net.dir/net/latency.cpp.o.d"
  "/root/repo/src/net/metrics.cpp" "src/CMakeFiles/hirep_net.dir/net/metrics.cpp.o" "gcc" "src/CMakeFiles/hirep_net.dir/net/metrics.cpp.o.d"
  "/root/repo/src/net/overlay.cpp" "src/CMakeFiles/hirep_net.dir/net/overlay.cpp.o" "gcc" "src/CMakeFiles/hirep_net.dir/net/overlay.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/hirep_net.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/hirep_net.dir/net/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hirep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
