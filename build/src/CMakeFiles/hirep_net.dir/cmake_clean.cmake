file(REMOVE_RECURSE
  "CMakeFiles/hirep_net.dir/net/event_sim.cpp.o"
  "CMakeFiles/hirep_net.dir/net/event_sim.cpp.o.d"
  "CMakeFiles/hirep_net.dir/net/flood.cpp.o"
  "CMakeFiles/hirep_net.dir/net/flood.cpp.o.d"
  "CMakeFiles/hirep_net.dir/net/graph.cpp.o"
  "CMakeFiles/hirep_net.dir/net/graph.cpp.o.d"
  "CMakeFiles/hirep_net.dir/net/latency.cpp.o"
  "CMakeFiles/hirep_net.dir/net/latency.cpp.o.d"
  "CMakeFiles/hirep_net.dir/net/metrics.cpp.o"
  "CMakeFiles/hirep_net.dir/net/metrics.cpp.o.d"
  "CMakeFiles/hirep_net.dir/net/overlay.cpp.o"
  "CMakeFiles/hirep_net.dir/net/overlay.cpp.o.d"
  "CMakeFiles/hirep_net.dir/net/topology.cpp.o"
  "CMakeFiles/hirep_net.dir/net/topology.cpp.o.d"
  "libhirep_net.a"
  "libhirep_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirep_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
