file(REMOVE_RECURSE
  "libhirep_net.a"
)
