# Empty compiler generated dependencies file for hirep_trust.
# This may be replaced when dependencies are built.
