file(REMOVE_RECURSE
  "CMakeFiles/hirep_trust.dir/trust/average_model.cpp.o"
  "CMakeFiles/hirep_trust.dir/trust/average_model.cpp.o.d"
  "CMakeFiles/hirep_trust.dir/trust/beta_model.cpp.o"
  "CMakeFiles/hirep_trust.dir/trust/beta_model.cpp.o.d"
  "CMakeFiles/hirep_trust.dir/trust/eigentrust.cpp.o"
  "CMakeFiles/hirep_trust.dir/trust/eigentrust.cpp.o.d"
  "CMakeFiles/hirep_trust.dir/trust/ewma_model.cpp.o"
  "CMakeFiles/hirep_trust.dir/trust/ewma_model.cpp.o.d"
  "CMakeFiles/hirep_trust.dir/trust/ground_truth.cpp.o"
  "CMakeFiles/hirep_trust.dir/trust/ground_truth.cpp.o.d"
  "CMakeFiles/hirep_trust.dir/trust/trust_model.cpp.o"
  "CMakeFiles/hirep_trust.dir/trust/trust_model.cpp.o.d"
  "libhirep_trust.a"
  "libhirep_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirep_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
