file(REMOVE_RECURSE
  "libhirep_trust.a"
)
