
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trust/average_model.cpp" "src/CMakeFiles/hirep_trust.dir/trust/average_model.cpp.o" "gcc" "src/CMakeFiles/hirep_trust.dir/trust/average_model.cpp.o.d"
  "/root/repo/src/trust/beta_model.cpp" "src/CMakeFiles/hirep_trust.dir/trust/beta_model.cpp.o" "gcc" "src/CMakeFiles/hirep_trust.dir/trust/beta_model.cpp.o.d"
  "/root/repo/src/trust/eigentrust.cpp" "src/CMakeFiles/hirep_trust.dir/trust/eigentrust.cpp.o" "gcc" "src/CMakeFiles/hirep_trust.dir/trust/eigentrust.cpp.o.d"
  "/root/repo/src/trust/ewma_model.cpp" "src/CMakeFiles/hirep_trust.dir/trust/ewma_model.cpp.o" "gcc" "src/CMakeFiles/hirep_trust.dir/trust/ewma_model.cpp.o.d"
  "/root/repo/src/trust/ground_truth.cpp" "src/CMakeFiles/hirep_trust.dir/trust/ground_truth.cpp.o" "gcc" "src/CMakeFiles/hirep_trust.dir/trust/ground_truth.cpp.o.d"
  "/root/repo/src/trust/trust_model.cpp" "src/CMakeFiles/hirep_trust.dir/trust/trust_model.cpp.o" "gcc" "src/CMakeFiles/hirep_trust.dir/trust/trust_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hirep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
