# Empty dependencies file for hirep_onion.
# This may be replaced when dependencies are built.
