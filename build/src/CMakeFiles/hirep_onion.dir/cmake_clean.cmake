file(REMOVE_RECURSE
  "CMakeFiles/hirep_onion.dir/onion/onion.cpp.o"
  "CMakeFiles/hirep_onion.dir/onion/onion.cpp.o.d"
  "CMakeFiles/hirep_onion.dir/onion/relay.cpp.o"
  "CMakeFiles/hirep_onion.dir/onion/relay.cpp.o.d"
  "CMakeFiles/hirep_onion.dir/onion/router.cpp.o"
  "CMakeFiles/hirep_onion.dir/onion/router.cpp.o.d"
  "libhirep_onion.a"
  "libhirep_onion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirep_onion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
