file(REMOVE_RECURSE
  "libhirep_onion.a"
)
