file(REMOVE_RECURSE
  "libhirep_util.a"
)
