# Empty compiler generated dependencies file for hirep_util.
# This may be replaced when dependencies are built.
