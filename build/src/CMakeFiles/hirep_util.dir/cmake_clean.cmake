file(REMOVE_RECURSE
  "CMakeFiles/hirep_util.dir/util/bytes.cpp.o"
  "CMakeFiles/hirep_util.dir/util/bytes.cpp.o.d"
  "CMakeFiles/hirep_util.dir/util/config.cpp.o"
  "CMakeFiles/hirep_util.dir/util/config.cpp.o.d"
  "CMakeFiles/hirep_util.dir/util/log.cpp.o"
  "CMakeFiles/hirep_util.dir/util/log.cpp.o.d"
  "CMakeFiles/hirep_util.dir/util/rng.cpp.o"
  "CMakeFiles/hirep_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/hirep_util.dir/util/stats.cpp.o"
  "CMakeFiles/hirep_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/hirep_util.dir/util/table.cpp.o"
  "CMakeFiles/hirep_util.dir/util/table.cpp.o.d"
  "CMakeFiles/hirep_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/hirep_util.dir/util/thread_pool.cpp.o.d"
  "libhirep_util.a"
  "libhirep_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirep_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
