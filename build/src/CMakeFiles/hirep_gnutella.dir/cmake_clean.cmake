file(REMOVE_RECURSE
  "CMakeFiles/hirep_gnutella.dir/gnutella/content.cpp.o"
  "CMakeFiles/hirep_gnutella.dir/gnutella/content.cpp.o.d"
  "CMakeFiles/hirep_gnutella.dir/gnutella/search.cpp.o"
  "CMakeFiles/hirep_gnutella.dir/gnutella/search.cpp.o.d"
  "CMakeFiles/hirep_gnutella.dir/gnutella/session.cpp.o"
  "CMakeFiles/hirep_gnutella.dir/gnutella/session.cpp.o.d"
  "libhirep_gnutella.a"
  "libhirep_gnutella.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirep_gnutella.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
