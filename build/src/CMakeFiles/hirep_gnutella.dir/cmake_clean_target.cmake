file(REMOVE_RECURSE
  "libhirep_gnutella.a"
)
