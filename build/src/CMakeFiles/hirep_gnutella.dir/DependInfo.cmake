
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnutella/content.cpp" "src/CMakeFiles/hirep_gnutella.dir/gnutella/content.cpp.o" "gcc" "src/CMakeFiles/hirep_gnutella.dir/gnutella/content.cpp.o.d"
  "/root/repo/src/gnutella/search.cpp" "src/CMakeFiles/hirep_gnutella.dir/gnutella/search.cpp.o" "gcc" "src/CMakeFiles/hirep_gnutella.dir/gnutella/search.cpp.o.d"
  "/root/repo/src/gnutella/session.cpp" "src/CMakeFiles/hirep_gnutella.dir/gnutella/session.cpp.o" "gcc" "src/CMakeFiles/hirep_gnutella.dir/gnutella/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hirep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_onion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
