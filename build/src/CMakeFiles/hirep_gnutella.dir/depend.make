# Empty dependencies file for hirep_gnutella.
# This may be replaced when dependencies are built.
