# Empty compiler generated dependencies file for hirep_core.
# This may be replaced when dependencies are built.
