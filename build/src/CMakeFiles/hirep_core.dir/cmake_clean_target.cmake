file(REMOVE_RECURSE
  "libhirep_core.a"
)
