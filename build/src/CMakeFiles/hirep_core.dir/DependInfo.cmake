
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hirep/agent.cpp" "src/CMakeFiles/hirep_core.dir/hirep/agent.cpp.o" "gcc" "src/CMakeFiles/hirep_core.dir/hirep/agent.cpp.o.d"
  "/root/repo/src/hirep/agent_list.cpp" "src/CMakeFiles/hirep_core.dir/hirep/agent_list.cpp.o" "gcc" "src/CMakeFiles/hirep_core.dir/hirep/agent_list.cpp.o.d"
  "/root/repo/src/hirep/discovery.cpp" "src/CMakeFiles/hirep_core.dir/hirep/discovery.cpp.o" "gcc" "src/CMakeFiles/hirep_core.dir/hirep/discovery.cpp.o.d"
  "/root/repo/src/hirep/peer.cpp" "src/CMakeFiles/hirep_core.dir/hirep/peer.cpp.o" "gcc" "src/CMakeFiles/hirep_core.dir/hirep/peer.cpp.o.d"
  "/root/repo/src/hirep/protocol.cpp" "src/CMakeFiles/hirep_core.dir/hirep/protocol.cpp.o" "gcc" "src/CMakeFiles/hirep_core.dir/hirep/protocol.cpp.o.d"
  "/root/repo/src/hirep/system.cpp" "src/CMakeFiles/hirep_core.dir/hirep/system.cpp.o" "gcc" "src/CMakeFiles/hirep_core.dir/hirep/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hirep_onion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
