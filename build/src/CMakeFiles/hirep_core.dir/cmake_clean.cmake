file(REMOVE_RECURSE
  "CMakeFiles/hirep_core.dir/hirep/agent.cpp.o"
  "CMakeFiles/hirep_core.dir/hirep/agent.cpp.o.d"
  "CMakeFiles/hirep_core.dir/hirep/agent_list.cpp.o"
  "CMakeFiles/hirep_core.dir/hirep/agent_list.cpp.o.d"
  "CMakeFiles/hirep_core.dir/hirep/discovery.cpp.o"
  "CMakeFiles/hirep_core.dir/hirep/discovery.cpp.o.d"
  "CMakeFiles/hirep_core.dir/hirep/peer.cpp.o"
  "CMakeFiles/hirep_core.dir/hirep/peer.cpp.o.d"
  "CMakeFiles/hirep_core.dir/hirep/protocol.cpp.o"
  "CMakeFiles/hirep_core.dir/hirep/protocol.cpp.o.d"
  "CMakeFiles/hirep_core.dir/hirep/system.cpp.o"
  "CMakeFiles/hirep_core.dir/hirep/system.cpp.o.d"
  "libhirep_core.a"
  "libhirep_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirep_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
