# Empty dependencies file for hirep_baselines.
# This may be replaced when dependencies are built.
