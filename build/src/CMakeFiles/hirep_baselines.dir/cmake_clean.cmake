file(REMOVE_RECURSE
  "CMakeFiles/hirep_baselines.dir/baselines/pure_voting.cpp.o"
  "CMakeFiles/hirep_baselines.dir/baselines/pure_voting.cpp.o.d"
  "CMakeFiles/hirep_baselines.dir/baselines/rca.cpp.o"
  "CMakeFiles/hirep_baselines.dir/baselines/rca.cpp.o.d"
  "CMakeFiles/hirep_baselines.dir/baselines/trustme.cpp.o"
  "CMakeFiles/hirep_baselines.dir/baselines/trustme.cpp.o.d"
  "libhirep_baselines.a"
  "libhirep_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hirep_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
