file(REMOVE_RECURSE
  "libhirep_baselines.a"
)
