file(REMOVE_RECURSE
  "CMakeFiles/gnutella_tests.dir/gnutella/content_test.cpp.o"
  "CMakeFiles/gnutella_tests.dir/gnutella/content_test.cpp.o.d"
  "CMakeFiles/gnutella_tests.dir/gnutella/search_test.cpp.o"
  "CMakeFiles/gnutella_tests.dir/gnutella/search_test.cpp.o.d"
  "CMakeFiles/gnutella_tests.dir/gnutella/session_test.cpp.o"
  "CMakeFiles/gnutella_tests.dir/gnutella/session_test.cpp.o.d"
  "gnutella_tests"
  "gnutella_tests.pdb"
  "gnutella_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnutella_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
