# Empty dependencies file for gnutella_tests.
# This may be replaced when dependencies are built.
