
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hirep/agent_list_test.cpp" "tests/CMakeFiles/core_tests.dir/hirep/agent_list_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/hirep/agent_list_test.cpp.o.d"
  "/root/repo/tests/hirep/agent_test.cpp" "tests/CMakeFiles/core_tests.dir/hirep/agent_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/hirep/agent_test.cpp.o.d"
  "/root/repo/tests/hirep/discovery_test.cpp" "tests/CMakeFiles/core_tests.dir/hirep/discovery_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/hirep/discovery_test.cpp.o.d"
  "/root/repo/tests/hirep/join_test.cpp" "tests/CMakeFiles/core_tests.dir/hirep/join_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/hirep/join_test.cpp.o.d"
  "/root/repo/tests/hirep/peer_test.cpp" "tests/CMakeFiles/core_tests.dir/hirep/peer_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/hirep/peer_test.cpp.o.d"
  "/root/repo/tests/hirep/protocol_test.cpp" "tests/CMakeFiles/core_tests.dir/hirep/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/hirep/protocol_test.cpp.o.d"
  "/root/repo/tests/hirep/rotation_test.cpp" "tests/CMakeFiles/core_tests.dir/hirep/rotation_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/hirep/rotation_test.cpp.o.d"
  "/root/repo/tests/hirep/system_test.cpp" "tests/CMakeFiles/core_tests.dir/hirep/system_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/hirep/system_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hirep_gnutella.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_onion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
