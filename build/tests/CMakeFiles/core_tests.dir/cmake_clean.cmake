file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/hirep/agent_list_test.cpp.o"
  "CMakeFiles/core_tests.dir/hirep/agent_list_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/hirep/agent_test.cpp.o"
  "CMakeFiles/core_tests.dir/hirep/agent_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/hirep/discovery_test.cpp.o"
  "CMakeFiles/core_tests.dir/hirep/discovery_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/hirep/join_test.cpp.o"
  "CMakeFiles/core_tests.dir/hirep/join_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/hirep/peer_test.cpp.o"
  "CMakeFiles/core_tests.dir/hirep/peer_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/hirep/protocol_test.cpp.o"
  "CMakeFiles/core_tests.dir/hirep/protocol_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/hirep/rotation_test.cpp.o"
  "CMakeFiles/core_tests.dir/hirep/rotation_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/hirep/system_test.cpp.o"
  "CMakeFiles/core_tests.dir/hirep/system_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
