
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/bigint_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/bigint_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/bigint_test.cpp.o.d"
  "/root/repo/tests/crypto/identity_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/identity_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/identity_test.cpp.o.d"
  "/root/repo/tests/crypto/montgomery_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/montgomery_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/montgomery_test.cpp.o.d"
  "/root/repo/tests/crypto/prime_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/prime_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/prime_test.cpp.o.d"
  "/root/repo/tests/crypto/rsa_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/rsa_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/rsa_test.cpp.o.d"
  "/root/repo/tests/crypto/sha_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/sha_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/sha_test.cpp.o.d"
  "/root/repo/tests/crypto/stream_cipher_test.cpp" "tests/CMakeFiles/crypto_tests.dir/crypto/stream_cipher_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_tests.dir/crypto/stream_cipher_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hirep_gnutella.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_onion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
