# Empty dependencies file for onion_tests.
# This may be replaced when dependencies are built.
