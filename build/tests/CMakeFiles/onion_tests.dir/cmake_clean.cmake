file(REMOVE_RECURSE
  "CMakeFiles/onion_tests.dir/onion/onion_test.cpp.o"
  "CMakeFiles/onion_tests.dir/onion/onion_test.cpp.o.d"
  "CMakeFiles/onion_tests.dir/onion/relay_test.cpp.o"
  "CMakeFiles/onion_tests.dir/onion/relay_test.cpp.o.d"
  "CMakeFiles/onion_tests.dir/onion/router_test.cpp.o"
  "CMakeFiles/onion_tests.dir/onion/router_test.cpp.o.d"
  "onion_tests"
  "onion_tests.pdb"
  "onion_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onion_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
