
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/bytes_test.cpp" "tests/CMakeFiles/util_tests.dir/util/bytes_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/bytes_test.cpp.o.d"
  "/root/repo/tests/util/config_test.cpp" "tests/CMakeFiles/util_tests.dir/util/config_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/config_test.cpp.o.d"
  "/root/repo/tests/util/log_test.cpp" "tests/CMakeFiles/util_tests.dir/util/log_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/log_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/util_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/util_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/util_tests.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hirep_gnutella.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_onion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
