file(REMOVE_RECURSE
  "CMakeFiles/trust_tests.dir/trust/eigentrust_test.cpp.o"
  "CMakeFiles/trust_tests.dir/trust/eigentrust_test.cpp.o.d"
  "CMakeFiles/trust_tests.dir/trust/ground_truth_test.cpp.o"
  "CMakeFiles/trust_tests.dir/trust/ground_truth_test.cpp.o.d"
  "CMakeFiles/trust_tests.dir/trust/models_test.cpp.o"
  "CMakeFiles/trust_tests.dir/trust/models_test.cpp.o.d"
  "trust_tests"
  "trust_tests.pdb"
  "trust_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trust_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
