# Empty dependencies file for trust_tests.
# This may be replaced when dependencies are built.
