
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/crypto_mode_equivalence_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/crypto_mode_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/crypto_mode_equivalence_test.cpp.o.d"
  "/root/repo/tests/integration/determinism_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/determinism_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/fuzz_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/fuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hirep_gnutella.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_onion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
