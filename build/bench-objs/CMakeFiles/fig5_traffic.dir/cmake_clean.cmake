file(REMOVE_RECURSE
  "../bench/fig5_traffic"
  "../bench/fig5_traffic.pdb"
  "CMakeFiles/fig5_traffic.dir/fig5_traffic.cpp.o"
  "CMakeFiles/fig5_traffic.dir/fig5_traffic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
