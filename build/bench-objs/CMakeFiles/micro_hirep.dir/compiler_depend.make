# Empty compiler generated dependencies file for micro_hirep.
# This may be replaced when dependencies are built.
