file(REMOVE_RECURSE
  "../bench/micro_hirep"
  "../bench/micro_hirep.pdb"
  "CMakeFiles/micro_hirep.dir/micro_hirep.cpp.o"
  "CMakeFiles/micro_hirep.dir/micro_hirep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hirep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
