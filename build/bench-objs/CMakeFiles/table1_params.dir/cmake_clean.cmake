file(REMOVE_RECURSE
  "../bench/table1_params"
  "../bench/table1_params.pdb"
  "CMakeFiles/table1_params.dir/table1_params.cpp.o"
  "CMakeFiles/table1_params.dir/table1_params.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
