# Empty compiler generated dependencies file for fig7_malicious.
# This may be replaced when dependencies are built.
