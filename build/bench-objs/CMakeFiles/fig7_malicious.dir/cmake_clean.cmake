file(REMOVE_RECURSE
  "../bench/fig7_malicious"
  "../bench/fig7_malicious.pdb"
  "CMakeFiles/fig7_malicious.dir/fig7_malicious.cpp.o"
  "CMakeFiles/fig7_malicious.dir/fig7_malicious.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_malicious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
