file(REMOVE_RECURSE
  "../bench/fig8_response"
  "../bench/fig8_response.pdb"
  "CMakeFiles/fig8_response.dir/fig8_response.cpp.o"
  "CMakeFiles/fig8_response.dir/fig8_response.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
