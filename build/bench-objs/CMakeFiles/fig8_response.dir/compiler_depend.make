# Empty compiler generated dependencies file for fig8_response.
# This may be replaced when dependencies are built.
