file(REMOVE_RECURSE
  "../bench/ablation_trust_model"
  "../bench/ablation_trust_model.pdb"
  "CMakeFiles/ablation_trust_model.dir/ablation_trust_model.cpp.o"
  "CMakeFiles/ablation_trust_model.dir/ablation_trust_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trust_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
