# Empty dependencies file for comparison_baselines.
# This may be replaced when dependencies are built.
