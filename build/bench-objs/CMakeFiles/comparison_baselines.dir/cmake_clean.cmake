file(REMOVE_RECURSE
  "../bench/comparison_baselines"
  "../bench/comparison_baselines.pdb"
  "CMakeFiles/comparison_baselines.dir/comparison_baselines.cpp.o"
  "CMakeFiles/comparison_baselines.dir/comparison_baselines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparison_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
