file(REMOVE_RECURSE
  "../bench/analysis_traffic_bound"
  "../bench/analysis_traffic_bound.pdb"
  "CMakeFiles/analysis_traffic_bound.dir/analysis_traffic_bound.cpp.o"
  "CMakeFiles/analysis_traffic_bound.dir/analysis_traffic_bound.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_traffic_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
