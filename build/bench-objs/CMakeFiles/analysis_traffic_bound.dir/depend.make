# Empty dependencies file for analysis_traffic_bound.
# This may be replaced when dependencies are built.
