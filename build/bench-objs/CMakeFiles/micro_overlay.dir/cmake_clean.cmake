file(REMOVE_RECURSE
  "../bench/micro_overlay"
  "../bench/micro_overlay.pdb"
  "CMakeFiles/micro_overlay.dir/micro_overlay.cpp.o"
  "CMakeFiles/micro_overlay.dir/micro_overlay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
