# Empty compiler generated dependencies file for ablation_onion_len.
# This may be replaced when dependencies are built.
