file(REMOVE_RECURSE
  "../bench/ablation_onion_len"
  "../bench/ablation_onion_len.pdb"
  "CMakeFiles/ablation_onion_len.dir/ablation_onion_len.cpp.o"
  "CMakeFiles/ablation_onion_len.dir/ablation_onion_len.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_onion_len.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
