# Empty compiler generated dependencies file for anonymity_demo.
# This may be replaced when dependencies are built.
