file(REMOVE_RECURSE
  "CMakeFiles/anonymity_demo.dir/anonymity_demo.cpp.o"
  "CMakeFiles/anonymity_demo.dir/anonymity_demo.cpp.o.d"
  "anonymity_demo"
  "anonymity_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymity_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
