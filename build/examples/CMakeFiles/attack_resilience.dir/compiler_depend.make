# Empty compiler generated dependencies file for attack_resilience.
# This may be replaced when dependencies are built.
