
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/membership_churn.cpp" "examples/CMakeFiles/membership_churn.dir/membership_churn.cpp.o" "gcc" "examples/CMakeFiles/membership_churn.dir/membership_churn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hirep_gnutella.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_onion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hirep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
