# Empty dependencies file for file_sharing.
# This may be replaced when dependencies are built.
