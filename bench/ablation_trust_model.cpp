// Ablation — agent-side trust computation model.  The paper leaves the
// model open (§3.2); this bench compares running-average, EWMA and Beta
// models at the agents, plus an EigenTrust global computation over the
// same transaction history as the classic structured-P2P comparator.
#include <iostream>

#include "bench_common.hpp"
#include "hirep/system.hpp"
#include "trust/eigentrust.hpp"
#include "util/stats.hpp"

namespace {

double hirep_mse_with_model(const hirep::sim::Params& params,
                            const std::string& model) {
  using namespace hirep;
  sim::Params p = params;
  p.agent_model = model;
  core::HirepSystem system(p.hirep_options());
  util::MseAccumulator mse;
  for (std::size_t t = 0; t < p.transactions; ++t) {
    const auto requestor =
        static_cast<net::NodeIndex>(system.rng().below(50));
    net::NodeIndex provider = requestor;
    while (provider == requestor) {
      provider = static_cast<net::NodeIndex>(system.rng().below(100));
    }
    const auto rec = system.run_transaction(requestor, provider);
    if (t >= p.transactions / 2) mse.add(rec.estimate, rec.truth_value);
  }
  return mse.mse();
}

double eigentrust_mse(const hirep::sim::Params& params) {
  using namespace hirep;
  // EigenTrust over the same world: local trust = per-transaction
  // satisfaction; global vector thresholded against the binary truth.
  util::Rng rng(params.seed);
  trust::WorldParams wp;
  wp.nodes = params.network_size;
  wp.malicious_ratio = params.malicious_ratio;
  trust::GroundTruth truth(rng, wp);
  trust::EigenTrust et(wp.nodes);
  for (std::size_t t = 0; t < params.transactions * 4; ++t) {
    const auto i = rng.below(wp.nodes);
    auto j = rng.below(wp.nodes);
    if (i == j) continue;
    // Raters report outcomes; malicious raters invert.
    double s = truth.transaction_outcome(static_cast<net::NodeIndex>(j));
    if (truth.poor_evaluator(static_cast<net::NodeIndex>(i))) s = 1.0 - s;
    et.add_local_trust(i, j, s);
  }
  const auto global = et.compute();
  // Normalize scores to [0,1] by rank-free scaling against the max.
  double max_score = 1e-12;
  for (double v : global) max_score = std::max(max_score, v);
  util::MseAccumulator mse;
  for (std::size_t v = 0; v < wp.nodes; ++v) {
    mse.add(global[v] / max_score, truth.true_trust(static_cast<net::NodeIndex>(v)));
  }
  return mse.mse();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hirep;
  return bench::run_exhibit(
      argc, argv,
      "Ablation — agent trust-computation model (average / ewma / beta) + "
      "EigenTrust comparator",
      [](sim::Scenario& sc, const util::Config& cfg) {
        if (!cfg.has("network_size")) sc.network_size(400);
        if (!cfg.has("transactions")) sc.transactions(400);
      },
      [](const sim::Scenario& sc) -> sim::ExperimentResult {
        const sim::Params& params = sc.params();
        util::Table table({"model", "mse"});
        std::vector<double> mses;
        for (const std::string model : {"average", "ewma", "beta"}) {
          mses.push_back(hirep_mse_with_model(params, model));
          table.add_row({model, mses.back()});
        }
        table.add_row({std::string("eigentrust(global)"),
                       eigentrust_mse(params)});
        sim::ExperimentResult result{std::move(table), {}};
        const double worst = *std::max_element(mses.begin(), mses.end());
        const double best = *std::min_element(mses.begin(), mses.end());
        result.checks.push_back(
            {"hiREP accuracy is robust to the agent model choice (spread < "
             "0.05 MSE)",
             worst - best < 0.05,
             "best=" + std::to_string(best) + " worst=" + std::to_string(worst)});
        result.checks.push_back(
            {"all hiREP agent models reach MSE < 0.12 with 10% attackers",
             worst < 0.12, ""});
        return result;
      });
}
