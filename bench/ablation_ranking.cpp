// Ablation — agent ranking rule (§3.4.2 / §4.2.1).  The paper ranks a
// recommended agent by the MAXIMUM weight any list assigns it.  This bench
// contrasts max-rank with mean-rank and sum-rank under the two §4.2.1
// attacks: bad-mouthing a good agent and ballot-stuffing a shill.
#include <iostream>

#include "bench_common.hpp"
#include "hirep/discovery.hpp"

namespace {

using hirep::core::AgentEntry;

hirep::crypto::NodeId id_of(std::uint8_t tag) {
  hirep::crypto::NodeId id;
  id.bytes[0] = tag;
  return id;
}

AgentEntry entry_of(std::uint8_t tag, double weight) {
  AgentEntry e;
  e.agent_id = id_of(tag);
  e.weight = weight;
  return e;
}

/// Fraction of trials in which the honest top agent (id 1) survives
/// selection against `hostile` attacker lists.
double survival_rate(hirep::core::RankingRule rule, int hostile,
                     std::uint64_t seed_base) {
  int survived = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    hirep::util::Rng rng(seed_base + static_cast<std::uint64_t>(t));
    std::vector<std::vector<AgentEntry>> lists;
    // One honest list ranks agent 1 top.
    lists.push_back({entry_of(1, 1.0), entry_of(2, 0.7), entry_of(3, 0.5)});
    // Hostile lists bad-mouth agent 1 and ballot-stuff agents 8/9.
    for (int h = 0; h < hostile; ++h) {
      lists.push_back({entry_of(8, 1.0), entry_of(9, 0.95), entry_of(1, 0.0)});
    }
    const auto selected = hirep::core::rank_and_select(lists, 2, rng, rule);
    for (const auto& e : selected) {
      if (e.agent_id == id_of(1)) {
        ++survived;
        break;
      }
    }
  }
  return static_cast<double>(survived) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hirep;
  return bench::run_exhibit(
      argc, argv,
      "Ablation — ranking rule (max vs mean vs sum) under recommendation "
      "attacks",
      [](sim::Scenario&, const util::Config&) {},
      [](const sim::Scenario& sc) -> sim::ExperimentResult {
        const sim::Params& params = sc.params();
        util::Table table({"hostile_lists", "max_rank_survival",
                           "mean_rank_survival", "sum_rank_survival"});
        double max_at_10 = 0, mean_at_10 = 0, sum_at_10 = 0;
        for (int hostile : {0, 1, 2, 5, 10, 20}) {
          const double mx = survival_rate(core::RankingRule::kMaxRank, hostile,
                                          params.seed);
          const double mn = survival_rate(core::RankingRule::kMeanRank,
                                          hostile, params.seed + 1000);
          const double sm = survival_rate(core::RankingRule::kSumRank, hostile,
                                          params.seed + 2000);
          if (hostile == 10) {
            max_at_10 = mx;
            mean_at_10 = mn;
            sum_at_10 = sm;
          }
          table.add_row({static_cast<std::int64_t>(hostile), mx, mn, sm});
        }
        sim::ExperimentResult result{std::move(table), {}};
        result.checks.push_back(
            {"max-rank keeps the honest agent selectable under heavy "
             "bad-mouthing (§4.2.1)",
             max_at_10 > 0.9, "survival@10=" + std::to_string(max_at_10)});
        result.checks.push_back(
            {"mean-rank and sum-rank collapse under the same attack",
             mean_at_10 < 0.2 && sum_at_10 < 0.2,
             "mean=" + std::to_string(mean_at_10) + " sum=" +
                 std::to_string(sum_at_10)});
        return result;
      });
}
