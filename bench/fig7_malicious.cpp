// Figure 7 — trust accuracy vs malicious-node ratio (0..90%): measured MSE
// of hiREP (after training) and pure voting at each attacker ratio.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hirep;
  return bench::run_exhibit(
      argc, argv,
      "Figure 7 — Trust accuracy (MSE) vs attacker ratio, hiREP vs voting",
      [](sim::Scenario& sc, const util::Config& cfg) {
        if (!cfg.has("transactions")) sc.transactions(600);  // training run
      },
      [](const sim::Scenario& sc) { return sim::run_fig7_malicious(sc.params()); });
}
