// Figure 7 — trust accuracy vs malicious-node ratio (0..90%): measured MSE
// of hiREP (after training) and pure voting at each attacker ratio.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hirep;
  return bench::run_exhibit(
      argc, argv,
      "Figure 7 — Trust accuracy (MSE) vs attacker ratio, hiREP vs voting",
      [](sim::Params& p, const util::Config& cfg) {
        if (!cfg.has("transactions")) p.transactions = 600;  // training run
      },
      sim::run_fig7_malicious);
}
