// Adversary curves — trust accuracy (MSE) of hiREP vs the four baselines
// (pure voting, TrustMe, Absolute Trust, differential gossip) under every
// strategy of the sim::Adversary engine: collusive bad-mouthing ring,
// sybil floods, whitewashing, on-off oscillators, and front peers — plus
// the attack-free reference row.
//
// Every cell runs the identical pre-drawn workload; the hiREP column runs
// the ring condition a second time to prove adversarial replay is
// byte-identical (same seed + Scenario => same records, bit for bit).
// Baselines are driven through the same engine via a capability-reduced
// AdversaryHost: truth-level strategies apply everywhere, whitewashing
// degrades from §3.5 key rotation (hiREP migrates standing — the defense)
// to wiping the identity-keyed store (the attack working), and sybil
// waves degrade to corrupted evaluators where there is no open membership.
//
//   ./build/bench/adversary_curves network_size=200 transactions=400
//       crypto=fast json=out.json
//   fake_clock=1 pins the obs timers to a counter so two identical runs
//   write byte-identical json documents (the CI adversary-smoke check).
#include <algorithm>
#include <bit>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/absolute_trust.hpp"
#include "baselines/differential_gossip.hpp"
#include "baselines/pure_voting.hpp"
#include "baselines/trustme.hpp"
#include "bench_common.hpp"
#include "hirep/system.hpp"
#include "sim/adversary.hpp"
#include "util/stats.hpp"

namespace {

using namespace hirep;

constexpr std::uint64_t kWorkloadSalt = 0x5eedba5eca11f00dULL;

std::vector<std::pair<net::NodeIndex, net::NodeIndex>> draw_pairs(
    const sim::Params& p) {
  util::Rng rng(p.seed ^ kWorkloadSalt);
  const std::size_t rn = p.requestor_pool
                             ? std::min(p.requestor_pool, p.network_size)
                             : p.network_size;
  const std::size_t pn = p.provider_pool
                             ? std::min(p.provider_pool, p.network_size)
                             : p.network_size;
  std::vector<std::pair<net::NodeIndex, net::NodeIndex>> pairs;
  pairs.reserve(p.transactions);
  for (std::size_t i = 0; i < p.transactions; ++i) {
    const auto r = static_cast<net::NodeIndex>(rng.below(rn));
    auto q = r;
    while (q == r) q = static_cast<net::NodeIndex>(rng.below(pn));
    pairs.emplace_back(r, q);
  }
  return pairs;
}

/// One strategy condition: the adversary_* knob overrides it applies.
struct Strategy {
  const char* name;
  void (*arm)(sim::Params& p);
};

const Strategy kStrategies[] = {
    {"none", [](sim::Params&) {}},
    {"ring",
     [](sim::Params& p) {
       p.adversary_ring_size = p.network_size / 10;
       p.adversary_ring_targets = 6;
     }},
    {"sybil",
     [](sim::Params& p) {
       p.adversary_sybil_count = 8;
       p.adversary_sybil_at = p.transactions / 4;
       p.adversary_sybil_period = p.transactions / 4;
       p.adversary_sybil_corrupt = 2;
     }},
    {"whitewash",
     [](sim::Params& p) {
       p.adversary_whitewash_count = 20;
       p.adversary_whitewash_threshold = 0.35;
       p.adversary_whitewash_cooldown =
           std::max<std::size_t>(1, p.transactions / 16);
     }},
    {"oscillator",
     [](sim::Params& p) {
       p.adversary_oscillator_count = 10;
       p.adversary_oscillator_on = 0.7;
       p.adversary_oscillator_burst = p.transactions / 8;
     }},
    {"front",
     [](sim::Params& p) {
       p.adversary_front_count = p.requestor_pool
                                     ? p.requestor_pool / 4
                                     : p.network_size / 10;
     }},
};

/// Capability-reduced host over a baseline system.  Whitewashing wipes the
/// identity-keyed store (where one exists); sybil identities join the
/// overlay where membership is open, else degrade to corrupted evaluators.
template <typename System>
class BaselineHost final : public sim::AdversaryHost {
 public:
  explicit BaselineHost(System* system) : system_(system) {}
  trust::GroundTruth& truth() override { return system_->truth(); }
  std::size_t node_count() const override {
    return system_->truth().node_count();
  }
  std::optional<net::NodeIndex> spawn_identity() override {
    if constexpr (requires(System& s) { s.add_node(std::size_t{4}); }) {
      return system_->add_node(4);
    } else {
      return std::nullopt;
    }
  }
  void reset_reputation(net::NodeIndex v) override {
    if constexpr (requires(System& s) { s.reset_reputation(v); }) {
      system_->reset_reputation(v);
    }
  }

 private:
  System* system_;
};

struct CellResult {
  double mse = 0.0;
  /// MSE restricted to transactions whose provider is a whitewasher —
  /// overall MSE barely moves (whitewashed providers are a small slice of
  /// the workload), so the immunity claim measures the attacked peers
  /// directly.
  double wash_mse = 0.0;
  sim::Adversary::Counters counters;
  /// Bit pattern of every record, for the replay-identity claim.
  std::vector<std::uint64_t> fingerprint;
};

/// Per-cell accumulation state.
struct CellAccum {
  util::MseAccumulator all;
  util::MseAccumulator washed;
  std::vector<std::uint8_t> is_washer;  ///< indexed by provider

  explicit CellAccum(const std::shared_ptr<sim::Adversary>& adversary,
                     std::size_t nodes)
      : is_washer(nodes, 0) {
    if (!adversary) return;
    for (net::NodeIndex v : adversary->whitewashers()) is_washer[v] = 1;
  }

  template <typename Record>
  void note(const Record& rec, std::size_t index, std::size_t train,
            CellResult& out) {
    if (index >= train) {
      all.add(rec.estimate, rec.truth_value);
      if (rec.provider < is_washer.size() && is_washer[rec.provider]) {
        washed.add(rec.estimate, rec.truth_value);
      }
    }
    out.fingerprint.push_back(std::bit_cast<std::uint64_t>(rec.estimate));
    out.fingerprint.push_back(std::bit_cast<std::uint64_t>(rec.truth_value));
    out.fingerprint.push_back(rec.trust_messages);
  }

  void finish(CellResult& out) {
    out.mse = all.mse();
    out.wash_mse = washed.mse();
  }
};

/// hiREP cell: batched engine pipeline, full-capability host.
CellResult run_hirep(const sim::Params& p, std::size_t train) {
  core::HirepSystem system(p.hirep_options());
  const auto adversary = sim::install_adversary(system, p);
  const auto exec = sim::Scenario(p).execution_policy();
  const auto pairs = draw_pairs(p);
  CellResult out;
  CellAccum acc(adversary, system.node_count());
  constexpr std::size_t kChunk = 25;
  std::size_t done = 0;
  while (done < pairs.size()) {
    const std::size_t next = std::min(done + kChunk, pairs.size());
    const auto records = system.run_transactions(
        std::span(pairs).subspan(done, next - done), exec);
    for (std::size_t i = 0; i < records.size(); ++i) {
      acc.note(records[i], done + i, train, out);
    }
    done = next;
    if (adversary) {
      adversary->observe_records(records);
      adversary->advance_to(done);
    }
  }
  acc.finish(out);
  if (adversary) out.counters = adversary->counters();
  return out;
}

/// Baseline cell: serial transactions, engine driven per tick through the
/// capability-reduced host.
template <typename System, typename Options>
CellResult run_baseline(const sim::Params& p, std::size_t train,
                        Options options) {
  System system(std::move(options));
  std::shared_ptr<sim::Adversary> adversary;
  if (p.adversary == "on") {
    adversary = std::make_shared<sim::Adversary>(
        std::make_unique<BaselineHost<System>>(&system),
        sim::adversary_params_from(p), p.seed);
  }
  const auto pairs = draw_pairs(p);
  CellResult out;
  CellAccum acc(adversary, system.truth().node_count());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto rec = system.run_transaction(pairs[i].first, pairs[i].second);
    acc.note(rec, i, train, out);
    if (adversary) {
      adversary->observe(rec.provider, rec.estimate);
      adversary->advance_to(i + 1);
    }
  }
  acc.finish(out);
  if (adversary) out.counters = adversary->counters();
  return out;
}

std::string fmt(double v) {
  std::string s = std::to_string(v);
  return s.substr(0, s.find('.') + 5);
}

}  // namespace

int main(int argc, char** argv) {
  // Deterministic obs clock (fake_clock=1), installed before run_exhibit
  // so every harness timer sees the same clock from its first reading.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "fake_clock=1") {
      obs::set_clock_for_testing(+[]() -> std::uint64_t {
        static std::uint64_t fake_ns = 0;
        return fake_ns += 1'000'000;
      });
    }
  }
  return bench::run_exhibit(
      argc, argv,
      "Adversary curves — trust accuracy under collusion / sybil / "
      "whitewash / oscillator / front campaigns, hiREP vs four baselines",
      [](sim::Scenario& sc, const util::Config& cfg) {
        if (!cfg.has("network_size")) sc.network_size(200);
        if (!cfg.has("transactions")) sc.transactions(400);
        sim::Params& p = sc.params();
        if (!cfg.has("adversary")) p.adversary = "on";
        // Consumed in main(); read here only so the unused-parameter scan
        // and the json config echo see the key.
        (void)cfg.get_int("fake_clock", 0);
      },
      [](const sim::Scenario& sc) -> sim::ExperimentResult {
        const sim::Params& base = sc.params();
        const std::size_t train = base.transactions / 2;

        util::Table table({"strategy", "hirep", "voting", "trustme",
                           "abs_trust", "diff_gossip"});
        std::vector<CellResult> hirep_cells, abs_cells, gossip_cells;
        std::vector<double> voting_mse, trustme_mse;
        CellResult ring_replay;

        for (const Strategy& s : kStrategies) {
          sim::Params p = base;
          s.arm(p);
          const CellResult h = run_hirep(p, train);
          const CellResult v =
              run_baseline<baselines::PureVotingSystem>(p, train,
                                                        p.voting_options());
          const CellResult t =
              run_baseline<baselines::TrustMeSystem>(p, train,
                                                     p.trustme_options());
          const CellResult a =
              run_baseline<baselines::AbsoluteTrustSystem>(
                  p, train, p.absolute_trust_options());
          const CellResult g =
              run_baseline<baselines::DifferentialGossipSystem>(
                  p, train, p.differential_gossip_options());
          table.add_row({s.name, h.mse, v.mse, t.mse, a.mse, g.mse});
          hirep_cells.push_back(h);
          voting_mse.push_back(v.mse);
          trustme_mse.push_back(t.mse);
          abs_cells.push_back(a);
          gossip_cells.push_back(g);
          if (std::string_view(s.name) == "ring") {
            ring_replay = run_hirep(p, train);
          }
        }

        sim::ExperimentResult result{std::move(table), {}};
        // Index map follows kStrategies: 0 none, 1 ring, 2 sybil,
        // 3 whitewash, 4 oscillator, 5 front.
        const auto& c_ring = hirep_cells[1].counters;
        const auto& c_sybil = hirep_cells[2].counters;
        const auto& c_wash = hirep_cells[3].counters;
        const auto& c_osc = hirep_cells[4].counters;
        const auto& c_front = hirep_cells[5].counters;
        result.checks.push_back(
            {"every strategy fired against hiREP (engine counters)",
             c_ring.ring_recruits > 0 && c_ring.ring_targets_marked > 0 &&
                 c_sybil.sybil_joins > 0 &&
                 c_sybil.sybil_agent_corruptions > 0 &&
                 c_wash.whitewash_rotations > 0 &&
                 c_osc.oscillator_defections > 0 &&
                 c_front.front_recruits > 0,
             "ring=" + std::to_string(c_ring.ring_recruits) +
                 " sybil=" + std::to_string(c_sybil.sybil_joins) +
                 " wash=" + std::to_string(c_wash.whitewash_rotations) +
                 " osc=" + std::to_string(c_osc.oscillator_defections) +
                 " front=" + std::to_string(c_front.front_recruits)});
        result.checks.push_back(
            {"adversarial replay is deterministic: byte-identical records "
             "(ring strategy, two runs)",
             hirep_cells[1].fingerprint == ring_replay.fingerprint, ""});
        double hirep_max = 0.0;
        for (std::size_t i = 1; i < hirep_cells.size(); ++i) {
          hirep_max = std::max(hirep_max, hirep_cells[i].mse);
        }
        result.checks.push_back(
            {"hiREP stays accurate under every campaign (MSE < 0.15)",
             hirep_max < 0.15, "worst=" + fmt(hirep_max)});
        // Whitewash asymmetry, measured on the attacked peers themselves:
        // hiREP's §3.5 rotation migrates standing (rotations fire, tracking
        // holds), while the identity-keyed baselines actually reset and
        // relapse toward the neutral prior on every shed identity.
        const double hirep_wash = hirep_cells[3].wash_mse;
        const double abs_wash = abs_cells[3].wash_mse;
        const double gossip_wash = gossip_cells[3].wash_mse;
        result.checks.push_back(
            {"whitewash immunity: hiREP keeps tracking whitewashed peers "
             "(§3.5 rotations) while identity-keyed baselines relapse",
             hirep_cells[3].counters.whitewash_rotations > 0 &&
                 abs_cells[3].counters.whitewash_resets > 0 &&
                 hirep_wash < abs_wash && hirep_wash < gossip_wash,
             "hirep=" + fmt(hirep_wash) + " abs_trust=" + fmt(abs_wash) +
                 " diff_gossip=" + fmt(gossip_wash) + " rotations=" +
                 std::to_string(
                     hirep_cells[3].counters.whitewash_rotations) +
                 " resets=" +
                 std::to_string(abs_cells[3].counters.whitewash_resets)});
        // Overall comparison: under every campaign hiREP beats the
        // flooding comparator the paper plots (pure voting).
        bool beats_voting = true;
        for (std::size_t i = 0; i < hirep_cells.size(); ++i) {
          if (hirep_cells[i].mse >= voting_mse[i]) beats_voting = false;
        }
        result.checks.push_back(
            {"hiREP beats pure voting under every campaign", beats_voting,
             ""});
        (void)trustme_mse;
        return result;
      });
}
