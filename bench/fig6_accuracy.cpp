// Figure 6 — trust accuracy vs transactions (10% malicious nodes):
// sliding-window MSE for pure voting and hiREP with eviction thresholds
// 0.4 / 0.6 / 0.8 (the paper's hirep-4/6/8 curves).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hirep;
  return bench::run_exhibit(
      argc, argv,
      "Figure 6 — Trust accuracy (MSE) vs transactions, voting vs "
      "hirep-4/6/8",
      [](sim::Scenario& sc, const util::Config& cfg) {
        if (!cfg.has("transactions")) sc.transactions(500);
      },
      [](const sim::Scenario& sc) { return sim::run_fig6_accuracy(sc.params()); });
}
