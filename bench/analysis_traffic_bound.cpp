// §4.1 analysis — per-transaction trust traffic vs the closed form.  The
// paper derives 2c(o_i+o_j) = O(c) messages per transaction; in this
// implementation each responding agent costs exactly 3(o+1) messages
// (request leg, response leg, report leg — o relay hops + the final hop
// each).  The bench verifies the measured counts match the closed form
// EXACTLY across a c x o sweep.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hirep;
  return bench::run_exhibit(
      argc, argv,
      "Analysis §4.1 — measured trust traffic per transaction vs closed "
      "form 3(o+1) per responder",
      [](sim::Scenario&, const util::Config&) {},
      [](const sim::Scenario& sc) { return sim::run_traffic_bound(sc.params()); });
}
