// Figure 8 — cumulative response time of the trust-value request process:
// pure voting (timed flood + serial vote ingestion) vs hiREP with 10/7/5
// onion relays, on the same queueing model (link latency U[10,40]ms +
// 1ms serial processing per message per node).
#include "bench_common.hpp"
#include "sim/response_time.hpp"

int main(int argc, char** argv) {
  using namespace hirep;
  return bench::run_exhibit(
      argc, argv,
      "Figure 8 — Cumulative response time (ms), voting vs hirep-10/7/5",
      [](sim::Scenario& sc, const util::Config& cfg) {
        if (!cfg.has("transactions")) sc.transactions(200);
      },
      [](const sim::Scenario& sc) { return sim::run_fig8_response(sc.params()); });
}
