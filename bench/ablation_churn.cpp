// Ablation — backup agent cache (§3.4.3) under agent churn.  Agents go
// offline/online between transactions; with the backup cache a peer can
// restore a returning good agent by a single probe instead of paying a
// fresh token+TTL discovery walk.  Sweeps churn rate with the cache on
// (backup_capacity=20) and off (0) and reports accuracy + refill traffic.
#include <iostream>

#include "bench_common.hpp"
#include "hirep/system.hpp"
#include "util/stats.hpp"

namespace {

struct ChurnOutcome {
  double mse = 0.0;
  double discovery_msgs_per_txn = 0.0;
};

ChurnOutcome run_with_churn(const hirep::sim::Params& params, double churn,
                            std::size_t backup_capacity) {
  using namespace hirep;
  auto opts = params.hirep_options();
  opts.backup_capacity = backup_capacity;
  core::HirepSystem system(opts);
  util::Rng churn_rng(params.seed ^ 0xc40fefeULL);

  // Track every agent node so we can toggle it.
  const auto agents = system.truth().agent_capable_nodes();
  const auto discovery_before =
      system.overlay().metrics().of(net::MessageKind::kAgentDiscovery) +
      system.overlay().metrics().of(net::MessageKind::kControl);

  util::MseAccumulator mse;
  const std::size_t txns = params.transactions;
  for (std::size_t t = 0; t < txns; ++t) {
    // Churn step: offline agents return with probability 0.5; online ones
    // leave with the churn probability.
    for (auto a : agents) {
      if (system.agent_online(a)) {
        if (churn_rng.chance(churn)) system.set_agent_online(a, false);
      } else if (churn_rng.chance(0.5)) {
        system.set_agent_online(a, true);
      }
    }
    const auto requestor =
        static_cast<net::NodeIndex>(churn_rng.below(50));
    net::NodeIndex provider = requestor;
    while (provider == requestor) {
      provider = static_cast<net::NodeIndex>(churn_rng.below(200));
    }
    const auto rec = system.run_transaction(requestor, provider);
    if (t >= txns / 2) mse.add(rec.estimate, rec.truth_value);
  }
  const auto discovery_after =
      system.overlay().metrics().of(net::MessageKind::kAgentDiscovery) +
      system.overlay().metrics().of(net::MessageKind::kControl);
  return {mse.mse(), static_cast<double>(discovery_after - discovery_before) /
                         static_cast<double>(txns)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hirep;
  return bench::run_exhibit(
      argc, argv,
      "Ablation — backup agent cache under churn (accuracy + maintenance "
      "traffic)",
      [](sim::Scenario& sc, const util::Config& cfg) {
        if (!cfg.has("network_size")) sc.network_size(400);
        if (!cfg.has("transactions")) sc.transactions(300);
      },
      [](const sim::Scenario& sc) -> sim::ExperimentResult {
        const sim::Params& params = sc.params();
        util::Table table({"churn_rate", "mse_with_cache", "mse_no_cache",
                           "maint_msgs_with_cache", "maint_msgs_no_cache"});
        double maint_with = 0, maint_without = 0;
        for (double churn : {0.0, 0.02, 0.05, 0.10}) {
          const auto with_cache = run_with_churn(params, churn, 20);
          const auto no_cache = run_with_churn(params, churn, 0);
          if (churn == 0.10) {
            maint_with = with_cache.discovery_msgs_per_txn;
            maint_without = no_cache.discovery_msgs_per_txn;
          }
          table.add_row({churn, with_cache.mse, no_cache.mse,
                         with_cache.discovery_msgs_per_txn,
                         no_cache.discovery_msgs_per_txn});
        }
        sim::ExperimentResult result{std::move(table), {}};
        result.checks.push_back(
            {"backup cache reduces maintenance traffic under heavy churn",
             maint_with < maint_without,
             "with=" + std::to_string(maint_with) + " without=" +
                 std::to_string(maint_without)});
        const auto col = result.table.numeric_column("mse_with_cache");
        result.checks.push_back(
            {"accuracy stays under 0.15 MSE across all churn rates (cache on)",
             *std::max_element(col.begin(), col.end()) < 0.15, ""});
        return result;
      });
}
