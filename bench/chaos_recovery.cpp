// Chaos recovery — accuracy dip and reconvergence under a deterministic
// fault schedule: a scripted mass-crash of reputation agents (restarted
// later) followed by a group partition (healed later), with the reliable
// request channel retrying and the community quarantining unresponsive
// agents (DESIGN.md §10).
//
// The same pre-drawn workload runs twice — once fault-free, once under the
// chaos schedule — and the chaotic run repeats a third time to prove the
// replay is byte-identical (same seed + schedule => same records, bit for
// bit).  Failover and retry counters land in the obs registry (and thus
// the json= document) under hirep.recovery.*, net.reliable.*, sim.chaos.*.
//
//   ./build/bench/chaos_recovery network_size=200 transactions=240
//       crypto=fast json=out.json
//   fake_clock=1 pins the obs timers to a counter so two identical runs
//   write byte-identical json documents (the CI chaos-smoke check).
#include <algorithm>
#include <bit>
#include <span>
#include <string_view>
#include <string>

#include "bench_common.hpp"
#include "hirep/system.hpp"
#include "sim/chaos.hpp"
#include "sim/windowed_mse.hpp"

namespace {

using namespace hirep;

constexpr std::uint64_t kWorkloadSalt = 0x5eedba5eca11f00dULL;

/// Pool-aware workload, pre-drawn like the figure runners so the baseline
/// and chaos runs (and the replay) execute the identical pair sequence.
std::vector<std::pair<net::NodeIndex, net::NodeIndex>> draw_pairs(
    const sim::Params& p) {
  util::Rng rng(p.seed ^ kWorkloadSalt);
  const std::size_t rn = p.requestor_pool
                             ? std::min(p.requestor_pool, p.network_size)
                             : p.network_size;
  const std::size_t pn = p.provider_pool
                             ? std::min(p.provider_pool, p.network_size)
                             : p.network_size;
  std::vector<std::pair<net::NodeIndex, net::NodeIndex>> pairs;
  pairs.reserve(p.transactions);
  for (std::size_t i = 0; i < p.transactions; ++i) {
    const auto r = static_cast<net::NodeIndex>(rng.below(rn));
    auto q = r;
    while (q == r) q = static_cast<net::NodeIndex>(rng.below(pn));
    pairs.emplace_back(r, q);
  }
  return pairs;
}

struct RunResult {
  std::vector<core::HirepSystem::TransactionRecord> records;
  std::vector<double> mse;  ///< windowed MSE after every transaction
  core::HirepSystem::RecoveryCounters recovery;
  net::ReliableChannel::Stats reliable;
  sim::ChaosEngine::Counters chaos;  ///< zeroes when chaos=off
};

/// One full run: transaction-granular batches so the chaos tick advances
/// once per completed transaction (the finest replayable schedule).
RunResult run_once(const sim::Params& p) {
  core::HirepSystem system(p.hirep_options());
  const auto chaos = sim::install_chaos(system, p);
  const auto exec = sim::Scenario(p).execution_policy();
  const auto pairs = draw_pairs(p);

  RunResult out;
  out.records.reserve(pairs.size());
  sim::WindowedMse window(p.mse_window);
  const std::span<const std::pair<net::NodeIndex, net::NodeIndex>> all(pairs);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto recs = system.run_transactions(all.subspan(i, 1), exec);
    window.add(recs[0].estimate, recs[0].truth_value);
    out.mse.push_back(window.mse());
    out.records.push_back(recs[0]);
    if (chaos) chaos->advance_to(i + 1);
  }
  out.recovery = system.recovery_counters();
  out.reliable = system.reliable().stats();
  if (chaos) out.chaos = chaos->counters();
  return out;
}

bool identical(const core::HirepSystem::TransactionRecord& a,
               const core::HirepSystem::TransactionRecord& b) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  return a.requestor == b.requestor && a.provider == b.provider &&
         bits(a.estimate) == bits(b.estimate) &&
         bits(a.truth_value) == bits(b.truth_value) &&
         bits(a.outcome) == bits(b.outcome) && a.responses == b.responses &&
         a.trust_messages == b.trust_messages;
}

}  // namespace

int main(int argc, char** argv) {
  // Deterministic obs clock (fake_clock=1): two identical invocations then
  // write byte-identical json documents (the CI chaos-smoke replay check).
  // Installed before run_exhibit so every harness timer sees the same
  // clock from its first reading.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "fake_clock=1") {
      obs::set_clock_for_testing(+[]() -> std::uint64_t {
        static std::uint64_t fake_ns = 0;
        return fake_ns += 1'000'000;
      });
    }
  }
  return bench::run_exhibit(
      argc, argv,
      "Chaos recovery — accuracy dip and reconvergence under agent crash + "
      "partition schedules (deterministic replay)",
      [](sim::Scenario& sc, const util::Config& cfg) {
        if (!cfg.has("network_size")) sc.network_size(200);
        if (!cfg.has("transactions")) sc.transactions(240);
        sim::Params& p = sc.params();
        if (!cfg.has("mse_window")) p.mse_window = 40;
        if (!cfg.has("chaos")) p.chaos = "on";
        // Default schedule scales with the horizon: crash at 1/4, restart
        // at 1/2, partition at 5/8, heal at 3/4 — each fault gets a
        // recovery span before the next one (or the end) is measured.
        const std::size_t total = p.transactions;
        if (!cfg.has("chaos_crash_at")) p.chaos_crash_at = total / 4;
        if (!cfg.has("chaos_restart_at")) p.chaos_restart_at = total / 2;
        if (!cfg.has("chaos_agent_crash_fraction")) {
          p.chaos_agent_crash_fraction = 0.3;
        }
        if (!cfg.has("chaos_partition_at")) {
          p.chaos_partition_at = (5 * total) / 8;
        }
        if (!cfg.has("chaos_heal_at")) p.chaos_heal_at = (3 * total) / 4;
        if (!cfg.has("chaos_partition_fraction")) {
          p.chaos_partition_fraction = 0.3;
        }
        if (!cfg.has("retry_max_attempts")) p.retry_max_attempts = 3;
        if (!cfg.has("retry_backoff_ms")) p.retry_backoff_ms = 1.0;
        if (!cfg.has("retry_jitter_ms")) p.retry_jitter_ms = 0.5;
        if (!cfg.has("min_quorum")) {
          p.min_quorum = (p.trusted_agents * 4) / 5;
        }
        // Consumed in main() (the clock must be pinned before the harness
        // timers start); read here only so the unused-parameter scan and
        // the json config echo see the key.
        (void)cfg.get_int("fake_clock", 0);
      },
      [](const sim::Scenario& sc) -> sim::ExperimentResult {
        const sim::Params& p = sc.params();
        sim::Params calm = p;
        calm.chaos = "off";

        const RunResult baseline = run_once(calm);
        const RunResult chaotic = run_once(p);
        const RunResult replay = run_once(p);

        std::size_t mismatches = 0;
        for (std::size_t i = 0; i < chaotic.records.size(); ++i) {
          mismatches += !identical(chaotic.records[i], replay.records[i]);
        }

        // Measurement points around the schedule (all indices are "after
        // transaction t", clamped into range for tiny horizons).
        const auto at = [&](std::size_t t) {
          if (chaotic.mse.empty()) return 0.0;
          const std::size_t i = t == 0 ? 0 : t - 1;
          return chaotic.mse[std::min(i, chaotic.mse.size() - 1)];
        };
        const double pre_crash = at(p.chaos_crash_at);
        const double post_restart = at(p.chaos_partition_at);
        const double post_heal = chaotic.mse.empty() ? 0.0
                                                     : chaotic.mse.back();

        util::Table table({"tick", "phase", "chaos_mse", "baseline_mse"});
        const auto phase_of = [&](std::size_t t) -> std::string {
          if (p.chaos_crash_at && t <= p.chaos_crash_at) return "pre-fault";
          if (p.chaos_restart_at && t <= p.chaos_restart_at) return "outage";
          if (p.chaos_partition_at && t <= p.chaos_partition_at) {
            return "recovery";
          }
          if (p.chaos_heal_at && t <= p.chaos_heal_at) return "partition";
          return "post-heal";
        };
        const std::size_t step = std::max<std::size_t>(1, p.mse_window / 2);
        for (std::size_t t = step; t <= chaotic.mse.size(); t += step) {
          table.add_row({static_cast<std::int64_t>(t), phase_of(t),
                         chaotic.mse[t - 1], baseline.mse[t - 1]});
        }

        sim::ExperimentResult result{std::move(table), {}};
        result.checks.push_back(
            {"scripted schedule fired: agents crashed and restarted",
             chaotic.chaos.scripted_crashes > 0 && chaotic.chaos.restarts > 0,
             "crashes=" + std::to_string(chaotic.chaos.scripted_crashes) +
                 " restarts=" + std::to_string(chaotic.chaos.restarts) +
                 " partitions=" + std::to_string(chaotic.chaos.partitions) +
                 " heals=" + std::to_string(chaotic.chaos.heals)});
        result.checks.push_back(
            {"failover engaged: retries, quarantines, degraded queries",
             chaotic.reliable.retries > 0 && chaotic.recovery.quarantines > 0 &&
                 chaotic.recovery.degraded_queries > 0,
             "retries=" + std::to_string(chaotic.reliable.retries) +
                 " timeouts=" + std::to_string(chaotic.reliable.timeouts) +
                 " quarantines=" +
                 std::to_string(chaotic.recovery.quarantines) +
                 " degraded=" +
                 std::to_string(chaotic.recovery.degraded_queries)});
        result.checks.push_back(
            {"community healed: quarantines lifted, backups promoted, or "
             "agents re-discovered",
             chaotic.recovery.probations_cleared +
                     chaotic.recovery.backup_promotions +
                     chaotic.recovery.rediscoveries >
                 0,
             "probations_cleared=" +
                 std::to_string(chaotic.recovery.probations_cleared) +
                 " backup_promotions=" +
                 std::to_string(chaotic.recovery.backup_promotions) +
                 " rediscoveries=" +
                 std::to_string(chaotic.recovery.rediscoveries)});
        result.checks.push_back(
            {"reconverges after the agent mass-crash is restarted",
             post_restart <= 1.5 * pre_crash + 0.05,
             "pre_crash_mse=" + std::to_string(pre_crash) +
                 " post_restart_mse=" + std::to_string(post_restart)});
        result.checks.push_back(
            {"reconverges after the partition heals",
             post_heal <= 1.5 * pre_crash + 0.05,
             "pre_crash_mse=" + std::to_string(pre_crash) +
                 " post_heal_mse=" + std::to_string(post_heal)});
        result.checks.push_back(
            {"chaos replay is deterministic: byte-identical records",
             mismatches == 0,
             std::to_string(mismatches) + " of " +
                 std::to_string(chaotic.records.size()) + " records differ"});
        return result;
      });
}
