// Figure 5 — trust-query traffic cost of hiREP vs the pure-voting process:
// cumulative messages vs transactions, for voting at average degree 2/3/4
// and hiREP (degree-independent).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hirep;
  return bench::run_exhibit(
      argc, argv,
      "Figure 5 — Trust query traffic cost of hiREP vs pure voting "
      "(cumulative messages)",
      [](sim::Scenario& sc, const util::Config& cfg) {
        if (!cfg.has("transactions")) sc.transactions(200);
      },
      [](const sim::Scenario& sc) { return sim::run_fig5_traffic(sc.params()); });
}
