// Ablation — discovery token budget (§3.4.1).  How many trusted-agent
// lists must a joining peer collect before its selection quality
// saturates?  Sweeps the token count and reports list fill, the fraction
// of honest agents selected, and the discovery traffic paid.
#include <iostream>

#include "bench_common.hpp"
#include "hirep/system.hpp"

int main(int argc, char** argv) {
  using namespace hirep;
  return bench::run_exhibit(
      argc, argv,
      "Ablation — discovery token budget vs selection quality",
      [](sim::Scenario& sc, const util::Config& cfg) {
        if (!cfg.has("network_size")) sc.network_size(500);
      },
      [](const sim::Scenario& sc) -> sim::ExperimentResult {
        const sim::Params& params = sc.params();
        util::Table table({"tokens", "avg_list_fill", "honest_fraction",
                           "discovery_msgs_per_peer"});
        std::vector<double> fills, qualities;
        for (std::uint32_t tokens : {1u, 2u, 5u, 10u, 20u}) {
          sim::Params p = params;
          p.tokens = tokens;
          core::HirepSystem system(p.hirep_options());
          double fill = 0.0, honest = 0.0, rated = 0.0;
          for (net::NodeIndex v = 0; v < system.node_count(); ++v) {
            const auto& list = system.peer(v).agents();
            fill += static_cast<double>(list.size());
            for (const auto& e : list.entries()) {
              const auto ip = system.ip_of(e.agent_id);
              honest += !system.truth().poor_evaluator(*ip);
              rated += 1.0;
            }
          }
          const auto n = static_cast<double>(system.node_count());
          const double msgs =
              static_cast<double>(system.overlay().metrics().of(
                  net::MessageKind::kAgentDiscovery)) / n;
          fills.push_back(fill / n / static_cast<double>(p.trusted_agents));
          qualities.push_back(rated > 0 ? honest / rated : 0.0);
          table.add_row({static_cast<std::int64_t>(tokens), fills.back(),
                         qualities.back(), msgs});
        }
        sim::ExperimentResult result{std::move(table), {}};
        result.checks.push_back(
            {"list fill grows with token budget",
             fills.back() > fills.front(),
             "fill@1=" + std::to_string(fills.front()) + " fill@20=" +
                 std::to_string(fills.back())});
        result.checks.push_back(
            {"10 tokens (Table 1 default) already near saturation",
             fills[3] > 0.9 * fills.back(), ""});
        return result;
      });
}
