// Ablation — onion length (§3.3 / Figure 8 trade-off).  More relays per
// onion buys a larger anonymity set (an observer must compromise o relays
// to link requestor and agent) at a linear cost in both per-transaction
// traffic and response time.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "sim/response_time.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace hirep;
  return bench::run_exhibit(
      argc, argv,
      "Ablation — onion relay count: anonymity vs traffic vs latency",
      [](sim::Scenario& sc, const util::Config& cfg) {
        if (!cfg.has("network_size")) sc.network_size(500);
      },
      [](const sim::Scenario& sc) -> sim::ExperimentResult {
        const sim::Params& params = sc.params();
        util::Table table({"relays", "msgs_per_txn", "mean_response_ms",
                           "relay_compromise_probability"});
        std::vector<double> msgs, latency;
        for (std::size_t o : {0u, 2u, 5u, 7u, 10u}) {
          sim::Params p = params;
          p.relays_per_onion = o;
          core::HirepSystem system(p.hirep_options());
          util::RunningStats per_txn, response;
          for (int i = 0; i < 30; ++i) {
            const auto requestor = static_cast<net::NodeIndex>(
                system.rng().below(system.node_count()));
            net::NodeIndex provider = requestor;
            while (provider == requestor) {
              provider = static_cast<net::NodeIndex>(
                  system.rng().below(system.node_count()));
            }
            response.add(
                sim::hirep_query_response_ms(system, requestor, provider));
            per_txn.add(static_cast<double>(
                system.run_transaction(requestor, provider).trust_messages));
          }
          // P(an adversary owning 10% of nodes controls the WHOLE circuit).
          const double compromise = std::pow(0.1, static_cast<double>(o));
          msgs.push_back(per_txn.mean());
          latency.push_back(response.mean());
          table.add_row({static_cast<std::int64_t>(o), per_txn.mean(),
                         response.mean(), compromise});
        }
        sim::ExperimentResult result{std::move(table), {}};
        result.checks.push_back(
            {"traffic grows ~linearly with relay count",
             msgs.back() > 3.0 * msgs.front(), ""});
        result.checks.push_back(
            {"response time increases monotonically with relay count",
             std::is_sorted(latency.begin(), latency.end()), ""});
        return result;
      });
}
