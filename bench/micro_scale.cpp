// Scale engine — serial vs parallel run_transactions() on identical
// systems (DESIGN.md §9).  A fig5-shaped workload (whole-population random
// pairs) is pre-drawn once, then executed twice from identical bootstrap
// states: once serially, once through the conflict-free-prefix-wave
// parallel engine.  Reported: wall-clock per mode, throughput, speedup —
// and the record streams are compared element by element, because the
// engine's contract is byte-identical results, not approximately-equal
// ones.
//
//   ./build/bench/micro_scale network_size=10000 transactions=2000
//       crypto=fast threads=0 json=out.json
#include <bit>
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "hirep/system.hpp"

namespace {

using namespace hirep;

constexpr std::uint64_t kWorkloadSalt = 0x5eedba5eca11f00dULL;

std::vector<std::pair<net::NodeIndex, net::NodeIndex>> draw_pairs(
    const sim::Params& p) {
  util::Rng rng(p.seed ^ kWorkloadSalt);
  std::vector<std::pair<net::NodeIndex, net::NodeIndex>> pairs;
  pairs.reserve(p.transactions);
  for (std::size_t i = 0; i < p.transactions; ++i) {
    const auto r = static_cast<net::NodeIndex>(rng.below(p.network_size));
    auto q = r;
    while (q == r) {
      q = static_cast<net::NodeIndex>(rng.below(p.network_size));
    }
    pairs.emplace_back(r, q);
  }
  return pairs;
}

struct ModeRun {
  std::vector<core::HirepSystem::TransactionRecord> records;
  double seconds = 0.0;
};

ModeRun run_mode(const sim::Scenario& sc,
                 std::span<const std::pair<net::NodeIndex, net::NodeIndex>>
                     pairs,
                 const core::Executor& exec) {
  core::HirepSystem system(sc.hirep_options());
  const auto start = std::chrono::steady_clock::now();
  ModeRun run;
  run.records = system.run_transactions(pairs, exec);
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

bool identical(const core::HirepSystem::TransactionRecord& a,
               const core::HirepSystem::TransactionRecord& b) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  return a.requestor == b.requestor && a.provider == b.provider &&
         bits(a.estimate) == bits(b.estimate) &&
         bits(a.truth_value) == bits(b.truth_value) &&
         bits(a.outcome) == bits(b.outcome) && a.responses == b.responses &&
         a.trust_messages == b.trust_messages;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_exhibit(
      argc, argv,
      "Scale engine — serial vs parallel transaction batches "
      "(byte-identical records, wall-clock speedup)",
      [](sim::Scenario& sc, const util::Config& cfg) {
        if (!cfg.has("network_size")) sc.network_size(10'000);
        if (!cfg.has("transactions")) sc.transactions(2'000);
        // Fig5-shaped whole-population workload; the figure pools are a
        // workload knob for the accuracy curves, not for this engine bench.
        sc.params().requestor_pool = 0;
        sc.params().provider_pool = 0;
      },
      [](const sim::Scenario& sc) -> sim::ExperimentResult {
        const sim::Params& p = sc.params();
        const auto pairs = draw_pairs(p);

        // Executors come from Scenario (the one construction path), so the
        // same downgrade/validation diagnostics apply as everywhere else.
        // shards(0): a user-supplied shard knob is illegal (by design) on
        // the non-sharded executors this exhibit compares.
        const auto serial_exec = sim::Scenario(sc)
                                     .execution("serial")
                                     .shards(0)
                                     .validate()
                                     .execution_policy();
        const auto parallel_exec = sim::Scenario(sc)
                                       .execution("parallel")
                                       .shards(0)
                                       .threads(p.threads)
                                       .validate()
                                       .execution_policy();

        const auto serial = run_mode(sc, pairs, serial_exec);
        const auto parallel = run_mode(sc, pairs, parallel_exec);

        std::size_t mismatches = 0;
        for (std::size_t i = 0; i < serial.records.size(); ++i) {
          mismatches += !identical(serial.records[i], parallel.records[i]);
        }
        const double txns = static_cast<double>(p.transactions);
        const double speedup =
            parallel.seconds > 0.0 ? serial.seconds / parallel.seconds : 0.0;
        const unsigned hw = std::thread::hardware_concurrency();
        const std::size_t workers =
            p.threads ? p.threads : (hw ? hw : 1);

        util::Table table({"mode", "threads", "seconds", "txns_per_sec"});
        table.add_row({std::string("serial"), static_cast<std::int64_t>(1),
                       serial.seconds, txns / serial.seconds});
        table.add_row({std::string("parallel"),
                       static_cast<std::int64_t>(workers), parallel.seconds,
                       txns / parallel.seconds});
        table.add_row({std::string("speedup"),
                       static_cast<std::int64_t>(workers), speedup, 0.0});

        sim::ExperimentResult result{std::move(table), {}};
        result.checks.push_back(
            {"parallel records are byte-identical to serial",
             mismatches == 0,
             std::to_string(mismatches) + " of " +
                 std::to_string(serial.records.size()) + " records differ"});
        // The speedup target applies on real multi-core hardware; a box
        // with fewer than 4 threads cannot express it, so record the
        // measurement and pass the claim vacuously there.
        const bool enough_cores = hw >= 4;
        result.checks.push_back(
            {"parallel is >= 3x faster than serial (on >= 4 hardware "
             "threads)",
             !enough_cores || speedup >= 3.0,
             "speedup=" + std::to_string(speedup) + " hardware_threads=" +
                 std::to_string(hw) +
                 (enough_cores ? "" : " (< 4: measurement recorded, "
                                      "threshold not applicable)")});
        return result;
      });
}
