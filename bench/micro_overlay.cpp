// Micro-benchmarks for the overlay substrate: topology generation,
// flooding, token walks, the event queue, and the queueing model.
#include <benchmark/benchmark.h>

#include "net/event_sim.hpp"
#include "net/flood.hpp"
#include "net/topology.hpp"

namespace {

using namespace hirep;

void BM_PowerLawGeneration(benchmark::State& state) {
  for (auto _ : state) {
    util::Rng rng(1);
    benchmark::DoNotOptimize(
        net::power_law(rng, static_cast<std::size_t>(state.range(0)), 4.0));
  }
}
BENCHMARK(BM_PowerLawGeneration)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_Flood(benchmark::State& state) {
  util::Rng rng(2);
  net::Overlay overlay(net::power_law(rng, 2000, 4.0), net::LatencyParams{}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::flood(overlay, 0, static_cast<std::uint32_t>(state.range(0)),
                   net::MessageKind::kQuery));
  }
}
BENCHMARK(BM_Flood)->Arg(2)->Arg(4)->Arg(7);

void BM_TimedFlood(benchmark::State& state) {
  util::Rng rng(3);
  net::Overlay overlay(net::power_law(rng, 1000, 4.0), net::LatencyParams{}, 1);
  for (auto _ : state) {
    overlay.reset_time_state();
    benchmark::DoNotOptimize(
        net::timed_flood(overlay, 0, 4, 0.0, net::MessageKind::kQuery));
  }
}
BENCHMARK(BM_TimedFlood)->Unit(benchmark::kMicrosecond);

void BM_TokenWalk(benchmark::State& state) {
  util::Rng rng(4);
  net::Overlay overlay(net::power_law(rng, 1000, 4.0), net::LatencyParams{}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::token_walk(
        overlay, rng, 0, static_cast<std::uint32_t>(state.range(0)), 7,
        [](net::NodeIndex v) { return v % 3 == 0; },
        net::MessageKind::kAgentDiscovery));
  }
}
BENCHMARK(BM_TokenWalk)->Arg(5)->Arg(10)->Arg(50);

void BM_BfsDistances(benchmark::State& state) {
  util::Rng rng(5);
  const auto graph = net::power_law(rng, 5000, 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.bfs_distances(0));
  }
}
BENCHMARK(BM_BfsDistances)->Unit(benchmark::kMicrosecond);

void BM_EventSimThroughput(benchmark::State& state) {
  for (auto _ : state) {
    net::EventSim sim;
    util::Rng rng(6);
    for (int i = 0; i < state.range(0); ++i) {
      sim.schedule_at(rng.uniform(0.0, 1000.0), [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_EventSimThroughput)->Arg(1000)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_TimedSend(benchmark::State& state) {
  util::Rng rng(7);
  net::Overlay overlay(net::power_law(rng, 500, 4.0), net::LatencyParams{}, 1);
  double t = 0.0;
  for (auto _ : state) {
    t = overlay.timed_send(t, 0, 1, net::MessageKind::kControl);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TimedSend);

}  // namespace
