// Table 1 — simulation parameters: the resolved defaults with provenance
// (stated in the paper vs inferred; the available text's value column is
// partially garbled, see DESIGN.md).
#include <iostream>

#include "sim/scenario.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace hirep;
  try {
    const auto cfg = util::Config::from_args(argc, argv);
    if (cfg.help_requested()) {
      std::cout << "Prints Table 1 (simulation parameters). key=value "
                   "overrides are reflected in the output.\n\n"
                << sim::Scenario::help_text();
      return 0;
    }
    const auto scenario = sim::Scenario::from_config(cfg);
    std::cout << "== Table 1 — Simulation parameters ==\n\n";
    scenario.table1().print(std::cout);
    std::cout << "\n(stated) = value given in the paper text;  (inferred) = "
                 "reconstructed from prose/figures, overridable via "
                 "key=value.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
