// Shared scaffolding for the figure/table bench binaries: key=value CLI,
// figure-specific parameter defaults, uniform output, PASS/FAIL exit code,
// and optional machine-readable output via json=<path> (hirep-bench-v1,
// see sim/bench_json.hpp and EXPERIMENTS.md).
//
// Configuration flows through sim::Scenario: the declarative option table
// drives parsing, whole-config validation, and the --help listing, so a
// bench binary never hand-rolls a key lookup.  Keys the Scenario table
// does not know (and the bench did not consume itself) are reported by
// the unused-parameter scan.
#pragma once

#include <exception>
#include <functional>
#include <iostream>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "sim/bench_json.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"

namespace hirep::bench {

/// Runs one exhibit: parses overrides into a validated sim::Scenario,
/// applies `tune` for figure-specific defaults (only where the user did
/// not override), executes, prints, and returns a process exit code
/// (0 iff all qualitative claims held).  The scenario is re-validated
/// after `tune` so figure defaults obey the same rules as CLI input.
/// When json=<path> is supplied the exhibit table, claim checks, registry
/// snapshot, and phase timings are also written there — before the exit
/// code is computed, so the artifact exists even for failed claims.
inline int run_exhibit(
    int argc, char** argv, const std::string& title,
    const std::function<void(sim::Scenario&, const util::Config&)>& tune,
    const std::function<sim::ExperimentResult(const sim::Scenario&)>& runner) {
  try {
    const auto cfg = util::Config::from_args(argc, argv);
    if (cfg.help_requested()) {
      std::cout << title << "\nUsage: key=value overrides, e.g.\n"
                << "  network_size=1000 transactions=200 seed=1 seeds=3 "
                   "crypto=fast malicious_ratio=0.1 ...\n"
                << "  json=out.json   write a hirep-bench-v1 document\n\n"
                << sim::Scenario::help_text();
      return 0;
    }
    // Consume json= up front so it never trips the unused-parameter scan.
    const auto json_path = sim::json_output_path(cfg);
    std::optional<sim::ExperimentResult> result;
    {
      obs::ScopedTimer setup_and_run("bench");
      auto scenario = [&] {
        obs::ScopedTimer setup("setup");
        auto sc = sim::Scenario::from_config(cfg);
        tune(sc, cfg);
        sc.validate();
        return sc;
      }();
      obs::ScopedTimer run("run");
      result = runner(scenario);
    }
    sim::print_result(*result, title);
    if (!json_path.empty()) {
      sim::write_bench_json_file(json_path, title, *result, cfg,
                                 obs::Registry::global().snapshot());
    }
    for (const auto& key : cfg.unused_keys()) {
      std::cerr << "warning: unused parameter '" << key << "'\n";
    }
    return sim::all_hold(*result) ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace hirep::bench
