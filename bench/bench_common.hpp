// Shared scaffolding for the figure/table bench binaries: key=value CLI,
// figure-specific parameter defaults, uniform output, PASS/FAIL exit code.
#pragma once

#include <exception>
#include <functional>
#include <iostream>
#include <string>

#include "sim/experiment.hpp"
#include "sim/params.hpp"

namespace hirep::bench {

/// Runs one exhibit: parses overrides, applies `tune` for figure-specific
/// defaults (only where the user did not override), executes, prints, and
/// returns a process exit code (0 iff all qualitative claims held).
inline int run_exhibit(int argc, char** argv, const std::string& title,
                       const std::function<void(sim::Params&, const util::Config&)>& tune,
                       const std::function<sim::ExperimentResult(const sim::Params&)>& runner) {
  try {
    const auto cfg = util::Config::from_args(argc, argv);
    if (cfg.help_requested()) {
      std::cout << title << "\nUsage: key=value overrides, e.g.\n"
                << "  network_size=1000 transactions=200 seed=1 seeds=3 "
                   "crypto=fast|full malicious_ratio=0.1 ...\n"
                << "See sim/params.hpp for the full key list.\n";
      return 0;
    }
    auto params = sim::Params::from_config(cfg);
    tune(params, cfg);
    const auto result = runner(params);
    sim::print_result(result, title);
    for (const auto& key : cfg.unused_keys()) {
      std::cerr << "warning: unused parameter '" << key << "'\n";
    }
    return sim::all_hold(result) ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace hirep::bench
