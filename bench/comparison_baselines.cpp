// Beyond the paper's figures: six reputation architectures side by side —
// hiREP (hierarchical), pure voting (fully distributed polling,
// P2PREP-style), TrustMe-style (random THAs + double broadcast), a
// centralized RCA (Gupta et al.), Absolute Trust (weighted global fixed
// point, arXiv:1601.01419), and differential gossip (push-sum mass,
// arXiv:1210.4301) — on the same world parameters.
//
// Columns: trust messages per transaction, measured MSE after the same
// training budget, and what happens when the architecture's critical
// node(s) fail.
#include <iostream>

#include "baselines/absolute_trust.hpp"
#include "baselines/differential_gossip.hpp"
#include "baselines/rca.hpp"
#include "bench_common.hpp"
#include "sim/attacks.hpp"
#include "util/stats.hpp"

namespace {

using namespace hirep;

struct Row {
  double msgs_per_txn = 0.0;
  double mse = 0.0;
  std::string failure_note;
};

constexpr std::size_t kTrain = 400;
constexpr std::size_t kMeasure = 100;

Row run_hirep(const sim::Params& params) {
  core::HirepSystem system(params.hirep_options());
  util::MseAccumulator mse;
  std::uint64_t msgs = 0;
  for (std::size_t t = 0; t < kTrain + kMeasure; ++t) {
    const auto requestor =
        static_cast<net::NodeIndex>(system.rng().below(50));
    net::NodeIndex provider = requestor;
    while (provider == requestor) {
      provider = static_cast<net::NodeIndex>(system.rng().below(200));
    }
    const auto rec = system.run_transaction(requestor, provider);
    if (t >= kTrain) {
      mse.add(rec.estimate, rec.truth_value);
      msgs += rec.trust_messages;
    }
  }
  // Resilience probe: kill the 5 most popular agents, keep transacting.
  sim::dos_top_agents(system, 5);
  std::size_t responses = 0;
  for (int i = 0; i < 30; ++i) responses += system.run_transaction().responses;
  Row row;
  row.msgs_per_txn = static_cast<double>(msgs) / static_cast<double>(kMeasure);
  row.mse = mse.mse();
  row.failure_note = responses > 0 ? "degrades gracefully, self-heals"
                                   : "STALLED";
  return row;
}

Row run_voting(const sim::Params& params) {
  baselines::PureVotingSystem system(params.voting_options());
  util::MseAccumulator mse;
  std::uint64_t msgs = 0;
  for (std::size_t t = 0; t < kMeasure; ++t) {  // stateless: no training
    const auto rec = system.run_transaction();
    mse.add(rec.estimate, rec.truth_value);
    msgs += rec.trust_messages;
  }
  Row row;
  row.msgs_per_txn = static_cast<double>(msgs) / static_cast<double>(kMeasure);
  row.mse = mse.mse();
  row.failure_note = "no critical node, but floods everyone";
  return row;
}

Row run_trustme(const sim::Params& params) {
  baselines::TrustMeSystem system(params.trustme_options());
  util::MseAccumulator mse;
  std::uint64_t msgs = 0;
  for (std::size_t t = 0; t < kTrain + kMeasure; ++t) {
    // Concentrated provider pool so THAs accumulate reports.
    const auto requestor =
        static_cast<net::NodeIndex>(t % 50);
    const auto provider = static_cast<net::NodeIndex>(
        50 + t % 100);
    const auto rec = system.run_transaction(requestor, provider);
    if (t >= kTrain) {
      mse.add(rec.estimate, rec.truth_value);
      msgs += rec.trust_messages;
    }
  }
  Row row;
  row.msgs_per_txn = static_cast<double>(msgs) / static_cast<double>(kMeasure);
  row.mse = mse.mse();
  row.failure_note = "broadcasts twice per transaction";
  return row;
}

Row run_rca(const sim::Params& params) {
  baselines::RcaOptions options;
  options.nodes = params.network_size;
  options.seed = params.seed;
  options.world.malicious_ratio = params.malicious_ratio;
  baselines::RcaSystem system(options);
  util::MseAccumulator mse;
  std::uint64_t msgs = 0;
  for (std::size_t t = 0; t < kTrain + kMeasure; ++t) {
    const auto requestor = static_cast<net::NodeIndex>(1 + t % 50);
    const auto provider = static_cast<net::NodeIndex>(51 + t % 100);
    const auto rec = system.run_transaction(requestor, provider);
    if (t >= kTrain) {
      mse.add(rec.estimate, rec.truth_value);
      msgs += rec.trust_messages;
    }
  }
  system.set_rca_online(false);
  const auto dead = system.run_transaction();
  Row row;
  row.msgs_per_txn = static_cast<double>(msgs) / static_cast<double>(kMeasure);
  row.mse = mse.mse();
  row.failure_note = dead.answered ? "?" : "single point of failure: blind";
  return row;
}

Row run_absolute_trust(const sim::Params& params) {
  baselines::AbsoluteTrustSystem system(params.absolute_trust_options());
  util::MseAccumulator mse;
  std::uint64_t msgs = 0;
  for (std::size_t t = 0; t < kTrain + kMeasure; ++t) {
    // Random draws from concentrated pools so every provider accumulates
    // raters beyond a single fixed requestor (a lone malicious rater would
    // otherwise own that provider's score).
    const auto requestor =
        static_cast<net::NodeIndex>(system.rng().below(50));
    const auto provider =
        static_cast<net::NodeIndex>(50 + system.rng().below(100));
    const auto rec = system.run_transaction(requestor, provider);
    if (t >= kTrain) {
      mse.add(rec.estimate, rec.truth_value);
      msgs += rec.trust_messages;
    }
  }
  Row row;
  row.msgs_per_txn = static_cast<double>(msgs) / static_cast<double>(kMeasure);
  row.mse = mse.mse();
  row.failure_note = "identity-keyed: whitewash wipes standing";
  return row;
}

Row run_differential_gossip(const sim::Params& params) {
  baselines::DifferentialGossipSystem system(
      params.differential_gossip_options());
  util::MseAccumulator mse;
  std::uint64_t msgs = 0;
  for (std::size_t t = 0; t < kTrain + kMeasure; ++t) {
    const auto requestor =
        static_cast<net::NodeIndex>(system.rng().below(50));
    const auto provider =
        static_cast<net::NodeIndex>(50 + system.rng().below(100));
    const auto rec = system.run_transaction(requestor, provider);
    if (t >= kTrain) {
      mse.add(rec.estimate, rec.truth_value);
      msgs += rec.trust_messages;
    }
  }
  Row row;
  row.msgs_per_txn = static_cast<double>(msgs) / static_cast<double>(kMeasure);
  row.mse = mse.mse();
  row.failure_note = "anonymous mass: lost pushes lose opinions";
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_exhibit(
      argc, argv,
      "Comparison — hiREP vs pure voting, TrustMe-style, centralized RCA, "
      "Absolute Trust, and differential gossip (same world, 10% attackers)",
      [](sim::Scenario& sc, const util::Config& cfg) {
        if (!cfg.has("network_size")) sc.network_size(400);
      },
      [](const sim::Scenario& sc) -> sim::ExperimentResult {
        const sim::Params& params = sc.params();
        const Row hirep = run_hirep(params);
        const Row voting = run_voting(params);
        const Row trustme = run_trustme(params);
        const Row rca = run_rca(params);
        const Row abs_trust = run_absolute_trust(params);
        const Row gossip = run_differential_gossip(params);

        util::Table table({"system", "trust_msgs_per_txn", "mse",
                           "failure behaviour"});
        table.add_row({std::string("hiREP (hierarchical)"), hirep.msgs_per_txn,
                       hirep.mse, hirep.failure_note});
        table.add_row({std::string("pure voting (distributed)"),
                       voting.msgs_per_txn, voting.mse, voting.failure_note});
        table.add_row({std::string("TrustMe-style (random THAs)"),
                       trustme.msgs_per_txn, trustme.mse, trustme.failure_note});
        table.add_row({std::string("centralized RCA"), rca.msgs_per_txn,
                       rca.mse, rca.failure_note});
        table.add_row({std::string("Absolute Trust (global fixed point)"),
                       abs_trust.msgs_per_txn, abs_trust.mse,
                       abs_trust.failure_note});
        table.add_row({std::string("differential gossip (push-sum)"),
                       gossip.msgs_per_txn, gossip.mse, gossip.failure_note});

        sim::ExperimentResult result{std::move(table), {}};
        result.checks.push_back(
            {"hiREP is cheaper than both flooding architectures",
             hirep.msgs_per_txn < voting.msgs_per_txn &&
                 hirep.msgs_per_txn < trustme.msgs_per_txn,
             ""});
        result.checks.push_back(
            {"hiREP is at least as accurate as every decentralized baseline",
             hirep.mse <= voting.mse + 0.01 &&
                 hirep.mse <= trustme.mse + 0.01 &&
                 hirep.mse <= abs_trust.mse + 0.01 &&
                 hirep.mse <= gossip.mse + 0.01,
             "hirep=" + std::to_string(hirep.mse) + " voting=" +
                 std::to_string(voting.mse) + " trustme=" +
                 std::to_string(trustme.mse) + " abs_trust=" +
                 std::to_string(abs_trust.mse) + " gossip=" +
                 std::to_string(gossip.mse)});
        result.checks.push_back(
            {"gossip is the cheapest non-centralized dissemination; the "
             "global fixed point converges below the flooding baselines",
             gossip.msgs_per_txn < voting.msgs_per_txn &&
                 abs_trust.mse < voting.mse + 0.01,
             "gossip_msgs=" + std::to_string(gossip.msgs_per_txn) +
                 " voting_msgs=" + std::to_string(voting.msgs_per_txn) +
                 " abs_mse=" + std::to_string(abs_trust.mse)});
        result.checks.push_back(
            {"only the centralized design goes blind on a single failure "
             "(§3.1)",
             rca.failure_note.find("single point") != std::string::npos, ""});
        return result;
      });
}
