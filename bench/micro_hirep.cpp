// Micro-benchmarks for the hiREP core: bootstrap, transactions in both
// crypto modes, trust queries, agent ranking, and EigenTrust.
#include <benchmark/benchmark.h>

#include "hirep/system.hpp"
#include "trust/eigentrust.hpp"

namespace {

using namespace hirep;

core::HirepOptions options(std::size_t nodes, core::CryptoMode mode) {
  core::HirepOptions o;
  o.nodes = nodes;
  o.rsa_bits = 64;
  o.crypto = mode;
  o.seed = 1;
  return o;
}

void BM_SystemBootstrapFast(benchmark::State& state) {
  for (auto _ : state) {
    core::HirepSystem system(
        options(static_cast<std::size_t>(state.range(0)), core::CryptoMode::kFast));
    benchmark::DoNotOptimize(system.agent_count());
  }
}
BENCHMARK(BM_SystemBootstrapFast)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_SystemBootstrapFullCrypto(benchmark::State& state) {
  for (auto _ : state) {
    core::HirepSystem system(
        options(static_cast<std::size_t>(state.range(0)), core::CryptoMode::kFull));
    benchmark::DoNotOptimize(system.agent_count());
  }
}
BENCHMARK(BM_SystemBootstrapFullCrypto)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_TransactionFast(benchmark::State& state) {
  core::HirepSystem system(options(500, core::CryptoMode::kFast));
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run_transaction());
  }
}
BENCHMARK(BM_TransactionFast)->Unit(benchmark::kMicrosecond);

void BM_TransactionFullCrypto(benchmark::State& state) {
  core::HirepSystem system(options(200, core::CryptoMode::kFull));
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run_transaction());
  }
}
BENCHMARK(BM_TransactionFullCrypto)->Unit(benchmark::kMillisecond);

void BM_QueryTrustFast(benchmark::State& state) {
  core::HirepSystem system(options(500, core::CryptoMode::kFast));
  net::NodeIndex subject = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.query_trust(0, subject));
    subject = (subject % 400) + 1;
  }
}
BENCHMARK(BM_QueryTrustFast)->Unit(benchmark::kMicrosecond);

void BM_RankAndSelect(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<std::vector<core::AgentEntry>> lists;
  for (int l = 0; l < state.range(0); ++l) {
    std::vector<core::AgentEntry> list;
    for (int e = 0; e < 10; ++e) {
      core::AgentEntry entry;
      entry.agent_id.bytes[0] = static_cast<std::uint8_t>(rng.below(64));
      entry.agent_id.bytes[1] = static_cast<std::uint8_t>(l);
      entry.weight = rng.uniform();
      list.push_back(entry);
    }
    lists.push_back(std::move(list));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::rank_and_select(lists, 10, rng));
  }
}
BENCHMARK(BM_RankAndSelect)->Arg(10)->Arg(100);

void BM_ExpertiseUpdate(benchmark::State& state) {
  core::ListParams params;
  params.capacity = 10;
  core::TrustedAgentList list(params);
  crypto::NodeId id;
  id.bytes[0] = 1;
  core::AgentEntry entry;
  entry.agent_id = id;
  list.add(entry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.update_expertise(id, true));
  }
}
BENCHMARK(BM_ExpertiseUpdate);

void BM_EigenTrustCompute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  trust::EigenTrust et(n);
  for (std::size_t i = 0; i < n * 8; ++i) {
    et.add_local_trust(rng.below(n), rng.below(n), rng.uniform());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(et.compute());
  }
}
BENCHMARK(BM_EigenTrustCompute)->Arg(100)->Arg(500)->Unit(benchmark::kMicrosecond);

}  // namespace
