// Batched envelope pipeline — per-envelope send() vs arena-backed
// send_batch() on identical lossy transports (DESIGN.md §11).  A workload
// of N payload-carrying envelopes is pre-drawn once and pushed through two
// same-seed transports: one envelope at a time, and in fixed-size batches
// drained through the sorted-receipt path.  Reported: wall-clock per mode,
// throughput, and the per-envelope phase-timer means from the obs registry
// (transport/send vs transport/batch_build + transport/drain).  The
// delivery counters of both modes are compared field by field, because the
// batch contract is byte-identical outcomes, not approximately-equal ones
// — and the arena's slab-allocation count pins the allocator-pressure
// claim: the whole batched run must run out of a handful of warm slabs.
//
//   ./build/bench/micro_transport transactions=100000 network_size=1000
//       json=out.json
#include <array>
#include <chrono>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"

namespace {

using namespace hirep;

constexpr std::uint64_t kWorkloadSalt = 0xba7c4ed0e4e107e5ULL;
constexpr std::size_t kBatchSize = 512;
constexpr std::size_t kPayloadBytes = 64;

struct PlannedSend {
  net::NodeIndex sender;
  std::array<net::NodeIndex, 2> path;
};

std::vector<PlannedSend> draw_plan(const sim::Params& p) {
  util::Rng rng(p.seed ^ kWorkloadSalt);
  std::vector<PlannedSend> plan(p.transactions);
  for (auto& s : plan) {
    s.sender = static_cast<net::NodeIndex>(rng.below(p.network_size));
    s.path[0] = static_cast<net::NodeIndex>(rng.below(p.network_size));
    s.path[1] = static_cast<net::NodeIndex>(rng.below(p.network_size));
  }
  return plan;
}

net::DeliveryConfig lossy() {
  net::DeliveryConfig config;
  config.policy = net::DeliveryPolicyKind::kFaulty;
  config.faults.drop_rate = 0.1;
  config.faults.duplicate_rate = 0.05;
  return config;
}

/// The obs phase-timer state this bench differences across a mode run.
struct TimerSnapshot {
  std::uint64_t send_ns = 0, send_count = 0;
  std::uint64_t build_ns = 0, build_count = 0;
  std::uint64_t drain_ns = 0, drain_count = 0;

  static TimerSnapshot take() {
    auto& reg = obs::Registry::global();
    TimerSnapshot s;
    s.send_ns = reg.timer("transport/send").total_ns();
    s.send_count = reg.timer("transport/send").count();
    s.build_ns = reg.timer("transport/batch_build").total_ns();
    s.build_count = reg.timer("transport/batch_build").count();
    s.drain_ns = reg.timer("transport/drain").total_ns();
    s.drain_count = reg.timer("transport/drain").count();
    return s;
  }
};

struct ModeRun {
  net::EnvelopeMetrics::Counters counters;  ///< kReport totals
  double seconds = 0.0;
  double phase_ns_per_envelope = 0.0;  ///< obs timer mean (0 when obs off)
  std::uint64_t slab_allocs = 0;
};

ModeRun run_mode(const sim::Params& p, std::span<const PlannedSend> plan,
                 bool batched) {
  net::Overlay overlay(net::ring_lattice(p.network_size, 4), net::LatencyParams{},
                       p.seed);
  net::Transport transport(&overlay, lossy(), p.seed ^ 0xfee1600dULL);
  const util::Bytes payload(kPayloadBytes, 0x5a);

  const auto before = TimerSnapshot::take();
  const auto start = std::chrono::steady_clock::now();
  if (batched) {
    net::EnvelopeBatch batch = transport.make_batch();
    for (std::size_t at = 0; at < plan.size(); at += kBatchSize) {
      batch.clear();
      const std::size_t n = std::min(kBatchSize, plan.size() - at);
      for (std::size_t i = 0; i < n; ++i) {
        const auto& s = plan[at + i];
        batch.push(net::EnvelopeType::kReport, s.sender, s.path, payload);
      }
      transport.send_batch(batch);
    }
  } else {
    std::vector<net::NodeIndex> path(2);
    for (const auto& s : plan) {
      path[0] = s.path[0];
      path[1] = s.path[1];
      transport.send(net::EnvelopeType::kReport, s.sender, path, payload);
    }
  }
  ModeRun run;
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  const auto after = TimerSnapshot::take();
  const auto total = batched
                         ? (after.build_ns - before.build_ns) +
                               (after.drain_ns - before.drain_ns)
                         : after.send_ns - before.send_ns;
  run.phase_ns_per_envelope =
      static_cast<double>(total) / static_cast<double>(plan.size());
  run.counters = transport.envelopes().of(net::EnvelopeType::kReport);
  run.slab_allocs = transport.arena().slab_allocs();
  return run;
}

bool identical(const net::EnvelopeMetrics::Counters& a,
               const net::EnvelopeMetrics::Counters& b) {
  return a.sent == b.sent && a.delivered == b.delivered &&
         a.dropped == b.dropped && a.duplicated == b.duplicated &&
         a.hop_messages == b.hop_messages && a.suppressed == b.suppressed &&
         a.payload_bytes_sent == b.payload_bytes_sent &&
         a.payload_bytes_delivered == b.payload_bytes_delivered &&
         a.payload_bytes_dropped == b.payload_bytes_dropped;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_exhibit(
      argc, argv,
      "Batched envelope pipeline — per-envelope send vs arena-backed "
      "send_batch (byte-identical delivery, phase-timer and allocator "
      "pressure)",
      [](sim::Scenario& sc, const util::Config& cfg) {
        if (!cfg.has("network_size")) sc.network_size(1'000);
        if (!cfg.has("transactions")) sc.transactions(100'000);
      },
      [](const sim::Scenario& sc) -> sim::ExperimentResult {
        const sim::Params& p = sc.params();
        const auto plan = draw_plan(p);

        const auto per_envelope = run_mode(p, plan, /*batched=*/false);
        const auto batched = run_mode(p, plan, /*batched=*/true);

        const double n = static_cast<double>(plan.size());
        util::Table table({"mode", "seconds", "envelopes_per_sec",
                           "phase_ns_per_envelope"});
        table.add_row({std::string("per_envelope"), per_envelope.seconds,
                       n / per_envelope.seconds,
                       per_envelope.phase_ns_per_envelope});
        table.add_row({std::string("batched"), batched.seconds,
                       n / batched.seconds, batched.phase_ns_per_envelope});

        sim::ExperimentResult result{std::move(table), {}};
        result.checks.push_back(
            {"batched delivery counters are byte-identical to per-envelope",
             identical(per_envelope.counters, batched.counters),
             "sent=" + std::to_string(batched.counters.sent) + " delivered=" +
                 std::to_string(batched.counters.delivered) + " dropped=" +
                 std::to_string(batched.counters.dropped)});
        // The phase-timer claim needs the obs wiring compiled in; an
        // HIREP_OBS=OFF build records the measurement as 0 and passes the
        // claim vacuously.
        const bool timers_live = obs::kEnabled &&
                                 per_envelope.phase_ns_per_envelope > 0.0;
        result.checks.push_back(
            {"batched per-envelope phase time is below per-envelope send",
             !timers_live || batched.phase_ns_per_envelope <
                                 per_envelope.phase_ns_per_envelope,
             "send=" + std::to_string(per_envelope.phase_ns_per_envelope) +
                 "ns batched=" +
                 std::to_string(batched.phase_ns_per_envelope) + "ns" +
                 (timers_live ? "" : " (obs timers off: measurement "
                                     "recorded, threshold not applicable)")});
        // Allocator pressure: the per-batch rewind must keep the whole run
        // inside a handful of warm slabs even though it interns
        // N * (payload + path) bytes overall.
        result.checks.push_back(
            {"batched run stays within a handful of arena slabs",
             batched.slab_allocs <= 8,
             "slab_allocs=" + std::to_string(batched.slab_allocs) +
                 " payload_bytes=" +
                 std::to_string(batched.counters.payload_bytes_sent)});
        return result;
      });
}
