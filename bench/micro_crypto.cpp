// Micro-benchmarks for the crypto substrate: hashes, RSA primitives,
// hybrid encryption, and onion build/peel — the per-message costs behind
// the full-crypto simulation mode.
#include <benchmark/benchmark.h>

#include "crypto/prime.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "crypto/stream_cipher.hpp"
#include "onion/onion.hpp"

namespace {

using namespace hirep;

util::Bytes random_bytes(util::Rng& rng, std::size_t n) {
  util::Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

void BM_Sha1(benchmark::State& state) {
  util::Rng rng(1);
  const auto data = random_bytes(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Sha256(benchmark::State& state) {
  util::Rng rng(2);
  const auto data = random_bytes(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  util::Rng rng(3);
  const auto key = random_bytes(rng, 32);
  const auto msg = random_bytes(rng, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, msg));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_StreamCipher(benchmark::State& state) {
  util::Rng rng(4);
  crypto::StreamCipher::Key key{};
  auto data = random_bytes(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::StreamCipher cipher(key, 7);
    cipher.apply(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StreamCipher)->Arg(1024)->Arg(16384);

void BM_RsaKeygen(benchmark::State& state) {
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::rsa_generate(rng, static_cast<unsigned>(state.range(0))));
  }
}
BENCHMARK(BM_RsaKeygen)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_RsaSign(benchmark::State& state) {
  util::Rng rng(6);
  const auto pair = crypto::rsa_generate(rng, static_cast<unsigned>(state.range(0)));
  const auto msg = random_bytes(rng, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign(pair.priv, msg));
  }
  state.SetItemsProcessed(state.iterations());  // signatures per second
}
BENCHMARK(BM_RsaSign)->Arg(64)->Arg(128)->Arg(256);

// CRT-off exhibit: the same seeded key as BM_RsaSign with its CRT residues
// stripped, so the pair of rows isolates the Garner two-half-exponentiation
// win from everything else (same primes, same digest, same codec).
void BM_RsaSignNoCrt(benchmark::State& state) {
  util::Rng rng(6);
  auto pair = crypto::rsa_generate(rng, static_cast<unsigned>(state.range(0)));
  pair.priv.d_p = crypto::BigInt();
  pair.priv.d_q = crypto::BigInt();
  pair.priv.q_inv = crypto::BigInt();
  const auto msg = random_bytes(rng, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign(pair.priv, msg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RsaSignNoCrt)->Arg(64)->Arg(128)->Arg(256);

void BM_RsaVerify(benchmark::State& state) {
  util::Rng rng(7);
  const auto pair = crypto::rsa_generate(rng, static_cast<unsigned>(state.range(0)));
  const auto msg = random_bytes(rng, 64);
  const auto sig = crypto::rsa_sign(pair.priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify(pair.pub, msg, sig));
  }
  state.SetItemsProcessed(state.iterations());  // verifications per second
}
BENCHMARK(BM_RsaVerify)->Arg(64)->Arg(128)->Arg(256);

void BM_RsaHybridEncrypt(benchmark::State& state) {
  util::Rng rng(8);
  const auto pair = crypto::rsa_generate(rng, 128);
  const auto msg = random_bytes(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_encrypt_bytes(rng, pair.pub, msg));
  }
}
BENCHMARK(BM_RsaHybridEncrypt)->Arg(64)->Arg(1024);

void BM_OnionBuild(benchmark::State& state) {
  util::Rng rng(9);
  const auto owner = crypto::Identity::generate(rng, 128);
  std::vector<onion::RelayInfo> relays;
  std::vector<crypto::Identity> relay_ids;
  for (int i = 0; i < state.range(0); ++i) {
    relay_ids.push_back(crypto::Identity::generate(rng, 128));
    relays.push_back({static_cast<net::NodeIndex>(i + 1),
                      relay_ids.back().anonymity_public()});
  }
  std::uint64_t sq = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(onion::build_onion(rng, owner, 0, relays, sq++));
  }
}
BENCHMARK(BM_OnionBuild)->Arg(3)->Arg(5)->Arg(10);

void BM_OnionPeelFullCircuit(benchmark::State& state) {
  util::Rng rng(10);
  const auto owner = crypto::Identity::generate(rng, 128);
  std::vector<onion::RelayInfo> relays;
  std::vector<crypto::Identity> relay_ids;
  for (int i = 0; i < state.range(0); ++i) {
    relay_ids.push_back(crypto::Identity::generate(rng, 128));
    relays.push_back({static_cast<net::NodeIndex>(i + 1),
                      relay_ids.back().anonymity_public()});
  }
  const auto onion = onion::build_onion(rng, owner, 0, relays, 1);
  for (auto _ : state) {
    util::Bytes blob = onion.blob;
    for (std::size_t i = relay_ids.size(); i-- > 0;) {
      auto peeled = onion::peel(blob, relay_ids[i].anonymity_private());
      blob = std::move(peeled->inner);
    }
    benchmark::DoNotOptimize(onion::peel(blob, owner.anonymity_private()));
  }
}
BENCHMARK(BM_OnionPeelFullCircuit)->Arg(3)->Arg(5)->Arg(10);

void BM_BigIntMul(benchmark::State& state) {
  util::Rng rng(11);
  const auto a = crypto::BigInt::random_bits(rng, static_cast<unsigned>(state.range(0)));
  const auto b = crypto::BigInt::random_bits(rng, static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul)->Arg(128)->Arg(512)->Arg(2048);

void BM_BigIntPowmod(benchmark::State& state) {
  util::Rng rng(12);
  const auto bits = static_cast<unsigned>(state.range(0));
  const auto m = crypto::BigInt::random_bits(rng, bits);
  const auto base = crypto::BigInt::random_below(rng, m);
  const auto exp = crypto::BigInt::random_bits(rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigInt::powmod(base, exp, m));
  }
}
BENCHMARK(BM_BigIntPowmod)->Arg(64)->Arg(128)->Arg(256);

void BM_MillerRabin(benchmark::State& state) {
  util::Rng rng(13);
  const auto p = crypto::random_prime(rng, static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::is_probable_prime(p, rng, 8));
  }
}
BENCHMARK(BM_MillerRabin)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
