// Sharded scale engine — thread scaling of run_transactions() under
// execution=sharded (DESIGN.md §14).  Two stages:
//
//   1. Byte-identity spot check at small N: serial vs sharded(4) on
//      identical bootstrap states, records compared bit-for-bit.  This is
//      the same contract tests/hirep/shard_engine_test.cpp pins across 20
//      seeds; the bench embeds one instance so the exhibit is
//      self-certifying even at scales the test suite never constructs.
//   2. Thread sweep at full N: ONE system is constructed (at N=1,000,000
//      bootstrap dominates wall-clock, so the sweep shares it) and
//      consecutive fig5-shaped batches run under sharded executors with
//      1, 2, 4, 8 worker threads over a fixed shard partition.  Reported:
//      wall-clock, throughput, and scaling vs the 1-thread run.
//
//   ./build/bench/micro_shard network_size=100000 transactions=2000
//       crypto=fast shards=8 json=out.json
#include <bit>
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "hirep/system.hpp"

namespace {

using namespace hirep;

constexpr std::uint64_t kWorkloadSalt = 0x5eedba5eca11f00dULL;

std::vector<std::pair<net::NodeIndex, net::NodeIndex>> draw_pairs(
    std::uint64_t seed, std::size_t nodes, std::size_t count) {
  util::Rng rng(seed ^ kWorkloadSalt);
  std::vector<std::pair<net::NodeIndex, net::NodeIndex>> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto r = static_cast<net::NodeIndex>(rng.below(nodes));
    auto q = r;
    while (q == r) q = static_cast<net::NodeIndex>(rng.below(nodes));
    pairs.emplace_back(r, q);
  }
  return pairs;
}

bool identical(const core::HirepSystem::TransactionRecord& a,
               const core::HirepSystem::TransactionRecord& b) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  return a.requestor == b.requestor && a.provider == b.provider &&
         bits(a.estimate) == bits(b.estimate) &&
         bits(a.truth_value) == bits(b.truth_value) &&
         bits(a.outcome) == bits(b.outcome) && a.responses == b.responses &&
         a.trust_messages == b.trust_messages;
}

/// Stage 1: serial vs sharded on small identical systems; returns the
/// number of records that differ (0 = contract holds).
std::size_t identity_mismatches(const sim::Scenario& sc) {
  const std::size_t nodes =
      std::min<std::size_t>(sc.params().network_size, 1'000);
  auto small = sim::Scenario(sc).network_size(nodes).validate();
  const auto pairs = draw_pairs(sc.params().seed + 1, nodes, 400);

  // shards(0): the copied scenario carries the sweep's shard knob, which
  // is illegal (by design) on a non-sharded executor.
  const auto serial_exec = sim::Scenario(small)
                               .execution("serial")
                               .shards(0)
                               .validate()
                               .execution_policy();
  const auto sharded_exec = sim::Scenario(small)
                                .execution("sharded")
                                .shards(4)
                                .threads(2)
                                .validate()
                                .execution_policy();

  core::HirepSystem a(small.hirep_options());
  core::HirepSystem b(small.hirep_options());
  const auto serial = a.run_transactions(pairs, serial_exec);
  const auto sharded = b.run_transactions(pairs, sharded_exec);
  std::size_t mismatches = serial.size() != sharded.size();
  for (std::size_t i = 0; i < serial.size() && i < sharded.size(); ++i) {
    mismatches += !identical(serial[i], sharded[i]);
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_exhibit(
      argc, argv,
      "Sharded scale engine — thread scaling over a fixed shard partition "
      "(byte-identity spot check + 1/2/4/8-thread sweep)",
      [](sim::Scenario& sc, const util::Config& cfg) {
        if (!cfg.has("network_size")) sc.network_size(10'000);
        if (!cfg.has("transactions")) sc.transactions(2'000);
        if (!cfg.has("execution")) sc.execution("sharded");
        if (!cfg.has("shards")) sc.shards(8);
        // Fig5-shaped whole-population workload (as in micro_scale).
        sc.params().requestor_pool = 0;
        sc.params().provider_pool = 0;
      },
      [](const sim::Scenario& sc) -> sim::ExperimentResult {
        const sim::Params& p = sc.params();
        const std::size_t mismatches = identity_mismatches(sc);

        // Stage 2: one shared system, consecutive batches per sweep point.
        // Later points run on warmer trust state, which only adds work —
        // the scaling measurement is conservative, never flattered.
        const std::size_t shards = p.shards ? p.shards : 8;
        constexpr std::size_t kSweep[] = {1, 2, 4, 8};
        core::HirepSystem system(sc.hirep_options());

        util::Table table(
            {"threads", "shards", "seconds", "txns_per_sec", "scaling"});
        const double txns = static_cast<double>(p.transactions);
        double base_seconds = 0.0;
        double last_scaling = 0.0;
        for (std::size_t i = 0; i < std::size(kSweep); ++i) {
          const std::size_t threads = kSweep[i];
          const auto exec = sim::Scenario(sc)
                                .execution("sharded")
                                .shards(shards)
                                .threads(threads)
                                .validate()
                                .execution_policy();
          const auto pairs =
              draw_pairs(p.seed + 100 + i, p.network_size, p.transactions);
          const auto start = std::chrono::steady_clock::now();
          system.run_transactions(pairs, exec);
          const double seconds = std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - start)
                                     .count();
          if (i == 0) base_seconds = seconds;
          last_scaling = seconds > 0.0 ? base_seconds / seconds : 0.0;
          table.add_row({static_cast<std::int64_t>(threads),
                         static_cast<std::int64_t>(shards), seconds,
                         txns / seconds, last_scaling});
        }

        sim::ExperimentResult result{std::move(table), {}};
        result.checks.push_back(
            {"sharded records are byte-identical to serial (small-N spot "
             "check)",
             mismatches == 0, std::to_string(mismatches) + " records differ"});
        // ISSUE acceptance: >= 0.6x linear from 1 to 8 threads.  Only
        // expressible on hardware with >= 8 threads; below that the sweep
        // is recorded and the claim passes vacuously (micro_scale
        // precedent).
        const unsigned hw = std::thread::hardware_concurrency();
        const bool enough_cores = hw >= 8;
        result.checks.push_back(
            {"sharded scaling 1->8 threads is >= 0.6x linear (on >= 8 "
             "hardware threads)",
             !enough_cores || last_scaling >= 4.8,
             "scaling=" + std::to_string(last_scaling) +
                 " hardware_threads=" + std::to_string(hw) +
                 (enough_cores ? "" : " (< 8: measurement recorded, "
                                      "threshold not applicable)")});
        return result;
      });
}
