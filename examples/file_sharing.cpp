// File-sharing scenario — the paper's motivating problem: polluted content
// in a KaZaA-style network (§1).  Every strategy uses the same Gnutella
// QUERY/QUERYHIT search to discover candidate providers (Figure 1); they
// differ only in how a provider is chosen among the hits:
//
//   * no reputation    — take the nearest QueryHit
//   * pure voting      — flood a trust poll per candidate, average votes
//   * hiREP            — ask your trusted agents (FileSharingSession)
//
// Reported: polluted-download rate and trust traffic per download.
//
//   ./build/examples/file_sharing [nodes=400] [downloads=300] [seed=1]
#include <algorithm>
#include <iostream>

#include "baselines/pure_voting.hpp"
#include "gnutella/session.hpp"
#include "sim/scenario.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

namespace {

using namespace hirep;

struct Outcome {
  double polluted_rate = 0.0;
  double trust_msgs_per_download = 0.0;
  double search_msgs_per_download = 0.0;
};

gnutella::CatalogParams catalog_params() {
  gnutella::CatalogParams p;
  p.files = 60;
  p.min_replicas = 3;
  p.max_replicas = 50;
  p.popularity_zipf_s = 1.1;
  return p;
}

constexpr std::uint32_t kQueryTtl = 4;
constexpr std::size_t kMaxCandidates = 4;

Outcome run_without_reputation(std::size_t nodes, std::size_t downloads,
                               std::uint64_t seed) {
  util::Rng rng(seed);
  trust::WorldParams wp;
  wp.nodes = nodes;
  trust::GroundTruth truth(rng, wp);
  net::Overlay overlay(net::power_law(rng, nodes, 4.0), net::LatencyParams{},
                       seed);
  gnutella::ContentCatalog catalog(rng, nodes, catalog_params());

  std::size_t polluted = 0, found = 0;
  std::uint64_t search_msgs = 0;
  for (std::size_t d = 0; d < downloads; ++d) {
    const auto requestor = static_cast<net::NodeIndex>(rng.below(nodes));
    const auto file = catalog.sample_request(rng);
    const auto result = gnutella::search(overlay, catalog, requestor, file,
                                         kQueryTtl);
    search_msgs += result.query_messages + result.hit_messages;
    if (!result.found()) continue;
    // Nearest hit wins — what an unprotected client does.
    const auto nearest = *std::min_element(
        result.hits.begin(), result.hits.end(),
        [](const auto& a, const auto& b) { return a.hops < b.hops; });
    ++found;
    polluted += catalog.copy_polluted(truth, nearest.provider);
  }
  return {found ? static_cast<double>(polluted) / static_cast<double>(found) : 0.0,
          0.0,
          static_cast<double>(search_msgs) / static_cast<double>(downloads)};
}

Outcome run_with_voting(std::size_t nodes, std::size_t downloads,
                        std::uint64_t seed) {
  baselines::VotingOptions options;
  options.nodes = nodes;
  options.seed = seed;
  baselines::PureVotingSystem system(options);
  gnutella::ContentCatalog catalog(system.rng(), nodes, catalog_params());

  std::size_t polluted = 0, found = 0;
  std::uint64_t trust_msgs = 0, search_msgs = 0;
  for (std::size_t d = 0; d < downloads; ++d) {
    const auto requestor =
        static_cast<net::NodeIndex>(system.rng().below(nodes));
    const auto file = catalog.sample_request(system.rng());
    const auto result = gnutella::search(system.overlay(), catalog, requestor,
                                         file, kQueryTtl);
    search_msgs += result.query_messages + result.hit_messages;
    if (!result.found()) continue;
    double best = -1.0;
    net::NodeIndex chosen = net::kInvalidNode;
    std::size_t checked = 0;
    for (const auto& hit : result.hits) {
      if (checked++ >= kMaxCandidates) break;
      const auto poll = system.poll(requestor, hit.provider);
      trust_msgs += poll.messages;
      if (poll.estimate > best) {
        best = poll.estimate;
        chosen = hit.provider;
      }
    }
    if (chosen == net::kInvalidNode) continue;
    ++found;
    polluted += catalog.copy_polluted(system.truth(), chosen);
  }
  return {found ? static_cast<double>(polluted) / static_cast<double>(found) : 0.0,
          static_cast<double>(trust_msgs) / static_cast<double>(downloads),
          static_cast<double>(search_msgs) / static_cast<double>(downloads)};
}

Outcome run_with_hirep(std::size_t nodes, std::size_t downloads,
                       std::uint64_t seed) {
  auto scenario = sim::Scenario().network_size(nodes).seed(seed).crypto(
      "fast");
  scenario.params().requestor_pool = 0;
  scenario.params().provider_pool = 0;
  scenario.validate();
  core::HirepSystem system(scenario.hirep_options());

  gnutella::SessionOptions session_options;
  session_options.catalog = catalog_params();
  session_options.query_ttl = kQueryTtl;
  session_options.max_candidates = kMaxCandidates;
  gnutella::FileSharingSession session(&system, session_options);

  std::uint64_t trust_msgs = 0, search_msgs = 0;
  for (std::size_t d = 0; d < downloads; ++d) {
    const auto requestor =
        static_cast<net::NodeIndex>(system.rng().below(nodes));
    const auto rec = session.download(requestor);
    trust_msgs += rec.trust_messages;
    search_msgs += rec.search_messages;
  }
  return {session.pollution_rate(),
          static_cast<double>(trust_msgs) / static_cast<double>(downloads),
          static_cast<double>(search_msgs) / static_cast<double>(downloads)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 400));
  const auto downloads =
      static_cast<std::size_t>(cfg.get_int("downloads", 300));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

  std::cout << "File-sharing pollution scenario: " << nodes << " peers, "
            << downloads << " Zipf-skewed downloads over Gnutella search, up "
            << "to " << kMaxCandidates
            << " QueryHit candidates trust-checked per download\n\n";

  const auto none = run_without_reputation(nodes, downloads, seed);
  const auto voting = run_with_voting(nodes, downloads, seed);
  const auto hirep = run_with_hirep(nodes, downloads, seed);

  util::Table table({"strategy", "polluted_rate", "trust_msgs/download",
                     "search_msgs/download"});
  table.add_row({std::string("no reputation (nearest hit)"),
                 none.polluted_rate, none.trust_msgs_per_download,
                 none.search_msgs_per_download});
  table.add_row({std::string("pure voting (P2PREP-style)"),
                 voting.polluted_rate, voting.trust_msgs_per_download,
                 voting.search_msgs_per_download});
  table.add_row({std::string("hiREP"), hirep.polluted_rate,
                 hirep.trust_msgs_per_download,
                 hirep.search_msgs_per_download});
  table.print(std::cout);

  std::cout << "\nhiREP filters pollution nearly as well as exhaustive "
               "polling at a small fraction of the trust traffic; search "
               "cost is identical for everyone.\n";
  const bool ok =
      hirep.polluted_rate < none.polluted_rate &&
      hirep.trust_msgs_per_download < voting.trust_msgs_per_download;
  std::cout << (ok ? "[PASS]" : "[FAIL]")
            << " hiREP beats no-reputation on quality and voting on cost\n";
  return ok ? 0 : 1;
}
