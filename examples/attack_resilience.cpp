// Attack resilience walkthrough — executes every §4.2 attack scenario
// against a live full-crypto deployment and reports the outcome the paper
// predicts for each.
//
//   ./build/examples/attack_resilience [nodes=96] [seed=3]
#include <iomanip>
#include <iostream>

#include "sim/attacks.hpp"
#include "sim/scenario.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace hirep;
  const auto cfg = util::Config::from_args(argc, argv);

  auto scenario = sim::Scenario()
                      .network_size(static_cast<std::size_t>(
                          cfg.get_int("nodes", 96)))
                      .seed(static_cast<std::uint64_t>(cfg.get_int("seed", 3)))
                      .crypto("full")
                      .malicious_ratio(0.15);
  scenario.params().requestor_pool = 0;
  scenario.params().provider_pool = 0;
  scenario.params().rsa_bits = 128;
  scenario.validate();
  const core::HirepOptions options = scenario.hirep_options();
  core::HirepSystem system(options);

  int failures = 0;
  auto report = [&failures](const std::string& name, bool defended,
                            const std::string& paper_ref) {
    std::cout << (defended ? "[DEFENDED] " : "[BREACHED] ") << std::left
              << std::setw(46) << name << ' ' << paper_ref << '\n';
    failures += !defended;
  };

  std::cout << "hiREP attack resilience (" << options.nodes
            << " nodes, full crypto)\n\n";

  // --- identity manipulation (§4.2.2) --------------------------------------
  net::NodeIndex agent_ip = 0;
  while (system.agent_at(agent_ip) == nullptr) ++agent_ip;
  report("report forged in another peer's name",
         !sim::attempt_report_spoof(system, 1, 2, agent_ip, 30), "§4.2.2");
  report("man-in-the-middle anonymity-key substitution",
         !sim::attempt_mitm_key_substitution(system, 4, 20, 21), "§3.3/§4.2.2");
  report("stale onion replay",
         !sim::attempt_onion_replay(system, 7), "§3.3");

  // --- trusted-agent manipulation (§4.2.1) ---------------------------------
  {
    // An honest list ranks a good agent top; attackers flood bad-mouthing +
    // shilling lists.  Max-rank selection must keep the good agent.
    const auto agents = system.truth().agent_capable_nodes();
    const net::NodeIndex good = agents[0];
    const std::vector<net::NodeIndex> shills{agents[1], agents[2]};
    auto lists = sim::hostile_recommendations(system, {good}, shills, 10);
    // Add the one honest recommendation.
    core::AgentEntry honest;
    honest.agent_id = system.identities()[good].node_id();
    honest.agent_key = system.identities()[good].signature_public();
    honest.weight = 1.0;
    lists.push_back({honest});
    const auto selected = core::rank_and_select(lists, 3, system.rng());
    bool good_survives = false;
    for (const auto& e : selected) {
      good_survives |= (e.agent_id == honest.agent_id);
    }
    report("bad-mouthing a high-performance agent", good_survives, "§4.2.1");
  }

  // --- evaluation manipulation (§4.2.3) + Sybil (§4.2.2) -------------------
  {
    const auto converted = sim::sybil_corrupt_agents(system, 8);
    util::MseAccumulator mse;
    for (int i = 0; i < 120; ++i) {
      const auto req = static_cast<net::NodeIndex>(i % 6);
      const auto prov = static_cast<net::NodeIndex>(
          6 + system.rng().below(options.nodes - 6));
      const auto rec = system.run_transaction(req, prov);
      if (i >= 60) mse.add(rec.estimate, rec.truth_value);
    }
    std::cout << "  (8 Sybil agent identities converted; post-training MSE = "
              << mse.mse() << ")\n";
    report("Sybil identities feeding wrong evaluations", mse.mse() < 0.15,
           "§4.2.2–4.2.3");
  }

  // --- DoS on high-performance agents (§4.2.4) -----------------------------
  {
    const auto victims = sim::dos_top_agents(system, 6);
    std::size_t responded = 0, asked = 0;
    for (int i = 0; i < 40; ++i) {
      const auto rec = system.run_transaction();
      responded += rec.responses;
      asked += 1;
    }
    std::cout << "  (" << victims.size()
              << " most-referenced agents taken down; avg responses/txn "
              << static_cast<double>(responded) / static_cast<double>(asked)
              << ")\n";
    report("DoS against the most popular trusted agents",
           responded > 0, "§4.2.4");
  }

  std::cout << '\n'
            << (failures == 0 ? "All attacks defended, as §4.2 claims.\n"
                              : "SOME ATTACKS SUCCEEDED — investigate!\n");
  return failures == 0 ? 0 : 1;
}
