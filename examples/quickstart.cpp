// Quickstart: stand up a hiREP deployment, run transactions, inspect what
// the reputation layer learned.
//
//   ./build/examples/quickstart [nodes=300] [transactions=100] [seed=1]
#include <iostream>

#include "hirep/system.hpp"
#include "sim/scenario.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace hirep;
  const auto cfg = util::Config::from_args(argc, argv);

  // 1. Configure the deployment through sim::Scenario — one validated
  //    parameter set projected into the engine options; full crypto runs
  //    every onion layer for real.
  auto scenario = sim::Scenario()
                      .network_size(static_cast<std::size_t>(
                          cfg.get_int("nodes", 300)))
                      .seed(static_cast<std::uint64_t>(cfg.get_int("seed", 1)))
                      .crypto("full")
                      .malicious_ratio(0.10);  // Table 1: 10% poor evaluators
  // This demo drives its own workload; the figure-runner pools don't apply.
  scenario.params().requestor_pool = 0;
  scenario.params().provider_pool = 0;
  scenario.params().rsa_bits = 128;
  scenario.validate();
  const core::HirepOptions options = scenario.hirep_options();

  std::cout << "Bootstrapping " << options.nodes
            << "-node overlay (power-law topology, RSA-" << options.rsa_bits
            << " identities, onion routing)...\n";
  core::HirepSystem system(options);

  std::cout << "  reputation agents      : " << system.agent_count() << '\n';
  std::cout << "  peer 0 trusted agents  : " << system.peer(0).agents().size()
            << '\n';
  std::cout << "  peer 0 nodeId          : "
            << system.peer(0).node_id().short_hex(12) << '\n';

  // 2. Ask the reputation layer about a potential file provider.
  const net::NodeIndex requestor = 0, provider = 42;
  const auto query = system.query_trust(requestor, provider);
  std::cout << "\nTrust query: peer 0 -> provider 42\n";
  std::cout << "  agents answering       : " << query.ratings.size() << '\n';
  std::cout << "  estimated trust        : " << query.estimate << '\n';
  std::cout << "  ground truth           : "
            << system.truth().true_trust(provider) << '\n';

  // 3. Run a stream of transactions; the expertise filter learns which
  //    agents evaluate well and the estimate error shrinks.
  const auto txns =
      static_cast<std::size_t>(cfg.get_int("transactions", 100));
  util::MseAccumulator first_half, second_half;
  for (std::size_t t = 0; t < txns; ++t) {
    // A small active community, as in the paper's evaluation workload.
    const auto req = static_cast<net::NodeIndex>(t % 8);
    auto prov = static_cast<net::NodeIndex>(
        8 + system.rng().below(options.nodes - 8));
    const auto rec = system.run_transaction(req, prov);
    (t < txns / 2 ? first_half : second_half)
        .add(rec.estimate, rec.truth_value);
  }
  std::cout << "\nAfter " << txns << " transactions:\n";
  std::cout << "  MSE (first half)       : " << first_half.mse() << '\n';
  std::cout << "  MSE (second half)      : " << second_half.mse() << '\n';
  std::cout << "  trust traffic          : " << system.trust_message_total()
            << " messages ("
            << static_cast<double>(system.trust_message_total()) /
                   static_cast<double>(txns)
            << "/transaction — O(c), never a flood)\n";
  std::cout << "\nTraffic breakdown: " << system.overlay().metrics().summary()
            << '\n';
  return 0;
}
