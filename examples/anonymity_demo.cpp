// Anonymity walkthrough — the §3.3 machinery step by step, with real
// crypto: the Figure-3 anonymity-key handshake, onion construction,
// layer-by-layer peeling, routing, and the sequence-number guard.
//
//   ./build/examples/anonymity_demo [relays=4] [seed=7]
#include <iostream>

#include "net/topology.hpp"
#include "onion/router.hpp"
#include "util/bytes.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace hirep;
  const auto cfg = util::Config::from_args(argc, argv);
  const auto relay_count = static_cast<std::size_t>(cfg.get_int("relays", 4));
  util::Rng rng(static_cast<std::uint64_t>(cfg.get_int("seed", 7)));

  std::cout << "== hiREP onion anonymity walkthrough ==\n\n";

  // A small overlay whose nodes all own identities.
  const std::size_t nodes = relay_count + 4;
  net::Overlay overlay(net::ring_lattice(nodes, 1), net::LatencyParams{}, 1);
  std::vector<crypto::Identity> identities;
  std::cout << "Generating " << nodes << " identities (two RSA-128 key pairs "
            << "each; nodeId = SHA-1(SP))...\n";
  for (std::size_t v = 0; v < nodes; ++v) {
    identities.push_back(crypto::Identity::generate(rng, 128));
    std::cout << "  node " << v << "  nodeId "
              << identities.back().node_id().short_hex(16) << '\n';
  }

  // Peer P (node 0) verifies anonymity keys of its chosen relays via the
  // Figure-3 four-message handshake.
  const net::NodeIndex owner_ip = 0;
  const auto& owner = identities[owner_ip];
  std::cout << "\nFigure-3 handshakes (request, AP_p(AP_k,IP_k,nonce), "
            << "verification, confirmation):\n";
  std::vector<onion::RelayInfo> relays;
  for (std::size_t i = 0; i < relay_count; ++i) {
    const auto relay_ip = static_cast<net::NodeIndex>(i + 1);
    onion::HonestRelay endpoint(relay_ip, &identities[relay_ip]);
    const auto info =
        onion::fetch_anonymity_key(overlay, rng, owner, owner_ip, endpoint);
    std::cout << "  relay " << relay_ip << " key "
              << (info ? "VERIFIED" : "REJECTED") << '\n';
    if (info) relays.push_back(*info);
  }

  // Build the onion: ((((fake)AP_p)IP_p)AP_1)IP_1 ... AP_k)IP_k, sq)SR_p.
  const auto onion = onion::build_onion(rng, owner, owner_ip, relays, /*sq=*/1);
  std::cout << "\nOnion built by node 0: entry=node " << onion.entry
            << ", layers=" << onion.relay_count << "+terminal, sq=" << onion.sq
            << ", blob=" << onion.blob.size() << " bytes, signature "
            << (onion::verify_onion(onion) ? "valid" : "INVALID") << '\n';

  // Peel layer by layer, showing that every relay learns only the next hop.
  std::cout << "\nPeeling (each relay sees an identical format and only the "
               "next hop):\n";
  util::Bytes blob = onion.blob;
  net::NodeIndex at = onion.entry;
  while (true) {
    const auto peeled = onion::peel(blob, identities[at].anonymity_private());
    if (!peeled) {
      std::cout << "  node " << at << ": cannot decrypt (not addressed here)\n";
      break;
    }
    if (peeled->terminal) {
      std::cout << "  node " << at << ": TERMINAL layer — this node is the "
                << "owner; fake-onion padding " << peeled->inner.size()
                << " bytes\n";
      break;
    }
    std::cout << "  node " << at << ": next hop -> node " << peeled->next
              << " (inner blob " << peeled->inner.size() << " bytes)\n";
    blob = peeled->inner;
    at = peeled->next;
  }

  // Route a payload through the onion via the Router, then demonstrate the
  // anti-replay sequence guard.
  onion::Router router(&overlay, &identities);
  const util::Bytes payload = {'h', 'i', 'r', 'e', 'p'};
  const auto sender = static_cast<net::NodeIndex>(nodes - 1);
  const auto routed =
      router.route(sender, onion, payload, net::MessageKind::kControl);
  std::cout << "\nRouting a payload from node " << sender << ": "
            << (routed.delivered ? "delivered" : "LOST") << " to node "
            << routed.destination << " in " << routed.hops << " hops\n";

  // The owner performs its periodic onion refresh (§3.3: sq indicates the
  // age of the onion): it issues sq=2 and revokes everything older.  A
  // captured sq=1 onion becomes unroutable network-wide.
  const auto fresher = onion::build_onion(rng, owner, owner_ip, relays, 2);
  router.sequence_guard().revoke_before(owner.node_id(), fresher.sq);
  router.route(sender, fresher, payload, net::MessageKind::kControl);
  const auto replay =
      router.route(sender, onion, payload, net::MessageKind::kControl);
  std::cout << "Replaying the sq=1 onion after the owner revoked it: "
            << (replay.delivered ? "DELIVERED (bad!)" : "rejected (stale sq)")
            << '\n';

  std::cout << "\nTraffic: " << overlay.metrics().summary() << '\n';
  return routed.delivered && !replay.delivered ? 0 : 1;
}
