// Membership churn walkthrough — hiREP on a LIVE, changing network:
// peers join a running system (fresh self-certified identities,
// preferential-attachment wiring, agent discovery), rotate their keys
// (§3.5) without losing standing, and reputation agents come and go while
// accuracy holds.
//
//   ./build/examples/membership_churn [nodes=200] [rounds=120] [seed=5]
#include <iostream>

#include "hirep/system.hpp"
#include "sim/scenario.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace hirep;
  const auto cfg = util::Config::from_args(argc, argv);

  auto scenario = sim::Scenario()
                      .network_size(static_cast<std::size_t>(
                          cfg.get_int("nodes", 200)))
                      .seed(static_cast<std::uint64_t>(cfg.get_int("seed", 5)))
                      .crypto("fast")
                      .malicious_ratio(0.15);
  scenario.params().requestor_pool = 0;
  scenario.params().provider_pool = 0;
  scenario.validate();
  const core::HirepOptions options = scenario.hirep_options();
  core::HirepSystem system(options);
  util::Rng churn(options.seed ^ 0xc0ffeeULL);

  std::cout << "Live-membership demo: " << options.nodes
            << " founding peers, 15% malicious\n\n";

  const auto rounds = static_cast<std::size_t>(cfg.get_int("rounds", 120));
  util::MseAccumulator mse;
  std::size_t joins = 0, rotations = 0, agent_flaps = 0;

  for (std::size_t round = 0; round < rounds; ++round) {
    // Every few rounds somebody new joins...
    if (round % 5 == 0) {
      const auto v = system.join_peer();
      ++joins;
      if (round % 20 == 0) {
        std::cout << "round " << round << ": node " << v << " joined ("
                  << system.node_count() << " peers, "
                  << (system.agent_at(v) ? "agent-capable" : "general peer")
                  << ", found " << system.peer(v).agents().size()
                  << " trusted agents)\n";
      }
    }
    // ...occasionally a peer rotates its keys...
    if (round % 15 == 7) {
      const auto victim = static_cast<net::NodeIndex>(churn.below(20));
      const auto old_id = system.peer(victim).node_id().short_hex(8);
      const auto new_id = system.rotate_peer_key(victim);
      ++rotations;
      std::cout << "round " << round << ": peer " << victim
                << " rotated keys " << old_id << " -> "
                << new_id.short_hex(8) << '\n';
    }
    // ...and agents flap on and off.
    for (const auto agent : system.truth().agent_capable_nodes()) {
      if (system.agent_at(agent) == nullptr) continue;
      if (system.agent_online(agent)) {
        if (churn.chance(0.02)) {
          system.set_agent_online(agent, false);
          ++agent_flaps;
        }
      } else if (churn.chance(0.5)) {
        system.set_agent_online(agent, true);
      }
    }

    // Business as usual: the active community keeps transacting.
    const auto requestor = static_cast<net::NodeIndex>(churn.below(20));
    auto provider = requestor;
    while (provider == requestor) {
      provider =
          static_cast<net::NodeIndex>(churn.below(system.node_count()));
    }
    const auto rec = system.run_transaction(requestor, provider);
    if (round >= rounds / 2) mse.add(rec.estimate, rec.truth_value);
  }

  std::cout << "\nAfter " << rounds << " rounds:\n";
  std::cout << "  population            : " << system.node_count() << " (+"
            << joins << " joins)\n";
  std::cout << "  key rotations         : " << rotations << '\n';
  std::cout << "  agent outages injected: " << agent_flaps << '\n';
  std::cout << "  steady-state MSE      : " << mse.mse() << '\n';
  const bool ok = mse.mse() < 0.15;
  std::cout << (ok ? "[PASS]" : "[FAIL]")
            << " accuracy holds through joins, rotations and churn\n";
  return ok ? 0 : 1;
}
