// Peer identity layer (§3.3): every peer owns a signature key pair (SP, SR)
// and an anonymity key pair (AP, AR).  The self-certifying identifier is
//
//     nodeId = SHA-1(serialize(SP))
//
// which binds the public signature key to the identifier without any
// third-party certificate authority: an attacker cannot substitute its own
// key under an existing nodeId without inverting the hash.
//
// Key rotation (§3.5, "allowing peers to update their public key pair
// periodically") is supported: a rotation announcement carries the new SP
// signed by the *current* SR, so receivers can migrate the mapping
// old-nodeId → new-nodeId.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "crypto/rsa.hpp"
#include "crypto/sha1.hpp"
#include "util/rng.hpp"

namespace hirep::crypto {

/// 160-bit self-certifying peer identifier.
struct NodeId {
  std::array<std::uint8_t, Sha1::kDigestSize> bytes{};

  auto operator<=>(const NodeId&) const = default;
  std::string to_hex() const;
  /// Short prefix for logs ("a3f09c…").
  std::string short_hex(std::size_t nibbles = 8) const;

  static NodeId of_key(const RsaPublicKey& signature_public_key);
};

struct NodeIdHash {
  std::size_t operator()(const NodeId& id) const noexcept;
};

/// A peer's complete cryptographic identity.
class Identity {
 public:
  /// Generates both key pairs. `bits` is the RSA modulus size.
  static Identity generate(util::Rng& rng, unsigned bits);

  const NodeId& node_id() const noexcept { return node_id_; }
  const RsaPublicKey& signature_public() const noexcept { return signature_.pub; }
  const RsaPrivateKey& signature_private() const noexcept { return signature_.priv; }
  const RsaPublicKey& anonymity_public() const noexcept { return anonymity_.pub; }
  const RsaPrivateKey& anonymity_private() const noexcept { return anonymity_.priv; }

  util::Bytes sign(std::span<const std::uint8_t> data) const;
  bool verify_own(std::span<const std::uint8_t> data,
                  std::span<const std::uint8_t> sig) const;

  /// Key rotation: produce an announcement {new SP, signature under old SR},
  /// then adopt the new pair.  Returns the announcement.
  struct RotationAnnouncement {
    NodeId old_id;
    RsaPublicKey new_signature_public;
    util::Bytes signature;  ///< old SR over serialize(new SP)

    util::Bytes serialize() const;
    static std::optional<RotationAnnouncement> deserialize(
        std::span<const std::uint8_t> data);
  };
  RotationAnnouncement rotate_signature_key(util::Rng& rng, unsigned bits);

  /// Verifies that `ann` legitimately migrates `old_key`'s identity.
  static bool verify_rotation(const RsaPublicKey& old_key,
                              const RotationAnnouncement& ann);

 private:
  Identity() = default;
  RsaKeyPair signature_;
  RsaKeyPair anonymity_;
  NodeId node_id_;
};

}  // namespace hirep::crypto
