#include "crypto/stream_cipher.hpp"

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace hirep::crypto {

StreamCipher::StreamCipher(const Key& key, std::uint64_t nonce)
    : key_(key), nonce_(nonce) {}

void StreamCipher::refill() {
  // block = HMAC(key, nonce || counter); HMAC as PRF in counter mode.
  util::ByteWriter w;
  w.u64(nonce_);
  w.u64(counter_++);
  const auto digest = hmac_sha256(std::span<const std::uint8_t>(key_),
                                  std::span<const std::uint8_t>(w.bytes()));
  block_ = digest;
  block_used_ = 0;
}

void StreamCipher::apply(std::span<std::uint8_t> data) {
  for (auto& byte : data) {
    if (block_used_ == block_.size()) refill();
    byte ^= block_[block_used_++];
  }
}

util::Bytes StreamCipher::transform(std::span<const std::uint8_t> data) {
  util::Bytes out(data.begin(), data.end());
  apply(out);
  return out;
}

}  // namespace hirep::crypto
