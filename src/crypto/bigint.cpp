#include "crypto/bigint.hpp"

#include "crypto/limb_ops.hpp"
#include "crypto/montgomery.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <stdexcept>

namespace hirep::crypto {

namespace {

constexpr unsigned kLimbBits = 64;

using limb::adc64;
using limb::div128by64;
using limb::mac64;
using limb::mul64;
using limb::sbb64;

// Per-thread memo of Montgomery contexts keyed by modulus.  RSA hammers
// powmod with the same handful of moduli (n, and under CRT p and q, per
// key), so the context setup — a shift-mod plus a mulmod — would otherwise
// dominate small-key exponentiations.  thread_local keeps the memo
// lock-free; move-to-front eviction bounds it.  unique_ptr entries keep the
// returned reference stable across the rotate.
const MontgomeryContext& mont_context_for(const BigInt& m) {
  constexpr std::size_t kSlots = 8;
  thread_local std::vector<std::unique_ptr<MontgomeryContext>> cache;
  for (std::size_t i = 0; i < cache.size(); ++i) {
    if (cache[i]->modulus() == m) {
      if (i != 0) {
        std::rotate(cache.begin(), cache.begin() + static_cast<std::ptrdiff_t>(i),
                    cache.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      }
      return *cache.front();
    }
  }
  cache.insert(cache.begin(), std::make_unique<MontgomeryContext>(m));
  if (cache.size() > kSlots) cache.pop_back();
  return *cache.front();
}

}  // namespace

BigInt::BigInt(std::uint64_t value) {
  if (value) limbs_.push_back(value);
}

void BigInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_bytes(std::span<const std::uint8_t> be_bytes) {
  BigInt out;
  const std::size_t n = be_bytes.size();
  out.limbs_.assign((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // Byte i counted from the little end.
    const std::uint8_t b = be_bytes[n - 1 - i];
    out.limbs_[i / 8] |= static_cast<std::uint64_t>(b) << ((i % 8) * 8);
  }
  out.trim();
  return out;
}

util::Bytes BigInt::to_bytes() const {
  util::Bytes out;
  const unsigned bytes = (bit_length() + 7) / 8;
  out.resize(bytes);
  for (unsigned i = 0; i < bytes; ++i) {
    const unsigned limb = i / 8;
    const unsigned shift = (i % 8) * 8;
    out[bytes - 1 - i] = static_cast<std::uint8_t>(limbs_[limb] >> shift);
  }
  return out;
}

BigInt BigInt::from_limbs(std::span<const Limb> le_limbs) {
  BigInt out;
  out.limbs_.assign(le_limbs.begin(), le_limbs.end());
  out.trim();
  return out;
}

BigInt BigInt::from_hex(const std::string& hex) {
  BigInt out;
  for (char c : hex) {
    int nib;
    if (c >= '0' && c <= '9') nib = c - '0';
    else if (c >= 'a' && c <= 'f') nib = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') nib = c - 'A' + 10;
    else throw std::invalid_argument("bad hex digit");
    out = (out << 4) + BigInt(static_cast<std::uint64_t>(nib));
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  bool leading = true;
  for (std::size_t li = limbs_.size(); li-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      const unsigned v = (limbs_[li] >> (nib * 4)) & 0xfu;
      if (leading && v == 0) continue;
      leading = false;
      out.push_back(kDigits[v]);
    }
  }
  return out;
}

std::string BigInt::to_decimal() const {
  if (is_zero()) return "0";
  std::string digits;
  BigInt n = *this;
  const BigInt ten(10);
  while (!n.is_zero()) {
    auto [q, r] = divmod(n, ten);
    digits.push_back(static_cast<char>('0' + r.low_u64()));
    n = std::move(q);
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

// Both random generators draw one 32-bit word per rng() call, exactly as
// the original base-2^32 implementation did: simulation seeds reproduce
// the same keys and primes bit for bit across the limb-width change.
BigInt BigInt::random_below(util::Rng& rng, const BigInt& bound) {
  if (bound.is_zero()) throw std::domain_error("random_below(0)");
  const unsigned bits = bound.bit_length();
  const unsigned words = (bits + 31) / 32;
  for (;;) {
    BigInt candidate;
    candidate.limbs_.assign((words + 1) / 2, 0);
    for (unsigned w = 0; w < words; ++w) {
      const auto draw = static_cast<std::uint32_t>(rng());
      candidate.limbs_[w / 2] |= static_cast<std::uint64_t>(draw)
                                 << ((w % 2) * 32);
    }
    // Mask the top word down to the bound's bit length.
    const unsigned top_bits = bits % 32;
    if (top_bits != 0) {
      const unsigned shift = ((words - 1) % 2) * 32;
      const std::uint64_t keep =
          (std::uint64_t{1} << (shift + top_bits)) - 1;
      candidate.limbs_.back() &= keep;
    }
    candidate.trim();
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::random_bits(util::Rng& rng, unsigned bits) {
  if (bits == 0) throw std::domain_error("random_bits(0)");
  BigInt out;
  const unsigned words = (bits + 31) / 32;
  out.limbs_.assign((words + 1) / 2, 0);
  for (unsigned w = 0; w < words; ++w) {
    const auto draw = static_cast<std::uint32_t>(rng());
    out.limbs_[w / 2] |= static_cast<std::uint64_t>(draw) << ((w % 2) * 32);
  }
  // Clear bits above the requested width, then force the top bit on.
  const unsigned top = (bits - 1) % kLimbBits;
  out.limbs_.back() &= (top == kLimbBits - 1)
                           ? ~std::uint64_t{0}
                           : ((std::uint64_t{1} << (top + 1)) - 1);
  out.limbs_.back() |= std::uint64_t{1} << top;
  out.trim();
  return out;
}

unsigned BigInt::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  const unsigned bits = (static_cast<unsigned>(limbs_.size()) - 1) * kLimbBits;
  return bits + (kLimbBits - static_cast<unsigned>(std::countl_zero(limbs_.back())));
}

bool BigInt::bit(unsigned i) const noexcept {
  const unsigned limb = i / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1u;
}

std::uint64_t BigInt::low_u64() const noexcept {
  return limbs_.empty() ? 0 : limbs_[0];
}

int BigInt::compare(const BigInt& a, const BigInt& b) noexcept {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::strong_ordering BigInt::operator<=>(const BigInt& rhs) const noexcept {
  const int c = compare(*this, rhs);
  if (c < 0) return std::strong_ordering::less;
  if (c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  BigInt out;
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < limbs_.size() ? limbs_[i] : 0;
    const std::uint64_t b = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    out.limbs_[i] = adc64(a, b, carry);
  }
  out.limbs_[n] = carry;
  out.trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& rhs) const {
  if (*this < rhs) throw std::underflow_error("BigInt subtraction underflow");
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t b = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    out.limbs_[i] = sbb64(limbs_[i], b, borrow);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator*(const BigInt& rhs) const {
  if (is_zero() || rhs.is_zero()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      out.limbs_[i + j] = mac64(out.limbs_[i + j], a, rhs.limbs_[j], carry);
    }
    // The carry out of the chain cannot overflow again: the slot above the
    // partial product is always small enough to absorb it.
    out.limbs_[i + rhs.limbs_.size()] += carry;
  }
  out.trim();
  return out;
}

BigInt BigInt::operator<<(unsigned bits) const {
  if (is_zero() || bits == 0) return *this;
  const unsigned limb_shift = bits / kLimbBits;
  const unsigned bit_shift = bits % kLimbBits;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  if (bit_shift == 0) {
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      out.limbs_[i + limb_shift] = limbs_[i];
    }
  } else {
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (kLimbBits - bit_shift);
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(unsigned bits) const {
  if (bits == 0) return *this;
  const unsigned limb_shift = bits / kLimbBits;
  const unsigned bit_shift = bits % kLimbBits;
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= limbs_[i + limb_shift + 1] << (kLimbBits - bit_shift);
    }
    out.limbs_[i] = v;
  }
  out.trim();
  return out;
}

std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& num, const BigInt& den) {
  if (den.is_zero()) throw std::domain_error("division by zero");
  if (num < den) return {BigInt(), num};
  if (den.limbs_.size() == 1) {
    // Single-limb fast path: one 128-by-64 divide per digit.
    const std::uint64_t d = den.limbs_[0];
    BigInt q;
    q.limbs_.resize(num.limbs_.size());
    std::uint64_t rem = 0;
    for (std::size_t i = num.limbs_.size(); i-- > 0;) {
      q.limbs_[i] = div128by64(rem, num.limbs_[i], d, rem);
    }
    q.trim();
    return {std::move(q), BigInt(rem)};
  }

  // Knuth Algorithm D over 64-bit digits.  Normalise so the divisor's top
  // limb has its high bit set, which keeps the quotient-digit estimate
  // within 2 of correct.
  const unsigned shift = static_cast<unsigned>(std::countl_zero(den.limbs_.back()));
  const BigInt u = num << shift;
  const BigInt v = den << shift;
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint64_t> un(u.limbs_);
  un.push_back(0);  // extra high limb for the algorithm
  const std::vector<std::uint64_t>& vn = v.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate the quotient digit from the top two dividend limbs.  After
    // normalisation un[j+n] <= vn[n-1]; the estimate overflows one word
    // only at equality, where the max digit is the right clamp.
    std::uint64_t qhat, rhat;
    bool rhat_overflow = false;
    if (un[j + n] == vn[n - 1]) {
      qhat = ~std::uint64_t{0};
      // rhat = top - qhat * vn[n-1] = un[j+n-1] + vn[n-1]
      rhat = un[j + n - 1] + vn[n - 1];
      rhat_overflow = rhat < vn[n - 1];
    } else {
      qhat = div128by64(un[j + n], un[j + n - 1], vn[n - 1], rhat);
    }
    // Refine: while qhat * vn[n-2] > rhat:un[j+n-2], decrement.
    while (!rhat_overflow) {
      std::uint64_t hi;
      const std::uint64_t lo = mul64(qhat, vn[n - 2], hi);
      if (hi < rhat || (hi == rhat && lo <= un[j + n - 2])) break;
      --qhat;
      const std::uint64_t prev = rhat;
      rhat += vn[n - 1];
      rhat_overflow = rhat < prev;
    }

    // Multiply-subtract qhat * v from u[j .. j+n].
    std::uint64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t plo = mac64(0, qhat, vn[i], carry);
      un[i + j] = sbb64(un[i + j], plo, borrow);
    }
    const std::uint64_t before = un[j + n];
    un[j + n] = sbb64(before, carry, borrow);

    if (borrow) {
      // Estimate was one too large: add the divisor back.
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        un[i + j] = adc64(un[i + j], vn[i], c);
      }
      un[j + n] += c;
    }
    q.limbs_[j] = qhat;
  }
  q.trim();

  BigInt r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  return {std::move(q), r >> shift};
}

BigInt BigInt::operator/(const BigInt& rhs) const { return divmod(*this, rhs).first; }
BigInt BigInt::operator%(const BigInt& rhs) const {
  // Remainder-only single-limb fast path: skips the quotient allocation
  // divmod would make.  The RSA hot loops (digest mod n, CRT residues of
  // small keys) reduce by one-limb moduli constantly.
  if (rhs.limbs_.size() == 1 && !(*this < rhs)) {
    const std::uint64_t d = rhs.limbs_[0];
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      (void)div128by64(rem, limbs_[i], d, rem);
    }
    return BigInt(rem);
  }
  return divmod(*this, rhs).second;
}

BigInt BigInt::mulmod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a * b) % m;
}

BigInt BigInt::powmod(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero()) throw std::domain_error("powmod modulus zero");
  if (m == BigInt(1)) return BigInt();
  // Odd moduli with non-trivial exponents take the Montgomery fast path —
  // every RSA/Miller-Rabin exponentiation lands here.  The per-thread
  // context memo makes repeated exponentiations against the same modulus
  // (the RSA sign/verify pattern) skip the R/R^2 setup entirely.
  if (m.is_odd() && m >= BigInt(3) && exp.bit_length() >= 8) {
    return mont_context_for(m).pow(base, exp);
  }
  BigInt result(1);
  BigInt b = base % m;
  const unsigned bits = exp.bit_length();
  for (unsigned i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mulmod(result, b, m);
    b = mulmod(b, b, m);
  }
  return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::modinv(const BigInt& a, const BigInt& m) {
  // Extended Euclid with coefficients tracked as (sign, magnitude) pairs,
  // since BigInt itself is unsigned.
  BigInt old_r = a % m, r = m;
  BigInt old_s(1), s(0);
  bool old_s_neg = false, s_neg = false;
  while (!r.is_zero()) {
    const auto [q, rem] = divmod(old_r, r);
    old_r = std::move(r);
    r = rem;
    // new_s = old_s - q * s   (signed)
    const BigInt qs = q * s;
    BigInt new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      if (old_s >= qs) {
        new_s = old_s - qs;
        new_s_neg = old_s_neg;
      } else {
        new_s = qs - old_s;
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = old_s + qs;
      new_s_neg = old_s_neg;
    }
    old_s = std::move(s);
    old_s_neg = s_neg;
    s = std::move(new_s);
    s_neg = new_s_neg;
  }
  if (old_r != BigInt(1)) throw std::domain_error("modinv: not coprime");
  BigInt inv = old_s % m;
  if (old_s_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

}  // namespace hirep::crypto
