#include "crypto/bigint.hpp"

#include "crypto/montgomery.hpp"

#include <algorithm>
#include <stdexcept>

namespace hirep::crypto {

namespace {
constexpr unsigned kLimbBits = 32;
}

BigInt::BigInt(std::uint64_t value) {
  if (value) limbs_.push_back(static_cast<std::uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

void BigInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_bytes(std::span<const std::uint8_t> be_bytes) {
  BigInt out;
  for (std::uint8_t b : be_bytes) {
    out = (out << 8) + BigInt(b);
  }
  return out;
}

util::Bytes BigInt::to_bytes() const {
  util::Bytes out;
  const unsigned bytes = (bit_length() + 7) / 8;
  out.resize(bytes);
  for (unsigned i = 0; i < bytes; ++i) {
    const unsigned limb = i / 4;
    const unsigned shift = (i % 4) * 8;
    out[bytes - 1 - i] = static_cast<std::uint8_t>(limbs_[limb] >> shift);
  }
  return out;
}

BigInt BigInt::from_hex(const std::string& hex) {
  BigInt out;
  for (char c : hex) {
    int nib;
    if (c >= '0' && c <= '9') nib = c - '0';
    else if (c >= 'a' && c <= 'f') nib = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') nib = c - 'A' + 10;
    else throw std::invalid_argument("bad hex digit");
    out = (out << 4) + BigInt(static_cast<std::uint64_t>(nib));
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  bool leading = true;
  for (std::size_t li = limbs_.size(); li-- > 0;) {
    for (int nib = 7; nib >= 0; --nib) {
      const unsigned v = (limbs_[li] >> (nib * 4)) & 0xfu;
      if (leading && v == 0) continue;
      leading = false;
      out.push_back(kDigits[v]);
    }
  }
  return out;
}

std::string BigInt::to_decimal() const {
  if (is_zero()) return "0";
  std::string digits;
  BigInt n = *this;
  const BigInt ten(10);
  while (!n.is_zero()) {
    auto [q, r] = divmod(n, ten);
    digits.push_back(static_cast<char>('0' + r.low_u64()));
    n = std::move(q);
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BigInt BigInt::random_below(util::Rng& rng, const BigInt& bound) {
  if (bound.is_zero()) throw std::domain_error("random_below(0)");
  const unsigned bits = bound.bit_length();
  for (;;) {
    BigInt candidate;
    const unsigned limbs = (bits + kLimbBits - 1) / kLimbBits;
    candidate.limbs_.resize(limbs);
    for (auto& l : candidate.limbs_) l = static_cast<std::uint32_t>(rng());
    // Mask the top limb down to the bound's bit length.
    const unsigned top_bits = bits % kLimbBits;
    if (top_bits != 0) {
      candidate.limbs_.back() &= (std::uint32_t{1} << top_bits) - 1;
    }
    candidate.trim();
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::random_bits(util::Rng& rng, unsigned bits) {
  if (bits == 0) throw std::domain_error("random_bits(0)");
  BigInt out;
  const unsigned limbs = (bits + kLimbBits - 1) / kLimbBits;
  out.limbs_.resize(limbs);
  for (auto& l : out.limbs_) l = static_cast<std::uint32_t>(rng());
  const unsigned top = (bits - 1) % kLimbBits;
  // Clear bits above the requested width, then force the top bit on.
  out.limbs_.back() &= (top == 31) ? ~std::uint32_t{0}
                                   : ((std::uint32_t{1} << (top + 1)) - 1);
  out.limbs_.back() |= std::uint32_t{1} << top;
  out.trim();
  return out;
}

unsigned BigInt::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  const std::uint32_t top = limbs_.back();
  unsigned bits = (static_cast<unsigned>(limbs_.size()) - 1) * kLimbBits;
  return bits + (kLimbBits - static_cast<unsigned>(__builtin_clz(top)));
}

bool BigInt::bit(unsigned i) const noexcept {
  const unsigned limb = i / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1u;
}

std::uint64_t BigInt::low_u64() const noexcept {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigInt::compare(const BigInt& a, const BigInt& b) noexcept {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::strong_ordering BigInt::operator<=>(const BigInt& rhs) const noexcept {
  const int c = compare(*this, rhs);
  if (c < 0) return std::strong_ordering::less;
  if (c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  BigInt out;
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& rhs) const {
  if (*this < rhs) throw std::underflow_error("BigInt subtraction underflow");
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < rhs.limbs_.size()) diff -= rhs.limbs_[i];
    if (diff < 0) {
      diff += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator*(const BigInt& rhs) const {
  if (is_zero() || rhs.is_zero()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[i + j]) + a * rhs.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::operator<<(unsigned bits) const {
  if (is_zero() || bits == 0) return *this;
  const unsigned limb_shift = bits / kLimbBits;
  const unsigned bit_shift = bits % kLimbBits;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(unsigned bits) const {
  if (bits == 0) return *this;
  const unsigned limb_shift = bits / kLimbBits;
  const unsigned bit_shift = bits % kLimbBits;
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (kLimbBits - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& num, const BigInt& den) {
  if (den.is_zero()) throw std::domain_error("division by zero");
  if (num < den) return {BigInt(), num};
  if (den.limbs_.size() == 1) {
    // Single-limb fast path.
    const std::uint64_t d = den.limbs_[0];
    BigInt q;
    q.limbs_.resize(num.limbs_.size());
    std::uint64_t rem = 0;
    for (std::size_t i = num.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | num.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {std::move(q), BigInt(rem)};
  }

  // Knuth Algorithm D. Normalise so the divisor's top limb has its high bit
  // set, which keeps the quotient-digit estimate within 2 of correct.
  const unsigned shift =
      static_cast<unsigned>(__builtin_clz(den.limbs_.back()));
  const BigInt u = num << shift;
  const BigInt v = den << shift;
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.push_back(0);  // extra high limb for the algorithm
  const std::vector<std::uint32_t>& vn = v.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    const std::uint64_t top =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = top / vn[n - 1];
    std::uint64_t rhat = top % vn[n - 1];
    while (qhat > 0xffffffffULL ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat > 0xffffffffULL) break;
    }
    // Multiply-subtract qhat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t =
          static_cast<std::int64_t>(un[i + j]) -
          static_cast<std::int64_t>(static_cast<std::uint32_t>(p)) - borrow;
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = t < 0 ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    un[j + n] = static_cast<std::uint32_t>(t);

    if (t < 0) {
      // Estimate was one too large: add the divisor back.
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s =
            static_cast<std::uint64_t>(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<std::uint32_t>(s);
        c = s >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + c);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }
  q.trim();

  BigInt r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  return {std::move(q), r >> shift};
}

BigInt BigInt::operator/(const BigInt& rhs) const { return divmod(*this, rhs).first; }
BigInt BigInt::operator%(const BigInt& rhs) const { return divmod(*this, rhs).second; }

BigInt BigInt::mulmod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a * b) % m;
}

BigInt BigInt::powmod(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero()) throw std::domain_error("powmod modulus zero");
  if (m == BigInt(1)) return BigInt();
  // Odd moduli with non-trivial exponents take the Montgomery fast path —
  // every RSA/Miller-Rabin exponentiation lands here.  The context setup
  // (one shift-mod + one mulmod) amortizes over the exponent bits.
  if (m.is_odd() && m.bit_length() >= 64 && exp.bit_length() >= 8) {
    return MontgomeryContext(m).pow(base, exp);
  }
  BigInt result(1);
  BigInt b = base % m;
  const unsigned bits = exp.bit_length();
  for (unsigned i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mulmod(result, b, m);
    b = mulmod(b, b, m);
  }
  return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::modinv(const BigInt& a, const BigInt& m) {
  // Extended Euclid with coefficients tracked as (sign, magnitude) pairs,
  // since BigInt itself is unsigned.
  BigInt old_r = a % m, r = m;
  BigInt old_s(1), s(0);
  bool old_s_neg = false, s_neg = false;
  while (!r.is_zero()) {
    const auto [q, rem] = divmod(old_r, r);
    old_r = std::move(r);
    r = rem;
    // new_s = old_s - q * s   (signed)
    const BigInt qs = q * s;
    BigInt new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      if (old_s >= qs) {
        new_s = old_s - qs;
        new_s_neg = old_s_neg;
      } else {
        new_s = qs - old_s;
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = old_s + qs;
      new_s_neg = old_s_neg;
    }
    old_s = std::move(s);
    old_s_neg = s_neg;
    s = std::move(new_s);
    s_neg = new_s_neg;
  }
  if (old_r != BigInt(1)) throw std::domain_error("modinv: not coprime");
  BigInt inv = old_s % m;
  if (old_s_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

}  // namespace hirep::crypto
