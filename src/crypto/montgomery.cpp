#include "crypto/montgomery.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/limb_ops.hpp"

namespace hirep::crypto {

namespace {

using limb::adc64;
using limb::mac64;
using limb::sbb64;

// Window width for fixed-window exponentiation: wider windows trade table
// precomputation (2^(w-1) Montgomery products) against one multiply per w
// exponent bits.  Break-even points follow the usual 2^(w-1) + bits/w
// minimisation.
unsigned window_bits(unsigned exp_bits) noexcept {
  if (exp_bits <= 24) return 1;
  if (exp_bits <= 80) return 2;
  if (exp_bits <= 240) return 3;
  if (exp_bits <= 768) return 4;
  return 5;
}

// Fixed-width CIOS for small moduli: same algorithm as the generic path
// below, but with K a compile-time constant the whole carry chain unrolls
// into registers — no vector traffic on the per-product hot path.  K <= 4
// covers every modulus the simulator mints (n up to 256 bits, CRT halves
// up to 128).  a and b must be K limbs (caller pads); out gets K limbs.
template <std::size_t K>
void cios_fixed(const std::uint64_t* a, const std::uint64_t* b,
                const std::uint64_t* n, std::uint64_t n_prime,
                std::uint64_t* out) noexcept {
  std::uint64_t t[K + 2] = {};
  for (std::size_t i = 0; i < K; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < K; ++j) t[j] = mac64(t[j], a[i], b[j], carry);
    std::uint64_t c2 = 0;
    t[K] = adc64(t[K], carry, c2);
    t[K + 1] += c2;  // < 2: cannot overflow

    const std::uint64_t m = t[0] * n_prime;
    carry = 0;
    (void)mac64(t[0], m, n[0], carry);  // low word is zero by construction
    for (std::size_t j = 1; j < K; ++j) t[j - 1] = mac64(t[j], m, n[j], carry);
    c2 = 0;
    t[K - 1] = adc64(t[K], carry, c2);
    t[K] = t[K + 1] + c2;
    t[K + 1] = 0;
  }
  bool geq = t[K] != 0;
  if (!geq) {
    geq = true;
    for (std::size_t j = K; j-- > 0;) {
      if (t[j] != n[j]) {
        geq = t[j] > n[j];
        break;
      }
    }
  }
  if (geq) {
    std::uint64_t borrow = 0;
    for (std::size_t j = 0; j < K; ++j) out[j] = sbb64(t[j], n[j], borrow);
  } else {
    for (std::size_t j = 0; j < K; ++j) out[j] = t[j];
  }
}

// Runtime-k front for the unrolled kernels.  Writes happen only after all
// reads, so `out` may alias `a` or `b` — pow_small squares in place.
inline void cios_small(std::size_t k, const std::uint64_t* a,
                       const std::uint64_t* b, const std::uint64_t* n,
                       std::uint64_t n_prime, std::uint64_t* out) noexcept {
  switch (k) {
    case 1: cios_fixed<1>(a, b, n, n_prime, out); break;
    case 2: cios_fixed<2>(a, b, n, n_prime, out); break;
    case 3: cios_fixed<3>(a, b, n, n_prime, out); break;
    default: cios_fixed<4>(a, b, n, n_prime, out); break;
  }
}

}  // namespace

MontgomeryContext::MontgomeryContext(const BigInt& modulus)
    : modulus_(modulus) {
  if (modulus.is_even() || modulus < BigInt(3)) {
    throw std::invalid_argument("Montgomery modulus must be odd and >= 3");
  }
  n_ = modulus.limbs();
  n_prime_ = 0u - limb::inv64(n_[0]);

  const unsigned r_bits = static_cast<unsigned>(n_.size()) * 64;
  r_mod_n_ = (BigInt(1) << r_bits) % modulus_;
  r2_mod_n_ = BigInt::mulmod(r_mod_n_, r_mod_n_, modulus_);
  one_mont_ = r_mod_n_.limbs();
  one_mont_.resize(n_.size(), 0);
}

void MontgomeryContext::mont_mul_into(const Limbs& a, const Limbs& b, Limbs& t,
                                      Limbs& out) const {
  // CIOS (coarsely integrated operand scanning), Koc et al., on 64-bit
  // words: interleave one row of a[i] * b with one reduction step per
  // outer iteration, shifting t down a word each time.
  const std::size_t k = n_.size();
  if (k <= 4) {
    // Operands may be shorter than k (trimmed BigInt limbs); pad into the
    // stack blocks the unrolled kernels expect.
    std::uint64_t aa[4] = {}, bb[4] = {}, rr[4];
    std::copy(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(std::min(a.size(), k)), aa);
    std::copy(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(std::min(b.size(), k)), bb);
    switch (k) {
      case 1: cios_fixed<1>(aa, bb, n_.data(), n_prime_, rr); break;
      case 2: cios_fixed<2>(aa, bb, n_.data(), n_prime_, rr); break;
      case 3: cios_fixed<3>(aa, bb, n_.data(), n_prime_, rr); break;
      default: cios_fixed<4>(aa, bb, n_.data(), n_prime_, rr); break;
    }
    out.assign(rr, rr + k);
    return;
  }
  t.assign(k + 2, 0);
  for (std::size_t i = 0; i < k; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    const std::uint64_t ai = i < a.size() ? a[i] : 0;
    for (std::size_t j = 0; j < k; ++j) {
      const std::uint64_t bj = j < b.size() ? b[j] : 0;
      t[j] = mac64(t[j], ai, bj, carry);
    }
    std::uint64_t c2 = 0;
    t[k] = adc64(t[k], carry, c2);
    t[k + 1] += c2;  // < 2: cannot overflow

    // m = t[0] * n' mod 2^64;  t += m * n;  t >>= 64
    const std::uint64_t m = t[0] * n_prime_;
    carry = 0;
    (void)mac64(t[0], m, n_[0], carry);  // low word is zero by construction
    for (std::size_t j = 1; j < k; ++j) {
      t[j - 1] = mac64(t[j], m, n_[j], carry);
    }
    c2 = 0;
    t[k - 1] = adc64(t[k], carry, c2);
    t[k] = t[k + 1] + c2;  // t[k+1] < 2 and the sum fits one word
    t[k + 1] = 0;
  }

  // Final conditional subtraction: t (k+1 limbs significant) vs n.
  out.assign(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k));
  bool geq = t[k] != 0;
  if (!geq) {
    geq = true;
    for (std::size_t j = k; j-- > 0;) {
      if (out[j] != n_[j]) {
        geq = out[j] > n_[j];
        break;
      }
    }
  }
  if (geq) {
    std::uint64_t borrow = 0;
    for (std::size_t j = 0; j < k; ++j) {
      out[j] = sbb64(out[j], n_[j], borrow);
    }
  }
}

MontgomeryContext::Limbs MontgomeryContext::mont_mul(const Limbs& a,
                                                     const Limbs& b) const {
  Limbs t;
  Limbs out;
  mont_mul_into(a, b, t, out);
  return out;
}

MontgomeryContext::Limbs MontgomeryContext::to_mont(const BigInt& x) const {
  // xR mod n = mont_mul(x, R^2)
  return mont_mul(x.limbs(), r2_mod_n_.limbs());
}

BigInt MontgomeryContext::from_mont(const Limbs& x) const {
  // xR^{-1} mod n = mont_mul(x, 1)
  const Limbs one{1};
  return BigInt::from_limbs(mont_mul(x, one));
}

BigInt MontgomeryContext::mul(const BigInt& a, const BigInt& b) const {
  const Limbs am = to_mont(a % modulus_);
  const Limbs bm = to_mont(b % modulus_);
  return from_mont(mont_mul(am, bm));
}

BigInt MontgomeryContext::pow_small(const BigInt& base, const BigInt& exp,
                                    unsigned bits) const {
  const std::size_t k = n_.size();
  const std::uint64_t* n = n_.data();

  // b = to_mont(base mod n), all on the stack.
  std::uint64_t b[4] = {};
  {
    std::uint64_t x[4] = {}, r2[4] = {};
    if (base < modulus_) {
      std::copy(base.limbs().begin(), base.limbs().end(), x);
    } else {
      const BigInt reduced = base % modulus_;
      std::copy(reduced.limbs().begin(), reduced.limbs().end(), x);
    }
    std::copy(r2_mod_n_.limbs().begin(), r2_mod_n_.limbs().end(), r2);
    cios_small(k, x, r2, n, n_prime_, b);
  }

  const unsigned w = window_bits(bits);

  // Odd-power table: table[i] = b^(2i+1) in Montgomery form.  w <= 5 so
  // 16 entries of 4 limbs bound it; only 2^(w-1) rows are filled.
  std::uint64_t table[16][4];
  std::copy(b, b + 4, table[0]);
  if (w > 1) {
    std::uint64_t b2[4];
    cios_small(k, b, b, n, n_prime_, b2);
    for (std::size_t i = 1; i < (std::size_t{1} << (w - 1)); ++i) {
      cios_small(k, table[i - 1], b2, n, n_prime_, table[i]);
    }
  }

  std::uint64_t result[4] = {};
  std::copy(one_mont_.begin(), one_mont_.end(), result);
  int i = static_cast<int>(bits) - 1;
  while (i >= 0) {
    if (!exp.bit(static_cast<unsigned>(i))) {
      cios_small(k, result, result, n, n_prime_, result);
      --i;
      continue;
    }
    int l = i - static_cast<int>(w) + 1;
    if (l < 0) l = 0;
    while (!exp.bit(static_cast<unsigned>(l))) ++l;
    unsigned window = 0;
    for (int k2 = i; k2 >= l; --k2) {
      window = (window << 1) | static_cast<unsigned>(exp.bit(static_cast<unsigned>(k2)));
    }
    for (int k2 = 0; k2 < i - l + 1; ++k2) {
      cios_small(k, result, result, n, n_prime_, result);
    }
    cios_small(k, result, table[(window - 1) >> 1], n, n_prime_, result);
    i = l - 1;
  }

  const std::uint64_t one[4] = {1, 0, 0, 0};
  cios_small(k, result, one, n, n_prime_, result);
  return BigInt::from_limbs(std::span<const std::uint64_t>(result, k));
}

BigInt MontgomeryContext::pow(const BigInt& base, const BigInt& exp) const {
  const unsigned bits = exp.bit_length();
  if (bits == 0) return from_mont(one_mont_);  // x^0 = 1 (mod n)
  if (n_.size() <= 4) return pow_small(base, exp, bits);

  const Limbs b =
      base < modulus_ ? to_mont(base) : to_mont(base % modulus_);
  const unsigned w = window_bits(bits);

  // Odd-power table: table[i] = b^(2i+1) in Montgomery form.
  std::vector<Limbs> table(std::size_t{1} << (w - 1));
  table[0] = b;
  if (w > 1) {
    const Limbs b2 = mont_mul(b, b);
    for (std::size_t i = 1; i < table.size(); ++i) {
      table[i] = mont_mul(table[i - 1], b2);
    }
  }

  // Left-to-right sliding window over the exponent bits.  The two ping-pong
  // buffers keep the hot loop allocation-free.
  Limbs result = one_mont_;
  Limbs scratch;
  Limbs tmp(n_.size());
  int i = static_cast<int>(bits) - 1;
  while (i >= 0) {
    if (!exp.bit(static_cast<unsigned>(i))) {
      mont_mul_into(result, result, scratch, tmp);
      std::swap(result, tmp);
      --i;
      continue;
    }
    // Greedy window [i .. l], trimmed to end on a set bit (odd value).
    int l = i - static_cast<int>(w) + 1;
    if (l < 0) l = 0;
    while (!exp.bit(static_cast<unsigned>(l))) ++l;
    unsigned window = 0;
    for (int k2 = i; k2 >= l; --k2) {
      window = (window << 1) | static_cast<unsigned>(exp.bit(static_cast<unsigned>(k2)));
    }
    for (int k2 = 0; k2 < i - l + 1; ++k2) {
      mont_mul_into(result, result, scratch, tmp);
      std::swap(result, tmp);
    }
    mont_mul_into(result, table[(window - 1) >> 1], scratch, tmp);
    std::swap(result, tmp);
    i = l - 1;
  }
  return from_mont(result);
}

}  // namespace hirep::crypto
