#include "crypto/montgomery.hpp"

#include <stdexcept>

namespace hirep::crypto {

namespace {

// Inverse of an odd 32-bit value modulo 2^32 by Newton iteration: each
// step doubles the number of correct low bits (5 steps reach 32+).
std::uint32_t inv32(std::uint32_t odd) {
  std::uint32_t inv = 1;
  for (int i = 0; i < 5; ++i) {
    inv *= 2u - odd * inv;
  }
  return inv;
}

}  // namespace

MontgomeryContext::MontgomeryContext(const BigInt& modulus)
    : modulus_(modulus) {
  if (modulus.is_even() || modulus < BigInt(3)) {
    throw std::invalid_argument("Montgomery modulus must be odd and >= 3");
  }
  n_ = modulus.limbs();
  n_prime_ = static_cast<std::uint32_t>(0u - inv32(n_[0]));

  const unsigned r_bits = static_cast<unsigned>(n_.size()) * 32;
  r_mod_n_ = (BigInt(1) << r_bits) % modulus_;
  r2_mod_n_ = BigInt::mulmod(r_mod_n_, r_mod_n_, modulus_);
}

MontgomeryContext::Limbs MontgomeryContext::mont_mul(const Limbs& a,
                                                     const Limbs& b) const {
  // CIOS (coarsely integrated operand scanning), Koc et al.
  const std::size_t k = n_.size();
  Limbs t(k + 2, 0);
  for (std::size_t i = 0; i < k; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    const std::uint64_t ai = i < a.size() ? a[i] : 0;
    for (std::size_t j = 0; j < k; ++j) {
      const std::uint64_t bj = j < b.size() ? b[j] : 0;
      const std::uint64_t cur = t[j] + ai * bj + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = static_cast<std::uint64_t>(t[k]) + carry;
    t[k] = static_cast<std::uint32_t>(cur);
    t[k + 1] = static_cast<std::uint32_t>(cur >> 32);

    // m = t[0] * n' mod 2^32;  t += m * n;  t >>= 32
    const std::uint32_t m = t[0] * n_prime_;
    carry = 0;
    {
      const std::uint64_t first =
          static_cast<std::uint64_t>(t[0]) +
          static_cast<std::uint64_t>(m) * n_[0];
      carry = first >> 32;  // low 32 bits are zero by construction
    }
    for (std::size_t j = 1; j < k; ++j) {
      const std::uint64_t cur2 = static_cast<std::uint64_t>(t[j]) +
                                 static_cast<std::uint64_t>(m) * n_[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(cur2);
      carry = cur2 >> 32;
    }
    const std::uint64_t cur3 = static_cast<std::uint64_t>(t[k]) + carry;
    t[k - 1] = static_cast<std::uint32_t>(cur3);
    const std::uint64_t cur4 =
        static_cast<std::uint64_t>(t[k + 1]) + (cur3 >> 32);
    t[k] = static_cast<std::uint32_t>(cur4);
    t[k + 1] = static_cast<std::uint32_t>(cur4 >> 32);
  }

  // Final conditional subtraction: t (k+1 limbs significant) vs n.
  Limbs result(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k));
  bool geq = t[k] != 0;
  if (!geq) {
    geq = true;
    for (std::size_t j = k; j-- > 0;) {
      if (result[j] != n_[j]) {
        geq = result[j] > n_[j];
        break;
      }
    }
  }
  if (geq) {
    std::int64_t borrow = 0;
    for (std::size_t j = 0; j < k; ++j) {
      std::int64_t diff = static_cast<std::int64_t>(result[j]) -
                          static_cast<std::int64_t>(n_[j]) - borrow;
      if (diff < 0) {
        diff += (std::int64_t{1} << 32);
        borrow = 1;
      } else {
        borrow = 0;
      }
      result[j] = static_cast<std::uint32_t>(diff);
    }
  }
  return result;
}

MontgomeryContext::Limbs MontgomeryContext::to_mont(const BigInt& x) const {
  // xR mod n = mont_mul(x, R^2)
  return mont_mul(x.limbs(), r2_mod_n_.limbs());
}

BigInt MontgomeryContext::from_mont(const Limbs& x) const {
  // xR^{-1} mod n = mont_mul(x, 1)
  const Limbs one{1};
  const Limbs out = mont_mul(x, one);
  // Rebuild via bytes to stay within BigInt's public interface.
  util::Bytes be;
  be.reserve(out.size() * 4);
  for (std::size_t i = out.size(); i-- > 0;) {
    be.push_back(static_cast<std::uint8_t>(out[i] >> 24));
    be.push_back(static_cast<std::uint8_t>(out[i] >> 16));
    be.push_back(static_cast<std::uint8_t>(out[i] >> 8));
    be.push_back(static_cast<std::uint8_t>(out[i]));
  }
  return BigInt::from_bytes(be);
}

BigInt MontgomeryContext::mul(const BigInt& a, const BigInt& b) const {
  const Limbs am = to_mont(a % modulus_);
  const Limbs bm = to_mont(b % modulus_);
  return from_mont(mont_mul(am, bm));
}

BigInt MontgomeryContext::pow(const BigInt& base, const BigInt& exp) const {
  Limbs result = to_mont(BigInt(1));
  Limbs b = to_mont(base % modulus_);
  const unsigned bits = exp.bit_length();
  for (unsigned i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mont_mul(result, b);
    b = mont_mul(b, b);
  }
  return from_mont(result);
}

}  // namespace hirep::crypto
