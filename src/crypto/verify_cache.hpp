// Signature-verification memoization (scale engine, DESIGN.md §9).
//
// rsa_verify is deterministic — the same (key, data, signature) triple
// always yields the same verdict — so repeated verifications of the same
// onion or report (every holder re-verifies, every refresh re-verifies)
// can be answered from a cache.  Two memo tables live here:
//
//   * verify:  keyed by SHA-256 over the length-framed triple
//              serialize(key) || data || signature.  Only *successful*
//              verifications are inserted; a forged signature therefore
//              never enters the cache and is re-checked (and re-rejected)
//              every time, so a later legitimate triple with the same
//              (key, data) cannot be shadowed and cache poisoning is
//              impossible without a SHA-256 collision.
//   * binding: nodeId = SHA-1(serialize(SP)) memoized per public key,
//              keyed by a cheap limb-mix fingerprint with a full key
//              compare inside the bucket (fingerprint collisions are
//              handled, not assumed away).
//
// Both tables are sharded (mutex + LRU per shard) so scale-engine lanes
// hit distinct locks; hit/miss counts are mirrored to the obs registry as
// crypto.verify_cache.* / crypto.binding_cache.*.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "crypto/identity.hpp"
#include "crypto/rsa.hpp"
#include "util/sync.hpp"

namespace hirep::crypto {

/// Cheap 64-bit fingerprint of a public key (limb mix over n and e; no
/// allocation).  Not collision-free — callers must confirm with a full
/// key compare before trusting a fingerprint match.
std::uint64_t key_fingerprint(const RsaPublicKey& key) noexcept;

class VerifyCache {
 public:
  /// `capacity` bounds each table's total entry count (split over shards).
  explicit VerifyCache(std::size_t capacity = 1 << 16);

  /// Drop-in for rsa_verify with memoization of successful verdicts.
  bool verify(const RsaPublicKey& key, std::span<const std::uint8_t> data,
              std::span<const std::uint8_t> signature);

  /// Drop-in for NodeId::of_key with per-key memoization.
  NodeId node_id_of(const RsaPublicKey& key);

  struct Stats {
    std::uint64_t verify_hits = 0;
    std::uint64_t verify_misses = 0;
    std::uint64_t binding_hits = 0;
    std::uint64_t binding_misses = 0;
  };
  Stats stats() const noexcept;

  /// Empties both tables and zeroes the stats (tests; not used on hot
  /// paths).
  void clear();

  /// Process-wide instance used by the convenience wrappers below.
  static VerifyCache& global();

 private:
  static constexpr std::size_t kShards = 8;  // power of two

  using Digest = std::array<std::uint8_t, 32>;
  struct DigestHash {
    std::size_t operator()(const Digest& d) const noexcept;
  };

  struct VerifyShard {
    util::Mutex mu;
    std::list<Digest> lru HIREP_GUARDED_BY(mu);  // front = most recent
    std::unordered_map<Digest, std::list<Digest>::iterator, DigestHash> map
        HIREP_GUARDED_BY(mu);
  };

  struct BindEntry {
    RsaPublicKey key;
    NodeId id;
  };
  struct BindShard {
    util::Mutex mu;
    std::list<std::uint64_t> lru
        HIREP_GUARDED_BY(mu);  // fingerprints, front = most recent
    std::unordered_map<std::uint64_t,
                       std::pair<std::vector<BindEntry>,
                                 std::list<std::uint64_t>::iterator>>
        map HIREP_GUARDED_BY(mu);
  };

  std::size_t shard_capacity_;
  std::array<VerifyShard, kShards> verify_shards_;
  std::array<BindShard, kShards> bind_shards_;
  std::atomic<std::uint64_t> verify_hits_{0};
  std::atomic<std::uint64_t> verify_misses_{0};
  std::atomic<std::uint64_t> binding_hits_{0};
  std::atomic<std::uint64_t> binding_misses_{0};
};

/// rsa_verify through the process-global VerifyCache.
bool verify_cached(const RsaPublicKey& key, std::span<const std::uint8_t> data,
                   std::span<const std::uint8_t> signature);

/// NodeId::of_key through the process-global VerifyCache.
NodeId node_id_of_cached(const RsaPublicKey& key);

}  // namespace hirep::crypto
