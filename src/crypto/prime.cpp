#include "crypto/prime.hpp"

#include <array>
#include <stdexcept>

namespace hirep::crypto {

namespace {

// Trial division screen: rules out ~88% of odd candidates cheaply before
// the expensive Miller-Rabin exponentiations.
constexpr std::array<std::uint32_t, 53> kSmallPrimes = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,
    53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109,
    113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

bool miller_rabin_round(const BigInt& n, const BigInt& n_minus_1,
                        const BigInt& d, unsigned r, const BigInt& a) {
  BigInt x = BigInt::powmod(a, d, n);
  if (x == BigInt(1) || x == n_minus_1) return true;
  for (unsigned i = 1; i < r; ++i) {
    x = BigInt::mulmod(x, x, n);
    if (x == n_minus_1) return true;
  }
  return false;
}

}  // namespace

bool is_probable_prime(const BigInt& n, util::Rng& rng, int rounds) {
  if (n < BigInt(2)) return false;
  if (n == BigInt(2)) return true;
  if (n.is_even()) return false;
  for (std::uint32_t p : kSmallPrimes) {
    if (n == BigInt(p)) return true;
    if ((n % BigInt(p)).is_zero()) return false;
  }

  // Write n-1 = d * 2^r with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  unsigned r = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++r;
  }

  // First two bases fixed (2 and 3) — catches most composites immediately —
  // then random bases in [2, n-2].
  if (!miller_rabin_round(n, n_minus_1, d, r, BigInt(2))) return false;
  if (n > BigInt(3) && !miller_rabin_round(n, n_minus_1, d, r, BigInt(3))) {
    return false;
  }
  const BigInt span = n - BigInt(3);  // bases drawn from [2, n-2]
  for (int i = 0; i < rounds; ++i) {
    const BigInt a = BigInt::random_below(rng, span) + BigInt(2);
    if (!miller_rabin_round(n, n_minus_1, d, r, a)) return false;
  }
  return true;
}

BigInt random_prime(util::Rng& rng, unsigned bits, int rounds) {
  if (bits < 2) throw std::invalid_argument("prime needs >= 2 bits");
  for (;;) {
    BigInt candidate = BigInt::random_bits(rng, bits);
    if (candidate.is_even()) candidate = candidate + BigInt(1);
    if (candidate.bit_length() != bits) continue;  // +1 overflowed the width
    if (is_probable_prime(candidate, rng, rounds)) return candidate;
  }
}

BigInt random_rsa_prime(util::Rng& rng, unsigned bits, const BigInt& e,
                        int rounds) {
  for (;;) {
    const BigInt p = random_prime(rng, bits, rounds);
    if (BigInt::gcd(p - BigInt(1), e) == BigInt(1)) return p;
  }
}

}  // namespace hirep::crypto
