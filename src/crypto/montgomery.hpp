// Montgomery modular arithmetic (CIOS reduction) for odd moduli — the fast
// path behind BigInt::powmod and therefore every RSA operation in the
// simulator.  A context precomputes n' = -n^{-1} mod 2^64 and R^2 mod n
// once per modulus (R = 2^(64k) for a k-limb modulus); each modular
// multiplication then costs one fused multiply-reduce pass over the limbs
// instead of a full division.  Exponentiation uses fixed-window scanning
// with a precomputed odd-power table, sized to the exponent.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bigint.hpp"

namespace hirep::crypto {

class MontgomeryContext {
 public:
  /// modulus must be odd and >= 3 (every RSA modulus is); throws
  /// std::invalid_argument otherwise.
  explicit MontgomeryContext(const BigInt& modulus);

  const BigInt& modulus() const noexcept { return modulus_; }

  /// (base ^ exp) mod n, base reduced mod n first.  Fixed-window
  /// left-to-right exponentiation (window 1–5 bits by exponent size).
  BigInt pow(const BigInt& base, const BigInt& exp) const;

  /// (a * b) mod n — exposed for tests; both reduced mod n first.
  BigInt mul(const BigInt& a, const BigInt& b) const;

 private:
  using Limbs = std::vector<std::uint64_t>;

  Limbs to_mont(const BigInt& x) const;   ///< xR mod n
  BigInt from_mont(const Limbs& x) const; ///< xR^{-1} mod n
  /// CIOS: returns abR^{-1} mod n for a, b in Montgomery form.
  Limbs mont_mul(const Limbs& a, const Limbs& b) const;
  /// Alloc-free CIOS into `out` (k limbs) using `t` as scratch (k+2
  /// limbs); `out` must not alias `a` or `b`.
  void mont_mul_into(const Limbs& a, const Limbs& b, Limbs& t,
                     Limbs& out) const;
  /// Stack-only exponentiation for moduli of at most 4 limbs — the whole
  /// window table lives in registers/stack, no heap traffic per call.
  BigInt pow_small(const BigInt& base, const BigInt& exp, unsigned bits) const;

  BigInt modulus_;
  Limbs n_;                 // modulus limbs, length k
  std::uint64_t n_prime_;   // -n^{-1} mod 2^64
  BigInt r_mod_n_;          // R mod n      (Montgomery form of 1)
  BigInt r2_mod_n_;         // R^2 mod n    (conversion constant)
  Limbs one_mont_;          // R mod n padded to k limbs
};

}  // namespace hirep::crypto
