// Montgomery modular arithmetic (CIOS reduction) for odd moduli — the fast
// path behind BigInt::powmod and therefore every RSA operation in the
// simulator.  A context precomputes n' = -n^{-1} mod 2^32 and R^2 mod n
// once per modulus; each modular multiplication then costs one fused
// multiply-reduce pass over the limbs instead of a full division.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bigint.hpp"

namespace hirep::crypto {

class MontgomeryContext {
 public:
  /// modulus must be odd and >= 3 (every RSA modulus is); throws
  /// std::invalid_argument otherwise.
  explicit MontgomeryContext(const BigInt& modulus);

  const BigInt& modulus() const noexcept { return modulus_; }

  /// (base ^ exp) mod n, base reduced mod n first.
  BigInt pow(const BigInt& base, const BigInt& exp) const;

  /// (a * b) mod n — exposed for tests; both reduced mod n first.
  BigInt mul(const BigInt& a, const BigInt& b) const;

 private:
  using Limbs = std::vector<std::uint32_t>;

  Limbs to_mont(const BigInt& x) const;   ///< xR mod n
  BigInt from_mont(const Limbs& x) const; ///< xR^{-1} mod n
  /// CIOS: returns abR^{-1} mod n for a, b in Montgomery form.
  Limbs mont_mul(const Limbs& a, const Limbs& b) const;

  BigInt modulus_;
  Limbs n_;                 // modulus limbs, length k
  std::uint32_t n_prime_;   // -n^{-1} mod 2^32
  BigInt r_mod_n_;          // R mod n      (Montgomery form of 1)
  BigInt r2_mod_n_;         // R^2 mod n    (conversion constant)
};

}  // namespace hirep::crypto
