#include "crypto/sha1.hpp"

#include <cassert>
#include <cstring>

namespace hirep::crypto {

namespace {
constexpr std::uint32_t rotl(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}
}  // namespace

Sha1::Sha1()
    : h_{0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u} {}

void Sha1::update(std::span<const std::uint8_t> data) {
  assert(!finished_);
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == buffer_.size()) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

void Sha1::update(const std::string& s) {
  update(std::span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

Sha1::Digest Sha1::finish() {
  assert(!finished_);
  finished_ = true;
  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len =
      (buffer_len_ < 56) ? 56 - buffer_len_ : 120 - buffer_len_;
  finished_ = false;  // allow the padding updates
  update(std::span(pad, pad_len));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::span(len_be, 8));
  finished_ = true;

  Digest out;
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Sha1::Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 s;
  s.update(data);
  return s.finish();
}

Sha1::Digest Sha1::hash(const std::string& s) {
  Sha1 h;
  h.update(s);
  return h.finish();
}

}  // namespace hirep::crypto
