#include "crypto/rsa.hpp"

#include <optional>
#include <stdexcept>

#include "crypto/prime.hpp"
#include "crypto/sha256.hpp"
#include "crypto/stream_cipher.hpp"
#include "obs/metrics.hpp"

namespace hirep::crypto {

namespace {

// Registry-backed op count + latency histogram per RSA primitive.  These
// sit on real RSA paths only, so in crypto=fast runs (which bypass RSA
// entirely) the counters stay 0 — the registry snapshot itself shows the
// fast-vs-full split.  Instrument references resolve once per primitive.
struct RsaOpCells {
  obs::Counter& ops;
  obs::Histogram& latency_ms;
};

#define HIREP_RSA_OP_CELLS(op_name)                                         \
  []() -> RsaOpCells {                                                      \
    auto& reg = obs::Registry::global();                                    \
    return RsaOpCells{reg.counter("crypto.rsa." op_name ".ops"),            \
                      reg.histogram("crypto.rsa." op_name ".ms",            \
                                    obs::latency_buckets_ms())};            \
  }()

}  // namespace

util::Bytes RsaPublicKey::serialize() const {
  util::ByteWriter w;
  const auto nb = n.to_bytes();
  const auto eb = e.to_bytes();
  w.blob(nb);
  w.blob(eb);
  return w.take();
}

RsaPublicKey RsaPublicKey::deserialize(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  RsaPublicKey key;
  key.n = BigInt::from_bytes(r.blob());
  key.e = BigInt::from_bytes(r.blob());
  return key;
}

void RsaPrivateKey::derive_crt() {
  if (p.is_zero() || q.is_zero() || d.is_zero()) return;
  d_p = d % (p - BigInt(1));
  d_q = d % (q - BigInt(1));
  q_inv = BigInt::modinv(q, p);
}

namespace {

// CRT pays only when it shrinks the limb count: for a single-limb modulus
// the halves still occupy one limb each, so Garner's bookkeeping (two
// context lookups, the recombination multiply) costs more than the halved
// exponent saves.  Measured crossover is exactly the limb boundary.
bool crt_profitable(const RsaPrivateKey& key) {
  return key.has_crt() && key.n.bit_length() > 64;
}

// Garner recombination: two half-width exponentiations instead of one
// full-width one — ~4x fewer limb operations per private-key op.
BigInt crt_powmod(const RsaPrivateKey& key, const BigInt& c) {
  if constexpr (obs::kEnabled) {
    obs::Registry::global().counter("crypto.rsa.crt.ops").add();
  }
  BigInt m1 = BigInt::powmod(c % key.p, key.d_p, key.p);
  const BigInt m2 = BigInt::powmod(c % key.q, key.d_q, key.q);
  // h = q_inv * (m1 - m2) mod p, with the subtraction lifted into p's
  // residue ring since BigInt is unsigned.
  const BigInt m2p = m2 < key.p ? m2 : m2 % key.p;
  if (m1 < m2p) m1 = m1 + key.p;
  const BigInt h = BigInt::mulmod(key.q_inv, m1 - m2p, key.p);
  // m = m2 + h*q < q + (p-1)q = pq, so no final reduction is needed.
  return m2 + h * key.q;
}

}  // namespace

RsaKeyPair rsa_generate(util::Rng& rng, unsigned bits) {
  std::optional<obs::ScopedOp> op;
  if constexpr (obs::kEnabled) {
    static RsaOpCells cells = HIREP_RSA_OP_CELLS("generate");
    op.emplace(cells.ops, cells.latency_ms);
  }
  if (bits < 32) throw std::invalid_argument("rsa_generate: bits must be >= 32");
  const unsigned half = bits / 2;
  const BigInt e_preferred(65537);

  for (;;) {
    // For tiny demo moduli 65537 may not be coprime to phi or may exceed it;
    // random_rsa_prime enforces gcd(p-1, e) == 1 against the chosen e.
    const BigInt e = (half > 17) ? e_preferred : BigInt(3);
    const BigInt p = random_rsa_prime(rng, half, e);
    BigInt q = random_rsa_prime(rng, bits - half, e);
    if (p == q) continue;
    const BigInt n = p * q;
    const BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    if (BigInt::gcd(e, phi) != BigInt(1)) continue;
    const BigInt d = BigInt::modinv(e, phi);
    RsaKeyPair pair;
    pair.priv = RsaPrivateKey{n, e, d, p, q, {}, {}, {}};
    pair.priv.derive_crt();
    pair.pub = pair.priv.public_key();
    return pair;
  }
}

BigInt rsa_encrypt_raw(const RsaPublicKey& key, const BigInt& m) {
  if (m >= key.n) throw std::invalid_argument("rsa message >= modulus");
  return BigInt::powmod(m, key.e, key.n);
}

BigInt rsa_decrypt_raw(const RsaPrivateKey& key, const BigInt& c) {
  if (c >= key.n) throw std::invalid_argument("rsa ciphertext >= modulus");
  if (crt_profitable(key)) return crt_powmod(key, c);
  return BigInt::powmod(c, key.d, key.n);
}

namespace {

StreamCipher::Key kem_key(const BigInt& r, std::uint8_t domain) {
  // Domain-separated KDF: cipher key (domain 0) and MAC key (domain 1).
  auto rb = r.to_bytes();
  rb.push_back(domain);
  const auto digest = Sha256::hash(rb);
  StreamCipher::Key key;
  std::copy(digest.begin(), digest.end(), key.begin());
  return key;
}

constexpr std::size_t kMacBytes = 16;

util::Bytes mac_of(const StreamCipher::Key& mac_key,
                   std::span<const std::uint8_t> ct) {
  const auto digest = hmac_sha256(mac_key, ct);
  return util::Bytes(digest.begin(), digest.begin() + kMacBytes);
}

}  // namespace

util::Bytes rsa_encrypt_bytes(util::Rng& rng, const RsaPublicKey& key,
                              std::span<const std::uint8_t> data) {
  std::optional<obs::ScopedOp> op;
  if constexpr (obs::kEnabled) {
    static RsaOpCells cells = HIREP_RSA_OP_CELLS("encrypt");
    op.emplace(cells.ops, cells.latency_ms);
  }
  // KEM: wrap a random r; the symmetric key is SHA256(r).  r >= 2 so the
  // trivial fixed points 0 and 1 never leak the key.
  BigInt r;
  do {
    r = BigInt::random_below(rng, key.n);
  } while (r < BigInt(2));
  const BigInt c0 = rsa_encrypt_raw(key, r);

  StreamCipher cipher(kem_key(r, 0));
  util::Bytes ct(data.begin(), data.end());
  cipher.apply(ct);
  const util::Bytes mac = mac_of(kem_key(r, 1), ct);

  util::ByteWriter w;
  const auto c0b = c0.to_bytes();
  w.blob(c0b);
  w.blob(ct);
  w.blob(mac);
  return w.take();
}

std::optional<util::Bytes> rsa_decrypt_bytes(const RsaPrivateKey& key,
                                             std::span<const std::uint8_t> data) {
  std::optional<obs::ScopedOp> op;
  if constexpr (obs::kEnabled) {
    static RsaOpCells cells = HIREP_RSA_OP_CELLS("decrypt");
    op.emplace(cells.ops, cells.latency_ms);
  }
  try {
    util::ByteReader reader(data);
    const util::Bytes c0b = reader.blob();
    util::Bytes ct = reader.blob();
    const util::Bytes mac = reader.blob();
    if (!reader.done()) return std::nullopt;
    const BigInt c0 = BigInt::from_bytes(c0b);
    if (c0 >= key.n) return std::nullopt;
    const BigInt r = rsa_decrypt_raw(key, c0);
    // Authenticate before decrypting: a wrong private key (or tampering)
    // fails here deterministically instead of yielding garbage plaintext.
    if (!util::ct_equal(mac, mac_of(kem_key(r, 1), ct))) return std::nullopt;
    StreamCipher cipher(kem_key(r, 0));
    cipher.apply(ct);
    return ct;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

util::Bytes rsa_sign(const RsaPrivateKey& key, std::span<const std::uint8_t> data) {
  std::optional<obs::ScopedOp> op;
  if constexpr (obs::kEnabled) {
    static RsaOpCells cells = HIREP_RSA_OP_CELLS("sign");
    op.emplace(cells.ops, cells.latency_ms);
  }
  const auto digest = Sha256::hash(data);
  const BigInt m = BigInt::from_bytes(digest) % key.n;
  if (crt_profitable(key)) return crt_powmod(key, m).to_bytes();
  return BigInt::powmod(m, key.d, key.n).to_bytes();
}

bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> data,
                std::span<const std::uint8_t> signature) {
  std::optional<obs::ScopedOp> op;
  if constexpr (obs::kEnabled) {
    static RsaOpCells cells = HIREP_RSA_OP_CELLS("verify");
    op.emplace(cells.ops, cells.latency_ms);
  }
  const BigInt s = BigInt::from_bytes(signature);
  if (s >= key.n) return false;
  const auto digest = Sha256::hash(data);
  const BigInt m = BigInt::from_bytes(digest) % key.n;
  return BigInt::powmod(s, key.e, key.n) == m;
}

}  // namespace hirep::crypto
