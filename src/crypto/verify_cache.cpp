#include "crypto/verify_cache.hpp"

#include <cstring>

#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"

namespace hirep::crypto {

namespace {

void obs_count(const char* name) {
  if constexpr (obs::kEnabled) {
    obs::Registry::global().counter(name).add();
  }
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 31);
}

std::uint64_t mix_bigint(std::uint64_t h, const BigInt& x) noexcept {
  h = mix(h, x.bit_length());
  for (const std::uint64_t limb : x.limbs()) h = mix(h, limb);
  return h;
}

}  // namespace

std::uint64_t key_fingerprint(const RsaPublicKey& key) noexcept {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  h = mix_bigint(h, key.n);
  h = mix_bigint(h, key.e);
  return h;
}

std::size_t VerifyCache::DigestHash::operator()(const Digest& d) const noexcept {
  std::uint64_t x;  // the digest is already uniform — any 8 bytes will do
  std::memcpy(&x, d.data(), sizeof(x));
  return static_cast<std::size_t>(x);
}

VerifyCache::VerifyCache(std::size_t capacity)
    : shard_capacity_(capacity / kShards > 0 ? capacity / kShards : 1) {}

VerifyCache& VerifyCache::global() {
  static VerifyCache cache;
  return cache;
}

bool VerifyCache::verify(const RsaPublicKey& key,
                         std::span<const std::uint8_t> data,
                         std::span<const std::uint8_t> signature) {
  Sha256 h;
  const auto frame = [&h](std::span<const std::uint8_t> bytes) {
    std::array<std::uint8_t, 8> len{};
    std::uint64_t n = bytes.size();
    for (auto& b : len) {
      b = static_cast<std::uint8_t>(n);
      n >>= 8;
    }
    h.update(len);
    h.update(bytes);
  };
  frame(key.serialize());
  frame(data);
  frame(signature);
  const Digest digest = h.finish();

  VerifyShard& shard = verify_shards_[digest[0] & (kShards - 1)];
  {
    util::MutexLock lock(shard.mu);
    const auto it = shard.map.find(digest);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      verify_hits_.fetch_add(1, std::memory_order_relaxed);
      obs_count("crypto.verify_cache.hits");
      return true;  // only successful verifications are ever inserted
    }
  }
  verify_misses_.fetch_add(1, std::memory_order_relaxed);
  obs_count("crypto.verify_cache.misses");

  const bool ok = rsa_verify(key, data, signature);
  if (!ok) return false;  // forged: never cached

  util::MutexLock lock(shard.mu);
  if (shard.map.find(digest) != shard.map.end()) return true;  // raced in
  shard.lru.push_front(digest);
  shard.map.emplace(digest, shard.lru.begin());
  if (shard.map.size() > shard_capacity_) {
    shard.map.erase(shard.lru.back());
    shard.lru.pop_back();
  }
  return true;
}

NodeId VerifyCache::node_id_of(const RsaPublicKey& key) {
  const std::uint64_t fp = key_fingerprint(key);
  BindShard& shard = bind_shards_[fp & (kShards - 1)];
  {
    util::MutexLock lock(shard.mu);
    const auto it = shard.map.find(fp);
    if (it != shard.map.end()) {
      for (const BindEntry& entry : it->second.first) {
        if (entry.key == key) {
          shard.lru.splice(shard.lru.begin(), shard.lru, it->second.second);
          binding_hits_.fetch_add(1, std::memory_order_relaxed);
          obs_count("crypto.binding_cache.hits");
          return entry.id;
        }
      }
    }
  }
  binding_misses_.fetch_add(1, std::memory_order_relaxed);
  obs_count("crypto.binding_cache.misses");

  const NodeId id = NodeId::of_key(key);

  util::MutexLock lock(shard.mu);
  auto it = shard.map.find(fp);
  if (it == shard.map.end()) {
    shard.lru.push_front(fp);
    it = shard.map.emplace(fp, std::make_pair(std::vector<BindEntry>{},
                                              shard.lru.begin()))
             .first;
    if (shard.map.size() > shard_capacity_) {
      shard.map.erase(shard.lru.back());
      shard.lru.pop_back();
    }
  }
  for (const BindEntry& entry : it->second.first) {
    if (entry.key == key) return entry.id;  // raced in
  }
  it->second.first.push_back(BindEntry{key, id});
  return id;
}

VerifyCache::Stats VerifyCache::stats() const noexcept {
  return {verify_hits_.load(std::memory_order_relaxed),
          verify_misses_.load(std::memory_order_relaxed),
          binding_hits_.load(std::memory_order_relaxed),
          binding_misses_.load(std::memory_order_relaxed)};
}

void VerifyCache::clear() {
  for (auto& shard : verify_shards_) {
    util::MutexLock lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
  }
  for (auto& shard : bind_shards_) {
    util::MutexLock lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
  }
  verify_hits_.store(0, std::memory_order_relaxed);
  verify_misses_.store(0, std::memory_order_relaxed);
  binding_hits_.store(0, std::memory_order_relaxed);
  binding_misses_.store(0, std::memory_order_relaxed);
}

bool verify_cached(const RsaPublicKey& key, std::span<const std::uint8_t> data,
                   std::span<const std::uint8_t> signature) {
  return VerifyCache::global().verify(key, data, signature);
}

NodeId node_id_of_cached(const RsaPublicKey& key) {
  return VerifyCache::global().node_id_of(key);
}

}  // namespace hirep::crypto
