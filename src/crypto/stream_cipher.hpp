// SHA-256-CTR stream cipher.  Onion layers are encrypted hybridly: the
// symmetric key for each layer is wrapped with the relay's RSA anonymity
// key (KEM-style), and the layer body is XORed with this keystream.  That
// matches deployed onion-routing practice and keeps layer size linear
// rather than bounded by the RSA modulus.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace hirep::crypto {

class StreamCipher {
 public:
  static constexpr std::size_t kKeySize = 32;
  using Key = std::array<std::uint8_t, kKeySize>;

  /// nonce distinguishes streams under the same key (e.g. layer index).
  explicit StreamCipher(const Key& key, std::uint64_t nonce = 0);

  /// XORs the keystream into data in place.  Encrypt == decrypt.
  void apply(std::span<std::uint8_t> data);

  /// Convenience: returns the transformed copy.
  util::Bytes transform(std::span<const std::uint8_t> data);

 private:
  void refill();

  Key key_;
  std::uint64_t nonce_;
  std::uint64_t counter_ = 0;
  std::array<std::uint8_t, 32> block_{};
  std::size_t block_used_ = sizeof(block_);
};

}  // namespace hirep::crypto
