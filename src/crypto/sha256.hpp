// SHA-256 (FIPS 180-4) from scratch.  Used as the PRF/KDF underlying the
// hybrid onion-layer cipher and everywhere a modern hash is preferable to
// the paper's SHA-1 nodeId binding.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "util/bytes.hpp"

namespace hirep::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(const std::string& s);
  Digest finish();

  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(const std::string& s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

/// HMAC-SHA256 (RFC 2104) — used to key the stream cipher per onion layer.
Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message);

}  // namespace hirep::crypto
