// Word-level primitives for the base-2^64 bignum kernels: full 64x64->128
// multiply, multiply-accumulate carry-chain steps, add/sub with carry, and
// 128-by-64 division.  Uses __uint128_t where the compiler provides it
// (gcc/clang on 64-bit targets) with a portable hi/lo decomposition
// fallback, so the arithmetic layer has no hard dependency on the
// extension.
#pragma once

#include <cstdint>

namespace hirep::crypto::limb {

#if defined(__SIZEOF_INT128__)
#define HIREP_LIMB_HAS_INT128 1
using uint128 = unsigned __int128;
#endif

/// Full 64x64 -> 128 multiply: returns the low word, writes the high word.
inline std::uint64_t mul64(std::uint64_t a, std::uint64_t b,
                           std::uint64_t& hi) noexcept {
#if defined(HIREP_LIMB_HAS_INT128)
  const uint128 p = static_cast<uint128>(a) * b;
  hi = static_cast<std::uint64_t>(p >> 64);
  return static_cast<std::uint64_t>(p);
#else
  // Portable hi/lo decomposition into four 32x32 products.
  const std::uint64_t a_lo = a & 0xffffffffULL, a_hi = a >> 32;
  const std::uint64_t b_lo = b & 0xffffffffULL, b_hi = b >> 32;
  const std::uint64_t p0 = a_lo * b_lo;
  const std::uint64_t p1 = a_lo * b_hi;
  const std::uint64_t p2 = a_hi * b_lo;
  const std::uint64_t p3 = a_hi * b_hi;
  const std::uint64_t mid =
      (p0 >> 32) + (p1 & 0xffffffffULL) + (p2 & 0xffffffffULL);
  hi = p3 + (p1 >> 32) + (p2 >> 32) + (mid >> 32);
  return (mid << 32) | (p0 & 0xffffffffULL);
#endif
}

/// Multiply-accumulate carry-chain step: acc + b*c + carry; low word
/// returned, carry replaced by the high word.  Cannot overflow 128 bits:
/// (2^64-1)^2 + 2*(2^64-1) == 2^128 - 1.
inline std::uint64_t mac64(std::uint64_t acc, std::uint64_t b, std::uint64_t c,
                           std::uint64_t& carry) noexcept {
  std::uint64_t hi;
  std::uint64_t lo = mul64(b, c, hi);
  lo += acc;
  hi += static_cast<std::uint64_t>(lo < acc);
  lo += carry;
  hi += static_cast<std::uint64_t>(lo < carry);
  carry = hi;
  return lo;
}

/// a + b + carry with carry in {0,1}; carry replaced by the carry out.
inline std::uint64_t adc64(std::uint64_t a, std::uint64_t b,
                           std::uint64_t& carry) noexcept {
  const std::uint64_t s1 = a + b;
  const std::uint64_t c1 = static_cast<std::uint64_t>(s1 < a);
  const std::uint64_t s2 = s1 + carry;
  carry = c1 + static_cast<std::uint64_t>(s2 < s1);
  return s2;
}

/// a - b - borrow with borrow in {0,1}; borrow replaced by the borrow out.
inline std::uint64_t sbb64(std::uint64_t a, std::uint64_t b,
                           std::uint64_t& borrow) noexcept {
  const std::uint64_t d1 = a - b;
  const std::uint64_t c1 = static_cast<std::uint64_t>(a < b);
  const std::uint64_t d2 = d1 - borrow;
  borrow = c1 + static_cast<std::uint64_t>(d1 < borrow);
  return d2;
}

#if defined(HIREP_LIMB_HAS_INT128)
/// (hi:lo) / d and remainder; requires hi < d so the quotient fits a word.
inline std::uint64_t div128by64(std::uint64_t hi, std::uint64_t lo,
                                std::uint64_t d, std::uint64_t& rem) noexcept {
  const uint128 num = (static_cast<uint128>(hi) << 64) | lo;
  rem = static_cast<std::uint64_t>(num % d);
  return static_cast<std::uint64_t>(num / d);
}
#else
/// Portable shift-subtract long division, one quotient bit per step.
inline std::uint64_t div128by64(std::uint64_t hi, std::uint64_t lo,
                                std::uint64_t d, std::uint64_t& rem) noexcept {
  std::uint64_t q = 0;
  std::uint64_t r = hi;  // invariant: r < d
  for (int i = 63; i >= 0; --i) {
    const std::uint64_t top = r >> 63;
    r = (r << 1) | ((lo >> i) & 1u);
    if (top || r >= d) {
      r -= d;
      q |= std::uint64_t{1} << i;
    }
  }
  rem = r;
  return q;
}
#endif

/// Inverse of an odd 64-bit value modulo 2^64 by Newton iteration: each
/// step doubles the number of correct low bits (6 steps reach 64+).
inline std::uint64_t inv64(std::uint64_t odd) noexcept {
  std::uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2u - odd * inv;
  }
  return inv;
}

}  // namespace hirep::crypto::limb
