// RSA over our own BigInt: key generation, raw modexp primitives, hybrid
// (KEM + stream cipher) byte encryption, and hash-then-sign signatures.
//
// The paper's protocols (§3.3, §3.5) use two RSA key pairs per peer:
//   (SP, SR)  signature pair   — authenticity; nodeId = SHA1(SP)
//   (AP, AR)  anonymity pair   — onion layer encryption
// Key size is a parameter: tests exercise 256–512 bits, large simulations
// default to 128 bits so a thousand key generations cost milliseconds.
// The code path is identical at any size.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/bigint.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace hirep::crypto {

struct RsaPublicKey {
  BigInt n;  ///< modulus
  BigInt e;  ///< public exponent

  util::Bytes serialize() const;
  static RsaPublicKey deserialize(std::span<const std::uint8_t> data);
  bool operator==(const RsaPublicKey&) const = default;
};

struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;  ///< private exponent
  BigInt p;
  BigInt q;
  // CRT residues (d_p = d mod p-1, d_q = d mod q-1, q_inv = q^{-1} mod p).
  // Zero when the key was loaded without factors; private-key operations
  // then fall back to the single full-width exponentiation.
  BigInt d_p;
  BigInt d_q;
  BigInt q_inv;

  RsaPublicKey public_key() const { return {n, e}; }

  /// True when the CRT residues are populated and private-key operations
  /// take the two-half-exponentiations fast path.
  bool has_crt() const noexcept {
    return !p.is_zero() && !q.is_zero() && !d_p.is_zero() && !d_q.is_zero() &&
           !q_inv.is_zero();
  }

  /// Computes d_p/d_q/q_inv from (d, p, q).  No-op when the factors are
  /// missing.  The residues are derived against the stored order of p and
  /// q, so a key with swapped factors still signs identically.
  void derive_crt();
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generates an RSA key pair with modulus of roughly `bits` bits.
/// bits must be >= 32.  The public exponent is 65537 when possible, else
/// the smallest odd e >= 3 coprime to phi.
RsaKeyPair rsa_generate(util::Rng& rng, unsigned bits);

/// Raw primitives (m must be < n).
BigInt rsa_encrypt_raw(const RsaPublicKey& key, const BigInt& m);
BigInt rsa_decrypt_raw(const RsaPrivateKey& key, const BigInt& c);

/// Authenticated hybrid encryption of arbitrary-length data:
///   c0 = (r)^e mod n for random r;  Kc = SHA256(r||0), Km = SHA256(r||1)
///   ct = StreamCipher_Kc(data);  mac = HMAC_Km(ct)[0..16)
/// Output framing: blob(c0) || blob(ct) || blob(mac).
util::Bytes rsa_encrypt_bytes(util::Rng& rng, const RsaPublicKey& key,
                              std::span<const std::uint8_t> data);

/// Inverse of rsa_encrypt_bytes; nullopt on malformed input.
std::optional<util::Bytes> rsa_decrypt_bytes(const RsaPrivateKey& key,
                                             std::span<const std::uint8_t> data);

/// Hash-then-sign: s = H(data) mod n, signature = s^d mod n.
util::Bytes rsa_sign(const RsaPrivateKey& key, std::span<const std::uint8_t> data);

/// Verifies a signature produced by rsa_sign.
bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> data,
                std::span<const std::uint8_t> signature);

}  // namespace hirep::crypto
