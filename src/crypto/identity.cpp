#include "crypto/identity.hpp"

#include <cstring>

#include "check/invariants.hpp"
#include "crypto/verify_cache.hpp"
#include "util/bytes.hpp"

namespace hirep::crypto {

std::string NodeId::to_hex() const { return util::to_hex(bytes); }

std::string NodeId::short_hex(std::size_t nibbles) const {
  auto hex = to_hex();
  if (hex.size() > nibbles) hex.resize(nibbles);
  return hex + "…";
}

NodeId NodeId::of_key(const RsaPublicKey& signature_public_key) {
  NodeId id;
  id.bytes = Sha1::hash(signature_public_key.serialize());
  return id;
}

std::size_t NodeIdHash::operator()(const NodeId& id) const noexcept {
  // The id is already a cryptographic hash; fold the first 8 bytes.
  std::uint64_t v;
  std::memcpy(&v, id.bytes.data(), sizeof(v));
  return static_cast<std::size_t>(v);
}

Identity Identity::generate(util::Rng& rng, unsigned bits) {
  Identity id;
  id.signature_ = rsa_generate(rng, bits);
  id.anonymity_ = rsa_generate(rng, bits);
  id.node_id_ = NodeId::of_key(id.signature_.pub);
  if constexpr (check::kEnabled) {
    check::binding("crypto.identity.binding",
                   NodeId::of_key(id.signature_.pub) == id.node_id_,
                   NodeIdHash{}(id.node_id_));
  }
  return id;
}

util::Bytes Identity::sign(std::span<const std::uint8_t> data) const {
  return rsa_sign(signature_.priv, data);
}

bool Identity::verify_own(std::span<const std::uint8_t> data,
                          std::span<const std::uint8_t> sig) const {
  return rsa_verify(signature_.pub, data, sig);
}

util::Bytes Identity::RotationAnnouncement::serialize() const {
  util::ByteWriter w;
  w.raw(old_id.bytes);
  w.blob(new_signature_public.serialize());
  w.blob(signature);
  return w.take();
}

std::optional<Identity::RotationAnnouncement>
Identity::RotationAnnouncement::deserialize(std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    RotationAnnouncement ann;
    const auto idb = r.raw(Sha1::kDigestSize);
    std::copy(idb.begin(), idb.end(), ann.old_id.bytes.begin());
    ann.new_signature_public = RsaPublicKey::deserialize(r.blob());
    ann.signature = r.blob();
    if (!r.done()) return std::nullopt;
    return ann;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

Identity::RotationAnnouncement Identity::rotate_signature_key(util::Rng& rng,
                                                              unsigned bits) {
  const RsaKeyPair next = rsa_generate(rng, bits);
  RotationAnnouncement ann;
  ann.old_id = node_id_;
  ann.new_signature_public = next.pub;
  ann.signature = rsa_sign(signature_.priv, next.pub.serialize());
  signature_ = next;
  node_id_ = NodeId::of_key(signature_.pub);
  if constexpr (check::kEnabled) {
    check::binding("crypto.identity.binding",
                   NodeId::of_key(signature_.pub) == node_id_,
                   NodeIdHash{}(node_id_));
  }
  return ann;
}

bool Identity::verify_rotation(const RsaPublicKey& old_key,
                               const RotationAnnouncement& ann) {
  // The announcement must (a) name the id derived from the old key and
  // (b) carry a valid old-key signature over the new key.
  if (node_id_of_cached(old_key) != ann.old_id) return false;
  return verify_cached(old_key, ann.new_signature_public.serialize(),
                       ann.signature);
}

}  // namespace hirep::crypto
