// Arbitrary-precision unsigned integers sized for RSA moduli up to a few
// thousand bits.  Little-endian base-2^64 limbs with multiply-accumulate
// carry chains (128-bit intermediates where the compiler provides them,
// portable hi/lo decomposition otherwise), schoolbook multiplication
// (adequate at these sizes) and Knuth Algorithm D division on full
// machine-word digits.
//
// Only non-negative values are representable: every quantity in the RSA /
// Miller-Rabin code paths is non-negative, and keeping the type unsigned
// removes a whole class of sign-handling bugs.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <utility>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace hirep::crypto {

class BigInt {
 public:
  /// One machine word per limb, little-endian, no trailing zero limbs.
  using Limb = std::uint64_t;

  BigInt() = default;
  BigInt(std::uint64_t value);  // NOLINT(google-explicit-constructor): numeric literal convenience

  /// Big-endian byte import/export (the conventional wire format for keys).
  static BigInt from_bytes(std::span<const std::uint8_t> be_bytes);
  util::Bytes to_bytes() const;  ///< minimal big-endian encoding; empty for 0

  /// Little-endian limb import; leading (high) zero limbs are normalized
  /// away.  The inverse of limbs().
  static BigInt from_limbs(std::span<const Limb> le_limbs);

  /// Hex (no 0x prefix). Throws std::invalid_argument on bad digits.
  static BigInt from_hex(const std::string& hex);
  std::string to_hex() const;

  /// Decimal rendering, for docs/examples.
  std::string to_decimal() const;

  /// Uniform value in [0, bound) — rejection sampling over whole 32-bit
  /// words (one rng draw per 32 bits; the draw pattern is part of the
  /// deterministic-replay contract and must never change).
  static BigInt random_below(util::Rng& rng, const BigInt& bound);
  /// Uniform value with exactly `bits` bits (top bit set). bits >= 1.
  static BigInt random_bits(util::Rng& rng, unsigned bits);

  bool is_zero() const noexcept { return limbs_.empty(); }
  bool is_odd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1u); }
  bool is_even() const noexcept { return !is_odd(); }
  /// Number of significant bits; 0 for value 0.
  unsigned bit_length() const noexcept;
  bool bit(unsigned i) const noexcept;
  /// Low 64 bits (truncating).
  std::uint64_t low_u64() const noexcept;

  std::strong_ordering operator<=>(const BigInt& rhs) const noexcept;
  bool operator==(const BigInt& rhs) const noexcept = default;

  BigInt operator+(const BigInt& rhs) const;
  /// Requires *this >= rhs; throws std::underflow_error otherwise.
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  BigInt operator/(const BigInt& rhs) const;
  BigInt operator%(const BigInt& rhs) const;
  BigInt operator<<(unsigned bits) const;
  BigInt operator>>(unsigned bits) const;

  /// Quotient and remainder in one division. Divisor must be non-zero
  /// (throws std::domain_error).
  static std::pair<BigInt, BigInt> divmod(const BigInt& num, const BigInt& den);

  /// (a * b) mod m.
  static BigInt mulmod(const BigInt& a, const BigInt& b, const BigInt& m);
  /// (base ^ exp) mod m. m must be > 0.  Odd moduli with non-trivial
  /// exponents dispatch to Montgomery fixed-window exponentiation.
  static BigInt powmod(const BigInt& base, const BigInt& exp, const BigInt& m);
  static BigInt gcd(BigInt a, BigInt b);
  /// Modular inverse of a mod m; throws std::domain_error when gcd(a,m) != 1.
  static BigInt modinv(const BigInt& a, const BigInt& m);

  const std::vector<Limb>& limbs() const noexcept { return limbs_; }

 private:
  void trim() noexcept;
  static int compare(const BigInt& a, const BigInt& b) noexcept;

  std::vector<Limb> limbs_;  // little-endian, no trailing zeros
};

}  // namespace hirep::crypto
