// Probabilistic primality testing and prime generation for RSA key
// generation.  Miller-Rabin with enough rounds that the error probability
// is far below any simulation-relevant scale (4^-rounds).
#pragma once

#include "crypto/bigint.hpp"
#include "util/rng.hpp"

namespace hirep::crypto {

/// Miller-Rabin probabilistic primality test.  Deterministically correct
/// for n < 3,215,031,751 with the fixed small bases it tries first.
bool is_probable_prime(const BigInt& n, util::Rng& rng, int rounds = 24);

/// Generates a random prime with exactly `bits` bits (top bit set).
/// bits must be >= 2.
BigInt random_prime(util::Rng& rng, unsigned bits, int rounds = 24);

/// Generates a prime p with `bits` bits such that gcd(p-1, e) == 1, as
/// required for an RSA prime compatible with public exponent e.
BigInt random_rsa_prime(util::Rng& rng, unsigned bits, const BigInt& e,
                        int rounds = 24);

}  // namespace hirep::crypto
