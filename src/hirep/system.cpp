#include "hirep/system.hpp"

#include <algorithm>
#include <stdexcept>
#include <string_view>

#include "check/invariants.hpp"
#include "crypto/verify_cache.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace hirep::core {

namespace {

trust::WorldParams world_with_nodes(trust::WorldParams world, std::size_t nodes) {
  world.nodes = nodes;
  return world;
}

ListParams list_params_from(const HirepOptions& o) {
  ListParams lp;
  lp.alpha = o.expertise_alpha;
  lp.eviction_threshold = o.eviction_threshold;
  lp.capacity = o.trusted_agents;
  lp.backup_capacity = o.backup_capacity;
  lp.refill_fraction = o.refill_fraction;
  return lp;
}

/// Whether an envelope type lands in one of the buckets
/// trust_message_total() sums (kOnionRelay is never produced by the
/// transport, so the three request/response/report kinds are exhaustive).
bool trust_counted(net::EnvelopeType type) noexcept {
  switch (net::kind_of(type)) {
    case net::MessageKind::kTrustRequest:
    case net::MessageKind::kTrustResponse:
    case net::MessageKind::kReport:
      return true;
    default:
      return false;
  }
}

// Stream salts for the scale engine: transaction streams and deferred
// maintenance draw from disjoint (seed, salt) families.
constexpr std::uint64_t kTxnStreamSalt = 0x5ca1ab1e0ddba11dULL;
constexpr std::uint64_t kMaintenanceSalt = 0xdecafbadf00dfeedULL;
constexpr std::uint64_t kLaneSeedSalt = 0x1a5e5eedULL;
constexpr std::uint64_t kChannelSeedSalt = 0xbadc0ffee0dba11ULL;

using IdMap = std::vector<std::pair<crypto::NodeId, net::NodeIndex>>;

IdMap::iterator id_lower_bound(IdMap& m, const crypto::NodeId& id) {
  return std::lower_bound(
      m.begin(), m.end(), id,
      [](const IdMap::value_type& e, const crypto::NodeId& k) {
        return e.first < k;
      });
}

IdMap::const_iterator id_lower_bound(const IdMap& m, const crypto::NodeId& id) {
  return std::lower_bound(
      m.begin(), m.end(), id,
      [](const IdMap::value_type& e, const crypto::NodeId& k) {
        return e.first < k;
      });
}

}  // namespace

HirepSystem::HirepSystem(HirepOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      truth_(rng_, world_with_nodes(options_.world, options_.nodes)),
      overlay_(net::power_law(rng_, options_.nodes, options_.average_degree),
               options_.latency, options_.seed ^ 0x1eafcafeULL),
      transport_(&overlay_, options_.delivery, options_.seed ^ 0xfa017ca7ULL),
      reliable_(&transport_, options_.reliable,
                options_.seed ^ kChannelSeedSalt),
      router_(&overlay_, [this](net::NodeIndex v) -> const crypto::Identity* {
        return v < identities_.size() ? &identities_[v] : nullptr;
      }) {
  if (options_.nodes < 8) throw std::invalid_argument("need >= 8 nodes");

  // Identities: two RSA key pairs per node; nodeId = SHA1(SP).
  id_to_ip_.reserve(options_.nodes);
  for (std::size_t v = 0; v < options_.nodes; ++v) {
    identities_.push_back(crypto::Identity::generate(rng_, options_.rsa_bits));
    id_to_ip_.emplace_back(identities_.back().node_id(),
                           static_cast<net::NodeIndex>(v));
  }
  std::sort(id_to_ip_.begin(), id_to_ip_.end(),
            [](const IdMap::value_type& a, const IdMap::value_type& b) {
              return a.first < b.first;
            });

  // Peers, each with its verified onion relays.
  const ListParams lp = list_params_from(options_);
  peers_.reserve(options_.nodes);
  for (std::size_t v = 0; v < options_.nodes; ++v) {
    const auto ip = static_cast<net::NodeIndex>(v);
    peers_.emplace_back(&identities_[v], ip, lp);
    peers_.back().set_relays(pick_and_verify_relays(ip));
  }

  // Agent community: every bandwidth-qualified node claims agent-hood.
  agent_runtimes_.resize(options_.nodes);
  agent_sq_.assign(options_.nodes, 1);
  agent_online_.assign(options_.nodes, 0);
  for (net::NodeIndex v : truth_.agent_capable_nodes()) {
    make_agent(v, &identities_[v]);
  }

  // Community formation: each peer discovers its trusted agents.  Peers
  // run in random order; early responders only know agent self-entries,
  // later ones inherit curated lists — the emergent hierarchy of §3.4.
  std::vector<net::NodeIndex> order(options_.nodes);
  for (std::size_t v = 0; v < options_.nodes; ++v) {
    order[v] = static_cast<net::NodeIndex>(v);
  }
  rng_.shuffle(order);
  for (net::NodeIndex v : order) discover_agents(v);
}

void HirepSystem::make_agent(net::NodeIndex v,
                             const crypto::Identity* identity) {
  AgentRuntime& rt = agent_runtimes_[v];
  rt.agent = std::make_unique<ReputationAgent>(
      identity, v, &truth_, trust::model_factory_by_name(options_.agent_model),
      options_.min_reports_for_model);
  rt.relays = peers_[v].relays();  // agents reuse their verified relays
  rt.mu = std::make_unique<util::Mutex>();
  rt.recovery = std::make_unique<AgentRecovery>();
  agent_online_[v] = 1;
  ++agent_count_;
}

ReputationAgent* HirepSystem::agent_at(net::NodeIndex v) {
  if (v >= agent_runtimes_.size()) return nullptr;
  return agent_runtimes_[v].agent.get();
}

std::optional<net::NodeIndex> HirepSystem::ip_of(const crypto::NodeId& id) const {
  const auto it = id_lower_bound(id_to_ip_, id);
  if (it == id_to_ip_.end() || !(it->first == id)) return std::nullopt;
  return it->second;
}

bool HirepSystem::agent_online(net::NodeIndex v) const {
  return v < agent_online_.size() && agent_online_[v] != 0;
}

void HirepSystem::set_agent_online(net::NodeIndex v, bool online) {
  if (v >= agent_runtimes_.size() || agent_runtimes_[v].agent == nullptr) {
    throw std::invalid_argument("node is not an agent");
  }
  agent_online_[v] = online ? 1 : 0;
}

bool HirepSystem::agent_quarantined(net::NodeIndex v) const {
  return v < agent_runtimes_.size() &&
         agent_runtimes_[v].recovery != nullptr &&
         agent_runtimes_[v].recovery->quarantined.load(
             std::memory_order_relaxed);
}

void HirepSystem::quarantine_agent(net::NodeIndex v) {
  if (v >= agent_runtimes_.size() || agent_runtimes_[v].agent == nullptr) {
    throw std::invalid_argument("node is not an agent");
  }
  if (!agent_runtimes_[v].recovery->quarantined.exchange(
          true, std::memory_order_relaxed)) {
    recovery_tallies_.quarantines.fetch_add(1, std::memory_order_relaxed);
  }
}

HirepSystem::RecoveryCounters HirepSystem::recovery_counters() const {
  const auto get = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  RecoveryCounters c;
  c.suspicions = get(recovery_tallies_.suspicions);
  c.quarantines = get(recovery_tallies_.quarantines);
  c.probations_cleared = get(recovery_tallies_.probations_cleared);
  c.backup_promotions = get(recovery_tallies_.backup_promotions);
  c.rediscoveries = get(recovery_tallies_.rediscoveries);
  c.degraded_queries = get(recovery_tallies_.degraded_queries);
  return c;
}

void HirepSystem::note_exchange_failure(AgentRuntime& rt) {
  recovery_tallies_.suspicions.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) {
    static obs::Counter& suspicions =
        obs::Registry::global().counter("hirep.recovery.suspicions");
    suspicions.add();
  }
  const std::uint32_t after =
      rt.recovery->suspicion.fetch_add(1, std::memory_order_relaxed) + 1;
  // Exactly one incrementer observes the threshold crossing, so the
  // quarantine transition (and its tally) happens once no matter how many
  // lanes report failures concurrently.
  if (after == options_.recovery.suspicion_threshold &&
      !rt.recovery->quarantined.exchange(true, std::memory_order_relaxed)) {
    recovery_tallies_.quarantines.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kEnabled) {
      static obs::Counter& quarantines =
          obs::Registry::global().counter("hirep.recovery.quarantines");
      quarantines.add();
    }
  }
}

void HirepSystem::note_exchange_success(AgentRuntime& rt) {
  rt.recovery->suspicion.store(0, std::memory_order_relaxed);
}

bool HirepSystem::admit_entry(Peer& p, AgentEntry entry, bool fresh_probe) {
  if constexpr (check::kEnabled) {
    const auto* rt = runtime_of(entry.agent_id);
    const bool quarantined =
        rt != nullptr && rt->recovery->quarantined.load(
                             std::memory_order_relaxed);
    check::gate("hirep.quarantine.fresh_probe", fresh_probe || !quarantined,
                "trusted-list admission",
                crypto::NodeIdHash{}(entry.agent_id), p.ip());
  }
  return p.agents().add(std::move(entry));
}

HirepSystem::AgentRef HirepSystem::resolve_agent(const crypto::NodeId& id) {
  const auto it = id_lower_bound(id_to_ip_, id);
  if (it == id_to_ip_.end() || !(it->first == id)) return {};
  AgentRef ref;
  ref.ip = it->second;  // set for any known id, agent or not
  if (ref.ip < agent_runtimes_.size() &&
      agent_runtimes_[ref.ip].agent != nullptr) {
    ref.rt = &agent_runtimes_[ref.ip];
  }
  return ref;
}

std::vector<net::NodeIndex> HirepSystem::path_of(
    const std::vector<onion::RelayInfo>& relays, net::NodeIndex owner) const {
  std::vector<net::NodeIndex> path;
  path.reserve(relays.size() + 1);
  for (auto it = relays.rbegin(); it != relays.rend(); ++it) {
    path.push_back(it->ip);
  }
  path.push_back(owner);
  return path;
}

std::vector<onion::RelayInfo> HirepSystem::pick_and_verify_relays(
    net::NodeIndex owner) {
  // Current overlay population (the graph is authoritative even during
  // bootstrap and after joins): joiners relay too.
  const auto ips = onion::pick_relay_ips(rng_, overlay_.node_count(),
                                         options_.onion_relays, owner);
  std::vector<onion::RelayInfo> relays;
  relays.reserve(ips.size());
  for (net::NodeIndex ip : ips) {
    if (options_.crypto == CryptoMode::kFull) {
      onion::HonestRelay endpoint(ip, &identities_[ip]);
      auto info = onion::fetch_anonymity_key(overlay_, rng_,
                                             identities_[owner], owner,
                                             endpoint);
      if (info) relays.push_back(std::move(*info));
    } else {
      // Same four handshake messages (Figure 3: two request/response round
      // trips), key taken on faith; the transport may lose any of them, in
      // which case the relay fails verification and is skipped.
      bool handshake_ok = true;
      for (int message = 0; message < 4 && handshake_ok; ++message) {
        const net::NodeIndex from = message % 2 == 0 ? owner : ip;
        const net::NodeIndex to = message % 2 == 0 ? ip : owner;
        handshake_ok =
            transport_.send(net::EnvelopeType::kKeyExchange, from, {to})
                .delivered;
      }
      if (handshake_ok) {
        relays.push_back({ip, identities_[ip].anonymity_public()});
      }
    }
  }
  return relays;
}

onion::Onion HirepSystem::issue_agent_onion(TxnCtx& ctx,
                                            net::NodeIndex agent_ip,
                                            AgentRuntime& rt) {
  std::uint64_t sq;
  if (ctx.reserved_sqs != nullptr &&
      ctx.reserved_cursor < ctx.reserved_sqs->size()) {
    // Reserved serially at wave formation; note_issued already ran there.
    sq = (*ctx.reserved_sqs)[ctx.reserved_cursor++];
  } else {
    sq = agent_sq_[agent_ip]++;
    router_.note_issued(identities_[agent_ip].node_id(), sq);
  }
  if (options_.crypto == CryptoMode::kFull) {
    return onion::build_onion(*ctx.rng, identities_[agent_ip], agent_ip,
                              rt.relays, sq);
  }
  onion::Onion onion;
  onion.entry = rt.relays.empty() ? agent_ip : rt.relays.back().ip;
  onion.sq = sq;
  onion.relay_count = static_cast<std::uint32_t>(rt.relays.size());
  onion.owner_sig_key = identities_[agent_ip].signature_public();
  return onion;
}

AgentEntry HirepSystem::self_entry(TxnCtx& ctx, net::NodeIndex agent_ip,
                                   AgentRuntime& rt) {
  AgentEntry entry;
  entry.weight = 1.0;
  entry.agent_id = identities_[agent_ip].node_id();
  entry.agent_key = identities_[agent_ip].signature_public();
  entry.onion = issue_agent_onion(ctx, agent_ip, rt);
  entry.relay_path = path_of(rt.relays, agent_ip);
  return entry;
}

std::vector<AgentEntry> HirepSystem::shareable_list(TxnCtx& ctx,
                                                    net::NodeIndex v) {
  const auto& list = peers_.at(v).agents();
  if (!list.empty()) return list.entries();
  if (agent_online(v)) {
    return {self_entry(ctx, v, agent_runtimes_[v])};
  }
  return {};
}

std::vector<AgentEntry> HirepSystem::shareable_list(net::NodeIndex v) {
  TxnCtx ctx = legacy_ctx();
  return shareable_list(ctx, v);
}

std::size_t HirepSystem::discover_agents(TxnCtx& ctx, net::NodeIndex peer_ip) {
  Peer& p = peers_.at(peer_ip);
  if (p.agents().full()) return 0;
  if constexpr (obs::kEnabled) {
    static obs::Counter& walks =
        obs::Registry::global().counter("hirep.discovery.walks");
    walks.add();
  }

  const auto lists = collect_agent_lists(
      *ctx.transport, *ctx.rng, peer_ip, options_.discovery_tokens,
      options_.discovery_ttl,
      [this, &ctx, peer_ip](net::NodeIndex v) {
        return v == peer_ip ? std::vector<AgentEntry>{}
                            : shareable_list(ctx, v);
      });

  std::vector<std::vector<AgentEntry>> raw;
  raw.reserve(lists.size());
  for (const auto& l : lists) raw.push_back(l.entries);

  std::size_t added = 0;
  for (AgentEntry& e :
       rank_and_select(raw, p.agents().params().capacity, *ctx.rng)) {
    if (p.agents().full()) break;
    // A peer does not pick itself, and re-verification of the nodeId/key
    // binding rejects forged recommendations.
    if (e.agent_id == p.node_id()) continue;
    if (crypto::node_id_of_cached(e.agent_key) != e.agent_id) continue;
    // A quarantined agent cannot re-enter any trusted list from a
    // recommendation; only a fresh probe (refill) readmits it.
    {
      const auto* rt = runtime_of(e.agent_id);
      if (rt != nullptr && rt->recovery->quarantined.load(
                               std::memory_order_relaxed)) {
        continue;
      }
    }
    if (admit_entry(p, std::move(e), /*fresh_probe=*/false)) ++added;
  }
  if constexpr (obs::kEnabled) {
    static obs::Counter& agents_added =
        obs::Registry::global().counter("hirep.discovery.agents_added");
    agents_added.add(added);
  }
  return added;
}

std::size_t HirepSystem::discover_agents(net::NodeIndex peer_ip) {
  TxnCtx ctx = legacy_ctx();
  return discover_agents(ctx, peer_ip);
}

void HirepSystem::refill(TxnCtx& ctx, net::NodeIndex peer_ip) {
  Peer& p = peers_.at(peer_ip);
  // Probe the backup cache, most recent first (§3.4.3).
  while (!p.agents().full()) {
    auto backup = p.agents().pop_backup();
    if (!backup) break;
    const AgentRef ref = resolve_agent(backup->agent_id);
    if (ref.ip == net::kInvalidNode) continue;
    const auto probed =
        ctx.channel->request(net::EnvelopeType::kProbe, peer_ip, {ref.ip});
    if (!probed.ok) continue;  // probe lost: treated as offline
    AgentRuntime* rt = ref.rt;
    if (rt != nullptr && agent_online_[ref.ip]) {
      // A delivered probe to a live agent is exactly the fresh evidence
      // that lifts a standing quarantine (§3.4.3 re-entry rule).
      rt->recovery->suspicion.store(0, std::memory_order_relaxed);
      if (rt->recovery->quarantined.exchange(false,
                                             std::memory_order_relaxed)) {
        recovery_tallies_.probations_cleared.fetch_add(
            1, std::memory_order_relaxed);
        if constexpr (obs::kEnabled) {
          static obs::Counter& cleared = obs::Registry::global().counter(
              "hirep.recovery.probations_cleared");
          cleared.add();
        }
      }
      if (admit_entry(p, std::move(*backup), /*fresh_probe=*/true)) {
        recovery_tallies_.backup_promotions.fetch_add(
            1, std::memory_order_relaxed);
        if constexpr (obs::kEnabled) {
          static obs::Counter& promotions = obs::Registry::global().counter(
              "hirep.recovery.backup_promotions");
          promotions.add();
        }
      }
    }
  }
  if (p.agents().needs_refill()) {
    recovery_tallies_.rediscoveries.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kEnabled) {
      static obs::Counter& rediscoveries =
          obs::Registry::global().counter("hirep.recovery.rediscoveries");
      rediscoveries.add();
    }
    discover_agents(ctx, peer_ip);
  }
}

void HirepSystem::refill(net::NodeIndex peer_ip) {
  TxnCtx ctx = legacy_ctx();
  refill(ctx, peer_ip);
}

net::NodeIndex HirepSystem::join_peer() {
  // Transport level: preferential-attachment links, as a joining servent
  // bootstrapping off well-known high-degree hosts would get.
  const auto m = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.average_degree / 2.0));
  std::vector<net::NodeIndex> neighbors;
  while (neighbors.size() < m) {
    const auto candidate = overlay_.sample_by_degree(rng_);
    if (std::find(neighbors.begin(), neighbors.end(), candidate) ==
        neighbors.end()) {
      neighbors.push_back(candidate);
    }
  }
  const net::NodeIndex v = overlay_.add_node(neighbors);

  // World + identity level.
  const auto truth_index = truth_.add_node(rng_);
  (void)truth_index;  // same index by construction
  identities_.push_back(crypto::Identity::generate(rng_, options_.rsa_bits));
  id_to_ip_.insert(id_lower_bound(id_to_ip_, identities_.back().node_id()),
                   {identities_.back().node_id(), v});

  // Peer state: verified relays, then trusted-agent discovery (§3.4.1).
  peers_.emplace_back(&identities_.back(), v, list_params_from(options_));
  peers_.back().set_relays(pick_and_verify_relays(v));
  agent_runtimes_.resize(peers_.size());
  agent_sq_.resize(peers_.size(), 1);
  agent_online_.resize(peers_.size(), 0);
  if (truth_.agent_capable(v)) {
    make_agent(v, &identities_.back());
  }
  discover_agents(v);
  return v;
}

crypto::NodeId HirepSystem::rotate_peer_key(net::NodeIndex v) {
  crypto::Identity& identity = identities_.at(v);
  const crypto::NodeId old_id = identity.node_id();
  const auto announcement =
      identity.rotate_signature_key(rng_, options_.rsa_bits);

  // Simulation-side reverse mapping follows the identity.
  {
    const auto it = id_lower_bound(id_to_ip_, old_id);
    if (it != id_to_ip_.end() && it->first == old_id) id_to_ip_.erase(it);
  }
  id_to_ip_.insert(id_lower_bound(id_to_ip_, identity.node_id()),
                   {identity.node_id(), v});

  // "New public keys signed by current private key can be sent out using
  // the most recently received onions" (§3.5): the announcement travels to
  // every trusted agent over the freshest Onion_e the peer holds.
  TxnCtx ctx = legacy_ctx();
  Peer& p = peers_.at(v);
  if (options_.crypto == CryptoMode::kFast) {
    // All announcements of one rotation ride in one envelope batch.
    // Announcements need no acknowledgement: any copy that arrived is
    // applied (at most once).
    std::vector<net::ReliableChannel::BatchRequest> requests;
    std::vector<AgentRuntime*> targets;
    for (auto& entry : p.agents().entries()) {
      const AgentRef ref = resolve_agent(entry.agent_id);
      if (!ref || !agent_online_[ref.ip]) continue;
      requests.push_back({v, &entry.relay_path, {}});
      targets.push_back(ref.rt);
    }
    const auto routed =
        reliable_.request_batch(net::EnvelopeType::kKeyRotation, requests);
    for (std::size_t i = 0; i < routed.size(); ++i) {
      if (!routed[i].applied) continue;  // announcement lost: agent keeps SP
      targets[i]->agent->migrate_key(old_id, announcement);
    }
    return identity.node_id();
  }
  const util::Bytes wire = announcement.serialize();
  for (auto& entry : p.agents().entries()) {
    const AgentRef ref = resolve_agent(entry.agent_id);
    if (!ref || !agent_online_[ref.ip]) continue;
    const auto routed = route_envelope(ctx, v, entry.onion, wire,
                                       net::EnvelopeType::kKeyRotation);
    if (!routed.delivered) continue;
    const auto parsed =
        crypto::Identity::RotationAnnouncement::deserialize(routed.payload);
    if (!parsed) continue;
    ref.rt->agent->migrate_key(old_id, *parsed);
  }
  return identity.node_id();
}

HirepSystem::RoutedEnvelope HirepSystem::route_envelope(
    TxnCtx& ctx, net::NodeIndex sender, const onion::Onion& onion,
    util::Bytes wire, net::EnvelopeType type) {
  RoutedEnvelope result;
  const auto path = router_.peel_path(onion);
  if (!path) return result;  // bad signature / stale sq / corrupt layer
  auto outcome = ctx.channel->request(type, sender, *path, std::move(wire));
  if (trust_counted(type)) ctx.trust_messages += outcome.messages;
  result.delivered = outcome.ok;
  result.destination = outcome.destination;
  result.payload = std::move(outcome.payload);
  return result;
}

std::optional<double> HirepSystem::exchange_with_agent(
    TxnCtx& ctx, Peer& requestor, AgentEntry& entry, net::NodeIndex subject_ip,
    const crypto::NodeId& subject_id) {
  const AgentRef ref = resolve_agent(entry.agent_id);
  if (!ref || !agent_online_[ref.ip]) return std::nullopt;
  AgentRuntime* rt = ref.rt;
  // The community has given up on a quarantined agent: no request is even
  // sent until a fresh probe (refill) readmits it.
  if (rt->recovery->quarantined.load(std::memory_order_relaxed)) {
    return std::nullopt;
  }
  const auto agent_ip = ref.ip;
  const std::uint64_t nonce = (*ctx.rng)();

  if (options_.crypto == CryptoMode::kFast) {
    // Identical message counts, protocol work elided.  A lost request means
    // the agent never hears the question; a lost response means the agent
    // answered but the requestor treats it as unreachable (§3.4.3).
    const auto to_agent = ctx.channel->request(net::EnvelopeType::kTrustRequest,
                                               requestor.ip(), entry.relay_path);
    ctx.trust_messages += to_agent.messages;
    if (!to_agent.ok) return std::nullopt;
    double value;
    {
      // Agents may be shared between transactions of one wave; requestors
      // are not.  All agent-side state transitions commute (see DESIGN §9).
      util::MutexLock lock(*rt->mu);
      rt->agent->register_key(requestor.node_id(),
                              requestor.identity().signature_public());
      value = rt->agent->trust_value(subject_id, subject_ip, *ctx.rng);
    }
    if constexpr (obs::kEnabled) {
      static obs::Counter& votes =
          obs::Registry::global().counter("hirep.trust.votes_sent");
      votes.add();  // the agent answered, even if the response is then lost
    }
    onion::Onion fresh = issue_agent_onion(ctx, agent_ip, *rt);
    const auto to_peer = ctx.channel->request(net::EnvelopeType::kTrustResponse,
                                              agent_ip, requestor.relay_path());
    ctx.trust_messages += to_peer.messages;
    if (!to_peer.ok) return std::nullopt;
    if constexpr (check::kEnabled) {
      // Holder-side §3.3 invariant: within an entry's lifetime, the onion a
      // holder keeps for an issuer is only ever replaced by a fresher one.
      if (fresh.sq < entry.onion.sq) {
        check::report({"onion.sq.holder_monotone",
                       "refreshed onion sq " + std::to_string(fresh.sq) +
                           " < held sq " + std::to_string(entry.onion.sq),
                       -1.0, crypto::NodeIdHash{}(entry.agent_id),
                       requestor.ip()});
      }
    }
    entry.onion = std::move(fresh);
    entry.relay_path = path_of(rt->relays, agent_ip);
    return value;
  }

  // --- full crypto path ---
  auto onion_p = requestor.issue_onion(*ctx.rng);
  const TrustValueRequest request = build_trust_request(
      *ctx.rng, entry.agent_key, requestor.identity(), subject_id, nonce,
      std::move(onion_p));
  const auto to_agent =
      route_envelope(ctx, requestor.ip(), entry.onion, request.serialize(),
                     net::EnvelopeType::kTrustRequest);
  if (!to_agent.delivered || to_agent.destination != agent_ip) {
    return std::nullopt;
  }

  // Agent side.
  const auto parsed = TrustValueRequest::deserialize(to_agent.payload);
  if (!parsed) return std::nullopt;
  const auto opened = open_trust_request(rt->agent->identity(), *parsed);
  if (!opened) return std::nullopt;
  double value;
  {
    util::MutexLock lock(*rt->mu);
    rt->agent->register_key(crypto::node_id_of_cached(parsed->sp_p),
                            parsed->sp_p);
    value = rt->agent->trust_value(opened->subject, subject_ip, *ctx.rng);
  }
  if constexpr (obs::kEnabled) {
    static obs::Counter& votes =
        obs::Registry::global().counter("hirep.trust.votes_sent");
    votes.add();  // the agent answered, even if the response is then lost
  }
  const TrustValueResponse response = build_trust_response(
      *ctx.rng, parsed->sp_p, rt->agent->identity(), value, opened->nonce,
      issue_agent_onion(ctx, agent_ip, *rt));
  const auto to_peer =
      route_envelope(ctx, agent_ip, parsed->reply_onion, response.serialize(),
                     net::EnvelopeType::kTrustResponse);
  if (!to_peer.delivered || to_peer.destination != requestor.ip()) {
    return std::nullopt;
  }

  // Back at the requestor.
  const auto parsed_resp = TrustValueResponse::deserialize(to_peer.payload);
  if (!parsed_resp) return std::nullopt;
  const auto opened_resp = open_trust_response(requestor.identity(), *parsed_resp);
  if (!opened_resp || opened_resp->nonce != nonce) return std::nullopt;
  if constexpr (check::kEnabled) {
    if (parsed_resp->report_onion.sq < entry.onion.sq) {
      check::report({"onion.sq.holder_monotone",
                     "refreshed onion sq " +
                         std::to_string(parsed_resp->report_onion.sq) +
                         " < held sq " + std::to_string(entry.onion.sq),
                     -1.0, crypto::NodeIdHash{}(entry.agent_id),
                     requestor.ip()});
    }
  }
  // Refresh the reply path with the agent's newest onion.
  entry.onion = parsed_resp->report_onion;
  entry.relay_path = path_of(rt->relays, agent_ip);
  return opened_resp->value;
}

HirepSystem::QueryResult HirepSystem::query_trust(TxnCtx& ctx,
                                                  net::NodeIndex requestor_ip,
                                                  net::NodeIndex subject_ip) {
  if constexpr (obs::kEnabled) {
    static obs::Counter& queries =
        obs::Registry::global().counter("hirep.trust.queries");
    queries.add();
  }
  Peer& p = peers_.at(requestor_ip);
  const crypto::NodeId subject_id = identities_.at(subject_ip).node_id();

  QueryResult result;
  std::vector<crypto::NodeId> offline;
  for (auto& entry : p.agents().entries()) {
    ++result.contacted;
    const auto value =
        exchange_with_agent(ctx, p, entry, subject_ip, subject_id);
    AgentRuntime* rt = runtime_of(entry.agent_id);
    if (!value) {
      if (rt != nullptr) note_exchange_failure(*rt);
      offline.push_back(entry.agent_id);
      continue;
    }
    if (rt != nullptr) note_exchange_success(*rt);
    result.ratings.push_back({entry.agent_id, *value, entry.weight});
  }
  for (const auto& id : offline) p.agents().handle_offline(id);

  std::vector<std::pair<double, double>> vw;
  vw.reserve(result.ratings.size());
  for (const auto& r : result.ratings) vw.emplace_back(r.value, r.weight);
  result.estimate = Peer::aggregate(vw);

  // Graceful degradation: below the live-rating quorum the requestor stops
  // trusting the thinned community outright and falls back to (or blends
  // in) its own first-hand experience with the subject.
  if (options_.recovery.min_quorum > 0 &&
      result.ratings.size() < options_.recovery.min_quorum) {
    result.degraded = true;
    const auto local = p.first_hand(subject_id);
    if (local) {
      result.estimate = result.ratings.empty()
                            ? *local
                            : 0.5 * (result.estimate + *local);
    }
    recovery_tallies_.degraded_queries.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kEnabled) {
      static obs::Counter& degraded =
          obs::Registry::global().counter("hirep.recovery.degraded_queries");
      degraded.add();
    }
  }
  return result;
}

HirepSystem::QueryResult HirepSystem::query_trust(net::NodeIndex requestor_ip,
                                                  net::NodeIndex subject_ip) {
  TxnCtx ctx = legacy_ctx();
  return query_trust(ctx, requestor_ip, subject_ip);
}

void HirepSystem::send_report(TxnCtx& ctx, Peer& reporter, AgentEntry& entry,
                              const crypto::NodeId& subject_id,
                              double outcome) {
  const AgentRef ref = resolve_agent(entry.agent_id);
  if (!ref || !agent_online_[ref.ip]) return;
  AgentRuntime* rt = ref.rt;

  if (options_.crypto == CryptoMode::kFast) {
    const auto routed = ctx.channel->request(net::EnvelopeType::kReport,
                                             reporter.ip(), entry.relay_path);
    ctx.trust_messages += routed.messages;
    // A report needs no acknowledgement: even a copy that arrived past the
    // reporter's deadline is applied (at most once) at the agent.
    if (!routed.applied) return;  // report lost: agent never learns of it
    if (defer_cross_shard(ctx, ref.ip)) {
      // Wire delivery and accounting happened on this shard's lane; the
      // state application crosses a shard boundary and waits for the
      // barrier (DESIGN.md §14).
      if constexpr (obs::kEnabled) {
        static obs::Counter& deferred = obs::Registry::global().counter(
            "hirep.engine.cross_shard_reports");
        deferred.add();
      }
      ctx.report_outbox->push_back(
          {ctx.txn_index, ref.ip, subject_id, outcome, {}});
      return;
    }
    util::MutexLock lock(*rt->mu);
    rt->agent->accept_report(subject_id, outcome);
    return;
  }

  const TransactionReport report =
      build_report(reporter.identity(), subject_id, outcome, (*ctx.rng)());
  const auto routed = route_envelope(ctx, reporter.ip(), entry.onion,
                                     report.serialize(),
                                     net::EnvelopeType::kReport);
  if (!routed.delivered) return;
  if (defer_cross_shard(ctx, ref.ip)) {
    // The delivered envelope payload is replayed verbatim at the barrier:
    // deserialize / lookup_key / verify / accept all run there.
    if constexpr (obs::kEnabled) {
      static obs::Counter& deferred = obs::Registry::global().counter(
          "hirep.engine.cross_shard_reports");
      deferred.add();
    }
    ctx.report_outbox->push_back(
        {ctx.txn_index, ref.ip, subject_id, outcome, routed.payload});
    return;
  }
  const auto parsed = TransactionReport::deserialize(routed.payload);
  if (!parsed) return;
  // lookup_key returns the key by value, so the signature check (the
  // expensive part) runs outside the agent lock.
  std::optional<crypto::RsaPublicKey> sp;
  {
    util::MutexLock lock(*rt->mu);
    sp = rt->agent->lookup_key(parsed->reporter);
  }
  if (!sp) return;  // unknown reporter: §3.5.3 drop
  const auto opened = verify_report(*sp, *parsed);
  if (!opened) return;  // bad signature: drop
  util::MutexLock lock(*rt->mu);
  rt->agent->accept_report(opened->subject, opened->outcome);
}

void HirepSystem::apply_deferred_report(const DeferredReport& dr) {
  AgentRuntime& rt = agent_runtimes_[dr.agent_ip];
  if (dr.wire.empty()) {  // fast crypto: apply subject + outcome directly
    util::MutexLock lock(*rt.mu);
    rt.agent->accept_report(dr.subject, dr.outcome);
    return;
  }
  // Full crypto: the receiving agent's §3.5.3 path, same drops as inline.
  const auto parsed = TransactionReport::deserialize(dr.wire);
  if (!parsed) return;
  std::optional<crypto::RsaPublicKey> sp;
  {
    util::MutexLock lock(*rt.mu);
    sp = rt.agent->lookup_key(parsed->reporter);
  }
  if (!sp) return;  // unknown reporter: §3.5.3 drop
  const auto opened = verify_report(*sp, *parsed);
  if (!opened) return;  // bad signature: drop
  util::MutexLock lock(*rt.mu);
  rt.agent->accept_report(opened->subject, opened->outcome);
}

void HirepSystem::report_batch(TxnCtx& ctx, Peer& reporter,
                               const crypto::NodeId& subject_id,
                               double outcome) {
  // Fast-crypto fan-out: every §3.6 report of this transaction rides in
  // one envelope batch through the reliable channel.  Reports need no
  // acknowledgement — any copy that arrived is applied at most once — and
  // agent application commutes across distinct agents, so tallying after
  // the batch is equivalent to the per-entry sequential form.
  std::vector<net::ReliableChannel::BatchRequest> requests;
  std::vector<AgentRef> targets;
  for (auto& entry : reporter.agents().entries()) {
    const AgentRef ref = resolve_agent(entry.agent_id);
    if (!ref || !agent_online_[ref.ip]) continue;
    requests.push_back({reporter.ip(), &entry.relay_path, {}});
    targets.push_back(ref);
  }
  const auto routed =
      ctx.channel->request_batch(net::EnvelopeType::kReport, requests);
  for (std::size_t i = 0; i < routed.size(); ++i) {
    ctx.trust_messages += routed[i].messages;
    if (!routed[i].applied) continue;  // report lost: agent never learns
    if (defer_cross_shard(ctx, targets[i].ip)) {
      if constexpr (obs::kEnabled) {
        static obs::Counter& deferred = obs::Registry::global().counter(
            "hirep.engine.cross_shard_reports");
        deferred.add();
      }
      ctx.report_outbox->push_back(
          {ctx.txn_index, targets[i].ip, subject_id, outcome, {}});
      continue;
    }
    util::MutexLock lock(*targets[i].rt->mu);
    targets[i].rt->agent->accept_report(subject_id, outcome);
  }
}

HirepSystem::TransactionRecord HirepSystem::run_transaction() {
  const std::size_t population = peers_.size();
  const auto requestor = static_cast<net::NodeIndex>(rng_.below(population));
  // Candidate providers (paper default: one random candidate).
  net::NodeIndex provider = requestor;
  if (options_.provider_candidates <= 1) {
    while (provider == requestor) {
      provider = static_cast<net::NodeIndex>(rng_.below(population));
    }
    return run_transaction(requestor, provider);
  }
  // Multi-candidate selection: query each candidate, pick the best estimate.
  double best = -1.0;
  for (std::size_t i = 0; i < options_.provider_candidates; ++i) {
    net::NodeIndex candidate = requestor;
    while (candidate == requestor) {
      candidate = static_cast<net::NodeIndex>(rng_.below(population));
    }
    const auto q = query_trust(requestor, candidate);
    if (q.estimate > best) {
      best = q.estimate;
      provider = candidate;
    }
  }
  return run_transaction(requestor, provider);
}

HirepSystem::TransactionRecord HirepSystem::run_transaction(
    net::NodeIndex requestor, net::NodeIndex provider) {
  TxnCtx ctx = legacy_ctx();
  const QueryResult query = query_trust(ctx, requestor, provider);
  TransactionRecord record = complete_transaction(ctx, requestor, provider,
                                                  query);
  record.trust_messages = ctx.trust_messages;
  return record;
}

HirepSystem::TransactionRecord HirepSystem::complete_transaction(
    TxnCtx& ctx, net::NodeIndex requestor, net::NodeIndex provider,
    const QueryResult& query) {
  const std::uint64_t before = ctx.trust_messages;
  Peer& p = peers_.at(requestor);
  const crypto::NodeId subject_id = identities_.at(provider).node_id();

  TransactionRecord record;
  record.requestor = requestor;
  record.provider = provider;
  record.estimate = query.estimate;
  record.truth_value = truth_.true_trust(provider);
  record.responses = query.ratings.size();
  record.outcome = truth_.transaction_outcome(provider);
  p.note_transaction();
  p.note_outcome(subject_id, record.outcome);

  // Expertise update: A_c = 1 iff the agent's evaluation matched the result.
  for (const auto& rating : query.ratings) {
    p.agents().update_expertise(rating.agent,
                                Peer::consistent(rating.value, record.outcome));
  }

  // Signed transaction reports to all remaining trusted agents (§3.6).
  // Reports carry the reporter's *claimed* outcome: honest peers forward
  // the observation verbatim (bit-identical to the pre-hook path), while
  // adversary-recruited reporters — front peers, bad-mouthing rings — may
  // falsify it.  The peer's own first-hand memory and expertise updates
  // above keep the true observation: liars know the truth, they just
  // don't report it.
  const double reported =
      truth_.reported_outcome(requestor, provider, record.outcome);
  if (options_.crypto == CryptoMode::kFast) {
    report_batch(ctx, p, subject_id, reported);
  } else {
    for (auto& entry : p.agents().entries()) {
      send_report(ctx, p, entry, subject_id, reported);
    }
  }

  // Maintenance (§3.4.3).  Batched execution defers it to the wave barrier:
  // discovery touches peers outside this transaction's conflict set.  A
  // degraded query is itself a re-discovery trigger: the live community
  // has thinned below what the peer can work with.
  if (p.agents().needs_refill() || query.degraded) {
    if (ctx.defer_refill) {
      ctx.wants_refill = true;
    } else {
      refill(ctx, requestor);
    }
  }

  record.trust_messages = ctx.trust_messages - before;
  return record;
}

HirepSystem::TransactionRecord HirepSystem::complete_transaction(
    net::NodeIndex requestor, net::NodeIndex provider,
    const QueryResult& query) {
  TxnCtx ctx = legacy_ctx();
  return complete_transaction(ctx, requestor, provider, query);
}

util::Rng HirepSystem::txn_stream(std::uint64_t index) const {
  // Distinct, decorrelated stream per transaction — the determinism
  // backbone of the scale engine: a transaction's draws depend only on
  // (options.seed, lifetime index), never on scheduling.
  std::uint64_t s = options_.seed ^ kTxnStreamSalt;
  s += (index + 1) * 0x9e3779b97f4a7c15ULL;
  return util::Rng(util::splitmix64(s));
}

std::vector<HirepSystem::TransactionRecord> HirepSystem::run_transactions(
    std::span<const std::pair<net::NodeIndex, net::NodeIndex>> pairs,
    const Executor& exec) {
  // Judge the policy actually installed, not just the configured kind: a
  // chaos wrapper (sim::ChaosDelivery) swapped in over an instant config
  // still drops and delays, so it forfeits both concurrent execution and
  // the up-front sq reservation below.
  const bool instant =
      options_.delivery.policy == net::DeliveryPolicyKind::kInstant &&
      std::string_view(transport_.policy().name()) == "instant";
  if (exec.concurrent() && !instant) {
    throw std::invalid_argument(
        "run_transactions: parallel/sharded execution requires instant "
        "delivery (lossy/delayed/chaotic transports are order-dependent)");
  }
  if (exec.shards != 0 && exec.mode != ExecutionMode::kSharded) {
    throw std::invalid_argument(
        "run_transactions: shards requires ExecutionMode::kSharded");
  }
  for (const auto& [r, p] : pairs) {
    if (r >= peers_.size() || p >= peers_.size() || r == p) {
      throw std::invalid_argument(
          "run_transactions: invalid requestor/provider pair");
    }
  }
  if (!maintenance_rng_) {
    std::uint64_t s = options_.seed ^ kMaintenanceSalt;
    maintenance_rng_.emplace(util::splitmix64(s));
  }

  const bool sharded = exec.mode == ExecutionMode::kSharded;
  std::size_t lane_count = 1;
  std::size_t shard_count = 1;
  if (exec.concurrent()) {
    if (!pool_ || (exec.threads != 0 && pool_->size() != exec.threads)) {
      pool_ = std::make_unique<util::ThreadPool>(exec.threads);
    }
    // Sharded: one lane per shard, keyed by shard id, stable across waves.
    // Parallel: one lane per worker, keyed by chunk index.  Lane transports
    // draw nothing under instant delivery, so lane count/assignment cannot
    // perturb a single byte.
    lane_count = sharded ? (exec.shards != 0 ? exec.shards : pool_->size())
                         : pool_->size();
    if (sharded) shard_count = lane_count;
    while (lanes_.size() < lane_count) {
      lanes_.push_back(std::make_unique<net::Transport>(
          &overlay_, options_.delivery,
          options_.seed ^ (kLaneSeedSalt + lanes_.size())));
      lane_channels_.push_back(std::make_unique<net::ReliableChannel>(
          lanes_.back().get(), options_.reliable,
          options_.seed ^ (kChannelSeedSalt + lanes_.size())));
    }
  }

  std::vector<TransactionRecord> records(pairs.size());
  std::vector<std::uint8_t> wants_refill(pairs.size(), 0);
  std::vector<std::uint8_t> busy(peers_.size(), 0);
  std::vector<std::size_t> wave;
  std::vector<std::vector<std::uint64_t>> reserved;
  // Sharded scratch, reused across waves (DESIGN.md §14).
  std::vector<std::vector<std::size_t>> shard_slots;
  std::vector<std::vector<DeferredReport>> outboxes;
  std::vector<DeferredReport> exchange;
  std::vector<std::uint32_t> exchange_order;
  std::vector<net::ReceiptGroup> exchange_groups;
  std::size_t next = 0;

  while (next < pairs.size()) {
    // Wave formation: the maximal conflict-free PREFIX of the remaining
    // transactions, capped at exec.wave_window members.  A transaction
    // joins until one shows up whose requestor or provider node is already
    // claimed — those are the only peers a transaction mutates, so wave
    // members touch disjoint peer state (agents are shared but internally
    // locked; their transitions commute per subject, DESIGN §9).  The
    // prefix rule — rather than skipping ahead past conflicts — keeps
    // execution equivalent to strict index-order serial execution, so
    // splitting a batch at any boundary yields byte-identical records
    // (checkpointed experiments compose).  NOTE: the window cap moves wave
    // BARRIERS (hence refill timing), so byte-identity across engines
    // holds for equal wave_window values.
    wave.clear();
    std::fill(busy.begin(), busy.end(), std::uint8_t{0});
    std::size_t stop = next;
    for (; stop < pairs.size(); ++stop) {
      if (exec.wave_window != 0 && wave.size() >= exec.wave_window) break;
      const auto [r, p] = pairs[stop];
      if (busy[r] || busy[p]) break;
      busy[r] = busy[p] = 1;
      wave.push_back(stop);
    }

    // Sequence reservation: under instant delivery every online trusted
    // agent of a requestor issues exactly one fresh onion per exchange, so
    // the sq draws are known up front.  Claiming them serially here, in
    // transaction order, keeps each agent's sq stream identical to a
    // serial run no matter how the wave is scheduled.
    reserved.assign(wave.size(), {});
    if (instant) {
      for (std::size_t j = 0; j < wave.size(); ++j) {
        Peer& rp = peers_[pairs[wave[j]].first];
        for (const AgentEntry& entry : rp.agents().entries()) {
          const AgentRef ref = resolve_agent(entry.agent_id);
          if (!ref || !agent_online_[ref.ip]) continue;
          const std::uint64_t sq = agent_sq_[ref.ip]++;
          router_.note_issued(entry.agent_id, sq);
          reserved[j].push_back(sq);
        }
      }
    }

    const auto run_one = [&](std::size_t j, net::Transport& lane,
                             net::ReliableChannel& channel,
                             std::size_t home_shard,
                             std::vector<DeferredReport>* outbox) {
      const std::size_t i = wave[j];
      util::Rng rng = txn_stream(txn_counter_ + i);
      TxnCtx ctx;
      ctx.rng = &rng;
      ctx.transport = &lane;
      ctx.channel = &channel;
      if (instant) ctx.reserved_sqs = &reserved[j];
      ctx.defer_refill = true;
      ctx.shard_count = shard_count;
      ctx.home_shard = home_shard;
      ctx.txn_index = txn_counter_ + i;
      ctx.report_outbox = outbox;
      const auto [r, p] = pairs[i];
      const QueryResult query = query_trust(ctx, r, p);
      records[i] = complete_transaction(ctx, r, p, query);
      records[i].trust_messages = ctx.trust_messages;
      wants_refill[i] = ctx.wants_refill ? 1 : 0;
    };

    if (sharded && wave.size() > 1) {
      // Shard partition: a transaction's home shard is its requestor's
      // `node % shard_count`.  Ascending j within a slot keeps each
      // shard's slice in transaction order; every report a transaction
      // sends lands in its home shard's outbox in send order.
      shard_slots.assign(shard_count, {});
      outboxes.assign(shard_count, {});
      for (std::size_t j = 0; j < wave.size(); ++j) {
        shard_slots[pairs[wave[j]].first % shard_count].push_back(j);
      }
      pool_->parallel_for(shard_count, [&](std::size_t s) {
        for (const std::size_t j : shard_slots[s]) {
          run_one(j, *lanes_[s], *lane_channels_[s], s, &outboxes[s]);
        }
      });

      // Barrier step 1 — deterministic cross-shard report exchange: merge
      // every shard's outbox, restore serial transaction order (stable
      // sort keeps one transaction's reports in send order), then group by
      // destination shard through the same grouped-visit engine the
      // envelope batches drain with.  Groups touch disjoint agents
      // (destination shards partition agents), so they apply in parallel;
      // within a group, reports apply in serial order.
      exchange.clear();
      for (auto& outbox : outboxes) {
        for (auto& dr : outbox) exchange.push_back(std::move(dr));
      }
      std::stable_sort(exchange.begin(), exchange.end(),
                       [](const DeferredReport& a, const DeferredReport& b) {
                         return a.txn < b.txn;
                       });
      exchange_groups.clear();
      net::visit_groups(
          exchange.size(), [](std::uint32_t) { return true; },
          [&](std::uint32_t i) {
            return static_cast<std::uint64_t>(exchange[i].agent_ip) %
                   shard_count;
          },
          exchange_order,
          [&](const net::ReceiptGroup& g) { exchange_groups.push_back(g); });
      pool_->parallel_for(exchange_groups.size(), [&](std::size_t g) {
        for (const std::uint32_t i : exchange_groups[g].entries) {
          apply_deferred_report(exchange[i]);
        }
      });

      // Barrier step 2 — fold lane envelope counters back into the primary
      // transport so its totals match a serial run, release each lane's
      // payload arena (batches never outlive a wave, so lane memory stays
      // flat), and align every shard's event clock to the latest shard
      // (a no-op under instant delivery, where clocks never move).
      double latest = transport_.sim().now();
      for (std::size_t s = 0; s < shard_count; ++s) {
        transport_.absorb_envelopes(*lanes_[s]);
        lanes_[s]->arena().reset();
        latest = std::max(latest, lanes_[s]->sim().now());
      }
      transport_.sim().advance_to(latest);
      for (std::size_t s = 0; s < shard_count; ++s) {
        lanes_[s]->sim().advance_to(latest);
      }
    } else if (!sharded && exec.concurrent() && lane_count > 1 &&
               wave.size() > 1) {
      const std::size_t lanes_used = std::min(lane_count, wave.size());
      const std::size_t per = (wave.size() + lanes_used - 1) / lanes_used;
      pool_->parallel_for(lanes_used, [&](std::size_t lane) {
        const std::size_t begin = lane * per;
        const std::size_t end = std::min(wave.size(), begin + per);
        for (std::size_t j = begin; j < end; ++j) {
          run_one(j, *lanes_[lane], *lane_channels_[lane], 0, nullptr);
        }
      });
      // Barrier: fold lane envelope counters back into the primary
      // transport so its totals match a serial run, and release each
      // lane's payload arena — batches never outlive a wave, so lane
      // memory stays flat across the run.
      for (std::size_t lane = 0; lane < lanes_used; ++lane) {
        transport_.absorb_envelopes(*lanes_[lane]);
        lanes_[lane]->arena().reset();
      }
    } else {
      // Serial reference (also a single-transaction wave under any mode:
      // with one transaction there is nothing to exchange, so the
      // home-shard context is irrelevant and inline application matches
      // the barrier replay byte for byte).
      for (std::size_t j = 0; j < wave.size(); ++j) {
        run_one(j, transport_, reliable_, 0, nullptr);
      }
    }

    // Deferred §3.4.3 maintenance: serial, in transaction order, on its
    // own stream — refills never perturb any transaction's draws.  Runs
    // after the cross-shard exchange, matching the serial order in which
    // every report of a wave precedes every refill of that wave.
    for (std::size_t j = 0; j < wave.size(); ++j) {
      const std::size_t i = wave[j];
      if (!wants_refill[i]) continue;
      TxnCtx ctx;
      ctx.rng = &*maintenance_rng_;
      ctx.transport = &transport_;
      ctx.channel = &reliable_;
      refill(ctx, pairs[i].first);
    }
    next = stop;
  }
  txn_counter_ += pairs.size();
  return records;
}

std::uint64_t HirepSystem::trust_message_total() const {
  const auto& m = overlay_.metrics();
  return m.of(net::MessageKind::kTrustRequest) +
         m.of(net::MessageKind::kTrustResponse) +
         m.of(net::MessageKind::kReport) +
         m.of(net::MessageKind::kOnionRelay);
}

}  // namespace hirep::core
