#include "hirep/system.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/invariants.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace hirep::core {

namespace {

trust::WorldParams world_with_nodes(trust::WorldParams world, std::size_t nodes) {
  world.nodes = nodes;
  return world;
}

ListParams list_params_from(const HirepOptions& o) {
  ListParams lp;
  lp.alpha = o.expertise_alpha;
  lp.eviction_threshold = o.eviction_threshold;
  lp.capacity = o.trusted_agents;
  lp.backup_capacity = o.backup_capacity;
  lp.refill_fraction = o.refill_fraction;
  return lp;
}

}  // namespace

HirepSystem::HirepSystem(HirepOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      truth_(rng_, world_with_nodes(options_.world, options_.nodes)),
      overlay_(net::power_law(rng_, options_.nodes, options_.average_degree),
               options_.latency, options_.seed ^ 0x1eafcafeULL),
      transport_(&overlay_, options_.delivery, options_.seed ^ 0xfa017ca7ULL),
      router_(&overlay_, [this](net::NodeIndex v) -> const crypto::Identity* {
        return v < identities_.size() ? &identities_[v] : nullptr;
      }) {
  if (options_.nodes < 8) throw std::invalid_argument("need >= 8 nodes");

  // Identities: two RSA key pairs per node; nodeId = SHA1(SP).
  for (std::size_t v = 0; v < options_.nodes; ++v) {
    identities_.push_back(crypto::Identity::generate(rng_, options_.rsa_bits));
    id_to_ip_.emplace(identities_.back().node_id(),
                      static_cast<net::NodeIndex>(v));
  }

  // Peers, each with its verified onion relays.
  const ListParams lp = list_params_from(options_);
  peers_.reserve(options_.nodes);
  for (std::size_t v = 0; v < options_.nodes; ++v) {
    const auto ip = static_cast<net::NodeIndex>(v);
    peers_.emplace_back(&identities_[v], ip, lp);
    peers_.back().set_relays(pick_and_verify_relays(ip));
  }

  // Agent community: every bandwidth-qualified node claims agent-hood.
  const auto model = trust::model_factory_by_name(options_.agent_model);
  for (net::NodeIndex v : truth_.agent_capable_nodes()) {
    AgentRuntime rt;
    rt.agent = std::make_unique<ReputationAgent>(&identities_[v], v, &truth_,
                                                 model,
                                                 options_.min_reports_for_model);
    rt.relays = peers_[v].relays();  // agents reuse their verified relays
    agents_.emplace(v, std::move(rt));
  }

  // Community formation: each peer discovers its trusted agents.  Peers
  // run in random order; early responders only know agent self-entries,
  // later ones inherit curated lists — the emergent hierarchy of §3.4.
  std::vector<net::NodeIndex> order(options_.nodes);
  for (std::size_t v = 0; v < options_.nodes; ++v) {
    order[v] = static_cast<net::NodeIndex>(v);
  }
  rng_.shuffle(order);
  for (net::NodeIndex v : order) discover_agents(v);
}

ReputationAgent* HirepSystem::agent_at(net::NodeIndex v) {
  const auto it = agents_.find(v);
  return it == agents_.end() ? nullptr : it->second.agent.get();
}

std::optional<net::NodeIndex> HirepSystem::ip_of(const crypto::NodeId& id) const {
  const auto it = id_to_ip_.find(id);
  if (it == id_to_ip_.end()) return std::nullopt;
  return it->second;
}

bool HirepSystem::agent_online(net::NodeIndex v) const {
  const auto it = agents_.find(v);
  return it != agents_.end() && it->second.online;
}

void HirepSystem::set_agent_online(net::NodeIndex v, bool online) {
  const auto it = agents_.find(v);
  if (it == agents_.end()) throw std::invalid_argument("node is not an agent");
  it->second.online = online;
}

HirepSystem::AgentRuntime* HirepSystem::runtime_of(const crypto::NodeId& id) {
  const auto ip = ip_of(id);
  if (!ip) return nullptr;
  const auto it = agents_.find(*ip);
  return it == agents_.end() ? nullptr : &it->second;
}

std::vector<net::NodeIndex> HirepSystem::path_of(
    const std::vector<onion::RelayInfo>& relays, net::NodeIndex owner) const {
  std::vector<net::NodeIndex> path;
  path.reserve(relays.size() + 1);
  for (auto it = relays.rbegin(); it != relays.rend(); ++it) {
    path.push_back(it->ip);
  }
  path.push_back(owner);
  return path;
}

std::vector<onion::RelayInfo> HirepSystem::pick_and_verify_relays(
    net::NodeIndex owner) {
  // Current overlay population (the graph is authoritative even during
  // bootstrap and after joins): joiners relay too.
  const auto ips = onion::pick_relay_ips(rng_, overlay_.node_count(),
                                         options_.onion_relays, owner);
  std::vector<onion::RelayInfo> relays;
  relays.reserve(ips.size());
  for (net::NodeIndex ip : ips) {
    if (options_.crypto == CryptoMode::kFull) {
      onion::HonestRelay endpoint(ip, &identities_[ip]);
      auto info = onion::fetch_anonymity_key(overlay_, rng_,
                                             identities_[owner], owner,
                                             endpoint);
      if (info) relays.push_back(std::move(*info));
    } else {
      // Same four handshake messages (Figure 3: two request/response round
      // trips), key taken on faith; the transport may lose any of them, in
      // which case the relay fails verification and is skipped.
      bool handshake_ok = true;
      for (int message = 0; message < 4 && handshake_ok; ++message) {
        const net::NodeIndex from = message % 2 == 0 ? owner : ip;
        const net::NodeIndex to = message % 2 == 0 ? ip : owner;
        handshake_ok =
            transport_.send(net::EnvelopeType::kKeyExchange, from, {to})
                .delivered;
      }
      if (handshake_ok) {
        relays.push_back({ip, identities_[ip].anonymity_public()});
      }
    }
  }
  return relays;
}

onion::Onion HirepSystem::issue_agent_onion(net::NodeIndex agent_ip,
                                            AgentRuntime& rt) {
  const std::uint64_t sq = rt.sq++;
  router_.note_issued(identities_[agent_ip].node_id(), sq);
  if (options_.crypto == CryptoMode::kFull) {
    return onion::build_onion(rng_, identities_[agent_ip], agent_ip, rt.relays,
                              sq);
  }
  onion::Onion onion;
  onion.entry = rt.relays.empty() ? agent_ip : rt.relays.back().ip;
  onion.sq = sq;
  onion.relay_count = static_cast<std::uint32_t>(rt.relays.size());
  onion.owner_sig_key = identities_[agent_ip].signature_public();
  return onion;
}

AgentEntry HirepSystem::self_entry(net::NodeIndex agent_ip, AgentRuntime& rt) {
  AgentEntry entry;
  entry.weight = 1.0;
  entry.agent_id = identities_[agent_ip].node_id();
  entry.agent_key = identities_[agent_ip].signature_public();
  entry.onion = issue_agent_onion(agent_ip, rt);
  entry.relay_path = path_of(rt.relays, agent_ip);
  return entry;
}

std::vector<AgentEntry> HirepSystem::shareable_list(net::NodeIndex v) {
  const auto& list = peers_.at(v).agents();
  if (!list.empty()) return list.entries();
  const auto it = agents_.find(v);
  if (it != agents_.end() && it->second.online) {
    return {self_entry(v, it->second)};
  }
  return {};
}

std::size_t HirepSystem::discover_agents(net::NodeIndex peer_ip) {
  Peer& p = peers_.at(peer_ip);
  if (p.agents().full()) return 0;
  if constexpr (obs::kEnabled) {
    static obs::Counter& walks =
        obs::Registry::global().counter("hirep.discovery.walks");
    walks.add();
  }

  const auto lists = collect_agent_lists(
      transport_, rng_, peer_ip, options_.discovery_tokens,
      options_.discovery_ttl,
      [this, peer_ip](net::NodeIndex v) {
        return v == peer_ip ? std::vector<AgentEntry>{} : shareable_list(v);
      });

  std::vector<std::vector<AgentEntry>> raw;
  raw.reserve(lists.size());
  for (const auto& l : lists) raw.push_back(l.entries);

  std::size_t added = 0;
  for (AgentEntry& e : rank_and_select(raw, p.agents().params().capacity, rng_)) {
    if (p.agents().full()) break;
    // A peer does not pick itself, and re-verification of the nodeId/key
    // binding rejects forged recommendations.
    if (e.agent_id == p.node_id()) continue;
    if (crypto::NodeId::of_key(e.agent_key) != e.agent_id) continue;
    if (p.agents().add(std::move(e))) ++added;
  }
  if constexpr (obs::kEnabled) {
    static obs::Counter& agents_added =
        obs::Registry::global().counter("hirep.discovery.agents_added");
    agents_added.add(added);
  }
  return added;
}

void HirepSystem::refill(net::NodeIndex peer_ip) {
  Peer& p = peers_.at(peer_ip);
  // Probe the backup cache, most recent first (§3.4.3).
  while (!p.agents().full()) {
    auto backup = p.agents().pop_backup();
    if (!backup) break;
    const auto probe_ip = ip_of(backup->agent_id);
    if (!probe_ip) continue;
    const auto probed =
        transport_.send(net::EnvelopeType::kProbe, peer_ip, {*probe_ip});
    if (!probed.delivered) continue;  // probe lost: treated as offline
    const auto* rt = runtime_of(backup->agent_id);
    if (rt != nullptr && rt->online) {
      p.agents().add(std::move(*backup));
    }
  }
  if (p.agents().needs_refill()) discover_agents(peer_ip);
}

net::NodeIndex HirepSystem::join_peer() {
  // Transport level: preferential-attachment links, as a joining servent
  // bootstrapping off well-known high-degree hosts would get.
  const auto m = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.average_degree / 2.0));
  std::vector<net::NodeIndex> neighbors;
  while (neighbors.size() < m) {
    const auto candidate = overlay_.sample_by_degree(rng_);
    if (std::find(neighbors.begin(), neighbors.end(), candidate) ==
        neighbors.end()) {
      neighbors.push_back(candidate);
    }
  }
  const net::NodeIndex v = overlay_.add_node(neighbors);

  // World + identity level.
  const auto truth_index = truth_.add_node(rng_);
  (void)truth_index;  // same index by construction
  identities_.push_back(crypto::Identity::generate(rng_, options_.rsa_bits));
  id_to_ip_.emplace(identities_.back().node_id(), v);

  // Peer state: verified relays, then trusted-agent discovery (§3.4.1).
  peers_.emplace_back(&identities_.back(), v, list_params_from(options_));
  peers_.back().set_relays(pick_and_verify_relays(v));
  if (truth_.agent_capable(v)) {
    AgentRuntime rt;
    rt.agent = std::make_unique<ReputationAgent>(
        &identities_.back(), v, &truth_,
        trust::model_factory_by_name(options_.agent_model),
        options_.min_reports_for_model);
    rt.relays = peers_.back().relays();
    agents_.emplace(v, std::move(rt));
  }
  discover_agents(v);
  return v;
}

crypto::NodeId HirepSystem::rotate_peer_key(net::NodeIndex v) {
  crypto::Identity& identity = identities_.at(v);
  const crypto::NodeId old_id = identity.node_id();
  const auto announcement =
      identity.rotate_signature_key(rng_, options_.rsa_bits);

  // Simulation-side reverse mapping follows the identity.
  id_to_ip_.erase(old_id);
  id_to_ip_.emplace(identity.node_id(), v);

  // "New public keys signed by current private key can be sent out using
  // the most recently received onions" (§3.5): the announcement travels to
  // every trusted agent over the freshest Onion_e the peer holds.
  Peer& p = peers_.at(v);
  const util::Bytes wire = announcement.serialize();
  for (auto& entry : p.agents().entries()) {
    AgentRuntime* rt = runtime_of(entry.agent_id);
    if (rt == nullptr || !rt->online) continue;
    if (options_.crypto == CryptoMode::kFast) {
      const auto routed = transport_.send(net::EnvelopeType::kKeyRotation, v,
                                          entry.relay_path);
      if (!routed.delivered) continue;  // announcement lost: agent keeps SP
      rt->agent->migrate_key(old_id, announcement);
      continue;
    }
    const auto routed =
        route_envelope(v, entry.onion, wire, net::EnvelopeType::kKeyRotation);
    if (!routed.delivered) continue;
    const auto parsed =
        crypto::Identity::RotationAnnouncement::deserialize(routed.payload);
    if (!parsed) continue;
    rt->agent->migrate_key(old_id, *parsed);
  }
  return identity.node_id();
}

HirepSystem::RoutedEnvelope HirepSystem::route_envelope(
    net::NodeIndex sender, const onion::Onion& onion, util::Bytes wire,
    net::EnvelopeType type) {
  RoutedEnvelope result;
  const auto path = router_.peel_path(onion);
  if (!path) return result;  // bad signature / stale sq / corrupt layer
  auto receipt = transport_.send(type, sender, *path, std::move(wire));
  result.delivered = receipt.delivered;
  result.destination = receipt.destination;
  result.payload = std::move(receipt.payload);
  return result;
}

std::optional<double> HirepSystem::exchange_with_agent(
    Peer& requestor, AgentEntry& entry, net::NodeIndex subject_ip,
    const crypto::NodeId& subject_id) {
  AgentRuntime* rt = runtime_of(entry.agent_id);
  if (rt == nullptr || !rt->online) return std::nullopt;
  const auto agent_ip = *ip_of(entry.agent_id);
  const std::uint64_t nonce = rng_();

  if (options_.crypto == CryptoMode::kFast) {
    // Identical message counts, protocol work elided.  A lost request means
    // the agent never hears the question; a lost response means the agent
    // answered but the requestor treats it as unreachable (§3.4.3).
    const auto to_agent = transport_.send(net::EnvelopeType::kTrustRequest,
                                          requestor.ip(), entry.relay_path);
    if (!to_agent.delivered) return std::nullopt;
    rt->agent->register_key(requestor.node_id(),
                            requestor.identity().signature_public());
    const double value = rt->agent->trust_value(subject_id, subject_ip, rng_);
    if constexpr (obs::kEnabled) {
      static obs::Counter& votes =
          obs::Registry::global().counter("hirep.trust.votes_sent");
      votes.add();  // the agent answered, even if the response is then lost
    }
    onion::Onion fresh = issue_agent_onion(agent_ip, *rt);
    const auto to_peer = transport_.send(net::EnvelopeType::kTrustResponse,
                                         agent_ip, requestor.relay_path());
    if (!to_peer.delivered) return std::nullopt;
    if constexpr (check::kEnabled) {
      // Holder-side §3.3 invariant: within an entry's lifetime, the onion a
      // holder keeps for an issuer is only ever replaced by a fresher one.
      if (fresh.sq < entry.onion.sq) {
        check::report({"onion.sq.holder_monotone",
                       "refreshed onion sq " + std::to_string(fresh.sq) +
                           " < held sq " + std::to_string(entry.onion.sq),
                       -1.0, crypto::NodeIdHash{}(entry.agent_id),
                       requestor.ip()});
      }
    }
    entry.onion = std::move(fresh);
    entry.relay_path = path_of(rt->relays, agent_ip);
    return value;
  }

  // --- full crypto path ---
  auto onion_p = requestor.issue_onion(rng_);
  const TrustValueRequest request = build_trust_request(
      rng_, entry.agent_key, requestor.identity(), subject_id, nonce,
      std::move(onion_p));
  const auto to_agent =
      route_envelope(requestor.ip(), entry.onion, request.serialize(),
                     net::EnvelopeType::kTrustRequest);
  if (!to_agent.delivered || to_agent.destination != agent_ip) {
    return std::nullopt;
  }

  // Agent side.
  const auto parsed = TrustValueRequest::deserialize(to_agent.payload);
  if (!parsed) return std::nullopt;
  const auto opened = open_trust_request(rt->agent->identity(), *parsed);
  if (!opened) return std::nullopt;
  rt->agent->register_key(crypto::NodeId::of_key(parsed->sp_p), parsed->sp_p);
  const double value = rt->agent->trust_value(opened->subject, subject_ip, rng_);
  if constexpr (obs::kEnabled) {
    static obs::Counter& votes =
        obs::Registry::global().counter("hirep.trust.votes_sent");
    votes.add();  // the agent answered, even if the response is then lost
  }
  const TrustValueResponse response = build_trust_response(
      rng_, parsed->sp_p, rt->agent->identity(), value, opened->nonce,
      issue_agent_onion(agent_ip, *rt));
  const auto to_peer =
      route_envelope(agent_ip, parsed->reply_onion, response.serialize(),
                     net::EnvelopeType::kTrustResponse);
  if (!to_peer.delivered || to_peer.destination != requestor.ip()) {
    return std::nullopt;
  }

  // Back at the requestor.
  const auto parsed_resp = TrustValueResponse::deserialize(to_peer.payload);
  if (!parsed_resp) return std::nullopt;
  const auto opened_resp = open_trust_response(requestor.identity(), *parsed_resp);
  if (!opened_resp || opened_resp->nonce != nonce) return std::nullopt;
  if constexpr (check::kEnabled) {
    if (parsed_resp->report_onion.sq < entry.onion.sq) {
      check::report({"onion.sq.holder_monotone",
                     "refreshed onion sq " +
                         std::to_string(parsed_resp->report_onion.sq) +
                         " < held sq " + std::to_string(entry.onion.sq),
                     -1.0, crypto::NodeIdHash{}(entry.agent_id),
                     requestor.ip()});
    }
  }
  // Refresh the reply path with the agent's newest onion.
  entry.onion = parsed_resp->report_onion;
  entry.relay_path = path_of(rt->relays, agent_ip);
  return opened_resp->value;
}

HirepSystem::QueryResult HirepSystem::query_trust(net::NodeIndex requestor_ip,
                                                  net::NodeIndex subject_ip) {
  if constexpr (obs::kEnabled) {
    static obs::Counter& queries =
        obs::Registry::global().counter("hirep.trust.queries");
    queries.add();
  }
  Peer& p = peers_.at(requestor_ip);
  const crypto::NodeId subject_id = identities_.at(subject_ip).node_id();

  QueryResult result;
  std::vector<crypto::NodeId> offline;
  for (auto& entry : p.agents().entries()) {
    ++result.contacted;
    const auto value = exchange_with_agent(p, entry, subject_ip, subject_id);
    if (!value) {
      offline.push_back(entry.agent_id);
      continue;
    }
    result.ratings.push_back({entry.agent_id, *value, entry.weight});
  }
  for (const auto& id : offline) p.agents().handle_offline(id);

  std::vector<std::pair<double, double>> vw;
  vw.reserve(result.ratings.size());
  for (const auto& r : result.ratings) vw.emplace_back(r.value, r.weight);
  result.estimate = Peer::aggregate(vw);
  return result;
}

void HirepSystem::send_report(Peer& reporter, AgentEntry& entry,
                              const crypto::NodeId& subject_id,
                              double outcome) {
  AgentRuntime* rt = runtime_of(entry.agent_id);
  if (rt == nullptr || !rt->online) return;

  if (options_.crypto == CryptoMode::kFast) {
    const auto routed = transport_.send(net::EnvelopeType::kReport,
                                        reporter.ip(), entry.relay_path);
    if (!routed.delivered) return;  // report lost: agent never learns of it
    rt->agent->accept_report(subject_id, outcome);
    return;
  }

  const TransactionReport report =
      build_report(reporter.identity(), subject_id, outcome, rng_());
  const auto routed = route_envelope(reporter.ip(), entry.onion,
                                     report.serialize(),
                                     net::EnvelopeType::kReport);
  if (!routed.delivered) return;
  const auto parsed = TransactionReport::deserialize(routed.payload);
  if (!parsed) return;
  const auto sp = rt->agent->lookup_key(parsed->reporter);
  if (!sp) return;  // unknown reporter: §3.5.3 drop
  const auto opened = verify_report(*sp, *parsed);
  if (!opened) return;  // bad signature: drop
  rt->agent->accept_report(opened->subject, opened->outcome);
}

HirepSystem::TransactionRecord HirepSystem::run_transaction() {
  const std::size_t population = peers_.size();
  const auto requestor = static_cast<net::NodeIndex>(rng_.below(population));
  // Candidate providers (paper default: one random candidate).
  net::NodeIndex provider = requestor;
  if (options_.provider_candidates <= 1) {
    while (provider == requestor) {
      provider = static_cast<net::NodeIndex>(rng_.below(population));
    }
    return run_transaction(requestor, provider);
  }
  // Multi-candidate selection: query each candidate, pick the best estimate.
  double best = -1.0;
  for (std::size_t i = 0; i < options_.provider_candidates; ++i) {
    net::NodeIndex candidate = requestor;
    while (candidate == requestor) {
      candidate = static_cast<net::NodeIndex>(rng_.below(population));
    }
    const auto q = query_trust(requestor, candidate);
    if (q.estimate > best) {
      best = q.estimate;
      provider = candidate;
    }
  }
  return run_transaction(requestor, provider);
}

HirepSystem::TransactionRecord HirepSystem::run_transaction(
    net::NodeIndex requestor, net::NodeIndex provider) {
  const std::uint64_t before = trust_message_total();
  const QueryResult query = query_trust(requestor, provider);
  TransactionRecord record = complete_transaction(requestor, provider, query);
  record.trust_messages = trust_message_total() - before;
  return record;
}

HirepSystem::TransactionRecord HirepSystem::complete_transaction(
    net::NodeIndex requestor, net::NodeIndex provider,
    const QueryResult& query) {
  const std::uint64_t before = trust_message_total();
  Peer& p = peers_.at(requestor);
  const crypto::NodeId subject_id = identities_.at(provider).node_id();

  TransactionRecord record;
  record.requestor = requestor;
  record.provider = provider;
  record.estimate = query.estimate;
  record.truth_value = truth_.true_trust(provider);
  record.responses = query.ratings.size();
  record.outcome = truth_.transaction_outcome(provider);
  p.note_transaction();

  // Expertise update: A_c = 1 iff the agent's evaluation matched the result.
  for (const auto& rating : query.ratings) {
    p.agents().update_expertise(rating.agent,
                                Peer::consistent(rating.value, record.outcome));
  }

  // Signed transaction reports to all remaining trusted agents (§3.6).
  for (auto& entry : p.agents().entries()) {
    send_report(p, entry, subject_id, record.outcome);
  }

  // Maintenance (§3.4.3).
  if (p.agents().needs_refill()) refill(requestor);

  record.trust_messages = trust_message_total() - before;
  return record;
}

std::uint64_t HirepSystem::trust_message_total() const {
  const auto& m = overlay_.metrics();
  return m.of(net::MessageKind::kTrustRequest) +
         m.of(net::MessageKind::kTrustResponse) +
         m.of(net::MessageKind::kReport) +
         m.of(net::MessageKind::kOnionRelay);
}

}  // namespace hirep::core
