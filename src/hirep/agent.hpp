// Reputation agent (paper §3.2, §3.4–3.5).
//
// Any peer with bandwidth > 64 kbit/s may claim itself a reputation agent.
// An agent keeps:
//  * a public-key list {nodeId_i, SP_i} of the peers that trust it — grown
//    lazily from trust-value requests;
//  * a per-subject trust store, fed by (verified) transaction reports and
//    by the agent's own evaluation capability.
//
// A *good* agent folds authentic reports into its computation model — "a
// trusted reputation agent receives more information for trust computation
// than a peer based on local experience" (§4.2.3).  A *poor or malicious*
// agent answers with inverted evaluations and ignores the evidence.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "crypto/identity.hpp"
#include "trust/ground_truth.hpp"
#include "trust/trust_model.hpp"

namespace hirep::core {

class ReputationAgent {
 public:
  /// `identity` and `truth` must outlive the agent.  `self` is the agent's
  /// overlay index (its evaluation capability is looked up in `truth`).
  ReputationAgent(const crypto::Identity* identity, net::NodeIndex self,
                  const trust::GroundTruth* truth,
                  trust::TrustModelFactory model_factory,
                  std::size_t min_reports_for_model = 3);

  const crypto::Identity& identity() const noexcept { return *identity_; }
  const crypto::NodeId& node_id() const noexcept { return identity_->node_id(); }
  net::NodeIndex ip() const noexcept { return self_; }

  /// Registers a requestor's signature key (derives and checks the nodeId
  /// binding; a key whose hash mismatches the claimed id is rejected).
  bool register_key(const crypto::NodeId& id, const crypto::RsaPublicKey& sp);

  /// §3.5 key rotation: verifies an old-key-signed announcement and maps
  /// the old nodeId to the new one — key list entry AND accumulated trust
  /// evidence both migrate ("it is easy for a peer who receives the update
  /// message to map and replace an old nodeId to a new nodeId").  Returns
  /// false (no state change) when the announcement does not verify or the
  /// old id is unknown.
  bool migrate_key(const crypto::NodeId& old_id,
                   const crypto::Identity::RotationAnnouncement& announcement);
  std::optional<crypto::RsaPublicKey> lookup_key(const crypto::NodeId& id) const;
  std::size_t key_list_size() const noexcept { return key_list_.size(); }

  /// The agent's answer to "what is the trust value of `subject`?".
  /// `subject_ip` is the simulation-side handle used to consult the
  /// agent's innate evaluation capability.
  double trust_value(const crypto::NodeId& subject, net::NodeIndex subject_ip,
                     util::Rng& rng);

  /// Accepts a transaction report about `subject` after the caller has
  /// verified its signature (see protocol.hpp).  Good agents feed their
  /// model; poor agents drop the evidence.
  void accept_report(const crypto::NodeId& subject, double outcome);

  std::size_t report_count(const crypto::NodeId& subject) const;

 private:
  const crypto::Identity* identity_;
  net::NodeIndex self_;
  const trust::GroundTruth* truth_;
  trust::TrustModelFactory model_factory_;
  std::size_t min_reports_for_model_;

  std::map<crypto::NodeId, crypto::RsaPublicKey> key_list_;
  std::map<crypto::NodeId, std::unique_ptr<trust::TrustModel>> store_;
};

}  // namespace hirep::core
