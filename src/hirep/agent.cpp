#include "hirep/agent.hpp"

#include "crypto/verify_cache.hpp"

namespace hirep::core {

ReputationAgent::ReputationAgent(const crypto::Identity* identity,
                                 net::NodeIndex self,
                                 const trust::GroundTruth* truth,
                                 trust::TrustModelFactory model_factory,
                                 std::size_t min_reports_for_model)
    : identity_(identity),
      self_(self),
      truth_(truth),
      model_factory_(std::move(model_factory)),
      min_reports_for_model_(min_reports_for_model) {}

bool ReputationAgent::register_key(const crypto::NodeId& id,
                                   const crypto::RsaPublicKey& sp) {
  // Self-certifying check: the id must be the hash of the key.  This is
  // what forecloses man-in-the-middle key substitution (§3.3).
  if (crypto::node_id_of_cached(sp) != id) return false;
  key_list_.emplace(id, sp);
  return true;
}

bool ReputationAgent::migrate_key(
    const crypto::NodeId& old_id,
    const crypto::Identity::RotationAnnouncement& announcement) {
  const auto it = key_list_.find(old_id);
  if (it == key_list_.end()) return false;
  if (announcement.old_id != old_id) return false;
  if (!crypto::Identity::verify_rotation(it->second, announcement)) {
    return false;
  }
  const crypto::NodeId new_id =
      crypto::node_id_of_cached(announcement.new_signature_public);
  key_list_.erase(it);
  key_list_.emplace(new_id, announcement.new_signature_public);
  // Accumulated evidence about the subject follows the identity.
  const auto store_it = store_.find(old_id);
  if (store_it != store_.end()) {
    store_.emplace(new_id, std::move(store_it->second));
    store_.erase(store_it);
  }
  return true;
}

std::optional<crypto::RsaPublicKey> ReputationAgent::lookup_key(
    const crypto::NodeId& id) const {
  const auto it = key_list_.find(id);
  if (it == key_list_.end()) return std::nullopt;
  return it->second;
}

double ReputationAgent::trust_value(const crypto::NodeId& subject,
                                    net::NodeIndex subject_ip,
                                    util::Rng& rng) {
  const bool poor = truth_->poor_evaluator(self_);
  if (!poor) {
    // A good agent prefers accumulated authentic reports once it has seen
    // enough of them; otherwise it falls back to its own evaluation.
    const auto it = store_.find(subject);
    if (it != store_.end() &&
        it->second->observations() >= min_reports_for_model_) {
      return it->second->value();
    }
  }
  return truth_->evaluate(self_, subject_ip, rng);
}

void ReputationAgent::accept_report(const crypto::NodeId& subject,
                                    double outcome) {
  if (truth_->poor_evaluator(self_)) return;  // malicious: evidence ignored
  auto it = store_.find(subject);
  if (it == store_.end()) {
    it = store_.emplace(subject, model_factory_()).first;
  }
  it->second->record(outcome);
}

std::size_t ReputationAgent::report_count(const crypto::NodeId& subject) const {
  const auto it = store_.find(subject);
  return it == store_.end() ? 0 : it->second->observations();
}

}  // namespace hirep::core
