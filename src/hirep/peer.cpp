#include "hirep/peer.hpp"

#include "check/invariants.hpp"

namespace hirep::core {

Peer::Peer(const crypto::Identity* identity, net::NodeIndex ip,
           ListParams params)
    : identity_(identity), ip_(ip), agents_(params) {}

void Peer::set_relays(std::vector<onion::RelayInfo> relays) {
  relays_ = std::move(relays);
}

std::vector<net::NodeIndex> Peer::relay_path() const {
  // build_onion takes relays ordered owner-adjacent first; the wire path
  // (entry first) is the reverse, ending at the owner.
  std::vector<net::NodeIndex> path;
  path.reserve(relays_.size() + 1);
  for (auto it = relays_.rbegin(); it != relays_.rend(); ++it) {
    path.push_back(it->ip);
  }
  path.push_back(ip_);
  return path;
}

onion::Onion Peer::issue_onion(util::Rng& rng) {
  const std::uint64_t sq = next_sq();
  if constexpr (check::kEnabled) {
    issued_sq_.note(crypto::NodeIdHash{}(node_id()), ip_, sq);
  }
  return onion::build_onion(rng, *identity_, ip_, relays_, sq);
}

std::optional<double> Peer::first_hand(const crypto::NodeId& subject) const {
  const auto it = first_hand_.find(subject);
  if (it == first_hand_.end()) return std::nullopt;
  return it->second;
}

void Peer::note_outcome(const crypto::NodeId& subject, double outcome) {
  const double alpha = agents_.params().alpha;
  const auto [it, inserted] = first_hand_.try_emplace(subject, outcome);
  if (!inserted) {
    it->second = alpha * outcome + (1.0 - alpha) * it->second;
  }
  if constexpr (check::kEnabled) {
    check::unit_interval("hirep.first_hand.bounds", it->second);
  }
}

double Peer::aggregate(
    const std::vector<std::pair<double, double>>& value_weight_pairs) {
  if (value_weight_pairs.empty()) return 0.5;
  double weighted = 0.0, weight_sum = 0.0, plain = 0.0;
  for (const auto& [value, weight] : value_weight_pairs) {
    weighted += value * weight;
    weight_sum += weight;
    plain += value;
  }
  const double estimate = weight_sum > 0.0
                              ? weighted / weight_sum
                              : plain / static_cast<double>(
                                            value_weight_pairs.size());
  if constexpr (check::kEnabled) {
    check::unit_interval("hirep.aggregate.bounds", estimate);
  }
  return estimate;
}

}  // namespace hirep::core
