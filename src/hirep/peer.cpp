#include "hirep/peer.hpp"

namespace hirep::core {

Peer::Peer(const crypto::Identity* identity, net::NodeIndex ip,
           ListParams params)
    : identity_(identity), ip_(ip), agents_(params) {}

void Peer::set_relays(std::vector<onion::RelayInfo> relays) {
  relays_ = std::move(relays);
}

std::vector<net::NodeIndex> Peer::relay_path() const {
  // build_onion takes relays ordered owner-adjacent first; the wire path
  // (entry first) is the reverse, ending at the owner.
  std::vector<net::NodeIndex> path;
  path.reserve(relays_.size() + 1);
  for (auto it = relays_.rbegin(); it != relays_.rend(); ++it) {
    path.push_back(it->ip);
  }
  path.push_back(ip_);
  return path;
}

onion::Onion Peer::issue_onion(util::Rng& rng) {
  return onion::build_onion(rng, *identity_, ip_, relays_, next_sq());
}

double Peer::aggregate(
    const std::vector<std::pair<double, double>>& value_weight_pairs) {
  if (value_weight_pairs.empty()) return 0.5;
  double weighted = 0.0, weight_sum = 0.0, plain = 0.0;
  for (const auto& [value, weight] : value_weight_pairs) {
    weighted += value * weight;
    weight_sum += weight;
    plain += value;
  }
  if (weight_sum > 0.0) return weighted / weight_sum;
  return plain / static_cast<double>(value_weight_pairs.size());
}

}  // namespace hirep::core
