// A general peer in the hiREP hierarchy: owns its cryptographic identity,
// its trusted-agent list + backup cache, its verified onion relays, and the
// aggregation / consistency logic used around a transaction.
//
// A peer never addresses an agent by transport address — only by nodeId +
// onion — which is the anonymity property the hierarchy preserves.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "check/invariants.hpp"
#include "crypto/identity.hpp"
#include "hirep/agent_list.hpp"
#include "onion/onion.hpp"
#include "onion/relay.hpp"

namespace hirep::core {

class Peer {
 public:
  Peer(const crypto::Identity* identity, net::NodeIndex ip, ListParams params);

  const crypto::Identity& identity() const noexcept { return *identity_; }
  const crypto::NodeId& node_id() const noexcept { return identity_->node_id(); }
  net::NodeIndex ip() const noexcept { return ip_; }

  TrustedAgentList& agents() noexcept { return agents_; }
  const TrustedAgentList& agents() const noexcept { return agents_; }

  /// Onion relays this peer has verified (via the Figure-3 handshake).
  void set_relays(std::vector<onion::RelayInfo> relays);
  const std::vector<onion::RelayInfo>& relays() const noexcept { return relays_; }
  /// Simulation-side path of this peer's onions: entry relay first.
  std::vector<net::NodeIndex> relay_path() const;

  /// Issues a fresh reply onion with a non-decreasing sequence number.
  onion::Onion issue_onion(util::Rng& rng);
  std::uint64_t next_sq() noexcept { return sq_++; }

  /// Expertise-weighted aggregation of agent responses.  Empty input
  /// returns the neutral prior 0.5; zero total weight falls back to the
  /// unweighted mean.
  static double aggregate(const std::vector<std::pair<double, double>>&
                              value_weight_pairs);

  /// A rating is consistent with an outcome when both sit on the same side
  /// of 0.5 (the rating scopes are [0,0.4] / [0.6,1], outcomes are {0,1}).
  static bool consistent(double rating, double outcome) noexcept {
    return (rating > 0.5) == (outcome > 0.5);
  }

  std::uint64_t transactions() const noexcept { return transactions_; }
  void note_transaction() noexcept { ++transactions_; }

  /// First-hand trust: an EWMA (same alpha as the expertise update) over
  /// this peer's own transaction outcomes with a subject — the degradation
  /// fallback when the live trusted-agent quorum collapses.  nullopt until
  /// the peer has transacted with the subject at least once.
  std::optional<double> first_hand(const crypto::NodeId& subject) const;
  void note_outcome(const crypto::NodeId& subject, double outcome);

 private:
  const crypto::Identity* identity_;
  net::NodeIndex ip_;
  TrustedAgentList agents_;
  std::vector<onion::RelayInfo> relays_;
  std::uint64_t sq_ = 1;
  std::uint64_t transactions_ = 0;
  std::unordered_map<crypto::NodeId, double, crypto::NodeIdHash> first_hand_;
  check::MonotoneSequence issued_sq_{"onion.sq.issuer_monotone"};
};

}  // namespace hirep::core
