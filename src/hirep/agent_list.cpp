#include "hirep/agent_list.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/invariants.hpp"
#include "obs/metrics.hpp"

namespace hirep::core {

TrustedAgentList::TrustedAgentList(ListParams params) : params_(params) {
  if (params_.alpha <= 0.0 || params_.alpha >= 1.0) {
    throw std::invalid_argument("alpha must be in (0,1)");
  }
  if (params_.capacity == 0) throw std::invalid_argument("capacity == 0");
}

bool TrustedAgentList::needs_refill() const noexcept {
  return static_cast<double>(entries_.size()) <
         params_.refill_fraction * static_cast<double>(params_.capacity);
}

bool TrustedAgentList::contains(const crypto::NodeId& agent) const {
  return find(agent) != nullptr;
}

const AgentEntry* TrustedAgentList::find(const crypto::NodeId& agent) const {
  for (const auto& e : entries_) {
    if (e.agent_id == agent) return &e;
  }
  return nullptr;
}

bool TrustedAgentList::add(AgentEntry entry) {
  if (full() || contains(entry.agent_id)) return false;
  entries_.push_back(std::move(entry));
  return true;
}

std::optional<double> TrustedAgentList::update_expertise(
    const crypto::NodeId& agent, bool consistent) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].agent_id != agent) continue;
    const double a_c = consistent ? 1.0 : 0.0;
    const double updated =
        params_.alpha * a_c + (1.0 - params_.alpha) * entries_[i].weight;
    if constexpr (check::kEnabled) {
      check::unit_interval("hirep.expertise.bounds", updated,
                           crypto::NodeIdHash{}(agent));
    }
    entries_[i].weight = updated;
    if (updated < params_.eviction_threshold) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      if constexpr (obs::kEnabled) {
        static obs::Counter& evictions =
            obs::Registry::global().counter("hirep.agent.evictions");
        evictions.add();
      }
    }
    return updated;
  }
  return std::nullopt;
}

void TrustedAgentList::handle_offline(const crypto::NodeId& agent) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].agent_id != agent) continue;
    AgentEntry entry = std::move(entries_[i]);
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    // "If an agent is offline and its accuracy value is positive, it will
    // be moved to the backup agent cache" — in good standing means at or
    // above the eviction threshold here.
    if (entry.weight >= params_.eviction_threshold) {
      backup_.insert(backup_.begin(), std::move(entry));
      if (backup_.size() > params_.backup_capacity) backup_.pop_back();
      if constexpr (obs::kEnabled) {
        static obs::Counter& demotions =
            obs::Registry::global().counter("hirep.agent.offline_demotions");
        demotions.add();
      }
    }
    return;
  }
}

std::optional<AgentEntry> TrustedAgentList::pop_backup() {
  if (backup_.empty()) return std::nullopt;
  AgentEntry entry = std::move(backup_.front());
  backup_.erase(backup_.begin());
  return entry;
}

double TrustedAgentList::total_weight() const noexcept {
  double sum = 0.0;
  for (const auto& e : entries_) sum += e.weight;
  return sum;
}

}  // namespace hirep::core
