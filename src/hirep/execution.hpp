// core::Executor — the one description of how the scale engine runs a
// transaction batch.  Replaces the old two-field ExecutionPolicy struct
// that bench mains used to poke directly: an Executor names one of three
// engines (serial | parallel | sharded), carries the worker/shard/window
// knobs, and owns the single validation point that used to be scattered
// between Scenario::execution_policy() and run_transactions().
//
//   auto exec = sim::Scenario(p).execution_policy();   // the one builder
//   system.run_transactions(pairs, exec);
//
// Engines (DESIGN.md §9 + §14):
//   kSerial   — one thread, strict index order; the reference semantics.
//   kParallel — conflict-free prefix waves chunked across a thread pool
//               (one transport lane per worker).
//   kSharded  — agents partitioned into `shards` by node index; each wave
//               is split by the requestor's home shard, shards execute
//               their slices on their own lane/arena/event-queue, and
//               cross-shard report envelopes are exchanged deterministically
//               at the wave barrier.  Byte-identical to kSerial.
//
// validate() is the whole contract: it rejects nonsense (wrapped negative
// counts, shard knobs on a non-sharded engine), downgrades the parallel
// engines to serial with a logged diagnostic when the environment is
// order-dependent (non-instant delivery, chaos), and resolves the
// zero-defaults, so run_transactions() receives a policy it can trust.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace hirep::core {

enum class ExecutionMode {
  kSerial,    ///< one thread, strict transaction-index order
  kParallel,  ///< conflict-free waves chunked across a thread pool
  kSharded    ///< per-shard lanes + deterministic barrier exchange
};

/// "serial" | "parallel" | "sharded" -> mode (nullopt on anything else).
std::optional<ExecutionMode> execution_mode_by_name(std::string_view name);
const char* to_string(ExecutionMode mode) noexcept;

struct Executor {
  ExecutionMode mode = ExecutionMode::kParallel;
  /// Worker threads; 0 = hardware concurrency (resolved by the pool).
  std::size_t threads = 0;
  /// kSharded: shard count K (agents live on shard `ip % K`); 0 = one
  /// shard per worker thread.  Results are independent of K.
  std::size_t shards = 0;
  /// Cap on transactions per wave; 0 = unbounded (maximal prefix waves).
  /// Smaller windows mean more barriers — and earlier deferred
  /// maintenance — so runs compare like-for-like only at equal windows.
  std::size_t wave_window = 0;

  static Executor serial() noexcept { return {ExecutionMode::kSerial}; }
  static Executor parallel(std::size_t threads = 0) noexcept {
    return {ExecutionMode::kParallel, threads};
  }
  static Executor sharded(std::size_t shards, std::size_t threads = 0) noexcept {
    return {ExecutionMode::kSharded, threads, shards};
  }

  /// True for the engines that run transactions concurrently (and therefore
  /// require instant delivery).
  bool concurrent() const noexcept { return mode != ExecutionMode::kSerial; }

  /// What the executor needs to know about the run it will drive.
  struct Environment {
    bool instant_delivery = true;  ///< delivery config AND installed policy
    bool chaos = false;            ///< a fault schedule is attached
  };

  /// The single validation point.  Throws std::invalid_argument on
  /// configurations that are nonsense under any environment (thread/shard
  /// counts that smell like wrapped negatives, shard knobs on a non-sharded
  /// engine).  Downgrades kParallel/kSharded to kSerial — with a logged
  /// diagnostic naming the reason — when the environment is
  /// order-dependent: lossy/delayed transports and chaos schedules make
  /// concurrent execution non-reproducible, and serial execution yields
  /// the same records anyway.  Returns the resolved executor.
  Executor validate(const Environment& env) const;
};

}  // namespace hirep::core
