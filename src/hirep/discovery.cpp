#include "hirep/discovery.hpp"

#include <algorithm>
#include <map>

namespace hirep::core {

std::vector<AgentEntry> rank_and_select(
    const std::vector<std::vector<AgentEntry>>& lists, std::size_t want,
    util::Rng& rng, RankingRule rule) {
  if (want == 0) return {};

  struct Candidate {
    double score = 0.0;
    std::size_t votes = 0;
    AgentEntry entry;
    double entry_rank = -1.0;  // rank of the list that supplied `entry`
  };
  std::map<crypto::NodeId, Candidate> candidates;

  for (const auto& list : lists) {
    // Rank within this list: heaviest first.
    std::vector<const AgentEntry*> sorted;
    sorted.reserve(list.size());
    for (const auto& e : list) sorted.push_back(&e);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const AgentEntry* a, const AgentEntry* b) {
                       return a->weight > b->weight;
                     });
    for (std::size_t pos = 0; pos < sorted.size(); ++pos) {
      const double rank =
          pos < want ? static_cast<double>(want - pos) : 0.0;
      auto& cand = candidates[sorted[pos]->agent_id];
      switch (rule) {
        case RankingRule::kMaxRank:
          cand.score = std::max(cand.score, rank);
          break;
        case RankingRule::kMeanRank:
          // running mean over votes
          cand.score += (rank - cand.score) /
                        static_cast<double>(cand.votes + 1);
          break;
        case RankingRule::kSumRank:
          cand.score += rank;
          break;
      }
      ++cand.votes;
      if (rank > cand.entry_rank) {
        cand.entry = *sorted[pos];
        cand.entry_rank = rank;
      }
    }
  }

  // Order by final score; ties uniformly at random.
  struct Scored {
    double score;
    std::uint64_t tiebreak;
    const Candidate* cand;
  };
  std::vector<Scored> order;
  order.reserve(candidates.size());
  for (const auto& [id, cand] : candidates) {
    if (cand.score <= 0.0) continue;  // never ranked into anyone's top-n
    order.push_back({cand.score, rng(), &cand});
  }
  std::sort(order.begin(), order.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.tiebreak < b.tiebreak;
  });

  std::vector<AgentEntry> selected;
  selected.reserve(std::min(want, order.size()));
  for (const auto& s : order) {
    if (selected.size() >= want) break;
    AgentEntry e = s.cand->entry;
    e.weight = 1.0;  // initial expertise (§3.4.3)
    selected.push_back(std::move(e));
  }
  return selected;
}

std::vector<CollectedList> collect_agent_lists(
    net::Transport& transport, util::Rng& rng, net::NodeIndex requestor,
    std::uint32_t tokens, std::uint32_t ttl,
    const std::function<std::vector<AgentEntry>(net::NodeIndex)>& list_of) {
  std::vector<CollectedList> collected;
  const auto visits = net::token_walk(
      transport, rng, requestor, tokens, ttl,
      [&](net::NodeIndex node) { return !list_of(node).empty(); });
  collected.reserve(visits.size());
  for (const auto& visit : visits) {
    collected.push_back({visit.node, list_of(visit.node)});
  }
  return collected;
}

}  // namespace hirep::core
