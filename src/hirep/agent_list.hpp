// Trusted-agent list and backup agent cache (paper §3.4).
//
// Each entry is {weight, agent nodeId, Onion_agent, SP_e} exactly as §3.4.1
// describes; `weight` doubles as the maintained *expertise* value:
//
//   expertise <- alpha * A_c + (1 - alpha) * A_p,  A_c in {0, 1}
//
// where A_c is 1 iff the agent's evaluation was consistent with the actual
// transaction result.  Agents whose expertise falls below the eviction
// threshold are dropped; agents that go offline while still in good
// standing move to the most-recently-first backup cache (§3.4.3) and can be
// probed back when the list runs low.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/identity.hpp"
#include "onion/onion.hpp"

namespace hirep::core {

struct AgentEntry {
  double weight = 1.0;                 ///< expertise (initially 1, §3.4.3)
  crypto::NodeId agent_id;
  onion::Onion onion;                  ///< reply path to the agent
  crypto::RsaPublicKey agent_key;      ///< SP_e
  std::vector<net::NodeIndex> relay_path;  ///< sim-side: onion's true path
};

struct ListParams {
  double alpha = 0.3;              ///< EWMA weight on the newest outcome
  double eviction_threshold = 0.4; ///< hirep-4/6/8 sweeps use 0.4/0.6/0.8
  std::size_t capacity = 10;       ///< trusted agents per peer (Table 1)
  std::size_t backup_capacity = 20;
  /// Refill when the list falls below this fraction of capacity (§3.4.3's
  /// "smaller than some threshold, say 50" for a 100-entry list).
  double refill_fraction = 0.5;
};

class TrustedAgentList {
 public:
  explicit TrustedAgentList(ListParams params);

  const ListParams& params() const noexcept { return params_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  bool full() const noexcept { return entries_.size() >= params_.capacity; }
  bool needs_refill() const noexcept;
  const std::vector<AgentEntry>& entries() const noexcept { return entries_; }
  std::vector<AgentEntry>& entries() noexcept { return entries_; }

  bool contains(const crypto::NodeId& agent) const;
  const AgentEntry* find(const crypto::NodeId& agent) const;

  /// Adds an agent (ignored when present or at capacity; returns success).
  bool add(AgentEntry entry);

  /// EWMA expertise update for one agent after a transaction.  When the
  /// updated expertise drops below the eviction threshold the entry is
  /// removed (returns the new expertise; nullopt when the agent is not
  /// listed).
  std::optional<double> update_expertise(const crypto::NodeId& agent,
                                         bool consistent);

  /// Handles an agent observed offline: positive-standing entries move to
  /// the backup cache (most-recent-first), failed ones are dropped (§3.4.3).
  void handle_offline(const crypto::NodeId& agent);

  /// Pops the most recently cached backup (nullopt when empty); the caller
  /// probes it and re-adds on success.
  std::optional<AgentEntry> pop_backup();
  std::size_t backup_size() const noexcept { return backup_.size(); }

  /// Sum of expertise weights (for weighted trust aggregation).
  double total_weight() const noexcept;

 private:
  ListParams params_;
  std::vector<AgentEntry> entries_;
  std::vector<AgentEntry> backup_;  // front = most recent
};

}  // namespace hirep::core
