#include "hirep/execution.hpp"

#include <stdexcept>
#include <string>

#include "util/log.hpp"

namespace hirep::core {

namespace {

// Thread/shard counts parse through int64 on the CLI path, so a negative
// value wraps to a huge unsigned — bound both far above any real machine
// to catch the mistake at config time instead of inside the thread pool.
constexpr std::size_t kMaxThreads = 4096;
constexpr std::size_t kMaxShards = 4096;
// A wave window is a batch-size cap; anything beyond this is a wrap.
constexpr std::size_t kMaxWaveWindow = 1'000'000'000;

}  // namespace

std::optional<ExecutionMode> execution_mode_by_name(std::string_view name) {
  if (name == "serial") return ExecutionMode::kSerial;
  if (name == "parallel") return ExecutionMode::kParallel;
  if (name == "sharded") return ExecutionMode::kSharded;
  return std::nullopt;
}

const char* to_string(ExecutionMode mode) noexcept {
  switch (mode) {
    case ExecutionMode::kSerial:
      return "serial";
    case ExecutionMode::kParallel:
      return "parallel";
    case ExecutionMode::kSharded:
      return "sharded";
  }
  return "?";
}

Executor Executor::validate(const Environment& env) const {
  if (threads > kMaxThreads) {
    throw std::invalid_argument(
        "Executor: threads must be <= 4096 (negative values wrap)");
  }
  if (shards > kMaxShards) {
    throw std::invalid_argument(
        "Executor: shards must be <= 4096 (negative values wrap)");
  }
  if (wave_window > kMaxWaveWindow) {
    throw std::invalid_argument(
        "Executor: wave_window must be <= 1e9 (negative values wrap)");
  }
  if (shards != 0 && mode != ExecutionMode::kSharded) {
    throw std::invalid_argument(
        "Executor: shards requires sharded execution (got execution=" +
        std::string(to_string(mode)) + ")");
  }

  Executor resolved = *this;
  if (resolved.concurrent() && (!env.instant_delivery || env.chaos)) {
    // Lossy/delayed transports are delivery-order-dependent and chaos
    // schedules fault against the global transaction tick, which wave
    // boundaries do not preserve hop-for-hop; either forfeits concurrent
    // execution.  Serial execution produces the same records, one thread.
    HIREP_INFO("executor",
               "downgrading execution=" << to_string(resolved.mode)
                                        << " to serial: "
                                        << (env.chaos
                                                ? "a chaos schedule is attached"
                                                : "delivery is not instant")
                                        << " (order-dependent environment)");
    resolved.mode = ExecutionMode::kSerial;
    resolved.shards = 0;
  }
  return resolved;
}

}  // namespace hirep::core
