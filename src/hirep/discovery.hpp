// Trusted-agent discovery (paper §3.4.1–3.4.2, Figure 4).
//
// A joining peer (or one refilling its list) sends a trusted-agent-list
// request {R_al, token, TTL}: the request fans out across the overlay;
// each node that owns a trusted-agent list returns it, consuming one
// token; a node with no list but agent capability may answer with its own
// nodeId.  Propagation ends when tokens or TTL run out.
//
// Received recommendations are ranked per list — the heaviest agent in a
// list gets rank n, the next n-1, …, anything past the top n gets 0 — and
// an agent's final rank is the MAX across lists, which is what defeats
// bad-mouthing: one hostile low rank cannot cancel an honest high one
// (§4.2.1).  Ties are broken uniformly at random.
#pragma once

#include <functional>
#include <vector>

#include "hirep/agent_list.hpp"
#include "net/flood.hpp"

namespace hirep::core {

/// Alternative ranking rules, for the ablation study.  The paper's rule is
/// kMaxRank; kMeanRank and kSumRank are the "obvious" alternatives that
/// §4.2.1's attack analysis implicitly rejects.
enum class RankingRule { kMaxRank, kMeanRank, kSumRank };

/// Ranks all recommended agents across `lists` and selects up to `want` of
/// them.  When one agent appears in several lists, the returned entry is
/// the one from the list that granted its decisive rank (freshest onion
/// under kMaxRank).  Selected entries start with weight 1 (§3.4.3: initial
/// expertise 1) regardless of the recommender's claimed weight.
std::vector<AgentEntry> rank_and_select(
    const std::vector<std::vector<AgentEntry>>& lists, std::size_t want,
    util::Rng& rng, RankingRule rule = RankingRule::kMaxRank);

/// One collected response to an agent-list request.
struct CollectedList {
  net::NodeIndex responder = net::kInvalidNode;
  std::vector<AgentEntry> entries;
};

/// Runs the token+TTL walk from `requestor` and gathers responses.
/// `list_of(node)` returns the list a node would share (empty = it has
/// none and is not itself an agent → forwards without consuming a token).
/// Request hops travel as kAgentListRequest envelopes and replies as
/// kAgentListReply envelopes through `transport` (both counted under
/// kAgentDiscovery); lossy policies lose token shares and replies.
std::vector<CollectedList> collect_agent_lists(
    net::Transport& transport, util::Rng& rng, net::NodeIndex requestor,
    std::uint32_t tokens, std::uint32_t ttl,
    const std::function<std::vector<AgentEntry>(net::NodeIndex)>& list_of);

}  // namespace hirep::core
