// HirepSystem — the public API facade wiring every substrate together:
// power-law overlay, per-node identities, onion routing, the reputation
// agent community, and the per-transaction hiREP protocol.
//
// Typical use (see examples/quickstart.cpp):
//
//   hirep::core::HirepOptions opts;
//   opts.nodes = 1000;
//   hirep::core::HirepSystem system(opts);
//   auto record = system.run_transaction();
//   // record.estimate vs record.truth_value, record.trust_messages, ...
//
// Crypto modes: kFull runs every onion layer, signature and encryption for
// real; kFast executes the identical protocol/state machine and counts the
// identical messages but skips the cipher work (large parameter sweeps).
//
// Scale engine: run_transactions() executes a pre-drawn batch of
// requestor/provider pairs in conflict-free waves on a thread pool.  Every
// transaction owns a deterministic RNG stream derived from (seed, index),
// so serial and parallel execution produce byte-identical records; see
// DESIGN.md §9 for the batching rule and the determinism argument.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "hirep/agent.hpp"
#include "hirep/discovery.hpp"
#include "hirep/execution.hpp"
#include "hirep/peer.hpp"
#include "hirep/protocol.hpp"
#include "net/overlay.hpp"
#include "net/reliable.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "onion/router.hpp"
#include "trust/ground_truth.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace hirep::core {

enum class CryptoMode {
  kFull,  ///< real RSA/onion work end to end
  kFast   ///< same protocol flow + message counts, ciphers skipped
};

struct HirepOptions {
  std::size_t nodes = 1000;        ///< network size (Table 1)
  double average_degree = 4.0;     ///< neighbors per node (Table 1)
  unsigned rsa_bits = 128;         ///< RSA modulus size (scale up at will)
  std::size_t trusted_agents = 10; ///< c — trusted agents per peer (Table 1)
  std::size_t onion_relays = 5;    ///< o — relays per onion (Table 1)
  std::uint32_t discovery_tokens = 10;  ///< token number (Table 1)
  std::uint32_t discovery_ttl = 7;      ///< agent-list request TTL (§3.4.1)
  double expertise_alpha = 0.3;    ///< EWMA alpha for agent expertise
  double eviction_threshold = 0.4; ///< hirep-4/6/8 = 0.4/0.6/0.8 (Figure 6)
  double refill_fraction = 0.5;    ///< refill when list < fraction*capacity
  std::size_t backup_capacity = 20;
  std::size_t provider_candidates = 1;  ///< candidates per query (paper: 1)
  std::string agent_model = "ewma";     ///< agent-side computation model
  /// Reports a good agent needs about a subject before it answers from its
  /// computation model instead of its own evaluation (§4.2.3).
  std::size_t min_reports_for_model = 1;
  CryptoMode crypto = CryptoMode::kFull;
  /// How protocol envelopes are delivered (instant / latency / faulty).
  net::DeliveryConfig delivery;
  /// Retry discipline for request/response traffic (trust requests,
  /// responses, reports, §3.4.3 probes).  The zero-retry default is
  /// call-for-call identical to bare transport sends, so it cannot perturb
  /// a single golden bit.
  net::ReliablePolicy reliable;
  /// §3.4.3 hardening: when the community gives up on an unresponsive
  /// agent, and when a query degrades to first-hand trust.
  struct RecoveryOptions {
    /// Consecutive failed exchanges (any requestor) before an agent is
    /// quarantined; re-entry then requires a fresh successful probe.
    std::uint32_t suspicion_threshold = 3;
    /// Degrade a query to local first-hand trust when fewer live agent
    /// ratings than this arrive; 0 disables degradation.
    std::size_t min_quorum = 0;
  };
  RecoveryOptions recovery;
  trust::WorldParams world;        ///< .nodes is overridden by `nodes`
  net::LatencyParams latency;
  std::uint64_t seed = 1;
};

class HirepSystem {
 public:
  explicit HirepSystem(HirepOptions options);

  const HirepOptions& options() const noexcept { return options_; }
  net::Overlay& overlay() noexcept { return overlay_; }
  const net::Overlay& overlay() const noexcept { return overlay_; }
  trust::GroundTruth& truth() noexcept { return truth_; }
  const trust::GroundTruth& truth() const noexcept { return truth_; }
  onion::Router& router() noexcept { return router_; }
  /// The typed message path every protocol interaction travels through.
  net::Transport& transport() noexcept { return transport_; }
  const net::Transport& transport() const noexcept { return transport_; }
  util::Rng& rng() noexcept { return rng_; }

  std::size_t node_count() const noexcept { return peers_.size(); }
  Peer& peer(net::NodeIndex v) { return peers_.at(v); }
  const Peer& peer(net::NodeIndex v) const { return peers_.at(v); }
  /// nullptr when node v is not a reputation agent.
  ReputationAgent* agent_at(net::NodeIndex v);
  std::size_t agent_count() const noexcept { return agent_count_; }
  /// A deque so references stay stable while peers join a running system.
  const std::deque<crypto::Identity>& identities() const noexcept {
    return identities_;
  }
  /// Reverse lookup nodeId -> overlay index (simulation-side only).
  std::optional<net::NodeIndex> ip_of(const crypto::NodeId& id) const;

  // -- agent community ------------------------------------------------------

  /// True when the node is a live reputation agent.
  bool agent_online(net::NodeIndex v) const;
  /// Takes an agent down / brings it back (churn & DoS experiments).
  void set_agent_online(net::NodeIndex v, bool online);

  /// True when the community currently quarantines agent v (too many
  /// consecutive failed exchanges; lifted only by a successful probe).
  bool agent_quarantined(net::NodeIndex v) const;
  /// Test/chaos hook: places agent v straight into quarantine.
  void quarantine_agent(net::NodeIndex v);

  /// The retry channel request/response traffic travels through.
  net::ReliableChannel& reliable() noexcept { return reliable_; }
  const net::ReliableChannel& reliable() const noexcept { return reliable_; }

  /// Failover bookkeeping, mirrored into the obs registry under
  /// hirep.recovery.* at count time.
  struct RecoveryCounters {
    std::uint64_t suspicions = 0;         ///< failed exchanges observed
    std::uint64_t quarantines = 0;        ///< agents placed in quarantine
    std::uint64_t probations_cleared = 0; ///< quarantines lifted by a probe
    std::uint64_t backup_promotions = 0;  ///< backup entries probed back in
    std::uint64_t rediscoveries = 0;      ///< refills that fell through to discovery
    std::uint64_t degraded_queries = 0;   ///< queries under the quorum floor
  };
  RecoveryCounters recovery_counters() const;

  /// The trusted-agent list a node shares with discovery requests; an agent
  /// with no list of its own answers with its self-entry (§3.4.1).
  std::vector<AgentEntry> shareable_list(net::NodeIndex v);

  /// Runs the token+TTL discovery walk for `peer_ip` and installs up to
  /// (capacity - current) newly selected agents.  Returns agents added.
  std::size_t discover_agents(net::NodeIndex peer_ip);

  /// §3.4.3 maintenance: probe the backup cache first, then re-discover.
  void refill(net::NodeIndex peer_ip);

  /// Open membership: a brand-new peer joins the RUNNING system — fresh
  /// identity (two key pairs), preferential-attachment links into the
  /// overlay, verified onion relays, agent-capability roll, and the
  /// §3.4.1 trusted-agent discovery.  Returns the new node's index.
  net::NodeIndex join_peer();

  /// §3.5 key rotation: peer v generates a fresh signature key pair and
  /// sends the old-key-signed announcement to every agent that knows it
  /// (via the freshest onions, as the paper prescribes).  Agents verify
  /// the announcement and migrate the public-key-list entry, so the peer
  /// keeps its standing under the new nodeId.  Returns the new nodeId.
  crypto::NodeId rotate_peer_key(net::NodeIndex v);

  // -- protocol -------------------------------------------------------------

  struct AgentRating {
    crypto::NodeId agent;
    double value = 0.0;
    double weight = 0.0;
  };
  struct QueryResult {
    double estimate = 0.5;
    std::vector<AgentRating> ratings;
    std::size_t contacted = 0;  ///< online agents queried
    /// Fewer live ratings than options.recovery.min_quorum arrived and the
    /// estimate fell back to (or blended with) local first-hand trust.
    bool degraded = false;
  };
  /// Full trust-value query: request -> every trusted agent -> responses,
  /// expertise-weighted aggregation.  Offline agents fall to backup.
  QueryResult query_trust(net::NodeIndex requestor_ip,
                          net::NodeIndex subject_ip);

  struct TransactionRecord {
    net::NodeIndex requestor = net::kInvalidNode;
    net::NodeIndex provider = net::kInvalidNode;
    double estimate = 0.5;     ///< aggregated pre-transaction trust estimate
    double truth_value = 0.0;  ///< the provider's true trust (0/1)
    double outcome = 0.0;      ///< observed transaction result
    std::size_t responses = 0; ///< agent ratings received
    std::uint64_t trust_messages = 0;  ///< messages this transaction spent
  };
  /// One full transaction between random peers (paper §3.6): query,
  /// download, expertise update, signed reports, maintenance.
  TransactionRecord run_transaction();
  TransactionRecord run_transaction(net::NodeIndex requestor,
                                    net::NodeIndex provider);

  /// Scale engine: executes a pre-drawn batch of requestor/provider pairs
  /// with the same per-transaction semantics as run_transaction(r, p).
  ///
  /// Each transaction draws from its own RNG stream derived from
  /// (options.seed, lifetime transaction index), never from rng(), so the
  /// result is a pure function of the transaction sequence: serial,
  /// parallel, and sharded execution return byte-identical records, and
  /// splitting a sequence into consecutive batches (checkpointed
  /// experiments) yields the same records as one big batch.  Execution
  /// proceeds in conflict-free prefix waves — transactions run
  /// concurrently while their requestor/provider nodes are all distinct,
  /// capped at exec.wave_window per wave — and §3.4.3 refills are deferred
  /// to each wave's barrier, serial in transaction order.
  ///
  /// Under ExecutionMode::kSharded, agents are partitioned into
  /// exec.shards shards by node index; each wave splits by the requestor's
  /// home shard, shards execute their slices on their own transport
  /// lane/arena/event queue, and cross-shard report envelopes are
  /// exchanged deterministically at the wave barrier (DESIGN.md §14).
  ///
  /// Throws std::invalid_argument on an out-of-range or requestor==provider
  /// pair, and when exec is concurrent while the delivery policy is not
  /// instant (lossy/delayed transports are inherently order-dependent).
  std::vector<TransactionRecord> run_transactions(
      std::span<const std::pair<net::NodeIndex, net::NodeIndex>> pairs,
      const Executor& exec = {});

  /// Second half of a transaction when the trust query already happened
  /// (e.g. the requestor compared several QueryHit candidates): download,
  /// expertise update, signed reports, maintenance.  `query` must be the
  /// result of query_trust(requestor, provider).  trust_messages covers
  /// only this call's traffic (the caller already paid for the query).
  TransactionRecord complete_transaction(net::NodeIndex requestor,
                                         net::NodeIndex provider,
                                         const QueryResult& query);

  /// Trust-related message count so far (requests+responses+reports+relay).
  std::uint64_t trust_message_total() const;

 private:
  /// Community-side failure bookkeeping for one agent.  Atomics (not the
  /// agent mutex): engine lanes note failures for shared agents
  /// concurrently, and increments/threshold-crossings commute, so the
  /// post-wave state is scheduling-independent.  Heap-allocated to keep
  /// AgentRuntime movable.
  struct AgentRecovery {
    std::atomic<std::uint32_t> suspicion{0};  ///< consecutive failures
    std::atomic<bool> quarantined{false};
  };

  struct AgentRuntime {
    std::unique_ptr<ReputationAgent> agent;  ///< null: node is not an agent
    std::vector<onion::RelayInfo> relays;
    /// Serializes agent-side mutation when engine waves share the agent
    /// (requestors/providers are exclusive per wave; agents are not).
    /// Allocated only for actual agents; unique_ptr keeps Runtime movable.
    std::unique_ptr<util::Mutex> mu;
    std::unique_ptr<AgentRecovery> recovery;  ///< allocated for agents only
  };

  /// A resolved agent: the runtime record plus its overlay index, from one
  /// nodeId binary search (the old runtime_of + ip_of pair cost two).
  struct AgentRef {
    AgentRuntime* rt = nullptr;  ///< null: unknown id or not an agent
    net::NodeIndex ip = net::kInvalidNode;  ///< set for any known id
    explicit operator bool() const noexcept { return rt != nullptr; }
  };
  AgentRef resolve_agent(const crypto::NodeId& id);
  AgentRuntime* runtime_of(const crypto::NodeId& id) {
    return resolve_agent(id).rt;
  }
  /// Installs agent state for node v (relays shared with its peer).
  void make_agent(net::NodeIndex v, const crypto::Identity* identity);

  /// One report whose wire delivery already happened on the sending shard's
  /// lane but whose agent-state application crosses a shard boundary.
  /// Collected per shard during a wave and replayed at the barrier in
  /// serial transaction order (DESIGN.md §14).  An empty `wire` marks a
  /// fast-crypto report (subject + outcome applied directly); a non-empty
  /// `wire` is a full-crypto TransactionReport envelope payload that still
  /// needs lookup_key / verify / accept at the receiving agent.
  struct DeferredReport {
    std::uint64_t txn = 0;          ///< lifetime transaction index
    net::NodeIndex agent_ip = net::kInvalidNode;
    crypto::NodeId subject{};
    double outcome = 0.0;
    util::Bytes wire;
  };

  /// Everything one in-flight transaction threads through the protocol
  /// stack: its RNG stream, the transport lane it sends on, pre-reserved
  /// onion sequence numbers, and its own message/maintenance accounting.
  struct TxnCtx {
    util::Rng* rng = nullptr;
    net::Transport* transport = nullptr;
    /// Retry channel over `transport`; carries trust requests/responses,
    /// reports, and §3.4.3 probes (discovery walks and key handshakes stay
    /// on the bare transport — they are not request/response exchanges).
    net::ReliableChannel* channel = nullptr;
    /// Onion sequence numbers reserved serially at wave formation (instant
    /// delivery only); consumed in issue order by issue_agent_onion.
    const std::vector<std::uint64_t>* reserved_sqs = nullptr;
    std::size_t reserved_cursor = 0;
    /// Transmissions under kTrustRequest/kTrustResponse/kReport kinds —
    /// the same buckets trust_message_total() sums globally.
    std::uint64_t trust_messages = 0;
    /// Engine mode: record that a refill is due instead of running it
    /// inside the wave (it mutates shared discovery state).
    bool defer_refill = false;
    bool wants_refill = false;
    // Sharded engine (DESIGN.md §14): agents are partitioned by
    // `node index % shard_count`.  A report whose receiving agent lives on
    // a foreign shard is sent on this shard's lane (wire traffic and
    // message accounting stay local) but its state application is queued
    // into `report_outbox` and replayed at the wave barrier.
    std::size_t shard_count = 1;
    std::size_t home_shard = 0;
    std::uint64_t txn_index = 0;       ///< lifetime index, for barrier ordering
    std::vector<DeferredReport>* report_outbox = nullptr;
  };
  TxnCtx legacy_ctx() noexcept { return TxnCtx{&rng_, &transport_, &reliable_}; }
  /// The (seed, index)-derived RNG stream for lifetime transaction `index`.
  util::Rng txn_stream(std::uint64_t index) const;

  /// Full-crypto envelope routing: enumerates the onion's relay hops
  /// (Router::peel_path) and carries `wire` along them through the
  /// transport, so drops/delays/duplication apply per hop.
  struct RoutedEnvelope {
    bool delivered = false;
    net::NodeIndex destination = net::kInvalidNode;
    util::Bytes payload;
  };
  RoutedEnvelope route_envelope(TxnCtx& ctx, net::NodeIndex sender,
                                const onion::Onion& onion, util::Bytes wire,
                                net::EnvelopeType type);

  onion::Onion issue_agent_onion(TxnCtx& ctx, net::NodeIndex agent_ip,
                                 AgentRuntime& rt);
  AgentEntry self_entry(TxnCtx& ctx, net::NodeIndex agent_ip, AgentRuntime& rt);
  std::vector<AgentEntry> shareable_list(TxnCtx& ctx, net::NodeIndex v);
  std::size_t discover_agents(TxnCtx& ctx, net::NodeIndex peer_ip);
  void refill(TxnCtx& ctx, net::NodeIndex peer_ip);
  std::vector<onion::RelayInfo> pick_and_verify_relays(net::NodeIndex owner);
  std::vector<net::NodeIndex> path_of(const std::vector<onion::RelayInfo>& relays,
                                      net::NodeIndex owner) const;

  /// Runs one request/response round with a single agent entry; returns the
  /// rating, or nullopt when the agent is offline/unreachable (the entry is
  /// then handled per §3.4.3).  Updates entry.onion to the fresh Onion_e.
  std::optional<double> exchange_with_agent(TxnCtx& ctx, Peer& requestor,
                                            AgentEntry& entry,
                                            net::NodeIndex subject_ip,
                                            const crypto::NodeId& subject_id);

  void send_report(TxnCtx& ctx, Peer& reporter, AgentEntry& entry,
                   const crypto::NodeId& subject_id, double outcome);

  /// True when ctx runs sharded and the receiving agent lives on a foreign
  /// shard — its state application must be queued, not run inline.
  static bool defer_cross_shard(const TxnCtx& ctx, net::NodeIndex agent_ip) {
    return ctx.report_outbox != nullptr &&
           agent_ip % ctx.shard_count != ctx.home_shard;
  }
  /// Replays one cross-shard report at the wave barrier: fast-crypto
  /// reports apply subject+outcome under the agent mutex; full-crypto
  /// reports run the receiving agent's lookup_key / verify / accept path.
  void apply_deferred_report(const DeferredReport& dr);

  /// Fast-crypto §3.6 fan-out: all of one transaction's reports in one
  /// envelope batch through ctx.channel.
  void report_batch(TxnCtx& ctx, Peer& reporter,
                    const crypto::NodeId& subject_id, double outcome);

  /// Suspicion ladder: a failed exchange bumps the agent's counter and
  /// quarantines it at the threshold; a success resets the counter.
  void note_exchange_failure(AgentRuntime& rt);
  void note_exchange_success(AgentRuntime& rt);
  /// Single admission point for trusted-list entries; runs the
  /// hirep.quarantine.fresh_probe gate (a quarantined agent may only enter
  /// via a fresh successful probe).
  bool admit_entry(Peer& p, AgentEntry entry, bool fresh_probe);

  QueryResult query_trust(TxnCtx& ctx, net::NodeIndex requestor_ip,
                          net::NodeIndex subject_ip);
  TransactionRecord complete_transaction(TxnCtx& ctx, net::NodeIndex requestor,
                                         net::NodeIndex provider,
                                         const QueryResult& query);

  HirepOptions options_;
  util::Rng rng_;
  trust::GroundTruth truth_;
  net::Overlay overlay_;
  net::Transport transport_;
  net::ReliableChannel reliable_;  ///< retry channel over transport_
  std::deque<crypto::Identity> identities_;  // reference-stable on growth
  onion::Router router_;
  std::vector<Peer> peers_;
  /// Flat agent storage, one slot per node (agent == nullptr for non-agent
  /// nodes): index-based hot-path lookups instead of map pointer chasing.
  std::vector<AgentRuntime> agent_runtimes_;
  /// SoA per-node engine state, split out of AgentRuntime so the scale
  /// engine's hottest scans (liveness checks, sq reservation) touch two
  /// dense arrays instead of striding 100+-byte runtime records.
  std::vector<std::uint64_t> agent_sq_;    ///< next onion sequence number
  std::vector<std::uint8_t> agent_online_; ///< 1 = live agent (0 otherwise)
  std::size_t agent_count_ = 0;
  /// Reverse nodeId -> index mapping as a sorted flat vector (binary
  /// search); rebuilt incrementally on join/rotation.
  std::vector<std::pair<crypto::NodeId, net::NodeIndex>> id_to_ip_;

  // -- scale-engine state ---------------------------------------------------
  std::uint64_t txn_counter_ = 0;  ///< lifetime transactions batched so far
  /// Stream for deferred §3.4.3 maintenance (separate salt, so refills do
  /// not perturb any transaction's stream); created on first batch.
  std::optional<util::Rng> maintenance_rng_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< lazily created, persistent
  /// One transport lane per worker, all over the shared overlay; envelope
  /// counters fold back into transport_ at each wave barrier.
  std::vector<std::unique_ptr<net::Transport>> lanes_;
  /// One retry channel per lane (jitter streams stay per-lane).
  std::vector<std::unique_ptr<net::ReliableChannel>> lane_channels_;

  /// Failover tallies; atomics because lanes note failures concurrently.
  struct RecoveryTallies {
    std::atomic<std::uint64_t> suspicions{0};
    std::atomic<std::uint64_t> quarantines{0};
    std::atomic<std::uint64_t> probations_cleared{0};
    std::atomic<std::uint64_t> backup_promotions{0};
    std::atomic<std::uint64_t> rediscoveries{0};
    std::atomic<std::uint64_t> degraded_queries{0};
  };
  RecoveryTallies recovery_tallies_;
};

}  // namespace hirep::core
