// hiREP wire protocol (paper §3.5).
//
//   trust value request   { SP_e(R),  SP_p, Onion_p }   R = {subject, nonce}
//   trust value response  { SP_p(T),  SP_e, Onion_e }   T = {value, nonce}
//   transaction report    ( SR_p(result, nonce), nodeId_p )
//
// All three give voter anonymity (carried inside onions; identities hidden
// from relays and from each other's transport address) and authenticity
// (encryption to the recipient's public key; reports signed with the
// reporter's private key, verifiable against its nodeId-bound SP).
#pragma once

#include <optional>

#include "crypto/identity.hpp"
#include "onion/onion.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace hirep::core {

struct TrustValueRequest {
  util::Bytes encrypted;       ///< SP_e( subject nodeId, nonce )
  crypto::RsaPublicKey sp_p;   ///< requestor's signature public key
  onion::Onion reply_onion;    ///< Onion_p — path back to the requestor

  util::Bytes serialize() const;
  static std::optional<TrustValueRequest> deserialize(
      std::span<const std::uint8_t> data);
};

struct TrustValueResponse {
  util::Bytes encrypted;       ///< SP_p( trust value, nonce )
  crypto::RsaPublicKey sp_e;   ///< agent's signature public key
  onion::Onion report_onion;   ///< fresh Onion_e for the next report

  util::Bytes serialize() const;
  static std::optional<TrustValueResponse> deserialize(
      std::span<const std::uint8_t> data);
};

struct TransactionReport {
  crypto::NodeId reporter;     ///< nodeId_p — lets the agent find SP_p
  util::Bytes body;            ///< (subject nodeId, outcome, nonce)
  util::Bytes signature;       ///< SR_p over body

  util::Bytes serialize() const;
  static std::optional<TransactionReport> deserialize(
      std::span<const std::uint8_t> data);
};

// --- requestor side -------------------------------------------------------

TrustValueRequest build_trust_request(util::Rng& rng,
                                      const crypto::RsaPublicKey& agent_sp,
                                      const crypto::Identity& requestor,
                                      const crypto::NodeId& subject,
                                      std::uint64_t nonce,
                                      onion::Onion reply_onion);

struct OpenedResponse {
  double value = 0.0;
  std::uint64_t nonce = 0;
};
/// Decrypts a response with the requestor's private key; the caller must
/// check the nonce against the one it issued.
std::optional<OpenedResponse> open_trust_response(
    const crypto::Identity& requestor, const TrustValueResponse& response);

TransactionReport build_report(const crypto::Identity& reporter,
                               const crypto::NodeId& subject, double outcome,
                               std::uint64_t nonce);

// --- agent side -----------------------------------------------------------

struct OpenedRequest {
  crypto::NodeId subject;
  std::uint64_t nonce = 0;
};
/// Decrypts a request with the agent's private key; nullopt when the
/// request is not addressed to this agent or malformed.
std::optional<OpenedRequest> open_trust_request(const crypto::Identity& agent,
                                                const TrustValueRequest& request);

TrustValueResponse build_trust_response(util::Rng& rng,
                                        const crypto::RsaPublicKey& requestor_sp,
                                        const crypto::Identity& agent,
                                        double value, std::uint64_t nonce,
                                        onion::Onion report_onion);

struct OpenedReport {
  crypto::NodeId subject;
  double outcome = 0.0;
  std::uint64_t nonce = 0;
};
/// Verifies the reporter's signature against `reporter_sp` (which the agent
/// looked up by nodeId) and parses the body.  "If the result cannot be
/// decrypted, the message will be dropped" (§3.5.3) → nullopt.
std::optional<OpenedReport> verify_report(const crypto::RsaPublicKey& reporter_sp,
                                          const TransactionReport& report);

}  // namespace hirep::core
