#include "hirep/protocol.hpp"

#include <algorithm>

#include "check/invariants.hpp"
#include "crypto/verify_cache.hpp"

namespace hirep::core {

namespace {

constexpr std::uint8_t kTagRequestBody = 0x21;
constexpr std::uint8_t kTagResponseBody = 0x22;
constexpr std::uint8_t kTagReportBody = 0x23;

void write_node_id(util::ByteWriter& w, const crypto::NodeId& id) {
  w.raw(id.bytes);
}

crypto::NodeId read_node_id(util::ByteReader& r) {
  const auto raw = r.raw(crypto::Sha1::kDigestSize);
  crypto::NodeId id;
  std::copy(raw.begin(), raw.end(), id.bytes.begin());
  return id;
}

}  // namespace

util::Bytes TrustValueRequest::serialize() const {
  util::ByteWriter w;
  w.blob(encrypted);
  w.blob(sp_p.serialize());
  w.blob(reply_onion.serialize());
  return w.take();
}

std::optional<TrustValueRequest> TrustValueRequest::deserialize(
    std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    TrustValueRequest req;
    req.encrypted = r.blob();
    req.sp_p = crypto::RsaPublicKey::deserialize(r.blob());
    auto onion = onion::Onion::deserialize(r.blob());
    if (!onion || !r.done()) return std::nullopt;
    req.reply_onion = std::move(*onion);
    return req;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

util::Bytes TrustValueResponse::serialize() const {
  util::ByteWriter w;
  w.blob(encrypted);
  w.blob(sp_e.serialize());
  w.blob(report_onion.serialize());
  return w.take();
}

std::optional<TrustValueResponse> TrustValueResponse::deserialize(
    std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    TrustValueResponse resp;
    resp.encrypted = r.blob();
    resp.sp_e = crypto::RsaPublicKey::deserialize(r.blob());
    auto onion = onion::Onion::deserialize(r.blob());
    if (!onion || !r.done()) return std::nullopt;
    resp.report_onion = std::move(*onion);
    return resp;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

util::Bytes TransactionReport::serialize() const {
  util::ByteWriter w;
  write_node_id(w, reporter);
  w.blob(body);
  w.blob(signature);
  return w.take();
}

std::optional<TransactionReport> TransactionReport::deserialize(
    std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    TransactionReport rep;
    rep.reporter = read_node_id(r);
    rep.body = r.blob();
    rep.signature = r.blob();
    if (!r.done()) return std::nullopt;
    return rep;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

TrustValueRequest build_trust_request(util::Rng& rng,
                                      const crypto::RsaPublicKey& agent_sp,
                                      const crypto::Identity& requestor,
                                      const crypto::NodeId& subject,
                                      std::uint64_t nonce,
                                      onion::Onion reply_onion) {
  util::ByteWriter body;
  body.u8(kTagRequestBody);
  write_node_id(body, subject);
  body.u64(nonce);
  TrustValueRequest req;
  req.encrypted = crypto::rsa_encrypt_bytes(rng, agent_sp, body.bytes());
  req.sp_p = requestor.signature_public();
  req.reply_onion = std::move(reply_onion);
  return req;
}

std::optional<OpenedRequest> open_trust_request(const crypto::Identity& agent,
                                                const TrustValueRequest& request) {
  const auto plain =
      crypto::rsa_decrypt_bytes(agent.signature_private(), request.encrypted);
  if (!plain) return std::nullopt;
  try {
    util::ByteReader r(*plain);
    if (r.u8() != kTagRequestBody) return std::nullopt;
    OpenedRequest opened;
    opened.subject = read_node_id(r);
    opened.nonce = r.u64();
    if (!r.done()) return std::nullopt;
    return opened;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

TrustValueResponse build_trust_response(util::Rng& rng,
                                        const crypto::RsaPublicKey& requestor_sp,
                                        const crypto::Identity& agent,
                                        double value, std::uint64_t nonce,
                                        onion::Onion report_onion) {
  util::ByteWriter body;
  body.u8(kTagResponseBody);
  body.f64(value);
  body.u64(nonce);
  TrustValueResponse resp;
  resp.encrypted = crypto::rsa_encrypt_bytes(rng, requestor_sp, body.bytes());
  resp.sp_e = agent.signature_public();
  resp.report_onion = std::move(report_onion);
  return resp;
}

std::optional<OpenedResponse> open_trust_response(
    const crypto::Identity& requestor, const TrustValueResponse& response) {
  const auto plain = crypto::rsa_decrypt_bytes(requestor.signature_private(),
                                               response.encrypted);
  if (!plain) return std::nullopt;
  try {
    util::ByteReader r(*plain);
    if (r.u8() != kTagResponseBody) return std::nullopt;
    OpenedResponse opened;
    opened.value = r.f64();
    opened.nonce = r.u64();
    if (!r.done()) return std::nullopt;
    return opened;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

TransactionReport build_report(const crypto::Identity& reporter,
                               const crypto::NodeId& subject, double outcome,
                               std::uint64_t nonce) {
  util::ByteWriter body;
  body.u8(kTagReportBody);
  write_node_id(body, subject);
  body.f64(outcome);
  body.u64(nonce);
  TransactionReport report;
  report.reporter = reporter.node_id();
  report.body = body.take();
  report.signature = reporter.sign(report.body);
  return report;
}

std::optional<OpenedReport> verify_report(const crypto::RsaPublicKey& reporter_sp,
                                          const TransactionReport& report) {
  if (!crypto::verify_cached(reporter_sp, report.body, report.signature)) {
    return std::nullopt;
  }
  if constexpr (check::kEnabled) {
    // The signature verified, so the message is about to be accepted; the
    // self-certifying invariant requires the key it verified under to hash
    // to the reporter id the message claims (§3.3).
    check::binding("protocol.report.binding",
                   crypto::node_id_of_cached(reporter_sp) == report.reporter,
                   crypto::NodeIdHash{}(report.reporter));
  }
  try {
    util::ByteReader r(report.body);
    if (r.u8() != kTagReportBody) return std::nullopt;
    OpenedReport opened;
    opened.subject = read_node_id(r);
    opened.outcome = r.f64();
    opened.nonce = r.u64();
    if (!r.done()) return std::nullopt;
    return opened;
  } catch (const util::TruncatedInput&) {
    return std::nullopt;
  }
}

}  // namespace hirep::core
