#include "util/thread_pool.hpp"

#include <algorithm>

namespace hirep::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  std::queue<std::function<void()>> discarded;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    // Queued-but-unstarted tasks are discarded, not run: a task that blocks
    // (or re-submits) must not be able to wedge teardown.  In-flight tasks
    // finish; the abandoned packaged_tasks surface broken_promise to any
    // future still being waited on.
    discarded.swap(queue_);
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  // `discarded` destructs here, after every worker has exited.
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Spelled-out condition loop (not a predicate lambda) so the
      // thread-safety analysis sees the guarded reads under mu_.
      while (!stopping_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  // Drain every task before rethrowing: queued tasks hold a reference to
  // `fn`, so returning on the first failure would let workers run against a
  // dead frame.  The first exception (in index order) wins.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace hirep::util
