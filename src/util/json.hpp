// Minimal JSON emission + validation (hirep::util).
//
// The bench harness writes machine-readable BENCH_*.json artifacts
// (see sim/bench_json.hpp); this module is the serialisation substrate.
// Scope is deliberately small: a streaming writer with stable key order
// and deterministic number formatting (so artifacts diff cleanly across
// runs), plus a recursive-descent validator used by tests and
// scripts/bench.sh to reject malformed output early.  It is not a DOM
// parser — nothing in the repo needs to *read* JSON.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hirep::util {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).  Control characters use \u00XX form.
std::string json_escape(std::string_view s);

/// Formats a finite double with the shortest representation that
/// round-trips (std::to_chars); NaN/Inf are not representable in JSON and
/// are emitted as null by JsonWriter.
std::string json_number(double value);

/// Streaming JSON writer producing a 2-space-indented document with keys
/// in insertion order.  Usage errors (value without key inside an object,
/// unbalanced end_*) throw std::logic_error — they are programmer bugs,
/// not data errors.
class JsonWriter {
 public:
  JsonWriter() = default;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key for the next value; only valid inside an object.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null_value();

  /// The document so far.  Call after the outermost end_*.
  const std::string& str() const { return out_; }

 private:
  enum class Scope { kObject, kArray };
  void before_value();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  // per open scope
  bool key_pending_ = false;

  void newline_indent();
};

/// True when `text` is one complete, well-formed JSON value (any type)
/// with nothing but whitespace around it.  On failure, if `error` is
/// non-null it receives a short message with a byte offset.
bool json_valid(std::string_view text, std::string* error = nullptr);

}  // namespace hirep::util
