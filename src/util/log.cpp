#include "util/log.hpp"

#include <iostream>
#include <stdexcept>

namespace hirep::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  std::cerr << '[' << to_string(level) << "] [" << component << "] " << message
            << '\n';
}

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level: " + name);
}

}  // namespace hirep::util
