// Console table / CSV emission for the benchmark harness.  Every figure
// bench prints one Table: a header row, one row per x-value, one column per
// series — the same rows/series the paper's exhibit reports.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace hirep::util {

class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  explicit Table(std::vector<std::string> columns);

  void add_row(std::vector<Cell> cells);
  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return columns_.size(); }

  /// Numeric value at (row, col); throws std::out_of_range / bad access on
  /// string cells.
  double number_at(std::size_t row, std::size_t col) const;

  /// Raw cell at (row, col) with its original type (string/double/int64);
  /// throws std::out_of_range when out of bounds.  Used by the bench JSON
  /// serialiser, which must not coerce string cells.
  const Cell& cell_at(std::size_t row, std::size_t col) const {
    return rows_.at(row).at(col);
  }

  /// Column values as doubles (string cells are skipped).
  std::vector<double> numeric_column(std::size_t col) const;
  std::vector<double> numeric_column(const std::string& name) const;

  std::size_t column_index(const std::string& name) const;

  /// Pretty fixed-width rendering for terminals.
  void print(std::ostream& out) const;
  /// RFC-4180-ish CSV.
  void print_csv(std::ostream& out) const;

  const std::vector<std::string>& header() const noexcept { return columns_; }

 private:
  static std::string to_string(const Cell& c);
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace hirep::util
