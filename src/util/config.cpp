#include "util/config.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace hirep::util {

void Config::insert(const std::string& token) {
  if (token == "--help" || token == "-h") {
    help_ = true;
    return;
  }
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("expected key=value, got: " + token);
  }
  values_[token.substr(0, eq)] = token.substr(eq + 1);
}

Config Config::from_args(int argc, const char* const* argv) {
  Config c;
  for (int i = 1; i < argc; ++i) c.insert(argv[i]);
  return c;
}

Config Config::from_string(const std::string& text) {
  Config c;
  std::string token;
  std::istringstream in(text);
  while (in >> token) c.insert(token);
  return c;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Config::get_string(const std::string& key, std::string fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  touched_[key] = true;
  return it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  touched_[key] = true;
  std::size_t pos = 0;
  const std::int64_t v = std::stoll(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument(key + " is not an integer: " + it->second);
  }
  return v;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  touched_[key] = true;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument(key + " is not a number: " + it->second);
  }
  return v;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  touched_[key] = true;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument(key + " is not a bool: " + v);
}

std::vector<double> Config::get_double_list(const std::string& key,
                                            std::vector<double> fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  touched_[key] = true;
  std::vector<double> out;
  std::string item;
  std::istringstream in(it->second);
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stod(item));
  }
  if (out.empty()) {
    throw std::invalid_argument(key + " is an empty list");
  }
  return out;
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : values_) {
    if (!touched_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace hirep::util
