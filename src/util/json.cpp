#include "util/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hirep::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  std::array<char, 64> buf{};
  const auto [ptr, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), value);
  std::string out(buf.data(), ptr);
  // to_chars may produce "1e+20"-style output without a decimal point;
  // that is valid JSON, keep as is.  Integral doubles come out as "42",
  // also valid.
  (void)ec;  // cannot fail with a 64-byte buffer
  return out;
}

void JsonWriter::newline_indent() {
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (!out_.empty()) {
      throw std::logic_error("JsonWriter: multiple top-level values");
    }
    return;
  }
  if (stack_.back() == Scope::kObject) {
    if (!key_pending_) {
      throw std::logic_error("JsonWriter: value inside object requires key()");
    }
    key_pending_ = false;
    return;  // key() already wrote separator + key
  }
  // Array element.
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  newline_indent();
}

void JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Scope::kObject) {
    throw std::logic_error("JsonWriter: key() outside object");
  }
  if (key_pending_) {
    throw std::logic_error("JsonWriter: key() twice without value");
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  newline_indent();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  key_pending_ = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: unbalanced end_object()");
  }
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  out_ += '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: unbalanced end_array()");
  }
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  out_ += ']';
}

void JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
    return;
  }
  out_ += json_number(v);
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::null_value() {
  before_value();
  out_ += "null";
}

// ---------------------------------------------------------------------------
// Validator: recursive-descent over the JSON grammar (RFC 8259).
// ---------------------------------------------------------------------------

namespace {

class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!parse_value()) {
      if (error) *error = message_ + " at byte " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error) {
        *error = "trailing characters at byte " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_;
  int depth_ = 0;
  static constexpr int kMaxDepth = 256;

  bool fail(std::string msg) {
    if (message_.empty()) message_ = std::move(msg);
    return false;
  }
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value() {
    if (eof()) return fail("unexpected end of input");
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    bool ok = false;
    switch (peek()) {
      case '{': ok = parse_object(); break;
      case '[': ok = parse_array(); break;
      case '"': ok = parse_string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = parse_number(); break;
    }
    --depth_;
    return ok;
  }

  bool parse_object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      if (!parse_string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string() {
    ++pos_;  // '"'
    while (!eof()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("dangling escape");
        const char esc = text_[pos_];
        switch (esc) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            ++pos_;
            break;
          case 'u': {
            ++pos_;
            for (int i = 0; i < 4; ++i) {
              if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
                return fail("bad \\u escape");
              }
              ++pos_;
            }
            break;
          }
          default:
            return fail("bad escape character");
        }
        continue;
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("invalid number");
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required after '.'");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digit required in exponent");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }
};

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
  return Validator(text).run(error);
}

}  // namespace hirep::util
