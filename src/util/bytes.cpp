#include "util/bytes.hpp"

#include <bit>
#include <cstring>

namespace hirep::util {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  static_assert(sizeof(double) == 8);
  u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::blob(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void ByteWriter::str(const std::string& s) {
  blob(std::span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes ByteReader::blob() {
  const std::uint32_t n = u32();
  return raw(n);
}

std::string ByteReader::str() {
  const Bytes b = blob();
  return std::string(b.begin(), b.end());
}

bool ct_equal(std::span<const std::uint8_t> a,
              std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Bytes from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("odd hex length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("non-hex character");
  };
  Bytes out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                       nibble(hex[2 * i + 1]));
  }
  return out;
}

}  // namespace hirep::util
