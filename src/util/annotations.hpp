// Clang thread-safety-analysis capability annotations (DESIGN.md §12.2).
//
// Every shared mutable structure in the tree declares its lock discipline
// with these macros so `clang -Wthread-safety -Wthread-safety-beta`
// verifies, at compile time, what TSan can only observe dynamically: a
// guarded field is never touched without its capability held.  The build
// gate is the HIREP_THREAD_SAFETY CMake option (scripts/lint.sh runs it
// whenever a clang toolchain is available; the CI `lint` job always does).
//
// Under GCC — which has no thread-safety analysis — every macro expands to
// nothing, so annotations are zero-cost documentation there.  The
// project-specific `hirep-lint` checker (tools/lint) reads the same macros
// textually and enforces a conservative subset (guarded-field-write) on
// every toolchain, clang or not.
//
// libstdc++'s std::mutex carries no capability attributes, which is why
// util/sync.hpp wraps it in an annotated util::Mutex — GUARDED_BY on a
// plain std::mutex would be rejected by -Wthread-safety-attributes.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define HIREP_TSA_HAS_ATTRIBUTE(x) __has_attribute(x)
#else
#define HIREP_TSA_HAS_ATTRIBUTE(x) 0
#endif

#if HIREP_TSA_HAS_ATTRIBUTE(capability)
#define HIREP_TSA(x) __attribute__((x))
#else
#define HIREP_TSA(x)  // not clang: annotations are documentation only
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define HIREP_CAPABILITY(x) HIREP_TSA(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define HIREP_SCOPED_CAPABILITY HIREP_TSA(scoped_lockable)
/// Field may only be touched while `x` is held.
#define HIREP_GUARDED_BY(x) HIREP_TSA(guarded_by(x))
/// Data *pointed to* by this field may only be touched while `x` is held.
#define HIREP_PT_GUARDED_BY(x) HIREP_TSA(pt_guarded_by(x))
/// Caller must hold the listed capabilities when invoking the function.
#define HIREP_REQUIRES(...) HIREP_TSA(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (its own `this` when empty).
#define HIREP_ACQUIRE(...) HIREP_TSA(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities (its own `this` when empty).
#define HIREP_RELEASE(...) HIREP_TSA(release_capability(__VA_ARGS__))
/// Function acquires the capability when it returns `b`.
#define HIREP_TRY_ACQUIRE(b, ...) HIREP_TSA(try_acquire_capability(b, __VA_ARGS__))
/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define HIREP_EXCLUDES(...) HIREP_TSA(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the capability guarding its result.
#define HIREP_RETURN_CAPABILITY(x) HIREP_TSA(lock_returned(x))
/// Escape hatch: the function is exempt from analysis.  Every use must
/// carry a comment explaining why the discipline cannot be expressed.
#define HIREP_NO_THREAD_SAFETY_ANALYSIS HIREP_TSA(no_thread_safety_analysis)
