#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hirep::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table needs >= 1 column");
}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

double Table::number_at(std::size_t row, std::size_t col) const {
  const Cell& c = rows_.at(row).at(col);
  if (const auto* d = std::get_if<double>(&c)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return static_cast<double>(*i);
  throw std::invalid_argument("cell is not numeric");
}

std::vector<double> Table::numeric_column(std::size_t col) const {
  std::vector<double> out;
  out.reserve(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const Cell& c = rows_[r].at(col);
    if (std::holds_alternative<std::string>(c)) continue;
    out.push_back(number_at(r, col));
  }
  return out;
}

std::vector<double> Table::numeric_column(const std::string& name) const {
  return numeric_column(column_index(name));
}

std::size_t Table::column_index(const std::string& name) const {
  const auto it = std::find(columns_.begin(), columns_.end(), name);
  if (it == columns_.end()) throw std::out_of_range("no column named " + name);
  return static_cast<std::size_t>(it - columns_.begin());
}

std::string Table::to_string(const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  std::ostringstream out;
  if (const auto* d = std::get_if<double>(&c)) {
    out << std::fixed << std::setprecision(4) << *d;
  } else {
    out << std::get<std::int64_t>(c);
  }
  return out.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(to_string(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    out << '\n';
  };
  emit(columns_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& r : rendered) emit(r);
}

void Table::print_csv(std::ostream& out) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    return q + "\"";
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << (c ? "," : "") << quote(columns_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << quote(to_string(row[c]));
    }
    out << '\n';
  }
}

}  // namespace hirep::util
