#include "util/rng.hpp"

#include <cmath>

namespace hirep::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  // Xoshiro state must not be all zero; SplitMix64 guarantees that with
  // overwhelming probability, and we re-seed defensively if it happens.
  do {
    std::uint64_t s = seed;
    for (auto& w : state_) w = splitmix64(s);
    ++seed;
  } while (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
           state_[3] == 0);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  // 53 random bits into the mantissa: uniform on [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) noexcept {
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  // Partial Fisher-Yates over an index vector; O(n) setup, O(k) swaps.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  if (k > n) k = n;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + below(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::fork() noexcept {
  return Rng((*this)() ^ 0xa0761d6478bd642fULL);
}

}  // namespace hirep::util
