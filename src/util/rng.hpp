// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in the library draws from an explicitly-passed
// Rng so that a (seed, parameters) pair fully determines a run.  The
// generator is Xoshiro256** seeded through SplitMix64, following the
// reference constructions by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace hirep::util {

/// SplitMix64 step; used to expand a single 64-bit seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Xoshiro256** — fast, high-quality, 256-bit state PRNG.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be used
/// with <random> distributions, though the convenience members below are
/// preferred inside the library (they are reproducible across platforms,
/// unlike libstdc++ distribution implementations).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound) using Lemire's unbiased multiply-shift.
  /// bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;

  /// Normal with given mean/stddev.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derive an independent child generator (for per-thread / per-run use).
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace hirep::util
