// Work-stealing-free, mutex-guarded thread pool for parameter sweeps.
// Each sweep point owns its whole simulated system, so tasks share nothing
// and the pool needs no fancier scheduling (C++ Core Guidelines CP.*: keep
// concurrency simple, no data races by construction).
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace hirep::util {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  /// Finishes in-flight tasks and joins the workers.  Queued-but-unstarted
  /// tasks are discarded — their futures observe broken_promise — so a
  /// blocking or self-resubmitting task can never wedge teardown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mu_);
      if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Every task finishes (or is abandoned by ~ThreadPool) before this
  /// returns; the first exception in index order then rethrows.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ HIREP_GUARDED_BY(mu_);
  bool stopping_ HIREP_GUARDED_BY(mu_) = false;
};

}  // namespace hirep::util
