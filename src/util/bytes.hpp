// Byte-buffer serialization used by the wire-protocol layers (crypto keys,
// onion payloads, hiREP protocol messages).  Little-endian fixed-width
// integers plus length-prefixed blobs; a reader that throws on truncated
// input so malformed packets are rejected loudly.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace hirep::util {

using Bytes = std::vector<std::uint8_t>;

/// Thrown by ByteReader when a packet is shorter than its framing claims.
class TruncatedInput : public std::runtime_error {
 public:
  TruncatedInput() : std::runtime_error("truncated byte stream") {}
};

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  /// Raw bytes, no framing.
  void raw(std::span<const std::uint8_t> data);
  /// u32 length prefix + bytes.
  void blob(std::span<const std::uint8_t> data);
  void str(const std::string& s);

  const Bytes& bytes() const noexcept { return buf_; }
  Bytes take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  Bytes raw(std::size_t n);
  Bytes blob();
  std::string str();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return remaining() == 0; }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw TruncatedInput();
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Constant-time equality, as one would use for MACs/nonces.
bool ct_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) noexcept;

/// Lowercase hex rendering (for nodeIds in logs and examples).
std::string to_hex(std::span<const std::uint8_t> data);

/// Inverse of to_hex; throws std::invalid_argument on odd length/non-hex.
Bytes from_hex(const std::string& hex);

}  // namespace hirep::util
