// Minimal leveled logger.  Simulations are hot loops, so logging is
// compile-time cheap when disabled: callers pass a lambda-free format via
// streaming only when the level is enabled.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace hirep::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log sink (stderr).  Thread-safe.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }
  bool enabled(LogLevel level) const noexcept { return level >= level_; }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

const char* to_string(LogLevel level) noexcept;

/// Parse "debug", "info", ... (case-sensitive); throws on unknown names.
LogLevel parse_log_level(const std::string& name);

}  // namespace hirep::util

// Streaming macros keep argument evaluation out of the fast path.
#define HIREP_LOG(level, component, expr)                                     \
  do {                                                                        \
    if (::hirep::util::Logger::instance().enabled(level)) {                   \
      std::ostringstream hirep_log_stream_;                                   \
      hirep_log_stream_ << expr;                                              \
      ::hirep::util::Logger::instance().write(level, component,               \
                                              hirep_log_stream_.str());      \
    }                                                                         \
  } while (0)

#define HIREP_TRACE(component, expr) \
  HIREP_LOG(::hirep::util::LogLevel::kTrace, component, expr)
#define HIREP_DEBUG(component, expr) \
  HIREP_LOG(::hirep::util::LogLevel::kDebug, component, expr)
#define HIREP_INFO(component, expr) \
  HIREP_LOG(::hirep::util::LogLevel::kInfo, component, expr)
#define HIREP_WARN(component, expr) \
  HIREP_LOG(::hirep::util::LogLevel::kWarn, component, expr)
#define HIREP_ERROR(component, expr) \
  HIREP_LOG(::hirep::util::LogLevel::kError, component, expr)
