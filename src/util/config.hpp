// key=value configuration parsing used by every bench/example binary so a
// user can override any Table-1 parameter on the command line:
//
//   ./fig6_accuracy nodes=2000 poor_agent_ratio=0.2 seeds=5
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hirep::util {

class Config {
 public:
  Config() = default;

  /// Parses argv[1..argc) entries of the form key=value.  Throws
  /// std::invalid_argument on malformed entries (no '=', empty key).
  /// "--help"/"-h" set help_requested().
  static Config from_args(int argc, const char* const* argv);

  /// Parses a whitespace/comma separated "k=v k=v" string.
  static Config from_string(const std::string& text);

  bool has(const std::string& key) const;
  bool help_requested() const noexcept { return help_; }

  /// Typed getters; throw std::invalid_argument when present but unparsable.
  std::string get_string(const std::string& key, std::string fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated list of doubles, e.g. "thresholds=0.4,0.6,0.8".
  std::vector<double> get_double_list(const std::string& key,
                                      std::vector<double> fallback) const;

  /// Keys that were supplied but never read — a typo detector for benches.
  std::vector<std::string> unused_keys() const;

  const std::map<std::string, std::string>& entries() const noexcept {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> touched_;
  bool help_ = false;
  void insert(const std::string& token);
};

}  // namespace hirep::util
