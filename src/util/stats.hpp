// Streaming statistics used by the experiment harness: running moments,
// mean-square-error accumulators (the paper's accuracy metric), percentile
// estimation over retained samples, and simple histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hirep::util {

/// Welford-style running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n). 0 when fewer than 2 samples.
  double variance() const noexcept;
  /// Sample variance (divide by n-1). 0 when fewer than 2 samples.
  double sample_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Accumulates squared errors between estimates and ground truth — the
/// paper's "MSE of trust value" metric (Figures 6 and 7).
class MseAccumulator {
 public:
  void add(double estimate, double truth) noexcept;
  void merge(const MseAccumulator& other) noexcept;
  void reset() noexcept;

  std::size_t count() const noexcept { return n_; }
  double mse() const noexcept { return n_ ? sum_sq_ / static_cast<double>(n_) : 0.0; }
  double rmse() const noexcept;

 private:
  std::size_t n_ = 0;
  double sum_sq_ = 0.0;
};

/// Retains all samples; supports exact percentiles. Intended for response
/// times where sample counts stay modest (<= a few million).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const noexcept { return samples_.size(); }
  double sum() const noexcept;
  double mean() const noexcept;
  /// q in [0,1]; linear interpolation between closest ranks. 0 if empty.
  double percentile(double q) const;
  double min() const;
  double max() const;
  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_lo(std::size_t i) const;
  std::uint64_t total() const noexcept { return total_; }
  /// Multi-line ASCII rendering, for example programs.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Pearson correlation of two equal-length series; NaN-free (returns 0 for
/// degenerate inputs). Used by benches to check monotone trends.
double correlation(const std::vector<double>& xs, const std::vector<double>& ys);

/// Least-squares slope of ys against xs (0 for degenerate inputs).
double linear_slope(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace hirep::util
