// Annotated synchronisation primitives (DESIGN.md §12.2).
//
// Thin wrappers over std::mutex / std::condition_variable_any that carry
// the Clang thread-safety capability attributes from util/annotations.hpp.
// libstdc++'s std::mutex is not annotated, so locking it through
// std::lock_guard is invisible to -Wthread-safety; routing every shared
// structure through util::Mutex + util::MutexLock is what makes the
// analysis actually check GUARDED_BY fields.
//
// The wrappers add no state and no behaviour: Mutex is exactly a
// std::mutex, MutexLock is exactly a lock_guard, CondVar is a
// condition_variable_any that waits on a Mutex directly (Mutex satisfies
// BasicLockable).  Goldens are unaffected by construction — locks never
// draw randomness or reorder deterministic work.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace hirep::util {

/// Annotated mutex: a std::mutex declared as a thread-safety capability.
class HIREP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HIREP_ACQUIRE() { mu_.lock(); }
  void unlock() HIREP_RELEASE() { mu_.unlock(); }
  bool try_lock() HIREP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII scoped acquisition of a util::Mutex (annotated lock_guard).
class HIREP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HIREP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HIREP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting directly on a util::Mutex.  Only the plain
/// wait is offered: predicate-lambda waits defeat the thread-safety
/// analysis (the lambda body is analysed without the lock held), so call
/// sites spell the guard loop out — `while (!ready_) cv.wait(mu_);` —
/// which the analysis verifies field by field.
class CondVar {
 public:
  /// Atomically releases `mu`, blocks, and reacquires before returning.
  /// Spurious wakeups happen; always wait in a condition loop.
  void wait(Mutex& mu) HIREP_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hirep::util
