#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hirep::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void MseAccumulator::add(double estimate, double truth) noexcept {
  const double e = estimate - truth;
  sum_sq_ += e * e;
  ++n_;
}

void MseAccumulator::merge(const MseAccumulator& other) noexcept {
  sum_sq_ += other.sum_sq_;
  n_ += other.n_;
}

void MseAccumulator::reset() noexcept {
  n_ = 0;
  sum_sq_ = 0.0;
}

double MseAccumulator::rmse() const noexcept { return std::sqrt(mse()); }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::sum() const noexcept {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s;
}

double SampleSet::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum() / static_cast<double>(samples_.size());
}

double SampleSet::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(hi > lo) || buckets == 0) {
    throw std::invalid_argument("Histogram requires hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) noexcept {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) * static_cast<double>(width));
    out << '[';
    out.width(10);
    out << bucket_lo(i) << "] " << std::string(bar, '#') << ' ' << counts_[i]
        << '\n';
  }
  return out.str();
}

double correlation(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  RunningStats sx, sy;
  for (double x : xs) sx.add(x);
  for (double y : ys) sy.add(y);
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  }
  cov /= static_cast<double>(xs.size());
  return cov / (sx.stddev() * sy.stddev());
}

double linear_slope(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  RunningStats sx;
  for (double x : xs) sx.add(x);
  if (sx.variance() == 0.0) return 0.0;
  double sy_mean = 0.0;
  for (double y : ys) sy_mean += y;
  sy_mean /= static_cast<double>(ys.size());
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy_mean);
  }
  cov /= static_cast<double>(xs.size());
  return cov / sx.variance();
}

}  // namespace hirep::util
