#include "gnutella/search.hpp"

#include <algorithm>
#include <limits>

namespace hirep::gnutella {

SearchResult search(net::Overlay& overlay, const ContentCatalog& catalog,
                    net::NodeIndex requestor, FileId file, std::uint32_t ttl) {
  SearchResult result;
  result.file = file;
  const auto flood =
      net::flood(overlay, requestor, ttl, net::MessageKind::kQuery);
  result.query_messages = flood.messages;
  for (std::size_t i = 0; i < flood.reached.size(); ++i) {
    const net::NodeIndex node = flood.reached[i];
    if (!catalog.has_file(node, file)) continue;
    result.hits.push_back({node, flood.depth[i]});
    // The QueryHit travels back hop-by-hop along the reverse path.
    overlay.count_send(net::MessageKind::kQuery, flood.depth[i]);
    result.hit_messages += flood.depth[i];
  }
  return result;
}

double search_first_hit_ms(net::Overlay& overlay,
                           const ContentCatalog& catalog,
                           net::NodeIndex requestor, FileId file,
                           std::uint32_t ttl) {
  overlay.reset_time_state();
  const auto arrivals =
      net::timed_flood(overlay, requestor, ttl, 0.0, net::MessageKind::kQuery);
  std::vector<net::NodeIndex> parent(overlay.node_count(), net::kInvalidNode);
  for (const auto& a : arrivals) parent[a.node] = a.parent;

  double first = std::numeric_limits<double>::max();
  for (const auto& a : arrivals) {
    if (!catalog.has_file(a.node, file)) continue;
    double t = a.time_ms;
    net::NodeIndex at = a.node;
    while (at != requestor) {
      const net::NodeIndex up = parent[at];
      t = overlay.timed_send(t, at, up, net::MessageKind::kQuery);
      at = up;
    }
    first = std::min(first, t);
  }
  return first == std::numeric_limits<double>::max() ? -1.0 : first;
}

}  // namespace hirep::gnutella
