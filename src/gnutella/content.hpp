// Shared-content model for the Gnutella-style substrate (the environment
// the paper's introduction motivates: KaZaA-scale file sharing with
// polluted copies injected by malicious peers).
//
// Files have Zipf-distributed popularity; popular files are replicated on
// more providers.  A provider's copy of any file is *polluted* exactly
// when the provider is untrustable in the ground truth — downloading from
// it yields a failed transaction (outcome 0), which is what the
// reputation layer exists to prevent.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.hpp"
#include "trust/ground_truth.hpp"
#include "util/rng.hpp"

namespace hirep::gnutella {

using FileId = std::uint32_t;

struct CatalogParams {
  std::size_t files = 100;
  std::size_t min_replicas = 2;    ///< the rarest file's provider count
  std::size_t max_replicas = 40;   ///< the hottest file's provider count
  double popularity_zipf_s = 1.0;  ///< request-popularity skew
};

class ContentCatalog {
 public:
  ContentCatalog(util::Rng& rng, std::size_t nodes, CatalogParams params);

  std::size_t file_count() const noexcept { return providers_.size(); }
  std::size_t node_count() const noexcept { return shelves_.size(); }
  const CatalogParams& params() const noexcept { return params_; }

  /// Nodes holding a copy of `file` (rank 0 = most popular file).
  const std::vector<net::NodeIndex>& providers_of(FileId file) const;
  /// Files a node shares.
  const std::vector<FileId>& files_at(net::NodeIndex node) const;
  bool has_file(net::NodeIndex node, FileId file) const;

  /// A copy served by `provider` is polluted iff the provider is
  /// untrustable.
  bool copy_polluted(const trust::GroundTruth& truth,
                     net::NodeIndex provider) const {
    return !truth.trustable(provider);
  }

  /// Draws a file according to request popularity (Zipf over rank).
  FileId sample_request(util::Rng& rng) const;

 private:
  CatalogParams params_;
  std::vector<std::vector<net::NodeIndex>> providers_;  // per file
  std::vector<std::vector<FileId>> shelves_;            // per node
  std::vector<double> request_cdf_;
};

}  // namespace hirep::gnutella
