// FileSharingSession — the paper's Figure-1 transaction flow, end to end:
//
//   1. the requestor floods a QUERY for a file (Gnutella semantics);
//   2. QueryHits name candidate providers;
//   3. the requestor fetches trust values of the candidates FROM ITS
//      TRUSTED AGENTS ONLY (this is hiREP's whole point — no trust-value
//      flooding) and picks the candidate with the highest estimate;
//   4. it downloads, observes whether the copy was polluted, updates the
//      expertise of its agents and sends them signed transaction reports.
//
// The session owns the content catalog and drives a HirepSystem.
#pragma once

#include <optional>

#include "gnutella/search.hpp"
#include "hirep/system.hpp"

namespace hirep::gnutella {

struct SessionOptions {
  CatalogParams catalog;
  std::uint32_t query_ttl = 4;
  /// Cap on how many QueryHit candidates are trust-checked per download
  /// (the Figure-1 "group of file provider candidates").
  std::size_t max_candidates = 5;
};

class FileSharingSession {
 public:
  /// `system` must outlive the session.
  FileSharingSession(core::HirepSystem* system, SessionOptions options);

  const ContentCatalog& catalog() const noexcept { return catalog_; }
  core::HirepSystem& system() noexcept { return *system_; }

  struct DownloadRecord {
    FileId file = 0;
    bool found = false;            ///< any QueryHit at all
    net::NodeIndex provider = net::kInvalidNode;
    bool polluted = false;         ///< the downloaded copy was bad
    double estimate = 0.5;         ///< trust estimate of the chosen provider
    std::size_t candidates = 0;    ///< hits trust-checked
    std::uint64_t search_messages = 0;  ///< QUERY + QUERYHIT traffic
    std::uint64_t trust_messages = 0;   ///< hiREP traffic for this download
  };

  /// One full Figure-1 download for a popularity-sampled file.
  DownloadRecord download(net::NodeIndex requestor);
  /// Same for a specific file.
  DownloadRecord download(net::NodeIndex requestor, FileId file);

  /// Cumulative pollution statistics over all downloads so far.
  std::size_t downloads() const noexcept { return downloads_; }
  std::size_t polluted_downloads() const noexcept { return polluted_; }
  double pollution_rate() const noexcept {
    return downloads_ ? static_cast<double>(polluted_) /
                            static_cast<double>(downloads_)
                      : 0.0;
  }

 private:
  core::HirepSystem* system_;
  SessionOptions options_;
  ContentCatalog catalog_;
  std::size_t downloads_ = 0;
  std::size_t polluted_ = 0;
};

}  // namespace hirep::gnutella
