#include "gnutella/session.hpp"

#include <algorithm>

namespace hirep::gnutella {

FileSharingSession::FileSharingSession(core::HirepSystem* system,
                                       SessionOptions options)
    : system_(system),
      options_(options),
      catalog_(system->rng(), system->node_count(), options.catalog) {}

FileSharingSession::DownloadRecord FileSharingSession::download(
    net::NodeIndex requestor) {
  return download(requestor, catalog_.sample_request(system_->rng()));
}

FileSharingSession::DownloadRecord FileSharingSession::download(
    net::NodeIndex requestor, FileId file) {
  DownloadRecord record;
  record.file = file;
  const std::uint64_t trust_before = system_->trust_message_total();

  // 1. QUERY flood + QUERYHITs.
  const auto found = search(system_->overlay(), catalog_, requestor, file,
                            options_.query_ttl);
  record.search_messages = found.query_messages + found.hit_messages;
  if (!found.found()) return record;
  record.found = true;

  // 2./3. Trust-check up to max_candidates hits through the trusted
  // agents, nearest hits first (they answered fastest), and keep the best.
  auto hits = found.hits;
  std::stable_sort(hits.begin(), hits.end(),
                   [](const QueryHit& a, const QueryHit& b) {
                     return a.hops < b.hops;
                   });
  double best = -1.0;
  net::NodeIndex chosen = net::kInvalidNode;
  core::HirepSystem::QueryResult chosen_query;
  for (const auto& hit : hits) {
    if (record.candidates >= options_.max_candidates) break;
    if (hit.provider == requestor) continue;
    ++record.candidates;
    auto query = system_->query_trust(requestor, hit.provider);
    if (query.estimate > best) {
      best = query.estimate;
      chosen = hit.provider;
      chosen_query = std::move(query);
    }
  }
  if (chosen == net::kInvalidNode) {
    record.found = false;  // the only hit was our own copy
    return record;
  }

  // 4. Download + expertise update + signed reports + maintenance.
  record.provider = chosen;
  record.estimate = best;
  record.polluted = catalog_.copy_polluted(system_->truth(), chosen);
  system_->complete_transaction(requestor, chosen, chosen_query);

  record.trust_messages = system_->trust_message_total() - trust_before;
  ++downloads_;
  polluted_ += record.polluted;
  return record;
}

}  // namespace hirep::gnutella
