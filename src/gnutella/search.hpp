// Gnutella 0.6-style QUERY / QUERYHIT over the unstructured overlay: the
// requestor floods a keyword query with a TTL; every reached node holding
// a matching file answers with a QueryHit routed back along the reverse
// flooding path (Gnutella semantics).  This is the "query request to the
// whole system" step of the paper's Figure-1 transaction flow.
#pragma once

#include "gnutella/content.hpp"
#include "net/flood.hpp"

namespace hirep::gnutella {

struct QueryHit {
  net::NodeIndex provider = net::kInvalidNode;
  std::uint32_t hops = 0;  ///< distance the hit travelled back
};

struct SearchResult {
  FileId file = 0;
  std::vector<QueryHit> hits;
  std::uint64_t query_messages = 0;  ///< flood transmissions
  std::uint64_t hit_messages = 0;    ///< reverse-path hit transmissions
  bool found() const noexcept { return !hits.empty(); }
};

/// Floods a query for `file` from `requestor`; counts query traffic under
/// kQuery.  The requestor's own copy (if any) does not generate a hit.
SearchResult search(net::Overlay& overlay, const ContentCatalog& catalog,
                    net::NodeIndex requestor, FileId file, std::uint32_t ttl);

/// Timed variant for latency studies: returns the time the FIRST QueryHit
/// reaches the requestor (the user can start the download then), or a
/// negative value when nothing was found within the TTL.
double search_first_hit_ms(net::Overlay& overlay, const ContentCatalog& catalog,
                           net::NodeIndex requestor, FileId file,
                           std::uint32_t ttl);

}  // namespace hirep::gnutella
