#include "gnutella/content.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hirep::gnutella {

ContentCatalog::ContentCatalog(util::Rng& rng, std::size_t nodes,
                               CatalogParams params)
    : params_(params), providers_(params.files), shelves_(nodes) {
  if (nodes < 2 || params.files == 0) {
    throw std::invalid_argument("catalog needs nodes >= 2 and files >= 1");
  }
  if (params.min_replicas == 0 || params.max_replicas < params.min_replicas) {
    throw std::invalid_argument("bad replica bounds");
  }

  // Replica count interpolates from max (rank 0) down to min (last rank),
  // mirroring the usual popularity/availability correlation.
  for (std::size_t rank = 0; rank < params.files; ++rank) {
    const double frac = params.files > 1
                            ? static_cast<double>(rank) /
                                  static_cast<double>(params.files - 1)
                            : 0.0;
    auto replicas = static_cast<std::size_t>(
        std::round(static_cast<double>(params.max_replicas) * (1.0 - frac) +
                   static_cast<double>(params.min_replicas) * frac));
    replicas = std::min(replicas, nodes);
    const auto chosen = rng.sample_indices(nodes, replicas);
    auto& list = providers_[rank];
    list.reserve(replicas);
    for (std::size_t idx : chosen) {
      const auto node = static_cast<net::NodeIndex>(idx);
      list.push_back(node);
      shelves_[node].push_back(static_cast<FileId>(rank));
    }
  }

  // Request-popularity CDF (Zipf over rank).
  request_cdf_.resize(params.files);
  double sum = 0.0;
  for (std::size_t rank = 0; rank < params.files; ++rank) {
    sum += 1.0 / std::pow(static_cast<double>(rank + 1), params.popularity_zipf_s);
    request_cdf_[rank] = sum;
  }
  for (double& v : request_cdf_) v /= sum;
}

const std::vector<net::NodeIndex>& ContentCatalog::providers_of(
    FileId file) const {
  return providers_.at(file);
}

const std::vector<FileId>& ContentCatalog::files_at(net::NodeIndex node) const {
  return shelves_.at(node);
}

bool ContentCatalog::has_file(net::NodeIndex node, FileId file) const {
  const auto& shelf = shelves_.at(node);
  return std::find(shelf.begin(), shelf.end(), file) != shelf.end();
}

FileId ContentCatalog::sample_request(util::Rng& rng) const {
  const double u = rng.uniform();
  const auto it =
      std::lower_bound(request_cdf_.begin(), request_cdf_.end(), u);
  const auto rank = static_cast<std::size_t>(it - request_cdf_.begin());
  return static_cast<FileId>(std::min(rank, providers_.size() - 1));
}

}  // namespace hirep::gnutella
