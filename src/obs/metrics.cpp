#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace hirep::obs {

namespace {

std::atomic<ClockFn> g_clock{nullptr};

// Innermost live ScopedTimer on this thread (nesting parent).
thread_local ScopedTimer* t_active_timer = nullptr;

}  // namespace

std::uint64_t now_ns() noexcept {
  if (const ClockFn clock = g_clock.load(std::memory_order_acquire)) {
    return clock();
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_clock_for_testing(ClockFn clock) noexcept {
  g_clock.store(clock, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

void Gauge::set(std::int64_t value) noexcept {
  value_.store(value, std::memory_order_relaxed);
  std::int64_t seen = high_water_.load(std::memory_order_relaxed);
  while (value > seen && !high_water_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

void Gauge::reset() noexcept {
  value_.store(0, std::memory_order_relaxed);
  high_water_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly increasing");
  }
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::merge(const Histogram& other) {
  if (other.bounds_ != bounds_) {
    throw std::invalid_argument("Histogram::merge: bounds mismatch");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  return buckets_.at(i).load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Timer
// ---------------------------------------------------------------------------

void Timer::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Counter& Registry::counter(std::string_view name) {
  util::MutexLock lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  util::MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  util::MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second->bounds() != bounds) {
      throw std::invalid_argument("Registry::histogram: '" + std::string(name) +
                                  "' re-registered with different bounds");
    }
    return *it->second;
  }
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<Histogram>(std::move(bounds)))
              .first->second;
}

Timer& Registry::timer(std::string_view name) {
  util::MutexLock lock(mu_);
  const auto it = timers_.find(name);
  if (it != timers_.end()) return *it->second;
  return *timers_.emplace(std::string(name), std::make_unique<Timer>())
              .first->second;
}

Snapshot Registry::snapshot() const {
  util::MutexLock lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value(), g->high_water()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramEntry entry;
    entry.name = name;
    entry.bounds = h->bounds();
    entry.buckets.reserve(entry.bounds.size() + 1);
    for (std::size_t i = 0; i <= entry.bounds.size(); ++i) {
      entry.buckets.push_back(h->bucket_count(i));
    }
    entry.count = h->count();
    entry.sum = h->sum();
    snap.histograms.push_back(std::move(entry));
  }
  snap.timers.reserve(timers_.size());
  for (const auto& [name, t] : timers_) {
    snap.timers.push_back({name, t->count(), t->total_ns()});
  }
  return snap;  // std::map iteration order == sorted by name
}

void Registry::reset() noexcept {
  util::MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, t] : timers_) t->reset();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

const std::vector<double>& latency_buckets_ms() {
  static const std::vector<double> buckets{0.01, 0.05, 0.1,  0.5,  1.0,
                                           5.0,  10.0, 50.0, 100.0, 500.0,
                                           1000.0};
  return buckets;
}

// ---------------------------------------------------------------------------
// ScopedTimer
// ---------------------------------------------------------------------------

ScopedTimer::ScopedTimer(std::string_view name, Registry& registry)
    : registry_(registry),
      path_(t_active_timer == nullptr
                ? std::string(name)
                : t_active_timer->path_ + "/" + std::string(name)),
      start_ns_(now_ns()),
      parent_(t_active_timer) {
  t_active_timer = this;
}

ScopedTimer::~ScopedTimer() {
  registry_.timer(path_).record(now_ns() - start_ns_);
  t_active_timer = parent_;
}

}  // namespace hirep::obs
