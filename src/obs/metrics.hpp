// Observability layer (hirep::obs).
//
// The ROADMAP's perf trajectory needs per-component counters and a uniform
// export path: this module is the process-wide metrics registry behind it.
// Hot layers register named instruments once and bump them on the hot path:
//
//   * Counter   — monotonically increasing event count;
//   * Gauge     — a level (queue depth, list size) with a high-water mark;
//   * Histogram — fixed-bucket latency/size distribution with an overflow
//                 bucket, mergeable across shards;
//   * Timer     — accumulated wall-clock phase time, fed by ScopedTimer.
//
// All instruments are lock-free on the update path (relaxed atomics) so the
// parallel seed sweeps can report concurrently, and none of them draw from
// any simulation Rng or alter control flow — golden figure values are
// bit-identical with observability on (pinned by
// tests/sim/golden_values_test.cpp in the default HIREP_OBS=ON build).
//
// Compile-time gate: the HIREP_OBS CMake option defines HIREP_OBS_ENABLED
// for every target; hot-path wiring guards with `if constexpr (obs::kEnabled)`
// so an OFF build compiles the instrumentation away entirely.  As with
// hirep::check, the primitives themselves always work when invoked
// directly, so the obs unit tests pass in either build flavour.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.hpp"

namespace hirep::obs {

#if !defined(HIREP_OBS_ENABLED)
#define HIREP_OBS_ENABLED 1
#endif

/// True when metrics wiring is compiled into the hot paths.
inline constexpr bool kEnabled = HIREP_OBS_ENABLED != 0;

/// Nanosecond monotonic clock used by ScopedTimer; replaceable for tests.
std::uint64_t now_ns() noexcept;

/// Injects a deterministic clock (tests); nullptr restores steady_clock.
using ClockFn = std::uint64_t (*)();
void set_clock_for_testing(ClockFn clock) noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A signed level plus the highest level ever set (high-water mark).
class Gauge {
 public:
  void set(std::int64_t value) noexcept;
  void add(std::int64_t delta) noexcept { set(value() + delta); }
  void sub(std::int64_t delta) noexcept { set(value() - delta); }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t high_water() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> high_water_{0};
};

/// Fixed-bucket distribution.  Bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i] (Prometheus "le" semantics); anything above
/// bounds.back() lands in the overflow bucket at index bounds.size().
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value) noexcept;
  /// Folds another histogram with identical bounds into this one; throws
  /// std::invalid_argument on a bounds mismatch.
  void merge(const Histogram& other);

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Bucket count at index i in [0, bounds().size()]; the last index is the
  /// overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Accumulated phase time: how often the phase ran and total nanoseconds.
class Timer {
 public:
  void record(std::uint64_t elapsed_ns) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(elapsed_ns, std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
};

/// A stable, by-name-sorted copy of every instrument's current state.
/// Snapshots of an idle registry compare equal (operator==), which is what
/// makes BENCH_*.json diffable across runs.
struct Snapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
    bool operator==(const CounterEntry&) const = default;
  };
  struct GaugeEntry {
    std::string name;
    std::int64_t value = 0;
    std::int64_t high_water = 0;
    bool operator==(const GaugeEntry&) const = default;
  };
  struct HistogramEntry {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;
    bool operator==(const HistogramEntry&) const = default;
  };
  struct TimerEntry {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    bool operator==(const TimerEntry&) const = default;
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;
  std::vector<TimerEntry> timers;
  bool operator==(const Snapshot&) const = default;
};

/// Named-instrument registry.  Lookup is mutex-guarded and intended to run
/// once per call site (cache the returned reference in a function-local
/// static); instrument updates are lock-free.  References stay valid for
/// the registry's lifetime — reset() zeroes values, it never removes
/// instruments.  Each instrument kind has its own namespace.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Re-registering a histogram name with different bounds throws
  /// std::invalid_argument.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  Timer& timer(std::string_view name);

  Snapshot snapshot() const;
  /// Zeroes every instrument (test/bench isolation); references stay valid.
  void reset() noexcept;

  /// The process-wide registry all hot-path wiring reports into.
  static Registry& global();

 private:
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      HIREP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      HIREP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      HIREP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_
      HIREP_GUARDED_BY(mu_);
};

/// Default latency buckets (milliseconds) shared by the crypto op
/// histograms: 10us .. 1s, roughly half-decade steps, overflow above.
const std::vector<double>& latency_buckets_ms();

/// RAII phase timer.  Timers nest per thread: a ScopedTimer constructed
/// while another is alive on the same thread records under
/// "<outer path>/<name>", so the registry's timer table reads as a phase
/// tree.  Elapsed time is recorded into `registry` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name,
                       Registry& registry = Registry::global());
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// The full slash-joined phase path this timer records under.
  const std::string& path() const noexcept { return path_; }

 private:
  Registry& registry_;
  std::string path_;
  std::uint64_t start_ns_;
  ScopedTimer* parent_;
};

/// RAII op recorder for hot functions: bumps `ops` and observes the
/// elapsed milliseconds into `latency_ms` on destruction.  Call sites keep
/// the two instrument references in function-local statics so the name
/// lookup happens once.
class ScopedOp {
 public:
  ScopedOp(Counter& ops, Histogram& latency_ms) noexcept
      : ops_(ops), latency_ms_(latency_ms), start_ns_(now_ns()) {}
  ~ScopedOp() {
    ops_.add();
    latency_ms_.observe(static_cast<double>(now_ns() - start_ns_) * 1e-6);
  }
  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;

 private:
  Counter& ops_;
  Histogram& latency_ms_;
  std::uint64_t start_ns_;
};

}  // namespace hirep::obs
