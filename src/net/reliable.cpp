#include "net/reliable.hpp"

#include "obs/metrics.hpp"

namespace hirep::net {

namespace {

struct ReliableCells {
  obs::Counter* requests;
  obs::Counter* retries;
  obs::Counter* timeouts;
  obs::Counter* gave_up;
  obs::Counter* dup_suppressed;
};

const ReliableCells& reliable_cells() {
  static const ReliableCells cells = [] {
    auto& reg = obs::Registry::global();
    return ReliableCells{&reg.counter("net.reliable.requests"),
                         &reg.counter("net.reliable.retries"),
                         &reg.counter("net.reliable.timeouts"),
                         &reg.counter("net.reliable.gave_up"),
                         &reg.counter("net.reliable.dup_suppressed")};
  }();
  return cells;
}

}  // namespace

RequestOutcome ReliableChannel::request(EnvelopeType type, NodeIndex sender,
                                        const std::vector<NodeIndex>& path,
                                        util::Bytes payload) {
  RequestOutcome out;
  ++stats_.requests;
  if constexpr (obs::kEnabled) reliable_cells().requests->add();

  const std::uint32_t max_attempts =
      policy_.max_attempts == 0 ? 1 : policy_.max_attempts;
  for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      // Deterministic exponential backoff before each retry, realised on
      // the transport clock so retried traffic timestamps correctly.
      const std::uint32_t doublings = attempt - 2 < 30U ? attempt - 2 : 30U;
      double wait = policy_.backoff_ms * static_cast<double>(1U << doublings);
      if (policy_.jitter_ms > 0.0) wait += rng_.uniform(0.0, policy_.jitter_ms);
      if (wait > 0.0) {
        transport_->sim().schedule_in(wait, [] {});
        transport_->sim().run();
      }
      ++stats_.retries;
      if constexpr (obs::kEnabled) reliable_cells().retries->add();
    }
    const double t0 = transport_->sim().now();
    // Retries need the original bytes again, so only the final attempt may
    // surrender the buffer.
    DeliveryReceipt receipt =
        attempt == max_attempts
            ? transport_->send(type, sender, path, std::move(payload))
            : transport_->send(type, sender, path, payload);
    out.attempts = attempt;
    out.messages += receipt.messages;
    if (receipt.delivered) {
      if (out.applied) {
        // A retransmission of a request whose earlier (late) copy already
        // reached the destination: applied at most once.
        ++stats_.dup_suppressed;
        if constexpr (obs::kEnabled) reliable_cells().dup_suppressed->add();
      } else {
        out.applied = true;
      }
      const bool late = policy_.timeout_ms > 0.0 &&
                        receipt.completion_ms - t0 > policy_.timeout_ms;
      if (!late) {
        out.ok = true;
        out.destination = receipt.destination;
        out.completion_ms = receipt.completion_ms;
        out.payload = std::move(receipt.payload);
        break;
      }
    }
    // Lost in transit, or delivered past the deadline: the sender's timer
    // fires either way.
    ++out.timeouts;
    ++stats_.timeouts;
    if constexpr (obs::kEnabled) reliable_cells().timeouts->add();
  }
  if (!out.ok) {
    ++stats_.gave_up;
    if constexpr (obs::kEnabled) reliable_cells().gave_up->add();
  }
  return out;
}

}  // namespace hirep::net
