#include "net/reliable.hpp"

#include "obs/metrics.hpp"

namespace hirep::net {

namespace {

struct ReliableCells {
  obs::Counter* requests;
  obs::Counter* retries;
  obs::Counter* timeouts;
  obs::Counter* gave_up;
  obs::Counter* dup_suppressed;
};

const ReliableCells& reliable_cells() {
  static const ReliableCells cells = [] {
    auto& reg = obs::Registry::global();
    return ReliableCells{&reg.counter("net.reliable.requests"),
                         &reg.counter("net.reliable.retries"),
                         &reg.counter("net.reliable.timeouts"),
                         &reg.counter("net.reliable.gave_up"),
                         &reg.counter("net.reliable.dup_suppressed")};
  }();
  return cells;
}

/// Backoff before retry wave `attempt` (>= 2): base * 2^(attempt-2), plus
/// one uniform jitter draw from `rng` when configured.
double backoff_wait(const ReliablePolicy& policy, std::uint32_t attempt,
                    util::Rng& rng) {
  const std::uint32_t doublings = attempt - 2 < 30U ? attempt - 2 : 30U;
  double wait = policy.backoff_ms * static_cast<double>(1U << doublings);
  if (policy.jitter_ms > 0.0) wait += rng.uniform(0.0, policy.jitter_ms);
  return wait;
}

}  // namespace

bool DedupTable::first_application(std::uint64_t id, double now_ms) {
  util::MutexLock lock(mu_);
  maybe_rotate(now_ms);
  if (current_.contains(id)) return false;
  if (prev_.contains(id)) {
    // Refresh an actively retried id into the current generation so it
    // cannot age out between its own attempts.
    current_.insert(id);
    return false;
  }
  current_.insert(id);
  return true;
}

void DedupTable::maybe_rotate(double now_ms) {
  const bool full = current_.size() >= capacity_;
  const bool stale =
      !current_.empty() && now_ms - window_start_ >= window_ms_;
  if (full || stale) {
    prev_ = std::move(current_);
    current_.clear();
    window_start_ = now_ms;
  }
}

bool ReliableChannel::settle(const DeliveryReceipt& receipt,
                            std::uint64_t request_id, RequestOutcome& out) {
  out.messages += receipt.messages;
  if (!receipt.delivered) return false;
  if (dedup_.first_application(request_id, receipt.completion_ms)) {
    out.applied = true;
  } else {
    // A retransmission of a request whose earlier (late) copy already
    // reached the destination: applied at most once.
    ++stats_.dup_suppressed;
    if constexpr (obs::kEnabled) reliable_cells().dup_suppressed->add();
  }
  const bool late =
      policy_.timeout_ms > 0.0 &&
      receipt.completion_ms - receipt.start_ms > policy_.timeout_ms;
  if (late) return false;
  out.ok = true;
  out.destination = receipt.destination;
  out.completion_ms = receipt.completion_ms;
  out.payload = receipt.payload;
  return true;
}

RequestOutcome ReliableChannel::request(EnvelopeType type, NodeIndex sender,
                                        const std::vector<NodeIndex>& path,
                                        util::Bytes payload) {
  RequestOutcome out;
  ++stats_.requests;
  if constexpr (obs::kEnabled) reliable_cells().requests->add();
  const std::uint64_t request_id = next_request_id_++;

  const std::uint32_t max_attempts =
      policy_.max_attempts == 0 ? 1 : policy_.max_attempts;
  for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      // Deterministic exponential backoff before each retry, realised on
      // the transport clock so retried traffic timestamps correctly.
      const double wait = backoff_wait(policy_, attempt, rng_);
      if (wait > 0.0) {
        transport_->sim().schedule_in(wait, [] {});
        transport_->sim().run();
      }
      ++stats_.retries;
      if constexpr (obs::kEnabled) reliable_cells().retries->add();
    }
    // Retries need the original bytes again, so only the final attempt may
    // surrender the buffer.
    const DeliveryReceipt receipt =
        attempt == max_attempts
            ? transport_->send(type, sender, path, std::move(payload))
            : transport_->send(type, sender, path, payload);
    out.attempts = attempt;
    if (settle(receipt, request_id, out)) break;
    // Lost in transit, or delivered past the deadline: the sender's timer
    // fires either way.
    ++out.timeouts;
    ++stats_.timeouts;
    if constexpr (obs::kEnabled) reliable_cells().timeouts->add();
  }
  if (!out.ok) {
    ++stats_.gave_up;
    if constexpr (obs::kEnabled) reliable_cells().gave_up->add();
  }
  return out;
}

std::vector<RequestOutcome> ReliableChannel::request_batch(
    EnvelopeType type, std::span<const BatchRequest> requests) {
  std::vector<RequestOutcome> outs(requests.size());
  if (requests.empty()) return outs;
  stats_.requests += requests.size();
  if constexpr (obs::kEnabled) {
    reliable_cells().requests->add(requests.size());
  }
  std::vector<std::uint64_t> ids(requests.size());
  for (auto& id : ids) id = next_request_id_++;

  std::vector<std::uint32_t> pending(requests.size());
  for (std::uint32_t i = 0; i < pending.size(); ++i) pending[i] = i;
  std::vector<std::uint32_t> still_pending;

  EnvelopeBatch batch = transport_->make_batch();
  const std::uint32_t max_attempts =
      policy_.max_attempts == 0 ? 1 : policy_.max_attempts;
  for (std::uint32_t attempt = 1; attempt <= max_attempts && !pending.empty();
       ++attempt) {
    if (attempt > 1) {
      // One backoff tick per wave — a single jitter draw covers every
      // pending request, and their retransmissions ride in one batch.
      const double wait = backoff_wait(policy_, attempt, rng_);
      if (wait > 0.0) {
        transport_->sim().schedule_in(wait, [] {});
        transport_->sim().run();
      }
      stats_.retries += pending.size();
      if constexpr (obs::kEnabled) {
        reliable_cells().retries->add(pending.size());
      }
    }
    batch.clear();
    for (std::uint32_t i : pending) {
      batch.push(type, requests[i].sender, *requests[i].path,
                 requests[i].payload);
    }
    const auto receipts = transport_->send_batch(batch);
    still_pending.clear();
    for (std::size_t k = 0; k < pending.size(); ++k) {
      const std::uint32_t i = pending[k];
      RequestOutcome& out = outs[i];
      out.attempts = attempt;
      if (settle(receipts[k], ids[i], out)) continue;
      ++out.timeouts;
      ++stats_.timeouts;
      if constexpr (obs::kEnabled) reliable_cells().timeouts->add();
      still_pending.push_back(i);
    }
    pending.swap(still_pending);
  }
  for (const RequestOutcome& out : outs) {
    if (!out.ok) {
      ++stats_.gave_up;
      if constexpr (obs::kEnabled) reliable_cells().gave_up->add();
    }
  }
  return outs;
}

}  // namespace hirep::net
