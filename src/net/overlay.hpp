// The unstructured overlay: topology + latency model + traffic accounting +
// a simple store-and-forward queueing model (each node handles messages
// serially with a fixed per-message processing cost).
//
// Two views of the same network:
//  * counted sends   — increment TrafficMetrics only (Figures 5–7)
//  * timed sends     — additionally compute delivery timestamps (Figure 8)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/graph.hpp"
#include "net/latency.hpp"
#include "net/metrics.hpp"
#include "util/rng.hpp"

namespace hirep::net {

class Overlay {
 public:
  Overlay(Graph graph, LatencyParams latency, std::uint64_t seed);

  const Graph& graph() const noexcept { return graph_; }
  const LatencyModel& latency() const noexcept { return latency_; }
  std::size_t node_count() const noexcept { return graph_.node_count(); }

  TrafficMetrics& metrics() noexcept { return metrics_; }
  const TrafficMetrics& metrics() const noexcept { return metrics_; }

  /// Counted point-to-point send (direct IP-level message, e.g. one onion
  /// hop or a key-exchange packet). Overlay adjacency is NOT required:
  /// relays/agents are addressed by IP, not by neighborhood.
  void count_send(MessageKind kind, std::uint64_t messages = 1) noexcept {
    metrics_.count(kind, messages);
  }

  /// Timed delivery of one message leaving `from` at `depart_ms` toward the
  /// directly-addressed `to`.  Models serial processing at the receiver:
  /// the message is handled at max(arrival, receiver-free) + processing.
  /// Returns the handling-completion time and advances the receiver's
  /// busy-until state.  Also counts the message.
  double timed_send(double depart_ms, NodeIndex from, NodeIndex to,
                    MessageKind kind);

  /// Same cost model without the queueing side effect (pure estimate).
  double estimate_send(double depart_ms, NodeIndex from, NodeIndex to) const;

  /// Sequential timed traversal of a multi-hop path (path[0] departs at
  /// depart_ms). Returns completion at the final node. Counts path.size()-1
  /// messages.
  double timed_path(double depart_ms, const std::vector<NodeIndex>& path,
                    MessageKind kind);

  /// Timed traversal WITHOUT the queueing side effects: pure propagation +
  /// processing cost.  Use when hop events are generated out of global time
  /// order (e.g. independent onion circuits evaluated one after another) —
  /// the busy-until model is only meaningful for time-ordered event streams
  /// like timed_flood.  Counts messages normally.
  double stateless_path(double depart_ms, const std::vector<NodeIndex>& path,
                        MessageKind kind);

  /// Clears all busy-until state (start of a fresh timed experiment).
  void reset_time_state();

  /// Open membership: appends a node and wires it to `neighbors`.
  NodeIndex add_node(std::span<const NodeIndex> neighbors);

  /// Degree-weighted node sample (preferential attachment for joiners).
  NodeIndex sample_by_degree(util::Rng& rng) const;

 private:
  Graph graph_;
  LatencyModel latency_;
  TrafficMetrics metrics_;
  std::vector<double> busy_until_;
};

}  // namespace hirep::net
