// Link latency and node processing-cost model for the timed experiments
// (Figure 8).  Latencies are per-link and stable for a simulation's
// lifetime: the latency of (a,b) is derived from a keyed hash of the
// unordered pair, so both directions agree and no O(n^2) matrix is stored.
#pragma once

#include <cstdint>

#include "net/graph.hpp"

namespace hirep::net {

struct LatencyParams {
  double link_min_ms = 10.0;   ///< lower bound of per-hop propagation delay
  double link_max_ms = 40.0;   ///< upper bound
  double processing_ms = 1.0;  ///< serial per-message handling cost per node
};

class LatencyModel {
 public:
  LatencyModel(LatencyParams params, std::uint64_t seed);

  /// Propagation delay of the (a,b) link in ms; symmetric.
  double link_ms(NodeIndex a, NodeIndex b) const noexcept;

  double processing_ms() const noexcept { return params_.processing_ms; }
  const LatencyParams& params() const noexcept { return params_; }

 private:
  LatencyParams params_;
  std::uint64_t seed_;
};

}  // namespace hirep::net
