// Discrete-event simulation core: a time-ordered queue of callbacks with a
// deterministic tie-break (FIFO by schedule order), used by the timed
// experiments (Figure 8) and the onion router's latency accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hirep::net {

class EventSim {
 public:
  using Callback = std::function<void()>;

  double now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now, else clamped to now).
  void schedule_at(double at, Callback fn);
  /// Schedules `fn` `delay` from the current time (delay < 0 clamps to 0).
  void schedule_in(double delay, Callback fn);

  std::size_t pending() const noexcept { return queue_.size(); }

  /// Runs events until the queue drains. Returns events executed.
  std::size_t run();
  /// Runs events with time <= deadline. Returns events executed.
  std::size_t run_until(double deadline);

  /// Clamps the clock forward to `t` without executing anything; a no-op
  /// when t <= now.  Throws std::logic_error if an event earlier than `t`
  /// is still pending — jumping over it would violate the monotone-clock
  /// invariant.  The sharded scale engine aligns every shard's event queue
  /// to the latest shard clock at each wave barrier (DESIGN.md §14), so
  /// the next wave starts from one common simulated time.
  void advance_to(double t);

  /// Drops all pending events and resets the clock to zero.
  void reset();

 private:
  struct Event {
    double at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hirep::net
