// Gnutella-style TTL-limited flooding (the BFS the paper uses to simulate
// the pure-voting poll) and the token-limited forwarding used by hiREP's
// trusted-agent-list request (Figure 4).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/overlay.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

namespace hirep::net {

struct FloodResult {
  /// Nodes reached (excluding the source), with their BFS depth (>= 1).
  std::vector<NodeIndex> reached;
  std::vector<std::uint32_t> depth;   ///< parallel to `reached`
  std::vector<NodeIndex> parent;      ///< BFS-tree predecessor, parallel to
                                      ///< `reached` (reverse-path hops)
  /// Forwarding transmissions performed, including duplicate deliveries —
  /// the real cost of flooding.
  std::uint64_t messages = 0;

  /// Node-indexed BFS-tree parents (kInvalidNode where unreached); the
  /// caller walks reached -> ... -> source to obtain a reply's hop path.
  std::vector<NodeIndex> parents_by_node(std::size_t node_count) const;
};

/// Floods from `source` with the given TTL; every transmission is counted
/// into the overlay metrics under `kind`.  A node forwards only the first
/// copy it sees, to all neighbors except the sender, while ttl > 0.
FloodResult flood(Overlay& overlay, NodeIndex source, std::uint32_t ttl,
                  MessageKind kind);

/// Transport-routed flood: each edge transmission is one single-hop typed
/// envelope, so the delivery policy can drop/delay/duplicate individual
/// copies (a dropped copy never reaches its receiver; the node may still be
/// reached by another copy).  With InstantDelivery this is transmission-for-
/// transmission identical to the counted flood above.
FloodResult flood(Transport& transport, NodeIndex source, std::uint32_t ttl,
                  EnvelopeType type);

struct TimedArrival {
  NodeIndex node = kInvalidNode;
  NodeIndex parent = kInvalidNode;  ///< BFS-tree predecessor (reverse path)
  std::uint32_t depth = 0;
  double time_ms = 0.0;
};

/// Timed flooding over the queueing model: transmissions propagate in time
/// order (a global time-ordered expansion), and each node's serial
/// processing delays its forwards.  Returns first-copy arrival times.
std::vector<TimedArrival> timed_flood(Overlay& overlay, NodeIndex source,
                                      std::uint32_t ttl, double start_ms,
                                      MessageKind kind);

/// One response message returned hop-by-hop along the BFS tree toward the
/// source costs `depth` transmissions; helper for the polling baseline.
std::uint64_t response_cost(const FloodResult& result);

struct TokenVisit {
  NodeIndex node;
  std::uint32_t tokens_spent;
};

/// Token + TTL limited request propagation (Figure 4): the request fans out
/// from `source` carrying `tokens`; a node for which `consumes(node)` is
/// true uses up one token (it answers the request), and remaining tokens
/// are forwarded to unvisited neighbors (split across them).  Propagation
/// stops when tokens or TTL run out.  Returns the consuming nodes in visit
/// order; transmissions are counted under `kind`.
std::vector<TokenVisit> token_walk(Overlay& overlay, util::Rng& rng,
                                   NodeIndex source, std::uint32_t tokens,
                                   std::uint32_t ttl,
                                   const std::function<bool(NodeIndex)>& consumes,
                                   MessageKind kind);

/// Transport-routed token walk: request forwards travel as
/// kAgentListRequest envelopes (a dropped forward loses its token share),
/// and each consuming node's answer returns to `source` as a
/// kAgentListReply envelope (a dropped reply consumes the token but never
/// arrives).  With InstantDelivery this is transmission-for-transmission
/// identical to the counted walk above.
std::vector<TokenVisit> token_walk(Transport& transport, util::Rng& rng,
                                   NodeIndex source, std::uint32_t tokens,
                                   std::uint32_t ttl,
                                   const std::function<bool(NodeIndex)>& consumes);

}  // namespace hirep::net
