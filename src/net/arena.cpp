#include "net/arena.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/metrics.hpp"

namespace hirep::net {

namespace {

struct ArenaCells {
  obs::Gauge* bytes_in_use;
  obs::Counter* slab_allocs;
  obs::Counter* slab_bytes;
  obs::Counter* resets;
};

const ArenaCells& arena_cells() {
  static const ArenaCells cells = [] {
    auto& reg = obs::Registry::global();
    return ArenaCells{&reg.gauge("net.arena.bytes_in_use"),
                      &reg.counter("net.arena.slab_allocs"),
                      &reg.counter("net.arena.slab_bytes"),
                      &reg.counter("net.arena.resets")};
  }();
  return cells;
}

}  // namespace

PayloadArena::PayloadArena(std::size_t slab_bytes)
    : slab_bytes_(slab_bytes == 0 ? kDefaultSlabBytes : slab_bytes) {}

void PayloadArena::add_slab(std::size_t at_least) {
  // `target` is where the next allocation will look for room.  Prefer a
  // retained slab (left behind by rewind/reset) when one fits; otherwise
  // insert a fresh slab there.  Swaps/inserts only ever touch indices
  // beyond the live region, so marks taken earlier stay valid.
  const std::size_t target = slabs_.empty() ? 0 : active_ + 1;
  for (std::size_t i = target; i < slabs_.size(); ++i) {
    if (slabs_[i].size >= at_least) {
      std::swap(slabs_[i], slabs_[target]);
      return;
    }
  }
  const std::size_t size = std::max(slab_bytes_, at_least);
  Slab slab;
  slab.data = std::make_unique<std::uint8_t[]>(size);
  slab.size = size;
  slabs_.insert(slabs_.begin() + static_cast<std::ptrdiff_t>(target),
                std::move(slab));
  ++slab_allocs_;
  if constexpr (obs::kEnabled) {
    arena_cells().slab_allocs->add();
    arena_cells().slab_bytes->add(size);
  }
}

std::span<std::uint8_t> PayloadArena::allocate(std::size_t n) {
  if (n == 0) return {};
  if (slabs_.empty()) {
    add_slab(n);
  } else if (slabs_[active_].size - used_ < n) {
    if (active_ + 1 >= slabs_.size() || slabs_[active_ + 1].size < n) {
      add_slab(n);
    }
    ++active_;
    used_ = 0;
  }
  std::uint8_t* p = slabs_[active_].data.get() + used_;
  used_ += n;
  note_occupancy();
  return {p, n};
}

std::span<const std::uint8_t> PayloadArena::store(
    std::span<const std::uint8_t> data) {
  if (data.empty()) return {};
  auto dst = allocate(data.size());
  std::memcpy(dst.data(), data.data(), data.size());
  return dst;
}

void PayloadArena::rewind(Mark m) noexcept {
  active_ = m.slab;
  used_ = m.used;
  if constexpr (obs::kEnabled) {
    arena_cells().bytes_in_use->set(
        static_cast<std::int64_t>(bytes_in_use()));
  }
}

void PayloadArena::reset() noexcept {
  active_ = 0;
  used_ = 0;
  ++resets_;
  if constexpr (obs::kEnabled) {
    arena_cells().resets->add();
    arena_cells().bytes_in_use->set(0);
  }
}

std::size_t PayloadArena::bytes_in_use() const noexcept {
  std::size_t sum = used_;
  for (std::size_t i = 0; i < active_ && i < slabs_.size(); ++i) {
    sum += slabs_[i].size;
  }
  return sum;
}

void PayloadArena::note_occupancy() noexcept {
  const std::size_t in_use = bytes_in_use();
  if (in_use > high_water_) high_water_ = in_use;
  if constexpr (obs::kEnabled) {
    arena_cells().bytes_in_use->set(static_cast<std::int64_t>(in_use));
  }
}

}  // namespace hirep::net
