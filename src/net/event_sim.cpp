#include "net/event_sim.hpp"

#include <algorithm>

#include "check/invariants.hpp"

namespace hirep::net {

void EventSim::schedule_at(double at, Callback fn) {
  queue_.push(Event{std::max(at, now_), next_seq_++, std::move(fn)});
}

void EventSim::schedule_in(double delay, Callback fn) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

std::size_t EventSim::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    // Moving out of a priority_queue requires the const_cast dance; the
    // element is popped immediately after.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if constexpr (check::kEnabled) {
      check::monotone_clock("net.event_clock.monotone", now_, ev.at);
    }
    now_ = ev.at;
    ev.fn();
    ++executed;
  }
  return executed;
}

std::size_t EventSim::run_until(double deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if constexpr (check::kEnabled) {
      check::monotone_clock("net.event_clock.monotone", now_, ev.at);
    }
    now_ = ev.at;
    ev.fn();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

void EventSim::reset() {
  while (!queue_.empty()) queue_.pop();
  now_ = 0.0;
  next_seq_ = 0;
}

}  // namespace hirep::net
