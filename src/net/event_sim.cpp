#include "net/event_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/invariants.hpp"
#include "obs/metrics.hpp"

namespace hirep::net {

namespace {

obs::Counter& events_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.event_sim.events");
  return c;
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("net.event_sim.queue_depth");
  return g;
}

}  // namespace

void EventSim::schedule_at(double at, Callback fn) {
  queue_.push(Event{std::max(at, now_), next_seq_++, std::move(fn)});
  if constexpr (obs::kEnabled) {
    queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
  }
}

void EventSim::schedule_in(double delay, Callback fn) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

std::size_t EventSim::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    // Moving out of a priority_queue requires the const_cast dance; the
    // element is popped immediately after.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if constexpr (check::kEnabled) {
      check::monotone_clock("net.event_clock.monotone", now_, ev.at);
    }
    now_ = ev.at;
    ev.fn();
    ++executed;
  }
  if constexpr (obs::kEnabled) {
    events_counter().add(executed);
    queue_depth_gauge().set(0);
  }
  return executed;
}

std::size_t EventSim::run_until(double deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if constexpr (check::kEnabled) {
      check::monotone_clock("net.event_clock.monotone", now_, ev.at);
    }
    now_ = ev.at;
    ev.fn();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  if constexpr (obs::kEnabled) {
    events_counter().add(executed);
    queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
  }
  return executed;
}

void EventSim::advance_to(double t) {
  if (t <= now_) return;
  if (!queue_.empty() && queue_.top().at < t) {
    throw std::logic_error(
        "EventSim::advance_to would jump over a pending event");
  }
  now_ = t;
}

void EventSim::reset() {
  while (!queue_.empty()) queue_.pop();
  now_ = 0.0;
  next_seq_ = 0;
}

}  // namespace hirep::net
