#include "net/metrics.hpp"

#include <sstream>

namespace hirep::net {

const char* to_string(MessageKind kind) noexcept {
  switch (kind) {
    case MessageKind::kQuery: return "query";
    case MessageKind::kTrustRequest: return "trust_request";
    case MessageKind::kTrustResponse: return "trust_response";
    case MessageKind::kReport: return "report";
    case MessageKind::kAgentDiscovery: return "agent_discovery";
    case MessageKind::kOnionRelay: return "onion_relay";
    case MessageKind::kKeyExchange: return "key_exchange";
    case MessageKind::kControl: return "control";
    case MessageKind::kCount: break;
  }
  return "?";
}

void TrafficMetrics::count(MessageKind kind, std::uint64_t messages) noexcept {
  counts_[static_cast<std::size_t>(kind)] += messages;
}

void TrafficMetrics::reset() noexcept { counts_.fill(0); }

std::uint64_t TrafficMetrics::total() const noexcept {
  std::uint64_t sum = 0;
  for (auto c : counts_) sum += c;
  return sum;
}

std::uint64_t TrafficMetrics::of(MessageKind kind) const noexcept {
  return counts_[static_cast<std::size_t>(kind)];
}

std::uint64_t TrafficMetrics::trust_traffic() const noexcept {
  return total() - of(MessageKind::kQuery);
}

std::string TrafficMetrics::summary() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out << to_string(static_cast<MessageKind>(i)) << '=' << counts_[i] << ' ';
  }
  out << "total=" << total();
  return out.str();
}

}  // namespace hirep::net
